#!/usr/bin/env python3
"""Adaptive routing under adversarial traffic (paper Figures 8-9).

Run:  python examples/adversarial_routing.py

PolarFly has exactly one minimal path per router pair, so permutation
patterns are worst-case for minimal routing: all p endpoints of a router
share one path (throughput cap 1/p).  This script pits the paper's routing
protocols against each other on three patterns:

* uniform random   — minimal routing is near-optimal;
* tornado          — classic adversarial shift;
* Perm1Hop         — every router talks to a direct neighbor, the pattern
                     that stresses UGAL_PF's 4-hop Valiant fallback.

Protocols: MIN, UGAL (general Valiant), UGAL_PF (Compact Valiant + 2/3
occupancy threshold, the paper's contribution).

The whole study is ONE experiment-engine grid: 3 policies x 3 patterns x
3 loads = 27 cells, declared as spec strings and executed by the shared
SweepRunner.  Set REPRO_SWEEP_WORKERS=4 to fan the cells over worker
processes, and REPRO_CACHE_DIR=/tmp/repro-cache to make re-runs instant —
either way the numbers are bit-identical.
"""

from repro.experiments import ExperimentSpec, ResultCache, SweepRunner

PF = "polarfly:conc=2,q=7"
POLICIES = [("min", "MIN"), ("ugal", "UGAL"), ("ugal-pf", "UGAL_PF")]
PATTERNS = [("uniform", "uniform"), ("tornado", "tornado"), ("perm1hop:seed=0", "perm1hop")]


def main() -> None:
    spec = ExperimentSpec.grid(
        [PF],
        [p for p, _ in POLICIES],
        [t for t, _ in PATTERNS],
        loads=(0.3, 0.6, 0.9),
        warmup=300,
        measure=600,
        drain=200,
        root_seed=7,
    )
    print("=== Routing on PolarFly(7), 57 routers, p=2 ===")
    print(f"    ({spec.describe()})\n")
    # Caching is opt-in (same convention as the benchmarks): persisting
    # results without being asked would silently replay stale numbers
    # after a simulator change.
    result = SweepRunner(cache=ResultCache.from_env()).run(spec)
    if result.cache_hits:
        print(f"[result cache: {result.cache_hits} hits, "
              f"{result.cache_misses} simulated]\n")

    for pat_spec, pat_name in PATTERNS:
        print(f"--- {pat_name} traffic ---")
        print(f"  {'policy':<8} {'load':>5} {'accepted':>9} {'latency':>9}")
        for pol_spec, pol_name in POLICIES:
            sweep = result.sweep(f"{PF}|{pol_spec}|{pat_spec}")
            for pt in sweep.points:
                print(
                    f"  {pol_name:<8} {pt.offered_load:>5.2f} "
                    f"{pt.accepted_load:>9.3f} {pt.avg_latency:>8.1f}c"
                )
        print()

    print(
        "Expected shape (paper Figs 8-9): under uniform traffic all three\n"
        "track each other; under tornado/permutations MIN pins at 1/p of\n"
        "injection bandwidth while UGAL and UGAL_PF deliver ~50-66%, with\n"
        "UGAL_PF matching MIN's latency at low load thanks to its\n"
        "adaptation threshold."
    )


if __name__ == "__main__":
    main()
