#!/usr/bin/env python3
"""Adaptive routing under adversarial traffic (paper Figures 8-9).

Run:  python examples/adversarial_routing.py

PolarFly has exactly one minimal path per router pair, so permutation
patterns are worst-case for minimal routing: all p endpoints of a router
share one path (throughput cap 1/p).  This script pits the paper's routing
protocols against each other on three patterns:

* uniform random   — minimal routing is near-optimal;
* tornado          — classic adversarial shift;
* Perm1Hop         — every router talks to a direct neighbor, the pattern
                     that stresses UGAL_PF's 4-hop Valiant fallback.

Protocols: MIN, UGAL (general Valiant), UGAL_PF (Compact Valiant + 2/3
occupancy threshold, the paper's contribution).
"""

from repro import (
    MinimalRouting,
    NetworkSimulator,
    OneHopPermutationTraffic,
    PolarFly,
    RoutingTables,
    TornadoTraffic,
    UGALPFRouting,
    UGALRouting,
    UniformTraffic,
)


def run_point(topo, policy, traffic, load):
    sim = NetworkSimulator(topo, policy, traffic, load, seed=7)
    return sim.run(warmup=300, measure=600, drain=200)


def main() -> None:
    pf = PolarFly(7, concentration=2)
    tables = RoutingTables(pf)
    policies = {
        "MIN": MinimalRouting(tables),
        "UGAL": UGALRouting(tables),
        "UGAL_PF": UGALPFRouting(tables),
    }
    patterns = {
        "uniform": UniformTraffic(pf),
        "tornado": TornadoTraffic(pf),
        "perm1hop": OneHopPermutationTraffic(pf, seed=0),
    }

    print(f"=== Routing on PolarFly(7), {pf.num_routers} routers, p=2 ===\n")
    for pat_name, traffic in patterns.items():
        print(f"--- {pat_name} traffic ---")
        print(f"  {'policy':<8} {'load':>5} {'accepted':>9} {'latency':>9}")
        for pol_name, policy in policies.items():
            for load in (0.3, 0.6, 0.9):
                res = run_point(pf, policy, traffic, load)
                print(
                    f"  {pol_name:<8} {load:>5.2f} "
                    f"{res.accepted_load:>9.3f} {res.avg_latency:>8.1f}c"
                )
        print()

    print(
        "Expected shape (paper Figs 8-9): under uniform traffic all three\n"
        "track each other; under tornado/permutations MIN pins at 1/p of\n"
        "injection bandwidth while UGAL and UGAL_PF deliver ~50-66%, with\n"
        "UGAL_PF matching MIN's latency at low load thanks to its\n"
        "adaptation threshold."
    )


if __name__ == "__main__":
    main()
