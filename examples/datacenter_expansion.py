#!/usr/bin/env python3
"""Budget-driven datacenter growth with PolarFly (paper Section VI).

Run:  python examples/datacenter_expansion.py

Scenario: a lab buys an under-provisioned PolarFly(q=7) and grows it over
four budget cycles *without rewiring a single existing cable*.  The script
compares the two expansion schemes the paper proposes:

* quadric-cluster replication   — keeps diameter 2, non-uniform degrees;
* non-quadric replication       — ~2x nodes per added port, diameter 3,
                                  near-uniform degrees, ASPL < 2.

For each step it reports size, degree spread, diameter/ASPL, and measured
throughput under uniform traffic (the Figure 11 experiment, scaled down).
"""

from repro import (
    MinimalRouting,
    PolarFly,
    RoutingTables,
    SweepRunner,
    UniformTraffic,
    replicate_nonquadric_clusters,
    replicate_quadrics,
)

# Expanded fabrics are grown in memory, not expressible as registry spec
# strings — so they go through the engine's object path (same per-point
# execution as spec sweeps, no cache).
ENGINE = SweepRunner()


def evaluate(topo, label):
    deg = topo.graph.degree()
    tables = RoutingTables(topo)
    sweep = ENGINE.run_objects(
        topo, MinimalRouting(tables), UniformTraffic(topo), loads=(0.4,),
        warmup=250, measure=500, drain=200, seed=1,
    )
    res = sweep.points[0]
    print(
        f"  {label:<28} N={topo.num_routers:<4} "
        f"deg=[{deg.min()},{deg.max()}] D={topo.diameter()} "
        f"ASPL={topo.average_shortest_path_length():.3f} "
        f"thru={res.accepted_load:.3f} lat={res.avg_latency:.1f}"
    )
    return res.accepted_load


def main() -> None:
    q = 7
    base = PolarFly(q, concentration=2)
    print(f"=== Incremental expansion of PolarFly(q={q}) ===\n")
    print("Baseline:")
    base_thru = evaluate(base, "PF(7)")

    print("\nScheme A — replicate the quadric rack (diameter stays 2):")
    for t in (1, 2, 3):
        ex = replicate_quadrics(base, t, concentration=2)
        evaluate(ex, f"+{t} quadric rack(s) (+{t * (q + 1)} nodes)")

    print("\nScheme B — replicate non-quadric racks (near-uniform degrees):")
    for t in (1, 2, 3):
        ex = replicate_nonquadric_clusters(base, t, concentration=2)
        evaluate(ex, f"+{t} fan rack(s) (+{t * q} nodes)")

    print(
        "\nTakeaway (matches Figure 11): quadric replication preserves\n"
        "diameter 2 but concentrates new load on W/V1 routers; non-quadric\n"
        "replication scales ~2x faster per port, keeps degrees near-uniform\n"
        "and costs only a diameter-3 worst case (ASPL stays below 2)."
    )


if __name__ == "__main__":
    main()
