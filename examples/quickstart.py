#!/usr/bin/env python3
"""Quickstart: build a PolarFly, inspect its structure, route, and simulate.

Run:  python examples/quickstart.py [q]

Builds PolarFly(q) (default q=7), verifies the headline properties from the
paper (diameter 2, Moore-bound efficiency, vertex partition), derives the
rack layout of Algorithm 1, routes a few packets algebraically, and runs a
short cycle-accurate simulation under uniform traffic.
"""

import sys

from repro import ClusterLayout, ExperimentSpec, PolarFly, SweepRunner


def main(q: int = 7) -> None:
    print(f"=== PolarFly(q={q}) quickstart ===\n")

    # 1. Construction: ER_q polarity graph over GF(q).
    pf = PolarFly(q, concentration=4)
    print(f"routers          : {pf.num_routers}  (= q^2+q+1)")
    print(f"network radix    : {pf.network_radix}  (= q+1)")
    print(f"links            : {pf.num_links}")
    print(f"diameter         : {pf.diameter()}")
    print(f"Moore efficiency : {pf.moore_bound_efficiency:.1%}")
    print(
        f"vertex partition : |W|={len(pf.quadrics)} "
        f"|V1|={len(pf.v1)} |V2|={len(pf.v2)}\n"
    )

    # 2. Rack layout (Algorithm 1): one quadric rack + q fan racks.
    layout = ClusterLayout(pf)
    census = layout.link_census()
    print(f"racks            : {layout.num_clusters} "
          f"(C0 quadrics + {q} isomorphic fan racks)")
    print(f"links C0<->Ci    : {census[0, 1]}  (= q+1)")
    print(f"links Ci<->Cj    : {census[1, 2]}  (= q-2)")
    print(f"fan triangles/rack: {len(layout.fan_triangles(1))}  (= (q-1)/2)\n")

    # 3. Algebraic routing: the unique minimal path via a cross product.
    s, d = int(pf.v2[0]), int(pf.v2[-1])
    path = pf.minimal_path(s, d)
    print(f"route {pf.vectors[s].tolist()} -> {pf.vectors[d].tolist()}:")
    print(f"  routers {path}  ({len(path) - 1} hops, midpoint via s x d)\n")

    # 4. Cycle-accurate simulation via the experiment engine: the whole
    #    cell is a string spec, so it is hashable, cacheable, and
    #    reproducible from the root seed alone.
    spec = ExperimentSpec.grid(
        [f"polarfly:conc=4,q={q}"], ["min"], ["uniform"],
        loads=(0.3,), warmup=300, measure=600, drain=200, root_seed=0,
    )
    res = SweepRunner().run(spec).sweeps[0].points[0]
    print("simulation (uniform traffic, offered load 0.30):")
    print(f"  accepted load : {res.accepted_load:.3f} flits/cycle/endpoint")
    print(f"  avg latency   : {res.avg_latency:.1f} cycles")
    print(f"  p50 latency   : {res.p50_latency:.1f} cycles")
    print(f"  p99 latency   : {res.p99_latency:.1f} cycles")
    print(f"  avg hops      : {res.avg_hops:.2f}  (diameter-2 network)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
