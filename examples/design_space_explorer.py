#!/usr/bin/env python3
"""Design-space exploration: pick a topology for a given router radix.

Run:  python examples/design_space_explorer.py [max_radix]

Answers the procurement question the paper's Figures 1-2 address: *given
routers of radix k, how many compute nodes can each diameter-2 topology
connect, and how close is that to the theoretical (Moore) optimum?*

For every radix up to the budget it lists the feasible PolarFly and Slim
Fly designs, then prints the co-packaged cost comparison of Section X and
a bisection/resilience spot check on concrete instances.
"""

import sys

from repro import TOPOLOGIES, feasible_q_for_radix, moore_bound_diameter2
from repro.analysis import (
    bisection_fraction,
    cost_comparison,
    feasible_radix_counts,
    link_failure_sweep,
)
from repro.core import polarfly_order
from repro.topologies import feasible_slimfly_q, slimfly_order


def main(max_radix: int = 32) -> None:
    print(f"=== Diameter-2 design space up to radix {max_radix} ===\n")
    print(f"{'radix':>5} {'PolarFly':>22} {'SlimFly':>22} {'Moore bound':>12}")
    for k in range(3, max_radix + 1):
        bound = moore_bound_diameter2(k)
        q_pf = feasible_q_for_radix(k)
        q_sf = feasible_slimfly_q(k)
        pf_txt = (
            f"q={q_pf}: N={polarfly_order(q_pf)} ({polarfly_order(q_pf)/bound:.0%})"
            if q_pf
            else "-"
        )
        sf_txt = (
            f"q={q_sf}: N={slimfly_order(q_sf)} ({slimfly_order(q_sf)/bound:.0%})"
            if q_sf
            else "-"
        )
        if q_pf or q_sf:
            print(f"{k:>5} {pf_txt:>22} {sf_txt:>22} {bound:>12}")

    counts = feasible_radix_counts((16, 32, 48, 64, 96, 128))
    print("\nFeasible designs per radix ceiling (Figure 1):")
    print(f"  ceilings : {counts['ceilings']}")
    for name in ("SlimFly", "PolarFly", "PolarFly+"):
        print(f"  {name:<9}: {counts[name]}")

    print("\nNormalized network cost at ~1,024 nodes (Figure 15):")
    for scenario, costs in cost_comparison().items():
        row = ", ".join(f"{n}={v:.2f}" for n, v in costs.items())
        print(f"  {scenario:<12}: {row}")

    # Concrete spot check on buildable instances, constructed from the
    # same registry specs the experiment engine uses.
    print("\nSpot check on real instances (bisection + 30% link failure):")
    for topo in map(TOPOLOGIES.create, ("polarfly:q=9", "slimfly:q=7")):
        frac = bisection_fraction(topo)
        sweep = link_failure_sweep(topo, steps=[0.3], seed=0)
        print(
            f"  {topo.name:<10} N={topo.num_routers:<4} "
            f"bisection={frac:.2f} of links, "
            f"diameter@30%fail={sweep.diameters[0]}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
