#!/usr/bin/env python3
"""Closed-loop collectives on PolarFly (the workload engine).

Run:  python examples/collective_benchmark.py [q]

Open-loop load sweeps say how a topology behaves under a *rate*; real
HPC/ML jobs care how long their *communication* takes.  This script
drives the closed-loop workload engine: each workload is a DAG of sized
messages between terminal routers, a message injects only once its
dependencies have fully arrived, and the run ends when the last tail
flit ejects — the collective's completion time.

Four workloads, straight from the WORKLOADS registry:

* ring all-reduce        — the bandwidth-optimal collective of data
                           parallel training (2(N-1)-step chain/rank);
* recursive-doubling     — the latency-optimal all-reduce variant
                           (log2 P rounds of pairwise exchange);
* all-to-all             — dependency-free personalized exchange, the
                           bisection stress test (MoE dispatch, FFTs);
* incast + reply         — the synchronous parameter-server round trip.

Each runs under minimal and adaptive (UGAL_PF) routing through the same
SweepRunner every open-loop figure uses — workload cells hash, cache,
and fan out over workers exactly like traffic cells.
"""

import sys

from repro.experiments import Combo, ExperimentSpec, ResultCache, SweepRunner

WORKLOADS = [
    ("allreduce:algo=ring,size=64", "ring all-reduce"),
    ("allreduce:algo=rd,size=16", "recursive doubling"),
    ("alltoall:size=8", "all-to-all"),
    ("incast:reply=true,size=32", "incast + reply"),
]
POLICIES = [("min", "MIN"), ("ugal-pf", "UGAL_PF")]


def main() -> None:
    q = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    topo_spec = f"polarfly:conc=2,q={q}"
    spec = ExperimentSpec.workload_grid(
        [topo_spec],
        [p for p, _ in POLICIES],
        [w for w, _ in WORKLOADS],
        root_seed=7,
        max_cycles=100_000,
    )
    print(f"=== Closed-loop collectives on PolarFly({q}) ===")
    print(f"    ({spec.describe()})\n")
    result = SweepRunner(cache=ResultCache.from_env()).run(spec)

    header = f"  {'workload':<20} {'policy':<8} {'cycles':>7} {'p99 msg':>8} {'bisect':>7}"
    print(header)
    for w_spec, w_name in WORKLOADS:
        for p_spec, p_name in POLICIES:
            # Look the cell up by its grid coordinates.
            cell = spec.cell(Combo(topo_spec, p_spec, workload=w_spec), 0.0)
            stats = result.cells[cell["key"]]
            flag = "" if stats["finished"] else "  (unfinished!)"
            print(
                f"  {w_name:<20} {p_name:<8} {stats['completion_cycles']:>7} "
                f"{stats['p99_msg_latency']:>8.0f} "
                f"{stats['bisection_utilization']:>7.3f}{flag}"
            )
    print(
        "\nCompletion time is end-to-end cycles for the whole collective;"
        "\n'bisect' is the fraction of the balanced bisection's capacity"
        "\nthe run kept busy (1.0 = the cut was saturated every cycle)."
    )


if __name__ == "__main__":
    main()
