#!/usr/bin/env python3
"""Operational fault drill: telemetry, failures, and rerouting.

Run:  python examples/fault_drill.py

A day-2-operations walkthrough on a PolarFly fabric:

1. run tornado traffic with per-link telemetry and find the hot links
   minimal routing creates (the Figure 9 mechanism, observed directly);
2. fail a batch of random links, verify the Section IX-B predictions
   (diameter 3-4, never disconnected at these rates);
3. rebuild routing tables around the failures and show the degraded
   fabric still carries traffic at bounded path length;
4. fail a whole router and confirm the diameter-3 claim for node loss.
"""

from repro import (
    MinimalRouting,
    NetworkSimulator,
    PolarFly,
    RoutingTables,
    SweepRunner,
    TornadoTraffic,
    UGALPFRouting,
    UniformTraffic,
)
from repro.analysis import node_failure_diameter
from repro.flitsim import run_with_telemetry
from repro.routing import degraded_topology, reroute_after_failures
from repro.utils.rng import make_rng


def main() -> None:
    pf = PolarFly(7, concentration=2)
    tables = RoutingTables(pf)
    print(f"=== Fault drill on {pf.name}: {pf.num_routers} routers ===\n")

    # 1. Observe min-routing hot links under tornado.
    print("Step 1 — telemetry under tornado traffic (min routing):")
    sim = NetworkSimulator(pf, MinimalRouting(tables), TornadoTraffic(pf), 0.5, seed=0)
    res, tel = run_with_telemetry(sim, warmup=200, measure=500)
    link, util = tel.max_utilization()
    print(f"  hottest link {link}: {util:.0%} utilized; load Gini {tel.gini():.2f}")
    sim2 = NetworkSimulator(pf, UGALPFRouting(tables), TornadoTraffic(pf), 0.5, seed=0)
    _, tel2 = run_with_telemetry(sim2, warmup=200, measure=500)
    print(f"  with UGAL_PF: hottest {tel2.max_utilization()[1]:.0%}, "
          f"Gini {tel2.gini():.2f}  (adaptive routing spreads the load)\n")

    # 2. Fail 10% of links at random.
    rng = make_rng(1)
    edges = pf.graph.edges()
    kill = rng.choice(len(edges), size=len(edges) // 10, replace=False)
    failed = [tuple(map(int, edges[i])) for i in kill]
    deg = degraded_topology(pf, failed)
    print(f"Step 2 — {len(failed)} random link failures (10%):")
    print(f"  connected: {deg.is_connected()}, diameter {deg.diameter()} "
          f"(paper: 3-4 expected), ASPL {deg.average_shortest_path_length():.2f}\n")

    # 3. Reroute and re-simulate on the broken fabric.  A degraded
    #    topology is a live object with no registry spec, so it runs
    #    through the engine's object path (auto-sized VC config).
    print("Step 3 — reroute and carry traffic on the degraded fabric:")
    deg_tables = reroute_after_failures(pf, failed)
    policy = MinimalRouting(deg_tables)
    sweep3 = SweepRunner().run_objects(
        deg, policy, UniformTraffic(deg), loads=(0.3,),
        warmup=200, measure=500, drain=200, seed=2,
    )
    res3 = sweep3.points[0]
    print(f"  accepted {res3.accepted_load:.3f} at offered 0.30; "
          f"avg hops {res3.avg_hops:.2f} (max {policy.max_hops})\n")

    # 4. Router failure.
    victim = int(pf.quadrics[0])
    print("Step 4 — whole-router failure:")
    print(f"  removing quadric router {victim}: diameter becomes "
          f"{node_failure_diameter(pf, victim)} (paper: exactly 3)")


if __name__ == "__main__":
    main()
