#!/usr/bin/env python3
"""Operational fault drill: telemetry, failures, and rerouting.

Run:  python examples/fault_drill.py

A day-2-operations walkthrough on a PolarFly fabric:

1. run tornado traffic with per-link telemetry and find the hot links
   minimal routing creates (the Figure 9 mechanism, observed directly);
2. fail a batch of random links, verify the Section IX-B predictions
   (diameter 3-4, never disconnected at these rates);
3. rebuild routing tables around the failures and show the degraded
   fabric still carries traffic at bounded path length;
4. fail a whole router and confirm the diameter-3 claim for node loss;
5. re-run the failures *dynamically*: links die and recover mid-run
   while the simulator drops in-flight flits, repairs routes
   incrementally, and (for a collective) retransmits lost packets.
"""

from repro import (
    FAULTS,
    MinimalRouting,
    NetworkSimulator,
    PolarFly,
    RoutingTables,
    SweepRunner,
    TornadoTraffic,
    UGALPFRouting,
    UniformTraffic,
    WORKLOADS,
    prepare_fault_policy,
)
from repro.analysis import node_failure_diameter
from repro.experiments.runner import (
    auto_sim_config,
    simulate_point,
    simulate_workload,
)
from repro.flitsim import run_with_telemetry
from repro.routing import degraded_topology, reroute_after_failures
from repro.utils.rng import make_rng


def main() -> None:
    pf = PolarFly(7, concentration=2)
    tables = RoutingTables(pf)
    print(f"=== Fault drill on {pf.name}: {pf.num_routers} routers ===\n")

    # 1. Observe min-routing hot links under tornado.
    print("Step 1 — telemetry under tornado traffic (min routing):")
    sim = NetworkSimulator(pf, MinimalRouting(tables), TornadoTraffic(pf), 0.5, seed=0)
    res, tel = run_with_telemetry(sim, warmup=200, measure=500)
    link, util = tel.max_utilization()
    print(f"  hottest link {link}: {util:.0%} utilized; load Gini {tel.gini():.2f}")
    sim2 = NetworkSimulator(pf, UGALPFRouting(tables), TornadoTraffic(pf), 0.5, seed=0)
    _, tel2 = run_with_telemetry(sim2, warmup=200, measure=500)
    print(f"  with UGAL_PF: hottest {tel2.max_utilization()[1]:.0%}, "
          f"Gini {tel2.gini():.2f}  (adaptive routing spreads the load)\n")

    # 2. Fail 10% of links at random.
    rng = make_rng(1)
    edges = pf.graph.edges()
    kill = rng.choice(len(edges), size=len(edges) // 10, replace=False)
    failed = [tuple(map(int, edges[i])) for i in kill]
    deg = degraded_topology(pf, failed)
    print(f"Step 2 — {len(failed)} random link failures (10%):")
    print(f"  connected: {deg.is_connected()}, diameter {deg.diameter()} "
          f"(paper: 3-4 expected), ASPL {deg.average_shortest_path_length():.2f}\n")

    # 3. Reroute and re-simulate on the broken fabric.  A degraded
    #    topology is a live object with no registry spec, so it runs
    #    through the engine's object path (auto-sized VC config).
    print("Step 3 — reroute and carry traffic on the degraded fabric:")
    deg_tables = reroute_after_failures(pf, failed)
    policy = MinimalRouting(deg_tables)
    sweep3 = SweepRunner().run_objects(
        deg, policy, UniformTraffic(deg), loads=(0.3,),
        warmup=200, measure=500, drain=200, seed=2,
    )
    res3 = sweep3.points[0]
    print(f"  accepted {res3.accepted_load:.3f} at offered 0.30; "
          f"avg hops {res3.avg_hops:.2f} (max {policy.max_hops})\n")

    # 4. Router failure.
    victim = int(pf.quadrics[0])
    print("Step 4 — whole-router failure:")
    print(f"  removing quadric router {victim}: diameter becomes "
          f"{node_failure_diameter(pf, victim)} (paper: exactly 3)\n")

    # 5. The same story *dynamically*: an MTBF failure/repair process
    #    runs inside the simulation — flits on dying links are dropped,
    #    tables repair incrementally, traffic keeps flowing.
    print("Step 5 — dynamic fault injection (in-simulation failures):")
    # start=250 puts the first failure after the 200-cycle warmup, so
    # the pre-fault latency window actually accumulates samples.
    timeline = FAULTS.create("mtbf:count=3,mtbf=250,mttr=200,seed=2,start=250", pf)
    policy5 = UGALPFRouting(tables)
    prepare_fault_policy(policy5, timeline, pf)
    res5 = simulate_point(
        pf, policy5, UniformTraffic(pf), 0.5, warmup=200, measure=500,
        drain=200, seed=4, faults=timeline,
    )
    fr = res5.fault
    print(f"  {fr.num_events} fault epochs, {fr.dropped_flits} flits dropped, "
          f"{fr.dropped_packets} packets lost")
    print(f"  accepted {res5.accepted_load:.3f} at offered 0.50; post-fault "
          f"latency {fr.post_fault_avg_latency:.1f} cyc "
          f"(pre {fr.pre_fault_avg_latency:.1f})")

    # A collective under the same failures: lost packets retransmit at
    # the source, so the all-reduce still completes.
    timeline2 = FAULTS.create("mtbf:count=4,mtbf=150,mttr=200,seed=2,start=60", pf)
    policy6 = UGALPFRouting(tables)
    prepare_fault_policy(policy6, timeline2, pf)
    wl = WORKLOADS.create("allreduce:algo=ring,size=64", pf)
    res6 = simulate_workload(
        pf, policy6, wl, config=auto_sim_config(policy6), seed=3,
        faults=timeline2,
    )
    fr6 = res6.fault
    print(f"  ring all-reduce under failures: finished={res6.finished} in "
          f"{res6.completion_time} cycles; {fr6.dropped_packets} lost, "
          f"{fr6.retransmitted_packets} retransmitted")


if __name__ == "__main__":
    main()
