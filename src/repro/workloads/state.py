"""Closed-loop bookkeeping shared verbatim by both simulation engines.

The golden rule of the simulator pair — flat and reference produce
**bit-identical** results per seed — extends to workloads by pushing
every semantic decision of the closed-loop protocol into this one class,
which both engines drive at the same points of the cycle:

1. **Injection** (cycle start): :meth:`pop_ready` drains the ready
   queue — messages whose prerequisites have all completed, in FIFO
   (eligibility cycle, then ascending id) order.  Each message expands
   into ``ceil(size / packet_size)`` packets of exactly ``packet_size``
   flits (wire size rounds up to whole packets); the engine then makes
   *one* batched ``select_routes`` call over all packets of the cycle in
   message-major, packet-minor order — so both engines consume the RNG
   stream identically, and no Bernoulli draw happens at all in workload
   mode.
2. **Endpoint choice**: packets enter the source FIFO of an endpoint of
   the message's source router picked by a per-router round-robin
   counter (:meth:`next_endpoints`), spreading concurrent messages over
   the router's full injection bandwidth deterministically.
3. **Completion** (router phase): when a packet's tail flit ejects the
   engine reports it via :meth:`note_tails`; a message completes when
   its last packet ejects.
4. **Commit** (cycle end, before ``now`` advances): :meth:`commit`
   processes this cycle's completions in ascending message id order,
   decrements dependents' pending counts, and appends newly eligible
   messages to the ready queue (ascending id) — injectable from the
   *next* cycle, mirroring hardware's one-cycle dependency turnaround.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.message import Workload

__all__ = ["WorkloadState"]


class WorkloadState:
    """Mutable per-run workload progress (one instance per simulator)."""

    def __init__(self, workload: Workload, packet_size: int, topo):
        workload.validate_topology(topo)
        self.workload = workload
        self.packet_size = int(packet_size)
        m = workload.num_messages
        #: wire packets per message (payload rounded up to whole packets)
        self.msg_pkts = -(-workload.size // self.packet_size)
        self.rem_pkts = self.msg_pkts.copy()
        self.pending = workload.dep_counts.copy()
        self.eligible_cycle = np.full(m, -1, dtype=np.int64)
        self.complete_cycle = np.full(m, -1, dtype=np.int64)
        roots = workload.roots
        self.eligible_cycle[roots] = 0
        #: FIFO of eligible-but-not-yet-injected message ids
        self.ready: list = [int(r) for r in roots]
        self.completed = 0
        #: total link traversals weighted by flits (wire flits x hops)
        self.flit_hops = 0
        #: per-router round-robin injection counters (raw, mod at use)
        self._inj_rr = np.zeros(topo.num_routers, dtype=np.int64)
        self._conc = np.asarray(topo.concentration, dtype=np.int64)
        self._fin_now: list = []

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every message's tail flit has ejected."""
        return self.completed == self.workload.num_messages

    @property
    def wire_flits(self) -> int:
        """Total flits the workload puts on the wire (packet-rounded)."""
        return int(self.msg_pkts.sum()) * self.packet_size

    # ------------------------------------------------------------------
    # Injection side
    # ------------------------------------------------------------------
    def pop_ready(self) -> np.ndarray:
        """Drain the ready queue (FIFO order) as an id array."""
        if not self.ready:
            return np.empty(0, dtype=np.int64)
        out = np.asarray(self.ready, dtype=np.int64)
        self.ready = []
        return out

    def next_endpoint(self, router: int) -> int:
        """Scalar round-robin endpoint (local index) at ``router``."""
        local = int(self._inj_rr[router] % self._conc[router])
        self._inj_rr[router] += 1
        return local

    def next_endpoints(self, routers: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`next_endpoint` over a packet batch, in order.

        Equivalent to calling the scalar form once per packet in array
        order: within a batch, packets at the same router take
        consecutive round-robin slots.
        """
        routers = np.asarray(routers, dtype=np.int64)
        k = routers.size
        if k == 0:
            return np.empty(0, dtype=np.int64)
        if k <= 8:
            # Small batches dominate steady-state collectives; the
            # scalar loop beats eight-op vectorization well past k=8
            # and is the definitional order, so trivially identical.
            local = np.empty(k, dtype=np.int64)
            rr, conc = self._inj_rr, self._conc
            for i in range(k):
                r = routers[i]
                local[i] = rr[r] % conc[r]
                rr[r] += 1
            return local
        order = np.argsort(routers, kind="stable")
        rs = routers[order]
        first = np.empty(k, dtype=bool)
        first[0] = True
        np.not_equal(rs[1:], rs[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        rank = np.arange(k, dtype=np.int64) - starts[np.cumsum(first) - 1]
        local = np.empty(k, dtype=np.int64)
        local[order] = (self._inj_rr[rs] + rank) % self._conc[rs]
        np.add.at(self._inj_rr, rs, 1)
        return local

    # ------------------------------------------------------------------
    # Completion side
    # ------------------------------------------------------------------
    def note_tails(self, mids: np.ndarray, flit_hops: int) -> None:
        """Record this cycle's ejected tail flits (any order, batched).

        ``mids`` carries one entry per tail flit; ``flit_hops`` the
        summed (route hops x packet flits) of those packets.
        """
        mids = np.asarray(mids, dtype=np.int64)
        if mids.size == 0:
            return
        self.flit_hops += int(flit_hops)
        if mids.size == 1:
            # The common steady-state case: one tail this cycle.
            m = int(mids[0])
            self.rem_pkts[m] -= 1
            if self.rem_pkts[m] == 0:
                self._fin_now.append(mids)
            return
        np.subtract.at(self.rem_pkts, mids, 1)
        u = np.unique(mids)
        fin = u[self.rem_pkts[u] == 0]
        if fin.size:
            self._fin_now.append(fin)

    def commit(self, now: int) -> None:
        """Process completions recorded this cycle (call once per cycle,
        after the router phase, before ``now`` advances)."""
        if not self._fin_now:
            return
        fin = (
            self._fin_now[0]
            if len(self._fin_now) == 1
            else np.unique(np.concatenate(self._fin_now))
        )
        self._fin_now = []
        self.complete_cycle[fin] = now
        self.completed += int(fin.size)
        indptr = self.workload.dependents_indptr
        indices = self.workload.dependents_indices
        if fin.size == 1:
            # One completion: its dependents are distinct by
            # construction, so the dedup passes collapse away; sorting
            # ``newly`` keeps the ready-queue order identical to the
            # unique-based path below.
            m = int(fin[0])
            deps = indices[indptr[m] : indptr[m + 1]]
            if deps.size == 0:
                return
            self.pending[deps] -= 1
            newly = deps[self.pending[deps] == 0]
            if newly.size > 1:
                newly = np.sort(newly)
        else:
            spans = [indices[indptr[m] : indptr[m + 1]] for m in fin]
            deps = (
                np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
            )
            if deps.size == 0:
                return
            np.subtract.at(self.pending, deps, 1)
            touched = np.unique(deps)
            newly = touched[self.pending[touched] == 0]
        if newly.size:
            self.eligible_cycle[newly] = now
            self.ready.extend(int(x) for x in newly)
