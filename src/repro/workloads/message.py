"""Messages and workload DAGs: the closed-loop traffic abstraction.

Open-loop traffic (:mod:`repro.flitsim.traffic`) asks "where does the
next Bernoulli packet go?"; a *workload* instead fixes the complete
communication to perform: a DAG of sized messages between terminal
routers, where a message may only enter the network once every message
it depends on has fully arrived.  This is the shape of real HPC/ML
communication — collectives, stencil exchanges, parameter-server
rounds — and what ultimately distinguishes low-diameter topologies in
practice.

:class:`Message` is one ``src -> dst`` transfer of ``size_flits`` flits
with a tuple of prerequisite message ids; :class:`Workload` validates a
set of messages into flat arrays (sources, destinations, sizes, a
dependency CSR and its transpose) that both simulation engines and the
eligibility bookkeeping (:mod:`repro.workloads.state`) consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Message", "Workload"]


@dataclass(frozen=True)
class Message:
    """One sized transfer between terminal routers.

    Parameters
    ----------
    src, dst:
        Terminal router ids (routers with at least one endpoint).
    size_flits:
        Payload size in flits (>= 1).  The engines segment a message
        into fixed-size packets, rounding the wire size up to a whole
        number of packets.
    deps:
        Ids (indices into the workload's message list) of messages whose
        tail flits must eject before this message may inject.
    """

    src: int
    dst: int
    size_flits: int
    deps: tuple = field(default_factory=tuple)


class Workload:
    """A named DAG of messages, validated and flattened to arrays.

    Array views (all read-only by convention):

    * ``src``/``dst``/``size`` — per-message endpoints and payload flits;
    * ``dep_counts`` — number of prerequisites per message;
    * ``dependents_indptr``/``dependents_indices`` — CSR of the
      *transposed* dependency relation: the messages unblocked (in part)
      by each message's completion, which is the direction completion
      processing walks.

    Construction validates ids, rejects self-sends and empty messages,
    requires acyclicity (Kahn's algorithm), and — when ``topo`` is given
    — requires every endpoint to be a terminal router (``concentration
    > 0``), so indirect topologies like fat trees never inject or eject
    at internal switches.
    """

    def __init__(self, name: str, messages, topo=None):
        self.name = str(name)
        messages = list(messages)
        m = len(messages)
        if m == 0:
            raise ValueError("workload must contain at least one message")
        self.src = np.fromiter((msg.src for msg in messages), count=m, dtype=np.int64)
        self.dst = np.fromiter((msg.dst for msg in messages), count=m, dtype=np.int64)
        self.size = np.fromiter(
            (msg.size_flits for msg in messages), count=m, dtype=np.int64
        )
        if np.any(self.size < 1):
            raise ValueError("message sizes must be >= 1 flit")
        if np.any(self.src == self.dst):
            raise ValueError("messages must have src != dst")

        # Dependency CSR (deps of message i) and its transpose
        # (dependents of message i), both built in one pass.
        self.dep_counts = np.fromiter(
            (len(msg.deps) for msg in messages), count=m, dtype=np.int64
        )
        flat_deps = np.fromiter(
            (d for msg in messages for d in msg.deps),
            count=int(self.dep_counts.sum()),
            dtype=np.int64,
        )
        if flat_deps.size and (flat_deps.min() < 0 or flat_deps.max() >= m):
            raise ValueError("dependency id out of range")
        owner = np.repeat(np.arange(m, dtype=np.int64), self.dep_counts)
        order = np.argsort(flat_deps, kind="stable")
        self.dependents_indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(self.dependents_indptr, flat_deps + 1, 1)
        np.cumsum(self.dependents_indptr, out=self.dependents_indptr)
        self.dependents_indices = owner[order]

        self._check_acyclic()
        if topo is not None:
            self.validate_topology(topo)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_acyclic(self) -> None:
        """Kahn's algorithm: every message must be reachable from roots."""
        pending = self.dep_counts.copy()
        frontier = list(np.flatnonzero(pending == 0))
        seen = len(frontier)
        indptr, indices = self.dependents_indptr, self.dependents_indices
        while frontier:
            nxt: list = []
            for mid in frontier:
                for d in indices[indptr[mid] : indptr[mid + 1]]:
                    pending[d] -= 1
                    if pending[d] == 0:
                        nxt.append(int(d))
            seen += len(nxt)
            frontier = nxt
        if seen != self.num_messages:
            raise ValueError(
                f"workload {self.name!r} dependency graph has a cycle "
                f"({self.num_messages - seen} unreachable messages)"
            )

    def validate_topology(self, topo) -> None:
        """Require every message endpoint to be a terminal router."""
        n = topo.num_routers
        for arr, what in ((self.src, "source"), (self.dst, "destination")):
            if arr.min() < 0 or arr.max() >= n:
                raise ValueError(f"message {what} router out of range [0, {n})")
            bad = np.flatnonzero(topo.concentration[arr] == 0)
            if bad.size:
                raise ValueError(
                    f"message {int(bad[0])} {what} router "
                    f"{int(arr[bad[0]])} hosts no endpoints "
                    f"(injection/ejection only at terminal routers)"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_messages(self) -> int:
        return int(self.src.size)

    @property
    def total_payload_flits(self) -> int:
        """Requested flits across all messages (before packet rounding)."""
        return int(self.size.sum())

    @property
    def roots(self) -> np.ndarray:
        """Ids of messages with no prerequisites (eligible at cycle 0)."""
        return np.flatnonzero(self.dep_counts == 0)

    def messages(self) -> list:
        """Materialize back into :class:`Message` objects (tests, export)."""
        indptr, indices = self.dependents_indptr, self.dependents_indices
        deps: list[list[int]] = [[] for _ in range(self.num_messages)]
        for mid in range(self.num_messages):
            for d in indices[indptr[mid] : indptr[mid + 1]]:
                deps[int(d)].append(mid)
        return [
            Message(int(self.src[i]), int(self.dst[i]), int(self.size[i]),
                    tuple(deps[i]))
            for i in range(self.num_messages)
        ]

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, messages={self.num_messages}, "
            f"payload_flits={self.total_payload_flits})"
        )
