"""repro.workloads — closed-loop workload engine.

A workload is a DAG of sized messages between terminal routers
(:class:`Message` / :class:`Workload`); the simulation engines drive it
*closed-loop* — a message injects only once its dependencies' tail
flits have ejected — and report :class:`WorkloadResult` completion-time
metrics instead of steady-state load/latency curves.

Generators for the standard HPC/ML patterns (ring and
recursive-doubling all-reduce, all-to-all, halo/stencil exchange,
parameter-server incast) plus JSONL trace replay register themselves in
the :data:`~repro.experiments.registry.WORKLOADS` spec registry, so a
closed-loop cell is one more spec string a sweep can hash, cache, and
ship to workers:

    from repro.experiments import ExperimentSpec, SweepRunner

    spec = ExperimentSpec.workload_grid(
        ["polarfly:conc=2,q=7", "slimfly:conc=2,q=5"],
        ["min", "ugal-pf"],
        ["allreduce:algo=ring,size=64", "alltoall:size=8"],
    )
    result = SweepRunner.with_default_cache().run(spec)
"""

from repro.workloads.message import Message, Workload
from repro.workloads.state import WorkloadState
from repro.workloads.result import WorkloadResult, build_workload_result
from repro.workloads.generators import (
    all_to_all,
    halo_exchange,
    incast,
    load_trace,
    recursive_doubling_allreduce,
    ring_allreduce,
    terminal_routers,
)

__all__ = [
    "Message",
    "Workload",
    "WorkloadState",
    "WorkloadResult",
    "build_workload_result",
    "terminal_routers",
    "ring_allreduce",
    "recursive_doubling_allreduce",
    "all_to_all",
    "halo_exchange",
    "incast",
    "load_trace",
]
