"""Workload generators: collectives, stencils, incast, and trace replay.

Every generator is registered in the :data:`~repro.experiments.registry.WORKLOADS`
registry (mirroring ``TRAFFICS``), so a closed-loop experiment cell is
just one more spec string — ``"allreduce:algo=ring,size=64"`` — that can
be hashed, cached, and rebuilt inside a sweep worker.

All generators operate on the topology's *terminal* routers (those with
``concentration > 0``) — on a fat tree that is the edge switches — and
every dependency structure matches the textbook algorithm:

* **ring all-reduce** — reduce-scatter then all-gather around a ring:
  ``2(N-1)`` steps, each rank forwarding one chunk per step to its ring
  successor, each send gated on the chunk received the previous step.
* **recursive-doubling all-reduce** — ``log2(P)`` pairwise exchange
  rounds on the largest power-of-two subset of ranks, each round's send
  gated on the partner message received the round before.
* **all-to-all** — the dependency-free personalized exchange (every rank
  to every other rank at once): pure bisection stress.
* **halo** — iterated nearest-neighbor exchange on a 2D torus of ranks,
  each iteration's sends gated on all halos received the previous
  iteration (the BSP stencil pattern).
* **incast** — all workers to one parameter server; with ``reply`` the
  server's broadcast back is gated on *every* incast arriving (the
  synchronous parameter-server barrier).
* **trace** — replay of a JSONL message trace (see :func:`load_trace`
  for the schema), for workloads captured from real applications.
"""

from __future__ import annotations

import json

import numpy as np

from repro.experiments.registry import WORKLOADS
from repro.workloads.message import Message, Workload

__all__ = [
    "terminal_routers",
    "ring_allreduce",
    "recursive_doubling_allreduce",
    "all_to_all",
    "halo_exchange",
    "incast",
    "load_trace",
]


def terminal_routers(topo) -> np.ndarray:
    """Routers hosting endpoints — the workload's rank space."""
    terminals = np.flatnonzero(topo.concentration > 0)
    if terminals.size < 2:
        raise ValueError("workloads need at least two terminal routers")
    return terminals


# ----------------------------------------------------------------------
# All-reduce
# ----------------------------------------------------------------------
def ring_allreduce(topo, size: int = 64) -> Workload:
    """Ring all-reduce of a ``size``-flit vector per rank.

    Reduce-scatter (steps ``0..N-2``) then all-gather (steps
    ``N-1..2N-3``): at every step each rank sends one ``size/N`` chunk
    (at least one flit) to its ring successor, gated on the chunk it
    received the previous step — a length-``2(N-1)`` chain per rank,
    ``2(N-1) * N`` messages total.
    """
    t = terminal_routers(topo)
    n = t.size
    chunk = max(1, int(size) // n)
    steps = 2 * (n - 1)
    msgs = []
    for s in range(steps):
        for i in range(n):
            deps = (int((s - 1) * n + (i - 1) % n),) if s else ()
            msgs.append(
                Message(int(t[i]), int(t[(i + 1) % n]), chunk, deps)
            )
    return Workload(f"allreduce-ring(size={size})", msgs, topo)


def recursive_doubling_allreduce(topo, size: int = 64) -> Workload:
    """Recursive-doubling all-reduce on the largest 2^k terminal subset.

    Round ``s`` pairs rank ``i`` with ``i XOR 2**s``; both exchange the
    full ``size``-flit vector, gated on the message received in round
    ``s - 1``.  ``P * log2(P)`` messages.
    """
    t = terminal_routers(topo)
    p = 1 << (int(t.size).bit_length() - 1)
    if p < 2:
        raise ValueError("recursive doubling needs >= 2 terminal routers")
    rounds = p.bit_length() - 1
    msgs = []
    for s in range(rounds):
        for i in range(p):
            partner = i ^ (1 << s)
            deps = ((s - 1) * p + (i ^ (1 << (s - 1))),) if s else ()
            msgs.append(Message(int(t[i]), int(t[partner]), int(size), deps))
    return Workload(f"allreduce-rd(size={size})", msgs, topo)


# ----------------------------------------------------------------------
# All-to-all, halo, incast
# ----------------------------------------------------------------------
def all_to_all(topo, size: int = 8) -> Workload:
    """Personalized all-to-all: every rank sends ``size`` flits to every
    other rank, dependency-free — ``N(N-1)`` concurrent messages."""
    t = terminal_routers(topo)
    msgs = [
        Message(int(a), int(b), int(size))
        for a in t
        for b in t
        if a != b
    ]
    return Workload(f"alltoall(size={size})", msgs, topo)


def _torus_grid(n: int) -> tuple:
    """(rows, cols) of the squarest torus covering exactly ``n`` ranks."""
    rows = 1
    for d in range(int(np.sqrt(n)), 0, -1):
        if n % d == 0:
            rows = d
            break
    return rows, n // rows


def halo_exchange(topo, size: int = 16, iters: int = 2) -> Workload:
    """Iterated 2D-torus halo/stencil exchange over all terminal ranks.

    Ranks form the squarest ``rows x cols`` torus with ``rows * cols ==
    N`` (a ring when ``N`` is prime); each iteration every rank sends a
    ``size``-flit halo to each distinct torus neighbor, gated on all
    halos it received the previous iteration.
    """
    t = terminal_routers(topo)
    n = t.size
    rows, cols = _torus_grid(n)

    def nbrs(i: int) -> list:
        r, c = divmod(i, cols)
        cand = [
            ((r - 1) % rows) * cols + c,
            ((r + 1) % rows) * cols + c,
            r * cols + (c - 1) % cols,
            r * cols + (c + 1) % cols,
        ]
        out: list = []
        for x in cand:
            if x != i and x not in out:
                out.append(x)
        return out

    neighbor = [nbrs(i) for i in range(n)]
    # Message id layout: iteration-major, rank-major, neighbor-minor.
    offsets = np.concatenate(
        [[0], np.cumsum([len(x) for x in neighbor])]
    ).astype(np.int64)
    per_iter = int(offsets[-1])
    # recv_ids[i] = ids (within one iteration) of messages arriving at i
    recv_ids: list = [[] for _ in range(n)]
    for i in range(n):
        for j, v in enumerate(neighbor[i]):
            recv_ids[v].append(int(offsets[i]) + j)
    msgs = []
    for k in range(int(iters)):
        for i in range(n):
            deps = (
                tuple((k - 1) * per_iter + d for d in recv_ids[i]) if k else ()
            )
            for v in neighbor[i]:
                msgs.append(Message(int(t[i]), int(t[v]), int(size), deps))
    return Workload(f"halo(size={size},iters={iters})", msgs, topo)


def incast(topo, size: int = 32, root: int = 0, reply: bool = False) -> Workload:
    """Parameter-server incast: every worker sends ``size`` flits to the
    ``root``-th terminal router; with ``reply`` the server answers each
    worker, gated on *all* incast messages (the sync barrier)."""
    t = terminal_routers(topo)
    if not 0 <= int(root) < t.size:
        raise ValueError(f"root must index a terminal rank [0, {t.size})")
    server = int(t[int(root)])
    workers = [int(x) for x in t if int(x) != server]
    msgs = [Message(w, server, int(size)) for w in workers]
    if reply:
        barrier = tuple(range(len(workers)))
        msgs.extend(Message(server, w, int(size), barrier) for w in workers)
    return Workload(f"incast(size={size},reply={reply})", msgs, topo)


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
def load_trace(path: str, topo=None) -> Workload:
    """Load a JSONL message trace as a :class:`Workload`.

    Schema — one JSON object per line::

        {"id": <any>, "src": <router>, "dst": <router>,
         "size": <flits>, "deps": [<id>, ...]}

    ``id`` values may be any JSON scalars; they are mapped to dense
    message indices in file order (``deps`` must reference ids of
    earlier or later lines — forward references are allowed as long as
    the whole graph is acyclic).  ``deps`` may be omitted for root
    messages.
    """
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON ({exc})") from exc
            for key in ("id", "src", "dst", "size"):
                if key not in rec:
                    raise ValueError(f"{path}:{lineno}: missing {key!r}")
            records.append(rec)
    index = {}
    for i, rec in enumerate(records):
        if rec["id"] in index:
            raise ValueError(f"duplicate trace message id {rec['id']!r}")
        index[rec["id"]] = i
    msgs = []
    for rec in records:
        try:
            deps = tuple(index[d] for d in rec.get("deps", ()))
        except KeyError as exc:
            raise ValueError(
                f"trace message {rec['id']!r} depends on unknown id {exc}"
            ) from exc
        msgs.append(Message(int(rec["src"]), int(rec["dst"]), int(rec["size"]), deps))
    return Workload(f"trace({path})", msgs, topo)


# ----------------------------------------------------------------------
# Spec registrations — factories take (topo, **spec kwargs)
# ----------------------------------------------------------------------
@WORKLOADS.register("allreduce", example="allreduce:algo=ring,size=64")
def _allreduce_from_spec(topo, algo: str = "ring", size: int = 64) -> Workload:
    if algo == "ring":
        return ring_allreduce(topo, size=size)
    if algo == "rd":
        return recursive_doubling_allreduce(topo, size=size)
    raise ValueError(f"unknown all-reduce algo {algo!r}; choose ring or rd")


@WORKLOADS.register("alltoall", example="alltoall:size=8")
def _alltoall_from_spec(topo, size: int = 8) -> Workload:
    return all_to_all(topo, size=size)


@WORKLOADS.register("halo", example="halo:iters=2,size=16")
def _halo_from_spec(topo, size: int = 16, iters: int = 2) -> Workload:
    return halo_exchange(topo, size=size, iters=iters)


@WORKLOADS.register("incast", example="incast:reply=true,size=32")
def _incast_from_spec(
    topo, size: int = 32, root: int = 0, reply: bool = False
) -> Workload:
    return incast(topo, size=size, root=root, reply=reply)


@WORKLOADS.register("trace")
def _trace_from_spec(topo, path: str) -> Workload:
    return load_trace(path, topo)
