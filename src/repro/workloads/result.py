"""Workload completion metrics: the closed-loop analogue of ``SimResult``.

Open-loop runs report steady-state latency/throughput at an offered
load; a closed-loop run instead answers *how long did the communication
take* — collective completion time, the per-message latency
distribution, and how hard the run drove the network's bisection.  The
result is built from the engine-agnostic
:class:`~repro.workloads.state.WorkloadState` plus the engine's flit
statistics, so the flat and reference engines produce bit-identical
:class:`WorkloadResult`\\ s for the same seed (pinned by the workload
equivalence tests).

Bisection utilization uses the repo's own balanced-partition machinery
(:func:`repro.analysis.bisection.bisection_cut`, spectral + KL — the
paper's Figure 12 metric): cross-cut wire flits of completed messages,
divided by the cut's flit capacity over the run
(``cycles x cut_links`` per direction; the binding direction is
reported).  The cut is memoized per topology object.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

__all__ = ["WorkloadResult", "build_workload_result"]

#: per-topology-object memo of (side, cut_links) balanced bisections
_CUT_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _bisection_for(topo):
    memo = _CUT_MEMO.get(topo)
    if memo is None:
        from repro.analysis.bisection import bisection_cut

        memo = _CUT_MEMO[topo] = bisection_cut(topo)
    return memo


@dataclass
class WorkloadResult:
    """Completion-time measurements of one closed-loop run."""

    workload: str
    num_messages: int
    completed_messages: int
    #: True iff every message completed within the cycle budget
    finished: bool
    #: simulated cycles (== makespan when ``finished``)
    cycles: int
    num_endpoints: int
    #: requested payload flits across all messages
    payload_flits: int
    #: flits actually put on the wire (payload rounded up to packets)
    wire_flits: int
    injected_flits: int
    ejected_flits: int
    #: total link traversals weighted by flits
    flit_hops: int
    #: per-completed-message latency (complete - eligible), id order
    msg_latencies: np.ndarray
    #: per-packet latencies/hops in ejection order (engine sample order)
    packet_latencies: np.ndarray
    hop_counts: np.ndarray
    #: completed wire flits crossing the balanced bisection, per direction
    cross_flits_fwd: int = 0
    cross_flits_rev: int = 0
    #: links crossing the balanced bisection
    bisection_links: int = 0
    #: per-message completion cycles (-1 while incomplete), id order
    msg_complete_cycles: np.ndarray = field(default_factory=lambda: np.empty(0))

    # ------------------------------------------------------------------
    # Headline numbers
    # ------------------------------------------------------------------
    @property
    def completion_time(self) -> int:
        """Collective completion time in cycles (-1 if unfinished)."""
        return self.cycles if self.finished else -1

    @property
    def avg_msg_latency(self) -> float:
        lat = self.msg_latencies
        return float(np.mean(lat)) if len(lat) else float("nan")

    def msg_latency_percentile(self, pct: float) -> float:
        lat = self.msg_latencies
        return float(np.percentile(lat, pct)) if len(lat) else float("nan")

    @property
    def p50_msg_latency(self) -> float:
        return self.msg_latency_percentile(50)

    @property
    def p99_msg_latency(self) -> float:
        return self.msg_latency_percentile(99)

    @property
    def avg_packet_latency(self) -> float:
        lat = self.packet_latencies
        return float(np.mean(lat)) if len(lat) else float("nan")

    def packet_latency_percentile(self, pct: float) -> float:
        lat = self.packet_latencies
        return float(np.percentile(lat, pct)) if len(lat) else float("nan")

    @property
    def avg_hops(self) -> float:
        hops = self.hop_counts
        return float(np.mean(hops)) if len(hops) else float("nan")

    @property
    def achieved_throughput(self) -> float:
        """Ejected flits per endpoint per cycle over the whole run."""
        if self.cycles <= 0 or self.num_endpoints == 0:
            return 0.0
        return self.ejected_flits / (self.cycles * self.num_endpoints)

    @property
    def bisection_utilization(self) -> float:
        """Fraction of the bisection's capacity the run consumed.

        Cross-cut wire flits of the binding direction over the cut's
        flit capacity (``cycles x cut_links``, one flit per link per
        cycle per direction).
        """
        if self.cycles <= 0 or self.bisection_links == 0:
            return 0.0
        return max(self.cross_flits_fwd, self.cross_flits_rev) / (
            self.cycles * self.bisection_links
        )

    def summary(self) -> dict:
        """JSON-safe headline statistics (what sweep cells persist)."""
        return {
            "workload": self.workload,
            "num_messages": self.num_messages,
            "completed_messages": self.completed_messages,
            "finished": self.finished,
            "completion_cycles": self.completion_time,
            "cycles": self.cycles,
            "payload_flits": self.payload_flits,
            "wire_flits": self.wire_flits,
            "flit_hops": self.flit_hops,
            "avg_msg_latency": self.avg_msg_latency,
            "p50_msg_latency": self.p50_msg_latency,
            "p99_msg_latency": self.p99_msg_latency,
            "achieved_throughput": self.achieved_throughput,
            "bisection_utilization": self.bisection_utilization,
        }


def build_workload_result(state, stat, topo) -> WorkloadResult:
    """Assemble a :class:`WorkloadResult` after the run loop exits.

    ``state`` is the engine's :class:`~repro.workloads.state.WorkloadState`,
    ``stat`` its finalized :class:`~repro.flitsim.engine.SimResult` (flit
    counts and per-packet samples in the shared recording order).
    """
    wl = state.workload
    completed = np.flatnonzero(state.complete_cycle >= 0)
    latencies = (
        state.complete_cycle[completed] - state.eligible_cycle[completed]
    ).astype(np.int64)

    side, cut_links = _bisection_for(topo)
    done_wire = state.msg_pkts[completed] * state.packet_size
    src_side = side[wl.src[completed]]
    dst_side = side[wl.dst[completed]]
    fwd = int(done_wire[(~src_side) & dst_side].sum())
    rev = int(done_wire[src_side & (~dst_side)].sum())

    return WorkloadResult(
        workload=wl.name,
        num_messages=wl.num_messages,
        completed_messages=int(completed.size),
        finished=state.done,
        cycles=int(stat.cycles),
        num_endpoints=int(stat.num_endpoints),
        payload_flits=wl.total_payload_flits,
        wire_flits=state.wire_flits,
        injected_flits=int(stat.injected_flits),
        ejected_flits=int(stat.ejected_flits),
        flit_hops=int(state.flit_hops),
        msg_latencies=latencies,
        packet_latencies=np.asarray(stat.latencies, dtype=np.int64),
        hop_counts=np.asarray(stat.hop_counts, dtype=np.int64),
        cross_flits_fwd=fwd,
        cross_flits_rev=rev,
        bisection_links=int(cut_links),
        msg_complete_cycles=state.complete_cycle.copy(),
    )
