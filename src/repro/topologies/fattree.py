"""k-ary n-tree (three-stage fat tree) — Leiserson's fat tree as deployed.

The indirect baseline: ``n`` switch levels, ``k`` up-ports and ``k``
down-ports per switch (radix ``2k``; the top level uses only its ``k``
down-ports), ``n * k**(n-1)`` switches and ``k**n`` endpoints attached
``k`` per level-0 (edge) switch.  The paper's FT row (n=3, k=18: 972
switches of radix 36) is exactly this construction.

Switch identity: ``(level l, address w)`` with ``w in [k]**(n-1)``.
``(l, w)`` and ``(l+1, w')`` are wired iff ``w`` and ``w'`` agree on every
digit except possibly digit ``l`` — the standard butterfly-style k-ary
n-tree wiring, which makes least-common-ancestor routing purely digit-wise.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import TOPOLOGIES
from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = ["FatTree"]


class FatTree(Topology):
    """A k-ary n-tree.

    Parameters
    ----------
    k:
        Arity — up/down port count per switch (switch radix is ``2k``).
    n:
        Number of levels (3 for the paper's baseline).

    Notes
    -----
    Endpoints: ``k`` per level-0 switch, none elsewhere; endpoint ``e``
    attaches to edge switch ``e // k``.
    """

    def __init__(self, k: int, n: int = 3):
        if k < 2 or n < 2:
            raise ValueError("need k >= 2 and n >= 2")
        self.k, self.n_levels = int(k), int(n)
        self.switches_per_level = k ** (n - 1)
        graph = self._build_graph()
        conc = np.zeros(graph.n, dtype=np.int64)
        conc[: self.switches_per_level] = k  # endpoints on level-0 only
        super().__init__(f"FT(k={k},n={n})", graph, conc)

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    def switch_id(self, level: int, addr: tuple[int, ...]) -> int:
        """Dense switch id for ``(level, address)``."""
        idx = 0
        for d in addr:
            idx = idx * self.k + d
        return level * self.switches_per_level + idx

    def switch_tuple(self, s: int) -> tuple[int, tuple[int, ...]]:
        """Inverse of :meth:`switch_id`."""
        level, idx = divmod(s, self.switches_per_level)
        addr = []
        for _ in range(self.n_levels - 1):
            idx, d = divmod(idx, self.k)
            addr.append(d)
        return level, tuple(reversed(addr))

    def switch_level(self, s: int) -> int:
        """Level (0 = edge) of switch ``s``."""
        return s // self.switches_per_level

    def _build_graph(self) -> Graph:
        k, n = self.k, self.n_levels
        spl = self.switches_per_level
        edges: list[tuple[int, int]] = []
        # Going up from level l frees the digit of weight k**l (least
        # significant first), so the NCA of two edge switches sits at the
        # length of their differing suffix — see nca_level.
        for level in range(n - 1):
            w = k**level
            for idx in range(spl):
                # Zero out digit `level`, then enumerate its k values on
                # the upper switch.
                digit = (idx // w) % k
                base = idx - digit * w
                u = level * spl + idx
                for d in range(k):
                    v = (level + 1) * spl + base + d * w
                    edges.append((u, v))
        return Graph(n * spl, edges)

    # ------------------------------------------------------------------
    # NCA helper used by fat-tree routing
    # ------------------------------------------------------------------
    def nca_level(self, src_switch: int, dst_switch: int) -> int:
        """Lowest level at which up-paths from the two edge switches meet.

        Both arguments must be level-0 switches.  Going up one level frees
        digit 0, then digit 1, etc.; the nearest common ancestor is at the
        lowest level ``l`` such that the addresses agree on digits
        ``l .. n-2``.
        """
        _, a = self.switch_tuple(src_switch)
        _, b = self.switch_tuple(dst_switch)
        if a == b:
            return 0
        # digits are most-significant-first; going up level l frees digit
        # index (n-2-l) ... i.e. the last digit first.
        n = self.n_levels
        for level in range(1, n):
            if a[: n - 1 - level] == b[: n - 1 - level]:
                return level
        return n - 1


@TOPOLOGIES.register("fattree", example="fattree:k=4,n=3")
def _fattree_from_spec(k: int, n: int = 3) -> FatTree:
    return FatTree(k=k, n=n)
