"""Moore bound utilities and the two known diameter-2 Moore graphs.

The Moore bound (equation (1) of the paper) upper-bounds the order of any
graph with maximum degree ``k`` and diameter ``D``; for ``D = 2`` it is
``N <= k**2 + 1``, met only by the pentagon, the Petersen graph (k=3), the
Hoffman-Singleton graph (k=7), and possibly an unknown k=57 graph.  Both
known nontrivial Moore graphs are constructed here as Figure-2 references.
"""

from __future__ import annotations

from itertools import combinations

from repro.experiments.registry import TOPOLOGIES
from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = [
    "moore_bound",
    "moore_bound_diameter2",
    "petersen_graph",
    "hoffman_singleton_graph",
    "PetersenTopology",
    "HoffmanSingletonTopology",
]


def moore_bound(k: int, D: int) -> int:
    """Moore bound ``1 + k * sum_{i<D} (k-1)**i`` for degree k, diameter D."""
    if k < 1 or D < 1:
        raise ValueError("need k >= 1 and D >= 1")
    if k == 1:
        return 2
    return 1 + k * sum((k - 1) ** i for i in range(D))


def moore_bound_diameter2(k: int) -> int:
    """``k**2 + 1`` — the diameter-2 specialization."""
    return k * k + 1


def petersen_graph() -> Graph:
    """The Petersen graph as the Kneser graph K(5, 2).

    Vertices are the 10 2-subsets of {0..4}; edges join disjoint subsets.
    3-regular, diameter 2, meets the Moore bound (10 = 3**2 + 1).
    """
    subsets = list(combinations(range(5), 2))
    index = {s: i for i, s in enumerate(subsets)}
    edges = [
        (index[a], index[b])
        for a, b in combinations(subsets, 2)
        if not (set(a) & set(b))
    ]
    return Graph(10, edges)


def hoffman_singleton_graph() -> Graph:
    """The Hoffman-Singleton graph (50 vertices, 7-regular, diameter 2).

    Robertson's pentagon/pentagram construction: pentagons ``P_h`` with
    vertices ``p_{h,i}`` (edges at distance 1 mod 5) and pentagrams
    ``Q_h`` with ``q_{h,i}`` (edges at distance 2 mod 5); cross edges
    ``p_{h,i} ~ q_{k, h*k + i mod 5}``.
    """

    def p(h, i):
        return 5 * h + (i % 5)

    def qv(h, i):
        return 25 + 5 * h + (i % 5)

    edges = []
    for h in range(5):
        for i in range(5):
            edges.append((p(h, i), p(h, i + 1)))
            edges.append((qv(h, i), qv(h, i + 2)))
    for h in range(5):
        for k in range(5):
            for i in range(5):
                edges.append((p(h, i), qv(k, h * k + i)))
    return Graph(50, edges)


class PetersenTopology(Topology):
    """The Petersen graph wrapped as a network topology."""

    def __init__(self, p: int = 0):
        super().__init__("Petersen", petersen_graph(), p)


class HoffmanSingletonTopology(Topology):
    """The Hoffman-Singleton graph wrapped as a network topology."""

    def __init__(self, p: int = 0):
        super().__init__("Hoffman-Singleton", hoffman_singleton_graph(), p)


@TOPOLOGIES.register("petersen", example="petersen:p=2")
def _petersen_from_spec(p: int = 0) -> PetersenTopology:
    return PetersenTopology(p=p)


@TOPOLOGIES.register("hoffman-singleton", example="hoffman-singleton:p=2")
def _hoffman_singleton_from_spec(p: int = 0) -> HoffmanSingletonTopology:
    return HoffmanSingletonTopology(p=p)
