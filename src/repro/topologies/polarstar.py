"""PolarStar: the star-product diameter-3 family (Lakhotia et al., SPAA 2024).

The same group's follow-up to PolarFly (see PAPERS.md): a *star product*
of the ER_q polarity graph with a small diameter-2 *supernode* graph
multiplies PolarFly's near-Moore-optimal vertex count by the supernode
order while adding only one hop of diameter — hundreds of thousands of
routers at practical radix.  This module implements the Paley-supernode
instance PS(q, sq):

* **Structure graph** ER_q — vertices ``u`` are PolarFly(q) routers
  (``q**2 + q + 1`` of them, built sparsely via polar lines).
* **Supernode** Paley(sq) — vertices ``x`` in GF(sq) for a prime power
  ``sq = 1 (mod 4)``, adjacent iff ``x - y`` is a nonzero square
  (quadratic residue).  Paley graphs are self-complementary with
  diameter 2; the congruence makes adjacency symmetric.
* **Star product** — vertex set ``{(u, x)}``, id ``u * sq + x``.
  Intra-supernode edges copy Paley(sq) inside every supernode.  For
  every ER_q edge ``u < u'`` the supernodes are joined by the perfect
  matching ``(u, x) ~ (u', eta * x)`` where ``eta`` is a fixed primitive
  element of GF(sq) (a non-residue, since ``sq`` is odd).

**Diameter <= 3.**  Same supernode: Paley diameter 2.  Adjacent
supernodes: one matching edge then <= 2 Paley hops would give 3; in fact
the matching edge plus the *destination* supernode's Paley hops already
reach everything in <= 3.  Non-adjacent supernodes ``u, u'`` have a
common ER_q neighbor ``w`` (ER_q has diameter 2), and the composite
matching map ``F`` through ``w`` multiplies by one of
``{eta**2, 1, eta**-2}`` — always a *square*.  A path of length <= 3 may
insert its single spare intra hop at ``u`` or ``u'`` (reaching
``F(x) + QR``, since squares map residues to residues) or at ``w``
(reaching ``F(x) + eta*QR = F(x) + NQR``); together with ``F(x)`` itself
that covers all of GF(sq).  The non-residue matching is load-bearing:
identity matchings leave the middle insertion inside ``F(x) + QR`` and
the diameter degrades to 4.  The construction-invariants test pins the
exact BFS diameter at <= 3.

The default supernode order is the largest prime power
``sq = 1 (mod 4)`` with ``5 <= sq <= 2q + 3`` — the balance point where
the Paley degree ``(sq - 1) / 2`` does not exceed the ER_q degree
``q + 1``, mirroring the paper's balanced joiner choice.

Everything is vectorized edge-array construction: O(N * radix) work and
memory, no dense N x N structure — this family is the scale exerciser
for the sparse routing/simulation tier.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import TOPOLOGIES
from repro.fields import GF, is_prime_power
from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = [
    "PolarStar",
    "polarstar_order",
    "polarstar_radix",
    "default_supernode_order",
]


def default_supernode_order(q: int) -> int:
    """Largest prime power ``sq = 1 (mod 4)`` with ``5 <= sq <= 2q + 3``.

    Keeps the Paley degree ``(sq - 1) / 2`` at most the ER_q degree
    ``q + 1``.  Raises when no candidate exists (only for ``q < 2``;
    every supported ``q >= 2`` admits at least ``sq = 5``).
    """
    for sq in range(2 * q + 3, 4, -1):
        if sq % 4 == 1 and is_prime_power(sq) is not None:
            return sq
    raise ValueError(f"no feasible Paley supernode order for q={q}")


def polarstar_order(q: int, sq: int) -> int:
    """Number of routers of PS(q, sq): ``(q**2 + q + 1) * sq``."""
    return (q * q + q + 1) * sq


def polarstar_radix(q: int, sq: int) -> int:
    """Network radix of PS(q, sq): ``(q + 1) + (sq - 1) / 2``."""
    return (q + 1) + (sq - 1) // 2


class PolarStar(Topology):
    """The PS(q, sq) = ER_q star-product-Paley(sq) topology.

    Parameters
    ----------
    q:
        Prime power >= 2 — the PolarFly structure-graph parameter.
    sq:
        Supernode (Paley graph) order: a prime power ``= 1 (mod 4)``,
        at least 5.  0 (the default) picks
        :func:`default_supernode_order`.
    concentration:
        Endpoints per router; default 0 builds the bare router graph.

    Attributes
    ----------
    structure:
        The underlying :class:`~repro.core.polarfly.PolarFly` instance.
    supernode_field:
        GF(sq); ``supernode_field.squares()`` is the Paley generator set.
    eta:
        The matching multiplier (primitive element of GF(sq)).
    """

    def __init__(self, q: int, sq: int = 0, concentration: int = 0):
        if is_prime_power(q) is None:
            raise ValueError(f"PolarStar requires a prime power q, got {q}")
        sq = int(sq) or default_supernode_order(int(q))
        if is_prime_power(sq) is None or sq % 4 != 1 or sq < 5:
            raise ValueError(
                f"supernode order must be a prime power = 1 (mod 4), >= 5; got {sq}"
            )
        self.q = int(q)
        self.sq = int(sq)
        # Deferred import: core.polarfly itself imports topologies.base,
        # whose package __init__ imports this module — a cycle at import
        # time but not at construction time.
        from repro.core.polarfly import PolarFly

        self.structure = PolarFly(q)
        self.supernode_field = GF(sq)
        self.eta = int(self.supernode_field.primitive_element)
        graph = self._build_graph()
        super().__init__(f"PS(q={q},s={sq})", graph, concentration)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def vertex_id(self, u: int, x: int) -> int:
        """Dense id of vertex ``(u, x)``: ``u * sq + x``."""
        return u * self.sq + x

    def vertex_tuple(self, v: int) -> tuple[int, int]:
        """Inverse of :meth:`vertex_id`."""
        u, x = divmod(int(v), self.sq)
        return u, x

    def _build_graph(self) -> Graph:
        f, sq = self.supernode_field, self.sq
        n_er = self.structure.num_routers
        xs = f.elements()
        # Intra edges: the Paley graph copied into every supernode.
        # sq = 1 (mod 4) makes -1 a residue, so each edge appears twice
        # (once per endpoint); Graph dedups.
        qr = f.squares()
        pal_src = np.repeat(xs, qr.size)
        pal_dst = f.add(pal_src, np.tile(qr, sq))
        offs = np.arange(n_er, dtype=np.int64) * sq
        intra_src = (offs[:, None] + pal_src[None, :]).ravel()
        intra_dst = (offs[:, None] + pal_dst[None, :]).ravel()
        # Inter edges: per ER_q edge u < u', the matching x -> eta * x.
        er = self.structure.graph.edges()
        eta_x = f.mul(self.eta, xs)
        inter_src = (er[:, 0][:, None] * sq + xs[None, :]).ravel()
        inter_dst = (er[:, 1][:, None] * sq + eta_x[None, :]).ravel()
        edges = np.column_stack(
            [
                np.concatenate([intra_src, inter_src]),
                np.concatenate([intra_dst, inter_dst]),
            ]
        )
        return Graph(n_er * sq, edges)


@TOPOLOGIES.register("polarstar", example="polarstar:conc=2,q=3,sq=5")
def _polarstar_from_spec(q: int, sq: int = 0, conc: int = 0) -> PolarStar:
    return PolarStar(q, sq=sq, concentration=conc)
