"""Jellyfish: random regular graph topology (Singla et al., NSDI'12).

The random-expander baseline.  We build an ``r``-regular simple graph on
``N`` switches with our own configuration-model sampler plus local edge
swaps to clear residual conflicts — deterministic under a seed, no external
graph library.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import TOPOLOGIES
from repro.topologies.base import Topology
from repro.utils.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["Jellyfish", "random_regular_graph"]


def random_regular_graph(n: int, r: int, rng=None, max_tries: int = 200) -> Graph:
    """A uniform-ish random ``r``-regular simple graph on ``n`` vertices.

    Pairing (configuration) model: shuffle ``n*r`` stubs and pair them
    off; conflicting pairs (self-loops/multi-edges) are retried with edge
    swaps against randomly chosen good edges, restarting on the rare
    unfixable draw.  Requires ``n*r`` even and ``r < n``.
    """
    if r >= n:
        raise ValueError("degree must be smaller than vertex count")
    if (n * r) % 2:
        raise ValueError("n*r must be even for an r-regular graph")
    rng = make_rng(rng)
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n), r)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edges: set[tuple[int, int]] = set()
        bad: list[tuple[int, int]] = []
        for u, v in pairs:
            u, v = int(u), int(v)
            key = (u, v) if u < v else (v, u)
            if u == v or key in edges:
                bad.append((u, v))
            else:
                edges.add(key)
        ok = _repair(edges, bad, rng)
        if ok:
            g = Graph(n, edges)
            if g.is_connected():
                return g
    raise RuntimeError(
        f"failed to sample a connected {r}-regular graph on {n} vertices"
    )


def _repair(edges: set, bad: list, rng) -> bool:
    """Resolve conflicting stub pairs via double edge swaps."""
    edge_list = list(edges)
    for u, v in bad:
        fixed = False
        for _ in range(500):
            x, y = edge_list[int(rng.integers(len(edge_list)))]
            # Swap (u,v),(x,y) -> (u,x),(v,y).
            cand1 = (u, x) if u < x else (x, u)
            cand2 = (v, y) if v < y else (y, v)
            if u == x or v == y or cand1 in edges or cand2 in edges:
                # Try the other orientation.
                cand1 = (u, y) if u < y else (y, u)
                cand2 = (v, x) if v < x else (x, v)
                if u == y or v == x or cand1 in edges or cand2 in edges:
                    continue
                x, y = y, x
            old = (x, y) if x < y else (y, x)
            edges.remove(old)
            edge_list.remove(old)
            edges.add(cand1)
            edges.add(cand2)
            edge_list.extend([cand1, cand2])
            fixed = True
            break
        if not fixed:
            return False
    return True


class Jellyfish(Topology):
    """Random ``r``-regular switch graph with ``p`` endpoints per switch.

    Parameters
    ----------
    n:
        Number of switches.
    r:
        Network radix (router-to-router degree).
    p:
        Endpoints per switch.
    seed:
        RNG seed — fixed default so the baseline is reproducible.
    """

    def __init__(self, n: int, r: int, p: int = 0, seed: "int | None" = 4242):
        graph = random_regular_graph(n, r, rng=make_rng(seed))
        super().__init__(f"JF(n={n},r={r})", graph, p)
        self.seed = seed


@TOPOLOGIES.register("jellyfish", example="jellyfish:n=25,p=2,r=4,seed=7")
def _jellyfish_from_spec(n: int, r: int, p: int = 0, seed: int = 4242) -> Jellyfish:
    return Jellyfish(n=n, r=r, p=p, seed=seed)
