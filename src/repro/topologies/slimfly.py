"""Slim Fly: the MMS/Hafner diameter-2 topology (Besta & Hoefler, SC'14).

The comparison baseline the paper cares most about.  For a prime power
``q = 4w + delta`` with ``delta in {-1, 0, 1}``, the graph has
``N = 2 q**2`` vertices ``(s, x, y)`` with ``s in {0, 1}`` and
``x, y in GF(q)``, network radix ``k = (3q - delta) / 2``, and diameter 2 —
reaching ``8/9`` of the Moore bound asymptotically (vs PolarFly's 1).

Adjacency (generator sets ``X``, ``X'`` built from a primitive element
``xi``):

* ``(0, x, y) ~ (0, x, y')``  iff  ``y - y' in X``
* ``(1, m, c) ~ (1, m, c')``  iff  ``c - c' in X'``
* ``(0, x, y) ~ (1, m, c)``   iff  ``y = m*x + c``

Diameter 2 requires the classical difference-set conditions
(``X = -X``, ``X u X' = GF(q)*``, ``X u (X+X) = GF(q)*`` and likewise for
``X'``); the constructor validates them so an invalid generator choice can
never silently produce a wrong baseline.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import TOPOLOGIES
from repro.fields import GF, is_prime_power
from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = ["SlimFly", "slimfly_delta", "slimfly_order", "slimfly_radix", "feasible_slimfly_q"]


def slimfly_delta(q: int) -> "int | None":
    """The ``delta in {-1, 0, 1}`` with ``q = 4w + delta``, if any."""
    for delta in (-1, 0, 1):
        if (q - delta) % 4 == 0 and (q - delta) // 4 >= 1:
            return delta
    return None


def slimfly_order(q: int) -> int:
    """Number of routers: ``2 q**2``."""
    return 2 * q * q


def slimfly_radix(q: int) -> int:
    """Network radix ``(3q - delta) / 2``."""
    delta = slimfly_delta(q)
    if delta is None:
        raise ValueError(f"q={q} is not of the form 4w + delta")
    return (3 * q - delta) // 2


def feasible_slimfly_q(k: int) -> "int | None":
    """A prime power ``q`` realizing Slim Fly radix exactly ``k``, or None."""
    for delta in (-1, 0, 1):
        q, rem = divmod(2 * k + delta, 3)
        if rem == 0 and q >= 2 and slimfly_delta(q) == delta and is_prime_power(q):
            return q
    return None


class SlimFly(Topology):
    """The MMS-graph Slim Fly topology.

    Parameters
    ----------
    q:
        Prime power of the form ``4w + delta``, ``delta in {-1, 0, 1}``.
    concentration:
        Endpoints per router (``p``); the paper pairs q=23 with p=18.
    """

    def __init__(self, q: int, concentration: int = 0):
        if is_prime_power(q) is None:
            raise ValueError(f"Slim Fly requires a prime power q, got {q}")
        delta = slimfly_delta(q)
        if delta is None:
            raise ValueError(f"q={q} is not of the form 4w + delta")
        self.q = int(q)
        self.delta = delta
        self.w = (q - delta) // 4
        self.field = GF(q)
        self.X, self.Xp = self._generator_sets()
        self._validate_generators()
        graph = self._build_graph()
        super().__init__(f"SF(q={q})", graph, concentration)

    # ------------------------------------------------------------------
    # Generator sets
    # ------------------------------------------------------------------
    def _generator_sets(self) -> tuple[frozenset, frozenset]:
        F = self.field
        q, w, delta = self.q, self.w, self.delta
        xi = F.primitive_element
        powers = [1]
        for _ in range(q - 2):
            powers.append(int(F.mul(powers[-1], xi)))
        if delta == 1:
            # Quadratic residues / non-residues (q = 1 mod 4 so -1 is a QR).
            X = frozenset(powers[0::2])
            Xp = frozenset(powers[1::2])
        elif delta == -1:
            # Hafner's symmetric sets: X = {+-xi^(2i) : 0 <= i < w}.  The
            # negatives are the odd powers xi^(2i + 2w - 1); X' = xi * X.
            base = [powers[2 * i] for i in range(w)]
            X = frozenset(base) | frozenset(int(F.neg(b)) for b in base)
            Xp = frozenset(int(F.mul(xi, b)) for b in X)
        else:
            # delta == 0 (q = 2**a): characteristic 2, so symmetry is free.
            # Even powers 0, 2, ..., q-2 give q/2 distinct exponents mod
            # the odd modulus q-1; X' = xi * X then overlaps X in exactly
            # one element, so together they cover GF(q)*.  If the covering
            # conditions fail for some order, fall back to a deterministic
            # search.
            base = [powers[2 * i] for i in range(q // 2)]
            X = frozenset(base)
            Xp = frozenset(int(F.mul(xi, b)) for b in X)
            if not self._covers(X) or not self._covers(Xp):
                X, Xp = self._search_char2_sets(powers)
        return X, Xp

    def _covers(self, S: frozenset) -> bool:
        """True iff ``S u (S + S)`` covers GF(q)* (diameter-2 condition)."""
        F = self.field
        reach = set(S)
        for a in S:
            for b in S:
                reach.add(int(F.add(a, b)))
        return set(range(1, self.q)) <= reach

    def _search_char2_sets(self, powers: list[int]) -> tuple[frozenset, frozenset]:
        """Deterministic fallback for delta == 0 generator sets.

        Searches cyclic-shift families {xi^(i+j*s)} before giving up; only
        small characteristic-2 orders ever reach this path.
        """
        from itertools import combinations

        q = self.q
        nonzero = set(range(1, q))
        half = q // 2
        if q <= 64:
            for X_tuple in combinations(sorted(nonzero), half):
                X = frozenset(X_tuple)
                if not self._covers(X):
                    continue
                rest = nonzero - X
                for extra in sorted(X):
                    Xp = frozenset(rest | {extra})
                    if len(Xp) == half and self._covers(Xp):
                        return X, Xp
        raise NotImplementedError(
            f"no delta=0 generator sets found for q={q}"
        )

    def _validate_generators(self) -> None:
        """Check the difference-set conditions that force diameter 2."""
        F = self.field
        q = self.q
        nonzero = set(range(1, q))
        for name, S in (("X", self.X), ("X'", self.Xp)):
            if 0 in S:
                raise RuntimeError(f"{name} must not contain 0")
            if {int(F.neg(s)) for s in S} != set(S):
                raise RuntimeError(f"{name} is not symmetric (X != -X)")
            sums = {
                int(F.add(a, b)) for a in S for b in S
            }
            if not nonzero <= (set(S) | sums):
                raise RuntimeError(
                    f"{name} u ({name}+{name}) does not cover GF({q})*"
                )
        if not nonzero <= (set(self.X) | set(self.Xp)):
            raise RuntimeError("X u X' does not cover GF(q)*")
        intra = (self.q - self.delta) // 2
        if len(self.X) != intra or len(self.Xp) != intra:
            raise RuntimeError(
                f"generator sets must have size (q-delta)/2 = {intra}"
            )

    # ------------------------------------------------------------------
    # Graph
    # ------------------------------------------------------------------
    def vertex_id(self, s: int, x: int, y: int) -> int:
        """Dense id of vertex ``(s, x, y)``."""
        return (s * self.q + x) * self.q + y

    def vertex_tuple(self, v: int) -> tuple[int, int, int]:
        """Inverse of :meth:`vertex_id`."""
        v, y = divmod(v, self.q)
        s, x = divmod(v, self.q)
        return s, x, y

    def _build_graph(self) -> Graph:
        F = self.field
        q = self.q
        edges: list[tuple[int, int]] = []
        # Intra-subgraph edges: Cayley structure within each column.
        for s, gen in ((0, self.X), (1, self.Xp)):
            for x in range(q):
                for y in range(q):
                    u = self.vertex_id(s, x, y)
                    for d in gen:
                        y2 = int(F.add(y, d))
                        v = self.vertex_id(s, x, y2)
                        if u < v:
                            edges.append((u, v))
        # Cross edges: (0, x, y) ~ (1, m, c) iff y = m*x + c — vectorized
        # over all (x, m) pairs.
        for x in range(q):
            for m in range(q):
                mx = int(F.mul(m, x))
                for c in range(q):
                    y = int(F.add(mx, c))
                    edges.append(
                        (self.vertex_id(0, x, y), self.vertex_id(1, m, c))
                    )
        return Graph(2 * q * q, edges)

    @property
    def moore_bound_efficiency(self) -> float:
        """``N / (k**2 + 1)`` — about 8/9 asymptotically."""
        k = slimfly_radix(self.q)
        return slimfly_order(self.q) / (k * k + 1)


@TOPOLOGIES.register("slimfly", example="slimfly:conc=2,q=5")
def _slimfly_from_spec(q: int, conc: int = 0) -> SlimFly:
    return SlimFly(q, concentration=conc)
