"""Dragonfly topology (Kim, Dally, Scott, Abts — ISCA'08).

Canonical group-based diameter-3 direct network, the paper's DF1/DF2
baselines:

* ``a`` routers per group, fully connected intra-group (a complete graph);
* ``h`` global links per router;
* ``p`` endpoints per router;
* ``g = a*h + 1`` groups, exactly one global link between every pair of
  groups, so ``N = a * (a*h + 1)`` routers with network radix
  ``k = a - 1 + h``.

The *balanced* variant sets ``a = 2h, p = h`` (DF1: a=12, h=6, p=6);
DF2 (a=6, h=27, p=10) matches PolarFly's radix and scale instead.

Global links use the consecutive ("absolute") arrangement: group ``i``'s
global slot ``s`` (0-based, owned by router ``s // h``) connects to group
``(i + 1 + s) mod g``.
"""

from __future__ import annotations

from repro.experiments.registry import TOPOLOGIES
from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = ["Dragonfly", "balanced_dragonfly"]


class Dragonfly(Topology):
    """Dragonfly with full intra-group and one-link inter-group wiring.

    Parameters
    ----------
    a, h, p:
        Routers per group, global links per router, endpoints per router.
    """

    def __init__(self, a: int, h: int, p: int = 0):
        if a < 1 or h < 1:
            raise ValueError("a and h must be >= 1")
        self.a, self.h, self.p = int(a), int(h), int(p)
        self.num_groups = a * h + 1
        graph = self._build_graph()
        super().__init__(f"DF(a={a},h={h},p={p})", graph, p)

    def router_id(self, group: int, local: int) -> int:
        """Dense router id for router ``local`` of ``group``."""
        return group * self.a + local

    def router_group(self, r: int) -> int:
        """Group of router ``r``."""
        return r // self.a

    def _build_graph(self) -> Graph:
        a, h, g = self.a, self.h, self.num_groups
        edges: list[tuple[int, int]] = []
        # Intra-group complete graphs.
        for grp in range(g):
            base = grp * a
            for i in range(a):
                for j in range(i + 1, a):
                    edges.append((base + i, base + j))
        # Global links: slot s of group i reaches group (i + 1 + s) mod g.
        # Each unordered group pair gets exactly one link; record each once
        # from the lower-offset side.
        for grp in range(g):
            for s in range(a * h):
                dst_grp = (grp + 1 + s) % g
                if dst_grp <= grp:
                    continue  # the partner slot on dst_grp covers this pair
                src = self.router_id(grp, s // h)
                dst_slot = (grp - dst_grp - 1) % g
                dst = self.router_id(dst_grp, dst_slot // h)
                edges.append((src, dst))
        return Graph(g * a, edges)


def balanced_dragonfly(h: int) -> Dragonfly:
    """The balanced configuration ``a = 2h, p = h`` for a given ``h``."""
    return Dragonfly(a=2 * h, h=h, p=h)


@TOPOLOGIES.register("dragonfly", example="dragonfly:a=4,h=2,p=2")
def _dragonfly_from_spec(a: int, h: int, p: int = 0) -> Dragonfly:
    return Dragonfly(a=a, h=h, p=p)
