"""Baseline topologies the paper evaluates against, plus the shared base.

All constructions are first-principles (no external graph libraries):
Slim Fly's MMS graphs over GF(q), Dragonfly's group structure, k-ary
n-trees, our own random-regular Jellyfish sampler, HyperX Hamming graphs,
and the Moore-graph references for Figure 2.
"""

from repro.topologies.base import Topology
from repro.topologies.slimfly import (
    SlimFly,
    slimfly_delta,
    slimfly_order,
    slimfly_radix,
    feasible_slimfly_q,
)
from repro.topologies.dragonfly import Dragonfly, balanced_dragonfly
from repro.topologies.fattree import FatTree
from repro.topologies.jellyfish import Jellyfish, random_regular_graph
from repro.topologies.hyperx import HyperX, hyperx_order, hyperx_radix
from repro.topologies.polarstar import (
    PolarStar,
    polarstar_order,
    polarstar_radix,
    default_supernode_order,
)
from repro.topologies.moore import (
    moore_bound,
    moore_bound_diameter2,
    petersen_graph,
    hoffman_singleton_graph,
    PetersenTopology,
    HoffmanSingletonTopology,
)

__all__ = [
    "Topology",
    "SlimFly",
    "slimfly_delta",
    "slimfly_order",
    "slimfly_radix",
    "feasible_slimfly_q",
    "Dragonfly",
    "balanced_dragonfly",
    "FatTree",
    "Jellyfish",
    "random_regular_graph",
    "HyperX",
    "hyperx_order",
    "hyperx_radix",
    "PolarStar",
    "polarstar_order",
    "polarstar_radix",
    "default_supernode_order",
    "moore_bound",
    "moore_bound_diameter2",
    "petersen_graph",
    "hoffman_singleton_graph",
    "PetersenTopology",
    "HoffmanSingletonTopology",
]
