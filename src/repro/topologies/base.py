"""Common interconnection-network abstraction.

Following the paper's network model (Section II-A): a topology is an
undirected graph whose vertices are router/compute nodes; in the direct,
co-packaged setting every router also hosts ``p`` endpoints
(*concentration*).  Indirect topologies (fat trees) simply set the
concentration of non-edge switches to zero.
"""

from __future__ import annotations

import numpy as np

from repro.utils.graph import Graph

__all__ = ["Topology"]


class Topology:
    """An interconnection network: a router graph plus endpoint placement.

    Parameters
    ----------
    name:
        Human-readable identifier (used in benchmark tables).
    graph:
        Router-to-router connectivity.
    concentration:
        Endpoints per router — either a scalar applied to every router or a
        length-``num_routers`` array (fat trees attach endpoints only to
        edge switches).
    """

    def __init__(self, name: str, graph: Graph, concentration=0):
        self.name = name
        self.graph = graph
        conc = np.asarray(concentration, dtype=np.int64)
        if conc.ndim == 0:
            conc = np.full(graph.n, int(conc), dtype=np.int64)
        if conc.shape != (graph.n,):
            raise ValueError(
                f"concentration must be scalar or length {graph.n}, got {conc.shape}"
            )
        if np.any(conc < 0):
            raise ValueError("concentration must be non-negative")
        self.concentration = conc
        # Endpoint ids are dense: endpoints of router r occupy the slice
        # [endpoint_offsets[r], endpoint_offsets[r+1]).
        self.endpoint_offsets = np.concatenate(
            [[0], np.cumsum(conc)]
        ).astype(np.int64)
        self._endpoint_router = np.repeat(
            np.arange(graph.n, dtype=np.int64), conc
        )

    # ------------------------------------------------------------------
    # Sizes and radixes
    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        """Number of routers (the paper's ``N``)."""
        return self.graph.n

    @property
    def num_links(self) -> int:
        """Number of router-to-router links."""
        return self.graph.num_edges

    @property
    def num_endpoints(self) -> int:
        """Total endpoints attached across all routers."""
        return int(self.endpoint_offsets[-1])

    @property
    def network_radix(self) -> int:
        """Maximum router-to-router degree (the paper's ``k``)."""
        return int(self.graph.degree().max()) if self.graph.n else 0

    @property
    def total_radix(self) -> int:
        """Maximum degree including endpoint ports."""
        if self.graph.n == 0:
            return 0
        return int((self.graph.degree() + self.concentration).max())

    def endpoint_router(self, endpoint: int) -> int:
        """Router hosting ``endpoint``."""
        return int(self._endpoint_router[endpoint])

    @property
    def endpoint_routers(self) -> np.ndarray:
        """Hosting router of every endpoint (length ``num_endpoints``)."""
        return self._endpoint_router

    def router_endpoints(self, router: int) -> np.ndarray:
        """Endpoint ids hosted at ``router``."""
        return np.arange(
            self.endpoint_offsets[router], self.endpoint_offsets[router + 1]
        )

    # ------------------------------------------------------------------
    # Graph metrics (delegated)
    # ------------------------------------------------------------------
    def diameter(self, sample: int | None = None, rng=None) -> int:
        """Router-graph diameter; -1 when disconnected."""
        return self.graph.diameter(sample=sample, rng=rng)

    def average_shortest_path_length(
        self, sample: int | None = None, rng=None
    ) -> float:
        """Mean router-to-router hop distance."""
        return self.graph.average_shortest_path_length(sample=sample, rng=rng)

    def is_connected(self) -> bool:
        """True iff the router graph is connected."""
        return self.graph.is_connected()

    def config_summary(self) -> dict:
        """Row for Table-V style configuration listings."""
        return {
            "name": self.name,
            "routers": self.num_routers,
            "links": self.num_links,
            "network_radix": self.network_radix,
            "endpoints": self.num_endpoints,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, N={self.num_routers}, "
            f"k={self.network_radix}, links={self.num_links})"
        )
