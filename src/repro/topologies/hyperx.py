"""HyperX / Hamming graphs (Ahn et al., SC'09).

``HyperX(L, S)`` is the Hamming graph ``K_S**L``: vertices are length-``L``
tuples over ``[S]``, adjacent iff they differ in exactly one coordinate
(all-to-all in every dimension).  Diameter ``L``; the ``L = 2`` case is the
diameter-2 Flattened-Butterfly generalization the paper compares against
in Figure 2 (with ``N = S**2`` and ``k = 2(S-1)``).
"""

from __future__ import annotations

from repro.experiments.registry import TOPOLOGIES
from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = ["HyperX", "hyperx_order", "hyperx_radix"]


def hyperx_order(L: int, S: int) -> int:
    """Number of routers ``S**L``."""
    return S**L


def hyperx_radix(L: int, S: int) -> int:
    """Network radix ``L * (S - 1)``."""
    return L * (S - 1)


class HyperX(Topology):
    """Regular HyperX (Hamming graph) with equal per-dimension size.

    Parameters
    ----------
    L:
        Number of dimensions (diameter).
    S:
        Routers per dimension.
    p:
        Endpoints per router.
    """

    def __init__(self, L: int, S: int, p: int = 0):
        if L < 1 or S < 2:
            raise ValueError("need L >= 1 and S >= 2")
        self.L, self.S = int(L), int(S)
        graph = self._build_graph()
        super().__init__(f"HX(L={L},S={S})", graph, p)

    def router_coords(self, r: int) -> tuple[int, ...]:
        """Mixed-radix coordinates of router ``r``."""
        coords = []
        for _ in range(self.L):
            r, d = divmod(r, self.S)
            coords.append(d)
        return tuple(reversed(coords))

    def router_id(self, coords) -> int:
        """Inverse of :meth:`router_coords`."""
        idx = 0
        for d in coords:
            idx = idx * self.S + d
        return idx

    def _build_graph(self) -> Graph:
        L, S = self.L, self.S
        n = S**L
        edges = []
        for u in range(n):
            coords = list(self.router_coords(u))
            for dim in range(L):
                orig = coords[dim]
                for val in range(orig + 1, S):
                    coords[dim] = val
                    edges.append((u, self.router_id(coords)))
                coords[dim] = orig
        return Graph(n, edges)


@TOPOLOGIES.register("hyperx", example="hyperx:L=2,S=3,p=1")
def _hyperx_from_spec(L: int, S: int, p: int = 0) -> HyperX:
    return HyperX(L=L, S=S, p=p)
