"""Finite-field substrate: primes, polynomials over F_p, and GF(q) tables.

PolarFly's vertex set lives in the projective plane PG(2, q), and Slim Fly's
generator sets live in GF(q)^2 — both need exact field arithmetic for any
prime power q.  This subpackage provides it from scratch with table-driven,
numpy-vectorized operations.
"""

from repro.fields.primes import (
    is_prime,
    factorize,
    prime_factors,
    is_prime_power,
    primes_up_to,
    prime_powers_up_to,
)
from repro.fields.polynomials import (
    poly_add,
    poly_sub,
    poly_mul,
    poly_divmod,
    poly_mod,
    poly_gcd,
    poly_pow_mod,
    is_irreducible,
    find_irreducible,
)
from repro.fields.galois import FiniteField, GF

__all__ = [
    "is_prime",
    "factorize",
    "prime_factors",
    "is_prime_power",
    "primes_up_to",
    "prime_powers_up_to",
    "poly_add",
    "poly_sub",
    "poly_mul",
    "poly_divmod",
    "poly_mod",
    "poly_gcd",
    "poly_pow_mod",
    "is_irreducible",
    "find_irreducible",
    "FiniteField",
    "GF",
]
