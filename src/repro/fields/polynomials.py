"""Dense univariate polynomial arithmetic over the prime field F_p.

Polynomials are represented as tuples of coefficients *low degree first*
(``(c0, c1, ..., cd)`` with ``cd != 0`` unless the polynomial is zero).
This module exists to bootstrap extension fields GF(p^m): we need to find an
irreducible modulus and to exponentiate candidate generators, after which
all per-element arithmetic is replaced by numpy lookup tables
(:mod:`repro.fields.galois`).
"""

from __future__ import annotations

from itertools import product

__all__ = [
    "poly_trim",
    "poly_add",
    "poly_sub",
    "poly_mul",
    "poly_divmod",
    "poly_mod",
    "poly_gcd",
    "poly_pow_mod",
    "is_irreducible",
    "find_irreducible",
]

Poly = tuple

ZERO: Poly = ()
ONE: Poly = (1,)
X: Poly = (0, 1)


def poly_trim(a) -> Poly:
    """Drop trailing zero coefficients; the zero polynomial is ``()``."""
    a = list(a)
    while a and a[-1] == 0:
        a.pop()
    return tuple(a)


def poly_add(a: Poly, b: Poly, p: int) -> Poly:
    """``a + b`` over F_p."""
    n = max(len(a), len(b))
    return poly_trim(
        ((a[i] if i < len(a) else 0) + (b[i] if i < len(b) else 0)) % p
        for i in range(n)
    )


def poly_sub(a: Poly, b: Poly, p: int) -> Poly:
    """``a - b`` over F_p."""
    n = max(len(a), len(b))
    return poly_trim(
        ((a[i] if i < len(a) else 0) - (b[i] if i < len(b) else 0)) % p
        for i in range(n)
    )


def poly_mul(a: Poly, b: Poly, p: int) -> Poly:
    """``a * b`` over F_p (schoolbook convolution; degrees here are tiny)."""
    if not a or not b:
        return ZERO
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % p
    return poly_trim(out)


def poly_divmod(a: Poly, b: Poly, p: int) -> tuple[Poly, Poly]:
    """Quotient and remainder of ``a / b`` over F_p."""
    if not b:
        raise ZeroDivisionError("polynomial division by zero")
    rem = list(a)
    quo = [0] * max(0, len(a) - len(b) + 1)
    inv_lead = pow(b[-1], p - 2, p)
    for shift in range(len(rem) - len(b), -1, -1):
        coeff = (rem[shift + len(b) - 1] * inv_lead) % p
        if coeff:
            quo[shift] = coeff
            for i, bi in enumerate(b):
                rem[shift + i] = (rem[shift + i] - coeff * bi) % p
    return poly_trim(quo), poly_trim(rem)


def poly_mod(a: Poly, b: Poly, p: int) -> Poly:
    """Remainder of ``a`` modulo ``b`` over F_p."""
    return poly_divmod(a, b, p)[1]


def poly_gcd(a: Poly, b: Poly, p: int) -> Poly:
    """Monic greatest common divisor over F_p."""
    a, b = poly_trim(a), poly_trim(b)
    while b:
        a, b = b, poly_mod(a, b, p)
    if a:
        inv_lead = pow(a[-1], p - 2, p)
        a = poly_trim((c * inv_lead) % p for c in a)
    return a


def poly_pow_mod(base: Poly, exp: int, modulus: Poly, p: int) -> Poly:
    """``base**exp mod modulus`` over F_p by square-and-multiply."""
    result: Poly = ONE
    base = poly_mod(base, modulus, p)
    while exp > 0:
        if exp & 1:
            result = poly_mod(poly_mul(result, base, p), modulus, p)
        base = poly_mod(poly_mul(base, base, p), modulus, p)
        exp >>= 1
    return result


def is_irreducible(f: Poly, p: int) -> bool:
    """Rabin irreducibility test for a monic polynomial over F_p.

    ``f`` of degree ``m`` is irreducible iff ``x^(p^m) == x (mod f)`` and
    ``gcd(x^(p^(m/r)) - x, f) == 1`` for every prime ``r | m``.
    """
    from repro.fields.primes import prime_factors

    f = poly_trim(f)
    m = len(f) - 1
    if m <= 0:
        return False
    if f[-1] != 1:
        raise ValueError("irreducibility test expects a monic polynomial")
    if m == 1:
        return True
    for r in prime_factors(m):
        d = m // r
        xp = poly_pow_mod(X, p**d, f, p)
        g = poly_gcd(poly_sub(xp, X, p), f, p)
        if g != ONE:
            return False
    xp = poly_pow_mod(X, p**m, f, p)
    return poly_sub(xp, X, p) == ZERO


def find_irreducible(p: int, m: int) -> Poly:
    """Lexicographically first monic irreducible polynomial of degree ``m``.

    A deterministic choice keeps the element encoding of GF(p^m) — and hence
    every derived topology — stable across runs and machines.
    """
    if m == 1:
        return X
    for coeffs in product(range(p), repeat=m):
        f = poly_trim(coeffs + (1,))
        if len(f) != m + 1:
            continue
        if is_irreducible(f, p):
            return f
    raise RuntimeError(f"no irreducible polynomial of degree {m} over F_{p}")
