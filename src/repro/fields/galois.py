"""Table-driven finite fields GF(q) for any prime power q.

Elements are encoded as integers ``0 .. q-1``: the element with polynomial
coefficients ``(c0, c1, ..., c_{m-1})`` over F_p (low degree first) is the
integer ``sum(c_i * p**i)``.  For prime fields the encoding is the value
itself, so arithmetic matches ordinary modular arithmetic.

All arithmetic is precomputed into numpy lookup tables (add/sub/mul/neg/inv)
at construction time, so every downstream operation — in particular the
O(N^2) dot-product adjacency construction of ER_q — is a vectorized gather
rather than a Python loop (per the hpc-parallel optimization guides).

Multiplication tables are derived from discrete log/antilog tables of a
primitive element, which also gives Slim Fly its generator sets for free.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.fields.primes import is_prime_power, prime_factors
from repro.fields.polynomials import (
    find_irreducible,
    poly_mod,
    poly_mul,
    poly_trim,
)

__all__ = ["FiniteField", "GF"]

#: Largest supported field order; tables are O(q^2) int64 entries.
MAX_ORDER = 4096


class FiniteField:
    """The finite field GF(q) with table-driven vectorized arithmetic.

    Use the :func:`GF` factory, which caches instances per order.

    Attributes
    ----------
    q, p, m:
        Field order, characteristic, and extension degree (``q == p**m``).
    modulus:
        Coefficients (low-first) of the irreducible modulus for ``m > 1``;
        ``(0, 1)`` (the polynomial ``x``) for prime fields.
    primitive_element:
        A fixed generator of the multiplicative group.
    """

    def __init__(self, q: int):
        pp = is_prime_power(q)
        if pp is None:
            raise ValueError(f"{q} is not a prime power; GF({q}) does not exist")
        if q > MAX_ORDER:
            raise ValueError(
                f"GF({q}) exceeds the supported table size (max order {MAX_ORDER})"
            )
        self.q = int(q)
        self.p, self.m = pp
        self.modulus = find_irreducible(self.p, self.m)
        self._build_tables()

    # ------------------------------------------------------------------
    # Element <-> polynomial encoding
    # ------------------------------------------------------------------
    def element_to_poly(self, e: int) -> tuple:
        """Base-p digit expansion of the element code (low degree first)."""
        digits = []
        e = int(e)
        for _ in range(self.m):
            digits.append(e % self.p)
            e //= self.p
        return poly_trim(digits)

    def poly_to_element(self, poly) -> int:
        """Inverse of :meth:`element_to_poly`."""
        e = 0
        for c in reversed(poly_trim(poly)):
            e = e * self.p + int(c)
        return e

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------
    def _poly_mul_elements(self, a: int, b: int) -> int:
        prod = poly_mul(self.element_to_poly(a), self.element_to_poly(b), self.p)
        return self.poly_to_element(poly_mod(prod, self.modulus, self.p))

    def _find_primitive(self) -> int:
        order = self.q - 1
        if order == 1:
            return 1
        checks = [order // r for r in prime_factors(order)]
        for cand in range(2, self.q):
            if all(self._element_pow_slow(cand, c) != 1 for c in checks):
                return cand
        raise RuntimeError("no primitive element found (impossible for a field)")

    def _element_pow_slow(self, base: int, exp: int) -> int:
        result = 1
        while exp > 0:
            if exp & 1:
                result = self._poly_mul_elements(result, base)
            base = self._poly_mul_elements(base, base)
            exp >>= 1
        return result

    def _build_tables(self) -> None:
        q, p, m = self.q, self.p, self.m
        codes = np.arange(q, dtype=np.int64)

        # Addition: digitwise mod-p over the base-p encoding, fully
        # vectorized via broadcasting (q x q x m gathers).
        digits = np.empty((q, m), dtype=np.int64)
        tmp = codes.copy()
        for i in range(m):
            digits[:, i] = tmp % p
            tmp //= p
        summed = (digits[:, None, :] + digits[None, :, :]) % p
        weights = p ** np.arange(m, dtype=np.int64)
        self._add = (summed * weights).sum(axis=2)
        negd = (p - digits) % p
        self._neg = (negd * weights).sum(axis=1)
        self._sub = self._add[:, self._neg]

        # Multiplication via discrete logs of a primitive element.
        self.primitive_element = self._find_primitive()
        exp_table = np.empty(max(q - 1, 1), dtype=np.int64)
        acc = 1
        for i in range(q - 1):
            exp_table[i] = acc
            acc = self._poly_mul_elements(acc, self.primitive_element)
        log_table = np.zeros(q, dtype=np.int64)
        log_table[exp_table] = np.arange(q - 1)
        self._exp_table = exp_table
        self._log_table = log_table

        mul = np.zeros((q, q), dtype=np.int64)
        nz = codes[1:]
        logsum = (log_table[nz][:, None] + log_table[nz][None, :]) % (q - 1)
        mul[1:, 1:] = exp_table[logsum]
        self._mul = mul

        inv = np.zeros(q, dtype=np.int64)
        inv[nz] = exp_table[(-log_table[nz]) % (q - 1)]
        self._inv = inv

    # ------------------------------------------------------------------
    # Vectorized arithmetic (accept scalars or numpy integer arrays)
    # ------------------------------------------------------------------
    def add(self, a, b):
        """Field addition, elementwise."""
        return self._add[a, b]

    def sub(self, a, b):
        """Field subtraction, elementwise."""
        return self._sub[a, b]

    def mul(self, a, b):
        """Field multiplication, elementwise."""
        return self._mul[a, b]

    def neg(self, a):
        """Additive inverse, elementwise."""
        return self._neg[a]

    def inv(self, a):
        """Multiplicative inverse; raises on zero input."""
        if np.any(np.asarray(a) == 0):
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return self._inv[a]

    def div(self, a, b):
        """Field division ``a / b``; raises when ``b`` contains zero."""
        return self.mul(a, self.inv(b))

    def pow(self, a, n: int):
        """Element power ``a**n`` (n >= 0), elementwise via log tables."""
        a = np.asarray(a)
        n = int(n)
        if n == 0:
            return np.ones_like(a)
        out = np.zeros_like(a)
        nz = a != 0
        logs = (self._log_table[a[nz]] * n) % (self.q - 1)
        out[nz] = self._exp_table[logs]
        return out if out.shape else int(out)

    # ------------------------------------------------------------------
    # 3-vector operations used by the ER_q construction
    # ------------------------------------------------------------------
    def dot(self, u, v):
        """Dot product of length-3 vectors over GF(q).

        ``u`` and ``v`` are integer arrays whose last axis has length 3 and
        broadcast against each other; returns the field codes of
        ``sum_i u_i * v_i``.
        """
        u = np.asarray(u)
        v = np.asarray(v)
        prod = self._mul[u, v]
        return self._add[self._add[prod[..., 0], prod[..., 1]], prod[..., 2]]

    def cross(self, u, v):
        """Cross product of length-3 vectors over GF(q) (last axis = 3)."""
        u = np.asarray(u)
        v = np.asarray(v)
        mul, sub = self._mul, self._sub
        c0 = sub[mul[u[..., 1], v[..., 2]], mul[u[..., 2], v[..., 1]]]
        c1 = sub[mul[u[..., 2], v[..., 0]], mul[u[..., 0], v[..., 2]]]
        c2 = sub[mul[u[..., 0], v[..., 1]], mul[u[..., 1], v[..., 0]]]
        return np.stack([c0, c1, c2], axis=-1)

    def left_normalize(self, vecs):
        """Scale nonzero 3-vectors so the first nonzero entry equals 1.

        This is the canonical projective-point representative used as the
        PolarFly vertex identity.  Vectorized over the leading axes.
        """
        vecs = np.atleast_2d(np.asarray(vecs))
        if np.any((vecs[..., 0] == 0) & (vecs[..., 1] == 0) & (vecs[..., 2] == 0)):
            raise ValueError("cannot normalize the zero vector")
        lead = np.where(
            vecs[..., 0] != 0,
            vecs[..., 0],
            np.where(vecs[..., 1] != 0, vecs[..., 1], vecs[..., 2]),
        )
        scale = self._inv[lead]
        return self._mul[scale[..., None], vecs]

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def elements(self) -> np.ndarray:
        """All element codes ``0..q-1``."""
        return np.arange(self.q, dtype=np.int64)

    def squares(self) -> np.ndarray:
        """The set of nonzero squares (quadratic residues) as a sorted array."""
        nz = np.arange(1, self.q, dtype=np.int64)
        return np.unique(self._mul[nz, nz])

    def is_square(self, a) -> bool:
        """True iff ``a`` is a square in GF(q) (0 counts as a square)."""
        a = int(a)
        if a == 0:
            return True
        if self.p == 2:
            return True  # squaring is a bijection in characteristic 2
        return int(self._log_table[a]) % 2 == 0

    def __eq__(self, other) -> bool:
        return isinstance(other, FiniteField) and other.q == self.q

    def __hash__(self) -> int:
        return hash(("FiniteField", self.q))

    def __repr__(self) -> str:
        return f"GF({self.q})"


@lru_cache(maxsize=64)
def GF(q: int) -> FiniteField:
    """Cached accessor for GF(q); construction builds O(q^2) tables once."""
    return FiniteField(q)
