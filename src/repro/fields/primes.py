"""Primality, factorization, and prime-power machinery.

The PolarFly design space is indexed by prime powers ``q`` (radix
``k = q + 1``), and Slim Fly by prime powers ``q = 4w ± 1`` — so clean,
deterministic prime/prime-power predicates are a load-bearing substrate for
the feasibility analyses (Figures 1 and 2) as well as field construction.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "is_prime",
    "factorize",
    "prime_factors",
    "is_prime_power",
    "primes_up_to",
    "prime_powers_up_to",
]

# Deterministic Miller-Rabin witnesses for n < 3.3 * 10^24 (Sorenson/Webster).
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic primality test (Miller–Rabin with fixed witnesses).

    Exact for every ``n`` below 3.3e24, far beyond any radix this library
    ever touches.
    """
    n = int(n)
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=4096)
def factorize(n: int) -> dict[int, int]:
    """Prime factorization ``{p: exponent}`` by trial division.

    Trial division suffices: the library only factors field orders and
    ``q - 1`` values, all far below 2**40.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"cannot factorize {n}")
    factors: dict[int, int] = {}
    for p in (2, 3):
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    f = 5
    while f * f <= n:
        for p in (f, f + 2):
            while n % p == 0:
                factors[p] = factors.get(p, 0) + 1
                n //= p
        f += 6
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


def prime_factors(n: int) -> list[int]:
    """Sorted distinct prime factors of ``n``."""
    return sorted(factorize(n))


def is_prime_power(n: int) -> "tuple[int, int] | None":
    """Return ``(p, m)`` with ``n == p**m`` if ``n`` is a prime power, else None."""
    n = int(n)
    if n < 2:
        return None
    factors = factorize(n)
    if len(factors) != 1:
        return None
    ((p, m),) = factors.items()
    return (p, m)


def primes_up_to(limit: int) -> list[int]:
    """All primes ``<= limit`` (simple sieve of Eratosthenes)."""
    limit = int(limit)
    if limit < 2:
        return []
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    for i in range(2, int(limit**0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = bytearray(len(sieve[i * i :: i]))
    return [i for i in range(limit + 1) if sieve[i]]


def prime_powers_up_to(limit: int) -> list[int]:
    """All prime powers ``p**m <= limit`` with ``m >= 1``, sorted."""
    out = []
    for p in primes_up_to(limit):
        v = p
        while v <= limit:
            out.append(v)
            v *= p
    return sorted(out)
