"""repro.obs — zero-dependency metrics + structured-event layer.

A process-global metric registry (:mod:`repro.obs.metrics`), monotonic
span timers, and a JSONL event sink shared by the sweep scheduler, the
result cache, both simulator engines, and the fault layer.  Everything
is **off by default**: with ``REPRO_OBS`` unset, :func:`emit` returns
after one dict lookup and :func:`span` hands back a shared no-op context
manager, so instrumented hot paths cost nothing measurable (gated by the
``obs_overhead`` perfbench cell).

Configuration
-------------
``REPRO_OBS=dir=/path/to/run[,sample=N]``
    * ``dir`` — directory for JSONL event shards.  Each process appends
      to its own ``events-<pid>.jsonl`` (line-buffered, fork-safe: the
      shard is re-opened whenever ``os.getpid()`` changes), so worker
      pools need no cross-process coordination; :func:`read_events`
      merges shards on read, ordered by ``(ts, pid, seq)``.
    * ``sample=N`` — keep 1-in-N of events emitted with ``sampled=True``
      (per event name, per process).  Default 1 (keep everything).

``REPRO_SWEEP_PROGRESS=SECONDS``
    Independent of ``REPRO_OBS``: makes :class:`SweepRunner` print a
    one-line progress heartbeat to stderr every SECONDS seconds.

Event schema
------------
One JSON object per line.  Common fields on every record::

    ev   str    event name (below)
    ts   float  epoch seconds (time.time)
    pid  int    emitting process id
    seq  int    per-process monotonic sequence number

Event names and their extra fields:

``sweep.start``     spec_hash, cells, cached, workers, chunks
``sweep.progress``  done, total, eta_s, cells_per_s (sliding-window
                    completion rate), cache_hits, cache_misses,
                    retries, pool_restarts
``sweep.end``       done, total, retries, pool_restarts, failed
``chunk.dispatch``  chunk, cells, attempt
``chunk.retry``     chunk, cells, attempt, error
``chunk.timeout``   chunk, cells, deadline_s
``chunk.bisect``    chunk, cells  (chunk split after repeated failure)
``pool.restart``    restarts
``cell.retry``      key, attempt, error  (serial path)
``cell.quarantine`` key, error
``cell.telemetry``  key, cycles, top_links=[[u, v, flits], ...]
                    (sampled; per-link counts from the flat engine)
``ts.window``       one record per closed time-series window (emitted
                    by windowed sweep cells; see
                    :mod:`repro.obs.timeseries`):

                    * ``key`` — cell key prefix (groups a series)
                    * ``index`` — window ordinal within the run
                    * ``start``, ``end`` — measure-relative cycle
                      bounds (end exclusive); ``window`` the nominal
                      width, ``start_cycle`` the absolute cycle of
                      measure-relative 0
                    * ``injected``, ``ejected``, ``dropped`` — flit
                      deltas within the window
                    * ``lat_count``, ``lat_mean``, ``lat_p50``,
                      ``lat_p99``, ``lat_max`` — latency-sample stats
                      (None when the window recorded no samples)
                    * ``occ_samples``, ``occ_mean``, ``occ_max`` —
                      sampled total buffer occupancy stats
                    * ``link_total`` — flits over all links;
                      ``top_links=[[u, v, flits], ...]`` the K hottest
                    * ``faults=[cycle, ...]`` — measure-relative cycles
                      of fault events applied inside the window
``cache.corrupt``   key  (artifact present but unreadable → quarantined)
``span``            name, secs, ok, plus caller fields.  Span names in
                    tree: ``sweep.run``, ``sweep.chunk`` (scheduler
                    side), ``sweep.cell`` (worker side, sampled),
                    ``bench.phase`` (perfbench construct/route/simulate)
``counters``        counters, gauges, histograms — a registry snapshot
                    (see :meth:`repro.obs.metrics.Registry.snapshot`)

Metric names currently wired: ``cache.hits`` / ``cache.misses`` /
``cache.corrupt`` / ``cache.quarantined``, ``sweep.cells_done`` /
``sweep.retries`` / ``sweep.pool_restarts``, ``faults.flit_drops`` /
``faults.tail_drops`` / ``faults.blackholed_packets``.
"""

from __future__ import annotations

import json
import os
import time

from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, Registry

__all__ = [
    "OBS_ENV",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "counter",
    "gauge",
    "histogram",
    "enabled",
    "obs_dir",
    "emit",
    "emit_counters",
    "span",
    "read_events",
]

OBS_ENV = "REPRO_OBS"

# ---------------------------------------------------------------------------
# configuration (memoised on the raw env string so tests can flip the env
# var and see the change without any explicit cache invalidation)

_memo_raw: str | None = None
_memo_dir: str | None = None
_memo_sample: int = 1


def _configure(raw: str | None) -> None:
    global _memo_raw, _memo_dir, _memo_sample
    directory: str | None = None
    sample = 1
    if raw:
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, val = part.partition("=")
            key = key.strip()
            val = val.strip()
            if key == "dir" and val:
                directory = val
            elif key == "sample":
                try:
                    sample = max(1, int(val))
                except ValueError:
                    pass
    _memo_raw = raw
    _memo_dir = directory
    _memo_sample = sample
    _sample_counts.clear()


def _refresh() -> None:
    raw = os.environ.get(OBS_ENV)
    if raw != _memo_raw:
        _configure(raw)


def enabled() -> bool:
    """True when ``REPRO_OBS`` names an event directory."""
    _refresh()
    return _memo_dir is not None


def obs_dir() -> str | None:
    """The configured event directory, or None when disabled."""
    _refresh()
    return _memo_dir


# ---------------------------------------------------------------------------
# JSONL sink: one shard per pid, lazily opened, line-buffered append

_sink_file = None
_sink_key: tuple[str, int] | None = None
_seq = 0
_sample_counts: dict[str, int] = {}


def _shard(directory: str):
    global _sink_file, _sink_key
    pid = os.getpid()
    key = (directory, pid)
    if _sink_key != key or _sink_file is None or _sink_file.closed:
        if _sink_file is not None and _sink_key is not None and _sink_key[1] == pid:
            # Same process re-targeting: safe to close.  After a fork we
            # instead just drop the inherited handle (closing it in the
            # child is harmless for the parent's fd, but pointless).
            try:
                _sink_file.close()
            except OSError:
                pass
        os.makedirs(directory, exist_ok=True)
        _sink_file = open(
            os.path.join(directory, f"events-{pid}.jsonl"),
            "a",
            buffering=1,
            encoding="utf-8",
        )
        _sink_key = key
    return _sink_file


def _keep_sample(ev: str) -> bool:
    if _memo_sample <= 1:
        return True
    n = _sample_counts.get(ev, 0)
    _sample_counts[ev] = n + 1
    return n % _memo_sample == 0


def emit(ev: str, sampled: bool = False, **fields) -> None:
    """Append one event record to this process's shard (no-op when off).

    ``sampled=True`` subjects the event to ``sample=N`` subsampling.
    Field values must be JSON-serialisable (non-serialisable values are
    stringified).  Sink errors are swallowed: observability must never
    take down a sweep.
    """
    _refresh()
    if _memo_dir is None:
        return
    if sampled and not _keep_sample(ev):
        return
    global _seq
    _seq += 1
    rec = {"ev": ev, "ts": time.time(), "pid": os.getpid(), "seq": _seq}
    rec.update(fields)
    try:
        _shard(_memo_dir).write(
            json.dumps(rec, separators=(",", ":"), default=str) + "\n"
        )
    except (OSError, TypeError, ValueError):
        pass


def emit_counters() -> None:
    """Emit a ``counters`` event with the global registry snapshot."""
    if enabled():
        emit("counters", **REGISTRY.snapshot())


# ---------------------------------------------------------------------------
# span timers

class _Span:
    __slots__ = ("_name", "_fields", "_t0")

    def __init__(self, name: str, fields: dict) -> None:
        self._name = name
        self._fields = fields

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        emit(
            "span",
            name=self._name,
            secs=time.perf_counter() - self._t0,
            ok=exc_type is None,
            **self._fields,
        )
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, sampled: bool = False, **fields):
    """Context manager timing a block; emits a ``span`` event on exit.

    Returns a shared no-op when observability is disabled (or the span
    is sampled out), so ``with obs.span(...)`` is free on the cold path.
    """
    _refresh()
    if _memo_dir is None:
        return _NULL_SPAN
    if sampled and not _keep_sample("span:" + name):
        return _NULL_SPAN
    return _Span(name, fields)


# ---------------------------------------------------------------------------
# registry conveniences

def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


# ---------------------------------------------------------------------------
# merge-on-read

def read_events(directory) -> list:
    """Merge all ``events-*.jsonl`` shards under *directory*.

    Unparsable lines (e.g. a shard truncated by a killed worker) are
    skipped.  Records come back sorted by ``(ts, pid, seq)``.
    """
    recs = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return recs
    for name in names:
        if not (name.startswith("events-") and name.endswith(".jsonl")):
            continue
        try:
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict) and "ev" in rec:
                recs.append(rec)
    recs.sort(key=lambda r: (r.get("ts", 0.0), r.get("pid", 0), r.get("seq", 0)))
    return recs
