"""Process-local metric primitives for :mod:`repro.obs`.

Counters, gauges, and summary histograms live in a process-global
:data:`REGISTRY`.  They are plain Python objects with no locking: every
user in this codebase mutates them from a single thread per process
(worker processes each get their own registry after ``fork``/``spawn``),
and readers only ever see snapshots.  Updating a counter is one integer
add — cheap enough to leave permanently wired into hot paths behind a
``None`` check.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "Registry", "REGISTRY"]


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """Streaming summary: count / sum / min / max of observed values."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Registry:
    """Name → metric maps with lazy creation and JSON-able snapshots."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def snapshot(self) -> dict:
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {"count": h.count, "sum": h.sum, "min": h.min, "max": h.max}
                for k, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: Process-global registry used by all in-tree instrumentation.
REGISTRY = Registry()
