"""Windowed time-resolved telemetry: collection, analytics, trace export.

Aggregate-only telemetry (one latency distribution, one link-count total
per run) cannot show congestion *onset*, the latency transient around a
fault event, or where adversarial traffic concentrates *when*.  This
module adds the time axis: the simulation's measure phase is split into
fixed-width windows of ``window`` cycles, and a
:class:`TimeSeriesCollector` closes one :class:`WindowSeries` record per
window — injected/ejected/dropped flit deltas, latency percentiles over
the samples recorded in the window, queue-depth (credit-derived
occupancy) sample statistics, per-link flit counts (top-K by heat plus
the total, so memory stays bounded at large radix), and the fault-event
markers that landed inside the window.

The collector is engine-agnostic and deliberately free of simulator
imports: the drivers in :mod:`repro.flitsim.telemetry`
(``run_with_timeseries`` / ``run_workload_with_timeseries``) feed it
from the reference engine, the numpy flat path, and the C-kernel path at
the *same accounting points* as ``run_with_telemetry``, so the closed
windows are bit-identical across all three (pinned by
``tests/test_timeseries.py``).

On top of the raw series:

* :func:`steady_state_window` — BookSim-style warmup/steady-state
  detection (the cumulative mean of a per-window signal has converged);
* :func:`fault_recovery` — pre-fault baseline throughput and the first
  post-fault window that recovers to it (feeds
  :class:`repro.faults.FaultResult`);
* :func:`chrome_trace` / :func:`chrome_trace_from_events` /
  :func:`write_chrome_trace` — Chrome-trace ("Perfetto") JSON export,
  one counter track per signal plus instant events for fault markers;
* :func:`emit_window_events` — one ``ts.window`` JSONL row per window
  through the :mod:`repro.obs` sink (schema in the package docstring).

Everything a window record holds is JSON-safe (ints, floats, ``None``,
lists), so a series survives the :class:`~repro.experiments.ResultCache`
round trip bit-identically — the ``repr`` float serialization contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.obs import emit

__all__ = [
    "WindowSeries",
    "TimeSeriesCollector",
    "steady_state_window",
    "fault_recovery",
    "chrome_trace",
    "chrome_trace_from_events",
    "write_chrome_trace",
    "emit_window_events",
]


@dataclass
class WindowSeries:
    """A run's per-window records plus the collection parameters.

    ``windows`` is a list of plain dicts (one per closed window, in
    order); see :meth:`TimeSeriesCollector.close_window` for the exact
    fields.  Cycle coordinates inside the records are measure-relative
    (cycle 0 = first measured cycle); ``start_cycle`` maps them back to
    absolute simulator time.
    """

    #: nominal window width in cycles (the last window may be shorter)
    window: int
    #: links kept per window (top-K by flit count; the total always kept)
    top_links: int
    #: absolute simulator cycle of measure-relative cycle 0
    start_cycle: int = 0
    windows: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.windows)

    def values(self, key: str) -> list:
        """The per-window column ``key`` (e.g. ``"ejected"``)."""
        return [w[key] for w in self.windows]

    def rates(self, key: str) -> list:
        """``key`` per cycle per window (robust to a short last window)."""
        return [w[key] / (w["end"] - w["start"]) for w in self.windows]

    def fault_cycles(self) -> list:
        """Every fault-event marker cycle, measure-relative, in order."""
        return [c for w in self.windows for c in w["faults"]]

    def summary(self) -> dict:
        """JSON-safe document (what windowed sweep cells persist)."""
        return {
            "window": int(self.window),
            "top_links": int(self.top_links),
            "start_cycle": int(self.start_cycle),
            "windows": self.windows,
        }

    @classmethod
    def from_summary(cls, doc: dict) -> "WindowSeries":
        """Rebuild a series from :meth:`summary` (cache replay)."""
        return cls(
            window=int(doc["window"]),
            top_links=int(doc["top_links"]),
            start_cycle=int(doc.get("start_cycle", 0)),
            windows=list(doc["windows"]),
        )


def _stats(vals: np.ndarray, pcts=(50.0, 99.0)) -> dict:
    """count/mean/pXX/max of a float sample array (None when empty)."""
    out: dict = {"count": int(vals.size)}
    if vals.size:
        out["mean"] = float(np.mean(vals))
        for p in pcts:
            out[f"p{int(p)}"] = float(np.percentile(vals, p))
        out["max"] = float(np.max(vals))
    else:
        out["mean"] = None
        for p in pcts:
            out[f"p{int(p)}"] = None
        out["max"] = None
    return out


class TimeSeriesCollector:
    """Accumulates one run's windowed telemetry from cumulative counters.

    The driver owns the loop; the collector owns the deltas.  Protocol:

    1. :meth:`prime` once at measure start with the current cumulative
       counter values (drop counters tick during warmup too);
    2. :meth:`occupancy_sample` on each sampled cycle;
    3. :meth:`close_window` at each window boundary with the cumulative
       counters, the latency sample list, the window's per-link flit
       counts (already flushed by the engine probe), and any fault
       markers that fired inside the window.

    Everything numeric is computed with the same numpy reductions
    whichever engine feeds it, so identical inputs give bit-identical
    window records.
    """

    def __init__(self, window: int, top_links: int = 8, start_cycle: int = 0):
        if window <= 0:
            raise ValueError("window must be a positive cycle count")
        self.series = WindowSeries(
            window=int(window), top_links=int(top_links),
            start_cycle=int(start_cycle),
        )
        self._start = 0  # measure-relative start of the open window
        self._occ: list = []
        self._injected = 0
        self._ejected = 0
        self._dropped = 0
        self._lat_n = 0

    def prime(
        self, injected: int, ejected: int, dropped: int, lat_n: int = 0
    ) -> None:
        """Set counter baselines at measure start (warmup residue)."""
        self._injected = int(injected)
        self._ejected = int(ejected)
        self._dropped = int(dropped)
        self._lat_n = int(lat_n)

    def occupancy_sample(self, total: int) -> None:
        """Record one sampled total buffer occupancy (flits in queues)."""
        self._occ.append(int(total))

    def close_window(
        self,
        end: int,
        injected: int,
        ejected: int,
        dropped: int,
        latencies,
        link_counts: dict,
        faults=(),
    ) -> dict:
        """Close the open window at measure-relative cycle ``end``.

        ``injected``/``ejected``/``dropped`` are *cumulative* counter
        values — the collector differences them against the previous
        close.  ``latencies`` is the engine's growing sample list (the
        shared recording order); ``link_counts`` the window's flushed
        ``{(u, v): flits}`` map; ``faults`` the measure-relative cycles
        of fault events applied inside the window.
        """
        lat = np.asarray(latencies[self._lat_n :], dtype=np.float64)
        occ = np.asarray(self._occ, dtype=np.float64)
        ranked = sorted(link_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        record = {
            "index": len(self.series.windows),
            "start": int(self._start),
            "end": int(end),
            "injected": int(injected) - self._injected,
            "ejected": int(ejected) - self._ejected,
            "dropped": int(dropped) - self._dropped,
            "latency": _stats(lat),
            "occupancy": _stats(occ),
            "link_total": int(sum(link_counts.values())),
            "top_links": [
                [int(u), int(v), int(c)]
                for (u, v), c in ranked[: self.series.top_links]
            ],
            "faults": [int(c) for c in faults],
        }
        self.series.windows.append(record)
        self._start = int(end)
        self._occ = []
        self._injected = int(injected)
        self._ejected = int(ejected)
        self._dropped = int(dropped)
        self._lat_n = len(latencies)
        return record


# ---------------------------------------------------------------------------
# Transient analytics


def steady_state_window(
    series: WindowSeries,
    key: str = "ejected",
    tol: float = 0.05,
    consecutive: int = 3,
) -> "int | None":
    """First window index from which ``key``'s cumulative mean is stable.

    BookSim-style warmup detection: the running (cumulative) mean of the
    per-cycle ``key`` rate is recomputed at every window close; once it
    moves by less than ``tol`` (relative) across ``consecutive``
    consecutive closes, the signal is declared steady and the index of
    the first window of that stable stretch is returned.  ``None`` when
    the series never settles (e.g. a saturating load ramp or a run
    shorter than ``consecutive + 1`` windows).
    """
    rates = series.rates(key)
    if len(rates) < consecutive + 1:
        return None
    means = np.cumsum(rates) / np.arange(1, len(rates) + 1)
    stable = 0
    for i in range(1, len(means)):
        prev = means[i - 1]
        if abs(means[i] - prev) <= tol * max(abs(prev), 1e-12):
            stable += 1
            if stable >= consecutive:
                return i - consecutive + 1
        else:
            stable = 0
    return None


def fault_recovery(
    series: WindowSeries, key: str = "ejected", tol: float = 0.1
) -> "dict | None":
    """Recovery time of ``key`` after the first in-window fault event.

    The pre-fault baseline is the mean per-cycle rate over the windows
    strictly before the first window containing a fault marker; recovery
    is the first *later* window whose rate is back within ``tol``
    (relative) of that baseline.  Returns ``None`` when the series holds
    no fault markers; otherwise a JSON-safe dict::

        fault_cycle       measure-relative cycle of the first marker
        fault_window      index of the window it landed in
        baseline          pre-fault mean rate (None without pre-windows)
        recovered_window  index of the recovery window (None: never)
        recovery_cycles   recovery window end - fault cycle (None: never
                          recovered, or no baseline to recover to)
    """
    fault_idx = next(
        (w["index"] for w in series.windows if w["faults"]), None
    )
    if fault_idx is None:
        return None
    fault_cycle = series.windows[fault_idx]["faults"][0]
    rates = series.rates(key)
    result: dict = {
        "fault_cycle": int(fault_cycle),
        "fault_window": int(fault_idx),
        "baseline": None,
        "recovered_window": None,
        "recovery_cycles": None,
    }
    if fault_idx == 0:
        return result  # no pre-fault windows: nothing to recover *to*
    baseline = float(np.mean(np.asarray(rates[:fault_idx], dtype=np.float64)))
    result["baseline"] = baseline
    for i in range(fault_idx + 1, len(rates)):
        if rates[i] >= (1.0 - tol) * baseline:
            result["recovered_window"] = int(i)
            result["recovery_cycles"] = int(
                series.windows[i]["end"] - fault_cycle
            )
            break
    return result


# ---------------------------------------------------------------------------
# Chrome-trace ("Perfetto") export

#: per-window counter tracks emitted to a trace, as (track name, args
#: builder).  One trace timestamp unit == one simulated cycle (the
#: viewer labels it "us"; ``displayTimeUnit`` keeps the scale readable).
def _counter_events(w: dict, pid: int, ts0: int) -> list:
    lat = w["latency"]
    occ = w["occupancy"]
    ts = ts0 + w["start"]
    return [
        {
            "ph": "C", "pid": pid, "ts": ts, "name": "flits",
            "args": {
                "injected": w["injected"],
                "ejected": w["ejected"],
                "dropped": w["dropped"],
            },
        },
        {
            "ph": "C", "pid": pid, "ts": ts, "name": "latency",
            "args": {
                "p50": lat["p50"] or 0.0,
                "p99": lat["p99"] or 0.0,
            },
        },
        {
            "ph": "C", "pid": pid, "ts": ts, "name": "occupancy",
            "args": {"mean": occ["mean"] or 0.0},
        },
        {
            "ph": "C", "pid": pid, "ts": ts, "name": "link_flits",
            "args": {"total": w["link_total"]},
        },
    ]


def _fault_events(w: dict, pid: int, ts0: int) -> list:
    return [
        {
            "ph": "i", "pid": pid, "tid": 0, "ts": ts0 + int(c),
            "name": "fault", "s": "g", "cat": "fault",
        }
        for c in w["faults"]
    ]


def chrome_trace(series: WindowSeries, name: str = "flitsim", pid: int = 0) -> dict:
    """One run's series as a Chrome-trace JSON document (a plain dict).

    Counter tracks (``ph: "C"``) for flit deltas, latency percentiles,
    mean occupancy, and total link flits — one point per window at the
    window's start cycle — plus one global instant event (``ph: "i"``)
    per fault marker.  Load the result in ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    events: list = [
        {
            "ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": name},
        }
    ]
    for w in series.windows:
        events.extend(_counter_events(w, pid, 0))
        events.extend(_fault_events(w, pid, 0))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "window": series.window,
            "start_cycle": series.start_cycle,
            "unit": "1 trace us == 1 simulated cycle",
        },
    }


def chrome_trace_from_events(events: list) -> dict:
    """A combined Chrome trace from merged ``ts.window`` JSONL records.

    Groups records by their ``key`` field (one trace process per sweep
    cell) and rebuilds the same counter/instant tracks as
    :func:`chrome_trace` — the ``tools/obsreport.py --trace`` path.
    Records other than ``ts.window`` are ignored.
    """
    by_key: dict = {}
    for rec in events:
        if rec.get("ev") != "ts.window":
            continue
        by_key.setdefault(rec.get("key") or "-", []).append(rec)
    out: list = []
    for pid, (key, recs) in enumerate(sorted(by_key.items())):
        out.append(
            {
                "ph": "M", "pid": pid, "name": "process_name",
                "args": {"name": f"cell {key}"},
            }
        )
        for rec in sorted(recs, key=lambda r: r.get("index", 0)):
            w = {
                "start": rec.get("start", 0),
                "injected": rec.get("injected", 0),
                "ejected": rec.get("ejected", 0),
                "dropped": rec.get("dropped", 0),
                "latency": {
                    "p50": rec.get("lat_p50"), "p99": rec.get("lat_p99"),
                },
                "occupancy": {"mean": rec.get("occ_mean")},
                "link_total": rec.get("link_total", 0),
                "faults": rec.get("faults", []),
            }
            out.extend(_counter_events(w, pid, 0))
            out.extend(_fault_events(w, pid, 0))
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(doc, path: str) -> str:
    """Write a trace (a :class:`WindowSeries` or a trace dict) to ``path``."""
    if isinstance(doc, WindowSeries):
        doc = chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return path


# ---------------------------------------------------------------------------
# JSONL emission through the repro.obs sink


def emit_window_events(series: WindowSeries, key: "str | None" = None) -> None:
    """Emit one ``ts.window`` record per window (no-op when obs is off).

    Flat fields (schema in the :mod:`repro.obs` package docstring) so
    the rows grep/jq cleanly; nested stats are flattened with ``lat_`` /
    ``occ_`` prefixes.
    """
    for w in series.windows:
        lat = w["latency"]
        occ = w["occupancy"]
        emit(
            "ts.window",
            key=key,
            index=w["index"],
            start=w["start"],
            end=w["end"],
            window=series.window,
            start_cycle=series.start_cycle,
            injected=w["injected"],
            ejected=w["ejected"],
            dropped=w["dropped"],
            lat_count=lat["count"],
            lat_mean=lat["mean"],
            lat_p50=lat["p50"],
            lat_p99=lat["p99"],
            lat_max=lat["max"],
            occ_samples=occ["count"],
            occ_mean=occ["mean"],
            occ_max=occ["max"],
            link_total=w["link_total"],
            top_links=w["top_links"],
            faults=w["faults"],
        )
