"""Deterministic RNG construction.

Every stochastic component in the library takes either an integer seed or an
already-constructed :class:`numpy.random.Generator`.  Centralizing the
coercion here keeps experiments reproducible: the same seed always yields the
same traffic pattern, the same Jellyfish wiring, and the same failure sweep.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed"]


def make_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(root_seed: int, *parts) -> int:
    """A deterministic child seed for ``(root_seed, *parts)``.

    Hashes the root seed together with any identifying strings/numbers
    (sweep-cell coordinates, replica index, ...) into a 63-bit integer.
    Unlike ``root_seed + i`` schemes this cannot collide across
    dimensions, and it is stable across processes and platforms — the
    property the parallel sweep runner relies on for worker-count
    independence.
    """
    text = "\x1f".join(str(p) for p in (root_seed, *parts))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1
