"""Deterministic RNG construction.

Every stochastic component in the library takes either an integer seed or an
already-constructed :class:`numpy.random.Generator`.  Centralizing the
coercion here keeps experiments reproducible: the same seed always yields the
same traffic pattern, the same Jellyfish wiring, and the same failure sweep.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
