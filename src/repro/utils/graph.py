"""A compact undirected-graph kernel shared by all subsystems.

The graph is stored in CSR form (``indptr``/``indices``), which keeps
neighbor iteration allocation-free and makes the BFS kernels below pure
numpy frontier expansions — no per-vertex Python objects, no adjacency
copies (guides: vectorize loops, prefer views over copies).

Only what the reproduction needs is implemented: construction from edge
lists, BFS distances (single-source and all-sources batched), diameter /
average shortest path length, connectivity, edge removal (for failure
sweeps), and triangle enumeration (for the PolarFly structural theorems).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Graph", "bfs_distances_reference"]

#: cap on the (sources x vertices) distance-block size the chunked
#: all-pairs consumers (diameter / ASPL) materialize at once (~32 MB int64)
_BLOCK_ENTRIES = 4_000_000


class Graph:
    """Immutable undirected simple graph over vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Duplicate edges are
        collapsed; the graph is simple and undirected.
    """

    __slots__ = ("n", "indptr", "indices", "_edge_array")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        self.n = int(n)
        if isinstance(edges, np.ndarray) and edges.dtype != object:
            # Array fast path: orient every row u < v with one in-place
            # row sort instead of a Python comprehension over the edges
            # (the failure-sweep mutation helpers below construct graphs
            # from kept-edge arrays on their hot path).
            edge_arr = edges.astype(np.int64, copy=True)
            if edge_arr.size and (edge_arr.ndim != 2 or edge_arr.shape[1] != 2):
                raise ValueError("edge array must have shape (m, 2)")
            edge_arr.sort(axis=-1)
        else:
            edge_arr = np.asarray(
                [(u, v) if u < v else (v, u) for (u, v) in edges], dtype=np.int64
            )
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        else:
            if edge_arr.min() < 0 or edge_arr.max() >= self.n:
                raise ValueError("edge endpoint out of range")
            if np.any(edge_arr[:, 0] == edge_arr[:, 1]):
                raise ValueError("self-loops are not allowed")
            edge_arr = np.unique(edge_arr, axis=0)
        self._edge_array = edge_arr
        # Build CSR from the symmetrized edge list.
        src = np.concatenate([edge_arr[:, 0], edge_arr[:, 1]])
        dst = np.concatenate([edge_arr[:, 1], edge_arr[:, 0]])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        self.indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(self.indptr, src + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self.indices = dst

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency_matrix(cls, adj: np.ndarray) -> "Graph":
        """Build from a boolean/0-1 adjacency matrix (diagonal ignored)."""
        adj = np.asarray(adj)
        if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
            raise ValueError("adjacency matrix must be square")
        iu, ju = np.nonzero(np.triu(adj != 0, k=1))
        return cls(adj.shape[0], zip(iu.tolist(), ju.tolist()))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._edge_array.shape[0])

    def edges(self) -> np.ndarray:
        """The ``(m, 2)`` array of undirected edges with ``u < v`` (a view)."""
        return self._edge_array

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a CSR view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int | None = None):
        """Degree of ``v``, or the full degree vector when ``v`` is None."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def adjacency_matrix(self, dtype=bool) -> np.ndarray:
        """Dense adjacency matrix (freshly allocated)."""
        adj = np.zeros((self.n, self.n), dtype=dtype)
        e = self._edge_array
        adj[e[:, 0], e[:, 1]] = 1
        adj[e[:, 1], e[:, 0]] = 1
        return adj

    # ------------------------------------------------------------------
    # Shortest paths (unweighted)
    # ------------------------------------------------------------------
    def all_pairs_distances(
        self, sources=None, dtype=np.int64, return_candidates: bool = False
    ) -> np.ndarray:
        """Hop distances from many sources at once; unreachable pairs get -1.

        Level-synchronous batched BFS: the frontier is a set of
        ``(source row, vertex)`` pairs over *every* source simultaneously,
        and one level is a handful of CSR gathers (``np.repeat`` over the
        frontier's neighbor slices) — no per-source Python loop.  Row ``i``
        equals ``bfs_distances(sources[i])`` exactly; ``sources=None``
        yields the full ``n x n`` distance matrix.

        ``dtype`` sizes the output (routing tables store int16); it must
        be able to hold the graph's eccentricity.

        With ``return_candidates=True`` the return value is
        ``(dist, (c_row, c_vert, c_hop))``: the shortest-path-DAG edge set
        as int32 triples, one per (source row, vertex, minimal next hop).
        These fall out of the expansion for free — when vertex ``w`` is
        discovered at level L from source ``d = sources[c_row]``, the
        frontier vertices ``u`` (at level L-1) adjacent to ``w`` are
        exactly the neighbors of ``w`` one hop closer to ``d``, i.e. the
        minimal next hops of the pair ``(w -> d)``.  They are captured
        after the freshness filter but *before* the stamp dedupe, so every
        parallel DAG edge survives; triples are unique because each
        frontier vertex expands each incident edge once.  Routing-table
        construction consumes this instead of re-deriving candidates from
        the finished distance matrix (~4x less memory traffic; that
        distance-compare pass is kept as an oracle in ``routing/tables``).
        """
        if sources is None:
            src = np.arange(self.n, dtype=np.int64)
        else:
            src = np.asarray(sources, dtype=np.int64).ravel()
        k = src.size
        dist = np.full((k, self.n), -1, dtype=dtype)
        cand: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

        def _with_candidates(result):
            if not return_candidates:
                return result
            if cand:
                parts = tuple(
                    np.concatenate([c[i] for c in cand]) for i in range(3)
                )
            else:
                parts = tuple(np.empty(0, dtype=np.int32) for _ in range(3))
            return result, parts

        if k == 0:
            return _with_candidates(dist)
        rows = np.arange(k, dtype=np.int64)
        dist[rows, src] = 0
        f_row, f_v = rows, src.copy()
        # Remaining unset entries: once every pair is settled (e.g. after
        # level 2 on a diameter-2 graph) the loop exits without paying
        # the final, fruitless frontier expansion.
        unknown = k * (self.n - 1)
        # Scratch stamp matrix for sort-free frontier deduplication: the
        # level's pairs scatter their positions in, and only the entries
        # that read their own position back survive (last write wins).
        # Never reset: a (row, vertex) pair is stamped at most once, so
        # stale stamps are never compared against.
        stamp = np.empty((k, self.n), dtype=np.int64)
        level = 0
        indptr, indices = self.indptr, self.indices
        while f_v.size and unknown > 0:
            level += 1
            starts = indptr[f_v]
            counts = indptr[f_v + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Gather every frontier vertex's neighbor slice in one shot:
            # global position minus the slice's exclusive prefix sum is
            # the offset within its CSR slice.
            cum = np.cumsum(counts)
            gather = np.arange(total, dtype=np.int64) + np.repeat(
                starts - cum + counts, counts
            )
            nbr = indices[gather]
            row = np.repeat(f_row, counts)
            fresh = dist[row, nbr] < 0
            row, nbr = row[fresh], nbr[fresh]
            if row.size == 0:
                break
            if return_candidates:
                hop = np.repeat(f_v, counts)[fresh]
                cand.append(
                    (
                        row.astype(np.int32),
                        nbr.astype(np.int32),
                        hop.astype(np.int32),
                    )
                )
            pos = np.arange(row.size, dtype=np.int64)
            stamp[row, nbr] = pos
            keep = stamp[row, nbr] == pos
            row, nbr = row[keep], nbr[keep]
            dist[row, nbr] = level
            unknown -= row.size
            f_row, f_v = row, nbr
        return _with_candidates(dist)

    def bfs_distances(self, source: int) -> np.ndarray:
        """Hop distances from ``source``; unreachable vertices get -1."""
        return self.all_pairs_distances(np.array([source], dtype=np.int64))[0]

    def distances_from(self, sources: Sequence[int]) -> np.ndarray:
        """Batched BFS distances, one row per source."""
        return self.all_pairs_distances(np.asarray(sources, dtype=np.int64))

    def _source_blocks(self, sources: np.ndarray):
        """Source chunks bounding each all-pairs block to _BLOCK_ENTRIES."""
        step = max(1, _BLOCK_ENTRIES // max(self.n, 1))
        for i in range(0, len(sources), step):
            yield sources[i : i + step]

    def eccentricity(self, v: int) -> int:
        """Max distance from ``v``; -1 when the graph is disconnected."""
        dist = self.bfs_distances(v)
        if np.any(dist < 0):
            return -1
        return int(dist.max())

    def diameter(self, sample: int | None = None, rng=None) -> int:
        """Graph diameter; -1 when disconnected.

        ``sample`` limits the number of BFS sources (lower bound estimate)
        for large failure sweeps; exact when None.
        """
        sources = np.arange(self.n)
        if sample is not None and sample < self.n:
            from repro.utils.rng import make_rng

            sources = make_rng(rng).choice(self.n, size=sample, replace=False)
        worst = 0
        for block in self._source_blocks(sources):
            dist = self.all_pairs_distances(block)
            if bool((dist < 0).any()):
                return -1
            worst = max(worst, int(dist.max()))
        return worst

    def average_shortest_path_length(
        self, sample: int | None = None, rng=None
    ) -> float:
        """Mean pairwise hop distance; ``inf`` when disconnected."""
        sources = np.arange(self.n)
        if sample is not None and sample < self.n:
            from repro.utils.rng import make_rng

            sources = make_rng(rng).choice(self.n, size=sample, replace=False)
        total = 0
        count = 0
        for block in self._source_blocks(sources):
            dist = self.all_pairs_distances(block)
            if bool((dist < 0).any()):
                return float("inf")
            total += int(dist.sum())
            count += dist.shape[0] * (self.n - 1)
        return total / count if count else 0.0

    def diameter_and_aspl(
        self, sample: int | None = None, rng=None
    ) -> tuple[int, float]:
        """Diameter and mean pairwise distance in one batched BFS pass.

        Failure sweeps need both per checkpoint; computing them
        separately pays the all-pairs expansion twice (and, when
        sampling, draws two different source sets).  Returns
        ``(-1, inf)`` on the first disconnected block, without expanding
        the remaining sources.
        """
        sources = np.arange(self.n)
        if sample is not None and sample < self.n:
            from repro.utils.rng import make_rng

            sources = make_rng(rng).choice(self.n, size=sample, replace=False)
        worst = 0
        total = 0
        count = 0
        for block in self._source_blocks(sources):
            dist = self.all_pairs_distances(block)
            if bool((dist < 0).any()):
                return -1, float("inf")
            worst = max(worst, int(dist.max()))
            total += int(dist.sum())
            count += dist.shape[0] * (self.n - 1)
        return worst, total / count if count else 0.0

    def is_connected(self) -> bool:
        """True iff every vertex is reachable from vertex 0."""
        if self.n == 0:
            return True
        return bool(np.all(self.bfs_distances(0) >= 0))

    # ------------------------------------------------------------------
    # Mutation-by-copy
    # ------------------------------------------------------------------
    def remove_edges(self, doomed) -> "Graph":
        """Return a new graph with ``doomed`` edges removed.

        Accepts an ``(m, 2)`` array or any iterable of pairs; membership
        is one vectorized key comparison (failure sweeps call this once
        per checkpoint, so no Python loop over the edge set).
        """
        if isinstance(doomed, np.ndarray):
            doomed_arr = doomed.astype(np.int64, copy=True)
        else:
            doomed_arr = np.asarray(list(doomed), dtype=np.int64)
        doomed_arr = doomed_arr.reshape(-1, 2)
        if doomed_arr.size == 0:
            return Graph(self.n, self._edge_array)
        doomed_arr.sort(axis=1)
        # Out-of-range pairs can't be edges — drop them before keying so
        # they can't alias a real edge's u*n+v key (non-edges have
        # always been a silent no-op here).
        doomed_arr = doomed_arr[
            (doomed_arr[:, 0] >= 0) & (doomed_arr[:, 1] < self.n)
        ]
        e = self._edge_array
        keep = ~np.isin(
            e[:, 0] * self.n + e[:, 1],
            doomed_arr[:, 0] * self.n + doomed_arr[:, 1],
        )
        return Graph(self.n, e[keep])

    def subgraph_mask(self, mask: np.ndarray) -> "Graph":
        """Induced subgraph on vertices where ``mask`` is True (relabelled)."""
        mask = np.asarray(mask, dtype=bool)
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[mask] = np.arange(int(mask.sum()), dtype=np.int64)
        e = self._edge_array
        kept = e[mask[e[:, 0]] & mask[e[:, 1]]]
        return Graph(int(mask.sum()), new_id[kept])

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def triangles(self) -> list[tuple[int, int, int]]:
        """All triangles as sorted vertex triples.

        Uses the standard forward-neighborhood intersection: for each edge
        ``(u, v)`` with ``u < v``, intersect the higher-numbered neighbors.
        """
        out: list[tuple[int, int, int]] = []
        for u, v in self._edge_array:
            nu = self.neighbors(int(u))
            nv = self.neighbors(int(v))
            common = np.intersect1d(
                nu[nu > v], nv[nv > v], assume_unique=True
            )
            for w in common:
                out.append((int(u), int(v), int(w)))
        return out

    def count_4cycles(self) -> int:
        """Number of quadrilaterals (4-cycles) in the graph.

        Counted via paths of length 2: an unordered pair with ``p2`` common
        neighbors contributes ``C(p2, 2)`` quadrilaterals, and every
        quadrilateral is seen by both of its diagonal pairs — hence the
        final halving.
        """
        adj = self.adjacency_matrix(dtype=np.int64)
        p2 = adj @ adj
        iu = np.triu_indices(self.n, k=1)
        c = p2[iu]
        return int((c * (c - 1) // 2).sum()) // 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.n}, m={self.num_edges})"


def bfs_distances_reference(graph: Graph, source: int) -> np.ndarray:
    """The seed per-source frontier BFS, kept as the golden oracle.

    Batched :meth:`Graph.all_pairs_distances` is pinned bit-identical to
    this implementation by the golden tests, and the construction
    benchmark measures its per-source cost as the speedup baseline.
    """
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts = graph.indptr[frontier]
        stops = graph.indptr[frontier + 1]
        total = int((stops - starts).sum())
        if total == 0:
            break
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for s, t in zip(starts, stops):
            out[pos : pos + (t - s)] = graph.indices[s:t]
            pos += t - s
        cand = out[dist[out] < 0]
        if cand.size == 0:
            break
        cand = np.unique(cand)
        dist[cand] = level
        frontier = cand
    return dist
