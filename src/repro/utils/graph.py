"""A compact undirected-graph kernel shared by all subsystems.

The graph is stored in CSR form (``indptr``/``indices``), which keeps
neighbor iteration allocation-free and makes the BFS kernels below pure
numpy frontier expansions — no per-vertex Python objects, no adjacency
copies (guides: vectorize loops, prefer views over copies).

Only what the reproduction needs is implemented: construction from edge
lists, BFS distances, diameter / average shortest path length, connectivity,
edge removal (for failure sweeps), and triangle enumeration (for the
PolarFly structural theorems).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Graph"]


class Graph:
    """Immutable undirected simple graph over vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Duplicate edges are
        collapsed; the graph is simple and undirected.
    """

    __slots__ = ("n", "indptr", "indices", "_edge_array")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        self.n = int(n)
        edge_arr = np.asarray(
            [(u, v) if u < v else (v, u) for (u, v) in edges], dtype=np.int64
        )
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        else:
            if edge_arr.min() < 0 or edge_arr.max() >= self.n:
                raise ValueError("edge endpoint out of range")
            if np.any(edge_arr[:, 0] == edge_arr[:, 1]):
                raise ValueError("self-loops are not allowed")
            edge_arr = np.unique(edge_arr, axis=0)
        self._edge_array = edge_arr
        # Build CSR from the symmetrized edge list.
        src = np.concatenate([edge_arr[:, 0], edge_arr[:, 1]])
        dst = np.concatenate([edge_arr[:, 1], edge_arr[:, 0]])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        self.indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(self.indptr, src + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self.indices = dst

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency_matrix(cls, adj: np.ndarray) -> "Graph":
        """Build from a boolean/0-1 adjacency matrix (diagonal ignored)."""
        adj = np.asarray(adj)
        if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
            raise ValueError("adjacency matrix must be square")
        iu, ju = np.nonzero(np.triu(adj != 0, k=1))
        return cls(adj.shape[0], zip(iu.tolist(), ju.tolist()))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._edge_array.shape[0])

    def edges(self) -> np.ndarray:
        """The ``(m, 2)`` array of undirected edges with ``u < v`` (a view)."""
        return self._edge_array

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a CSR view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int | None = None):
        """Degree of ``v``, or the full degree vector when ``v`` is None."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def adjacency_matrix(self, dtype=bool) -> np.ndarray:
        """Dense adjacency matrix (freshly allocated)."""
        adj = np.zeros((self.n, self.n), dtype=dtype)
        e = self._edge_array
        adj[e[:, 0], e[:, 1]] = 1
        adj[e[:, 1], e[:, 0]] = 1
        return adj

    # ------------------------------------------------------------------
    # Shortest paths (unweighted)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Hop distances from ``source``; unreachable vertices get -1.

        Frontier-expansion BFS: each level gathers all neighbor slices of
        the current frontier in one vectorized pass.
        """
        dist = np.full(self.n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            # Gather all neighbors of the frontier in one shot.
            starts = self.indptr[frontier]
            stops = self.indptr[frontier + 1]
            total = int((stops - starts).sum())
            if total == 0:
                break
            out = np.empty(total, dtype=np.int64)
            pos = 0
            for s, t in zip(starts, stops):
                out[pos : pos + (t - s)] = self.indices[s:t]
                pos += t - s
            cand = out[dist[out] < 0]
            if cand.size == 0:
                break
            cand = np.unique(cand)
            dist[cand] = level
            frontier = cand
        return dist

    def distances_from(self, sources: Sequence[int]) -> np.ndarray:
        """Stacked BFS distances, one row per source."""
        return np.stack([self.bfs_distances(int(s)) for s in sources])

    def eccentricity(self, v: int) -> int:
        """Max distance from ``v``; -1 when the graph is disconnected."""
        dist = self.bfs_distances(v)
        if np.any(dist < 0):
            return -1
        return int(dist.max())

    def diameter(self, sample: int | None = None, rng=None) -> int:
        """Graph diameter; -1 when disconnected.

        ``sample`` limits the number of BFS sources (lower bound estimate)
        for large failure sweeps; exact when None.
        """
        sources = np.arange(self.n)
        if sample is not None and sample < self.n:
            from repro.utils.rng import make_rng

            sources = make_rng(rng).choice(self.n, size=sample, replace=False)
        worst = 0
        for s in sources:
            ecc = self.eccentricity(int(s))
            if ecc < 0:
                return -1
            worst = max(worst, ecc)
        return worst

    def average_shortest_path_length(
        self, sample: int | None = None, rng=None
    ) -> float:
        """Mean pairwise hop distance; ``inf`` when disconnected."""
        sources = np.arange(self.n)
        if sample is not None and sample < self.n:
            from repro.utils.rng import make_rng

            sources = make_rng(rng).choice(self.n, size=sample, replace=False)
        total = 0
        count = 0
        for s in sources:
            dist = self.bfs_distances(int(s))
            if np.any(dist < 0):
                return float("inf")
            total += int(dist.sum())
            count += self.n - 1
        return total / count if count else 0.0

    def is_connected(self) -> bool:
        """True iff every vertex is reachable from vertex 0."""
        if self.n == 0:
            return True
        return bool(np.all(self.bfs_distances(0) >= 0))

    # ------------------------------------------------------------------
    # Mutation-by-copy
    # ------------------------------------------------------------------
    def remove_edges(self, doomed: Iterable[tuple[int, int]]) -> "Graph":
        """Return a new graph with ``doomed`` edges removed."""
        doomed_set = {(u, v) if u < v else (v, u) for (u, v) in doomed}
        keep = [
            (int(u), int(v))
            for (u, v) in self._edge_array
            if (int(u), int(v)) not in doomed_set
        ]
        return Graph(self.n, keep)

    def subgraph_mask(self, mask: np.ndarray) -> "Graph":
        """Induced subgraph on vertices where ``mask`` is True (relabelled)."""
        mask = np.asarray(mask, dtype=bool)
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[mask] = np.arange(int(mask.sum()))
        kept = [
            (int(new_id[u]), int(new_id[v]))
            for (u, v) in self._edge_array
            if mask[u] and mask[v]
        ]
        return Graph(int(mask.sum()), kept)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def triangles(self) -> list[tuple[int, int, int]]:
        """All triangles as sorted vertex triples.

        Uses the standard forward-neighborhood intersection: for each edge
        ``(u, v)`` with ``u < v``, intersect the higher-numbered neighbors.
        """
        out: list[tuple[int, int, int]] = []
        for u, v in self._edge_array:
            nu = self.neighbors(int(u))
            nv = self.neighbors(int(v))
            common = np.intersect1d(
                nu[nu > v], nv[nv > v], assume_unique=True
            )
            for w in common:
                out.append((int(u), int(v), int(w)))
        return out

    def count_4cycles(self) -> int:
        """Number of quadrilaterals (4-cycles) in the graph.

        Counted via paths of length 2: an unordered pair with ``p2`` common
        neighbors contributes ``C(p2, 2)`` quadrilaterals, and every
        quadrilateral is seen by both of its diagonal pairs — hence the
        final halving.
        """
        adj = self.adjacency_matrix(dtype=np.int64)
        p2 = adj @ adj
        iu = np.triu_indices(self.n, k=1)
        c = p2[iu]
        return int((c * (c - 1) // 2).sum()) // 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.n}, m={self.num_edges})"
