"""Shared utilities: seeded RNG helpers, validation, and a compact graph kernel.

These helpers are deliberately dependency-light (numpy only) so every other
subpackage — topology construction, routing, the flit simulator, and the
structural analyses — can share one graph representation and one RNG policy.
"""

from repro.utils.rng import make_rng, derive_seed
from repro.utils.graph import Graph
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_in_range,
)
from repro.utils.export import (
    to_edge_list,
    to_dot,
    to_json,
    cabling_manifest,
    write_json_artifact,
    read_json_artifact,
)

__all__ = [
    "make_rng",
    "derive_seed",
    "Graph",
    "check_positive_int",
    "check_probability",
    "check_in_range",
    "to_edge_list",
    "to_dot",
    "to_json",
    "cabling_manifest",
    "write_json_artifact",
    "read_json_artifact",
]
