"""Topology export for deployment and visualization tooling.

Deployment teams consume wiring as flat files; this module serializes any
:class:`~repro.topologies.base.Topology` to an edge list, Graphviz DOT, or
a JSON document, and — for PolarFly with a layout — a per-rack cabling
manifest matching the paper's modular deployment story (Section V).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = [
    "to_edge_list",
    "to_dot",
    "to_json",
    "cabling_manifest",
    "write_json_artifact",
    "read_json_artifact",
    "payload_checksum",
    "CHECKSUM_KEY",
]

#: reserved key carrying an artifact's embedded payload checksum
CHECKSUM_KEY = "__sha256__"

# NOTE: this module deliberately avoids importing repro.topologies —
# utils must stay import-cycle-free since the topology layer builds on it.
# Functions accept any object with the Topology duck-type (name, graph,
# concentration, num_routers, network_radix).


def to_edge_list(topo) -> str:
    """One ``u v`` pair per line (undirected, u < v)."""
    return "\n".join(f"{u} {v}" for u, v in topo.graph.edges().tolist())


def to_dot(topo, name: "str | None" = None) -> str:
    """Graphviz DOT representation (undirected)."""
    safe = (name or topo.name).replace('"', "'")
    lines = [f'graph "{safe}" {{']
    for u, v in topo.graph.edges().tolist():
        lines.append(f"  {u} -- {v};")
    lines.append("}")
    return "\n".join(lines)


def to_json(topo) -> str:
    """JSON document: name, sizes, concentration, and edge list."""
    doc = {
        "name": topo.name,
        "num_routers": topo.num_routers,
        "network_radix": topo.network_radix,
        "concentration": topo.concentration.tolist(),
        "edges": topo.graph.edges().tolist(),
    }
    return json.dumps(doc, indent=2)


def payload_checksum(doc: dict) -> str:
    """sha256 over the canonical (sorted, compact) JSON form of ``doc``.

    Canonicalization makes the digest stable across the write/read round
    trip: ``repr``-serialized floats survive exactly, and key order or
    indentation cannot perturb it.
    """
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def write_json_artifact(path, doc: dict, checksum: bool = False) -> Path:
    """Atomically write ``doc`` as JSON to ``path``, creating parents.

    Write-then-rename so a crashed or concurrent writer can never leave a
    half-written artifact for a reader (the experiment result cache reads
    and writes these from parallel sweep workers).  With ``checksum``
    the document is stamped with a :data:`CHECKSUM_KEY` payload digest
    that :func:`read_json_artifact` verifies — catching corruption that
    still parses as JSON (partial truncation at a token boundary,
    bit rot, hand edits).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if checksum and isinstance(doc, dict):
        payload = {k: v for k, v in doc.items() if k != CHECKSUM_KEY}
        doc = {**payload, CHECKSUM_KEY: payload_checksum(payload)}
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def read_json_artifact(path) -> "dict | None":
    """Load a JSON artifact; ``None`` if missing, unparsable, or failing
    its embedded checksum.

    Corrupt artifacts — truncated writes from non-atomic third-party
    writers or disk-full crashes (``json.JSONDecodeError``), undecodable
    bytes, or a checksum mismatch — are treated as cache misses, never
    errors: the sweep runner re-simulates the cell instead of dying.
    Artifacts without a :data:`CHECKSUM_KEY` (pre-checksum writers,
    plain exports) are returned as-is.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        # ValueError covers json.JSONDecodeError (truncated/garbled
        # JSON) and UnicodeDecodeError (binary junk) alike.
        return None
    if isinstance(doc, dict) and CHECKSUM_KEY in doc:
        expected = doc.pop(CHECKSUM_KEY)
        if payload_checksum(doc) != expected:
            return None
    return doc


def cabling_manifest(layout) -> dict:
    """Per-rack cabling plan for a PolarFly cluster layout.

    Returns intra-rack edges per rack plus the inter-rack bundles (the
    q-2 / q+1 link groups the paper suggests bundling into multi-core
    fibers).
    """
    racks = {}
    for i in range(layout.num_clusters):
        racks[i] = {
            "members": layout.cluster(i).tolist(),
            "intra_links": layout.intra_cluster_edges(i),
        }
    bundles = {}
    for i in range(layout.num_clusters):
        for j in range(i + 1, layout.num_clusters):
            bundles[f"{i}-{j}"] = layout.inter_cluster_edges(i, j)
    return {"racks": racks, "bundles": bundles}
