"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations

__all__ = ["check_positive_int", "check_probability", "check_in_range"]


def check_positive_int(value, name: str) -> int:
    """Return ``value`` as ``int`` if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{name} must be a positive integer, got {value!r}")
        if ivalue != value:
            raise TypeError(f"{name} must be a positive integer, got {value!r}")
        value = ivalue
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value, name: str) -> float:
    """Return ``value`` as ``float`` if it lies in [0, 1], else raise."""
    fvalue = float(value)
    if not (0.0 <= fvalue <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return fvalue


def check_in_range(value, lo, hi, name: str):
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value
