"""Spectral structure and expansion (paper Sections IX-A/IX-B).

The paper attributes PolarFly's high bisection and resilience to its
expander-like structure ("enforcing an almost Moore Bound spanning tree
view from each vertex").  This module makes that quantitative:

* the incidence graph B(q) is (q+1)-regular with adjacency spectrum
  ``{±(q+1), ±sqrt(q)}`` — a Ramanujan-quality gap, verified exactly;
* ER_q itself (mildly irregular at the quadrics) has second eigenvalue
  ~sqrt(q) as well; :func:`spectral_expansion` measures the gap and
  :func:`cheeger_lower_bound` converts it into an edge-expansion
  guarantee, which the Figure 12 bisection numbers must respect.
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = [
    "adjacency_spectrum",
    "spectral_expansion",
    "cheeger_lower_bound",
    "is_ramanujan_spectrum",
]


def _graph(topo_or_graph) -> Graph:
    return (
        topo_or_graph.graph
        if isinstance(topo_or_graph, Topology)
        else topo_or_graph
    )


def adjacency_spectrum(topo_or_graph) -> np.ndarray:
    """Adjacency eigenvalues, descending."""
    graph = _graph(topo_or_graph)
    vals = np.linalg.eigvalsh(graph.adjacency_matrix(dtype=np.float64))
    return vals[::-1]


def spectral_expansion(topo_or_graph) -> dict[str, float]:
    """Spectral-gap summary: ``lambda1``, ``lambda2``, and their gap.

    ``lambda2`` here is the largest *non-principal* eigenvalue magnitude
    (the expansion-relevant quantity for near-regular graphs).
    """
    vals = adjacency_spectrum(topo_or_graph)
    lam1 = float(vals[0])
    rest = np.abs(vals[1:])
    lam2 = float(rest.max()) if rest.size else 0.0
    return {"lambda1": lam1, "lambda2": lam2, "gap": lam1 - lam2}


def cheeger_lower_bound(topo_or_graph) -> float:
    """Cheeger-style lower bound on edge expansion: ``(d - lambda2)/2``.

    For a d-regular graph every balanced cut has at least
    ``(d - lambda2)/2 * n/2`` edges; near-regular ER_q obeys it with d
    the mean degree.
    """
    graph = _graph(topo_or_graph)
    d = float(graph.degree().mean())
    lam2 = spectral_expansion(graph)["lambda2"]
    return max(0.0, (d - lam2) / 2.0)


def is_ramanujan_spectrum(topo_or_graph, tol: float = 1e-6) -> bool:
    """True iff all non-principal eigenvalues fit |lam| <= 2 sqrt(d-1).

    The Ramanujan optimality criterion for d-regular graphs; B(q) and the
    (bipartite-adjusted) ER graphs satisfy it comfortably since their
    second eigenvalue is ~sqrt(q) << 2 sqrt(q).
    """
    graph = _graph(topo_or_graph)
    d = float(graph.degree().mean())
    vals = adjacency_spectrum(graph)
    bound = 2.0 * np.sqrt(max(d - 1.0, 0.0)) + tol
    nonprincipal = vals[1:]
    # For bipartite graphs -d is a legitimate principal pair; exclude it.
    mags = np.abs(nonprincipal[np.abs(np.abs(nonprincipal) - d) > tol])
    return bool(np.all(mags <= bound))
