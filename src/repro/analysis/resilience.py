"""Fault tolerance under random link failures (Figure 14, Section IX-B).

Reproduces the paper's methodology: remove random links in steps, tracking
network diameter and average shortest path length until disconnection.
The paper runs 100 random sweeps and reports the run with the *median
disconnection ratio* (means are undefined once any run disconnects, since
the diameter becomes infinite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topologies.base import Topology
from repro.utils.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["FailureSweep", "link_failure_sweep", "median_disconnection_sweep"]


@dataclass
class FailureSweep:
    """One progressive link-failure run.

    ``ratios[i]`` is the fraction of links removed at step ``i``;
    ``diameters[i]`` / ``aspl[i]`` the metrics of the surviving graph
    (-1 / inf once disconnected).  ``disconnection_ratio`` is the failure
    fraction at which the network first disconnected (1.0 if it never
    did within the sweep).
    """

    ratios: np.ndarray
    diameters: np.ndarray
    aspl: np.ndarray

    @property
    def disconnection_ratio(self) -> float:
        bad = np.flatnonzero(self.diameters < 0)
        return float(self.ratios[bad[0]]) if bad.size else 1.0


def link_failure_sweep(
    topo_or_graph,
    steps=None,
    seed=0,
    sample_sources: "int | None" = None,
    stop_on_disconnect: bool = True,
) -> FailureSweep:
    """Remove links progressively (one random order) and record metrics.

    Parameters
    ----------
    steps:
        Failure-ratio checkpoints (default ``0, 0.05, ..., 0.95``).
    sample_sources:
        BFS source sampling for diameter/ASPL on large graphs (exact
        when None).  Sampled mode draws *one* source set per checkpoint,
        shared by both metrics.
    stop_on_disconnect:
        End the sweep at the first disconnected checkpoint (the paper's
        plots stop there too).
    """
    graph: Graph = (
        topo_or_graph.graph
        if isinstance(topo_or_graph, Topology)
        else topo_or_graph
    )
    if steps is None:
        steps = np.arange(0.0, 1.0, 0.05)
    rng = make_rng(seed)
    edges = graph.edges()
    order = rng.permutation(edges.shape[0])
    ratios, diams, aspls = [], [], []
    for ratio in steps:
        kill = int(round(ratio * edges.shape[0]))
        # The doomed set ships as an array slice: remove_edges and the
        # Graph constructor both take the vectorized path, so a
        # checkpoint costs no Python loop over the edge set — and both
        # metrics come out of one batched all-pairs BFS pass instead of
        # a pass each.
        g = graph.remove_edges(edges[order[:kill]])
        d, aspl = g.diameter_and_aspl(sample=sample_sources, rng=rng)
        ratios.append(float(ratio))
        diams.append(d)
        aspls.append(aspl)
        if d < 0 and stop_on_disconnect:
            break
    return FailureSweep(
        np.array(ratios), np.array(diams), np.array(aspls)
    )


def median_disconnection_sweep(
    topo_or_graph,
    runs: int = 10,
    steps=None,
    seed=0,
    sample_sources: "int | None" = None,
) -> FailureSweep:
    """The paper's reporting rule: the run with median disconnection ratio.

    Runs ``runs`` independent sweeps (the paper uses 100; scale with your
    budget), ranks them by disconnection ratio, and returns a run whose
    ratio is the median.
    """
    rng = make_rng(seed)
    sweeps = [
        link_failure_sweep(
            topo_or_graph,
            steps=steps,
            seed=rng,
            sample_sources=sample_sources,
        )
        for _ in range(runs)
    ]
    ranked = sorted(sweeps, key=lambda s: s.disconnection_ratio)
    return ranked[len(ranked) // 2]
