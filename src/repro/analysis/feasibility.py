"""Design-space feasibility (Figure 1, Figure 2, Table I).

* Figure 1 counts how many network radixes below a ceiling each topology
  family can realize: PolarFly needs ``k - 1`` to be a prime power; Slim
  Fly needs a prime power ``q = 4w + delta`` with ``k = (3q - delta)/2``;
  "PolarFly+" additionally counts radixes reachable by incremental
  expansion (quadric replication raises the max radix by one per step, so
  any radix >= a feasible base radix is reachable — the paper's point is
  the union of base designs and their expansions).
* Figure 2 plots achieved fraction of the diameter-2 Moore bound vs
  degree for PolarFly, Slim Fly, HyperX(L=2) and the Moore graphs.
* Table I is the qualitative criteria matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core.polarfly import feasible_q_for_radix, polarfly_order
from repro.fields.primes import is_prime_power
from repro.topologies.hyperx import hyperx_order, hyperx_radix
from repro.topologies.moore import moore_bound_diameter2
from repro.topologies.slimfly import feasible_slimfly_q, slimfly_order

__all__ = [
    "polarfly_feasible_radixes",
    "slimfly_feasible_radixes",
    "polarfly_plus_feasible_radixes",
    "feasible_radix_counts",
    "moore_efficiency_curve",
    "FEASIBILITY_TABLE",
]


def polarfly_feasible_radixes(max_radix: int) -> list[int]:
    """Radixes ``k <= max_radix`` with ``k - 1`` a prime power."""
    return [k for k in range(3, max_radix + 1) if feasible_q_for_radix(k)]


def slimfly_feasible_radixes(max_radix: int) -> list[int]:
    """Radixes ``k <= max_radix`` realizable by an MMS Slim Fly."""
    return [k for k in range(3, max_radix + 1) if feasible_slimfly_q(k)]


def polarfly_plus_feasible_radixes(max_radix: int) -> list[int]:
    """PolarFly+ (Figure 1): base radixes plus expansion-reachable ones.

    One quadric-replication step raises the binding V1-vertex radix by 2
    without rewiring (Section VI-A), so a deployment can also sit at
    radix ``k_base + 2`` for every feasible base design.  This matches the
    paper's PolarFly+ bar exactly at radix <= 16 and within 1-2 designs at
    the larger ceilings (the paper does not spell out its exact counting
    rule; see EXPERIMENTS.md).
    """
    base = set(polarfly_feasible_radixes(max_radix))
    out = set(base)
    for kb in base:
        if kb + 2 <= max_radix:
            out.add(kb + 2)
    return sorted(out)


def feasible_radix_counts(ceilings=(16, 32, 48, 64, 96, 128)) -> dict:
    """Figure 1's bar data: counts per radix ceiling for SF / PF / PF+."""
    return {
        "ceilings": list(ceilings),
        "SlimFly": [len(slimfly_feasible_radixes(c)) for c in ceilings],
        "PolarFly": [len(polarfly_feasible_radixes(c)) for c in ceilings],
        "PolarFly+": [len(polarfly_plus_feasible_radixes(c)) for c in ceilings],
    }


def moore_efficiency_curve(max_degree: int = 128) -> dict[str, list[tuple[int, float]]]:
    """Figure 2: (degree, % of diameter-2 Moore bound) per topology family."""
    curves: dict[str, list[tuple[int, float]]] = {
        "PolarFly": [],
        "SlimFly": [],
        "HyperX": [],
        "Moore graphs": [(3, 1.0), (7, 1.0)],  # Petersen, Hoffman-Singleton
    }
    for k in range(3, max_degree + 1):
        q = feasible_q_for_radix(k)
        if q:
            curves["PolarFly"].append((k, polarfly_order(q) / moore_bound_diameter2(k)))
        qs = feasible_slimfly_q(k)
        if qs:
            curves["SlimFly"].append((k, slimfly_order(qs) / moore_bound_diameter2(k)))
    for S in range(2, max_degree // 2 + 2):
        k = hyperx_radix(2, S)
        if 3 <= k <= max_degree:
            curves["HyperX"].append((k, hyperx_order(2, S) / moore_bound_diameter2(k)))
    return curves


#: Table I — criteria support per topology ("full" / "partial" / "no").
FEASIBILITY_TABLE = {
    "Fat tree": {
        "direct": "no",
        "modular": "full",
        "expandable": "full",
        "flexible": "full",
        "diameter2": "no",
    },
    "Dragonfly": {
        "direct": "partial",
        "modular": "full",
        "expandable": "full",
        "flexible": "partial",
        "diameter2": "no",
    },
    "HyperX": {
        "direct": "partial",
        "modular": "full",
        "expandable": "full",
        "flexible": "partial",
        "diameter2": "full",
    },
    "OFT": {
        "direct": "no",
        "modular": "partial",
        "expandable": "no",
        "flexible": "full",
        "diameter2": "full",
    },
    "MLFM": {
        "direct": "no",
        "modular": "full",
        "expandable": "no",
        "flexible": "partial",
        "diameter2": "full",
    },
    "Slim Fly": {
        "direct": "full",
        "modular": "full",
        "expandable": "partial",
        "flexible": "partial",
        "diameter2": "full",
    },
    "PolarFly": {
        "direct": "full",
        "modular": "full",
        "expandable": "partial",
        "flexible": "full",
        "diameter2": "full",
    },
}
