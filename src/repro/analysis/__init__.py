"""Structural and cost analyses backing the paper's evaluation figures.

Bisection bandwidth (Fig 12), link-failure resilience (Fig 14), path
diversity (Table VI), the OIO cost model (Fig 15), and design-space
feasibility (Figs 1-2, Table I).
"""

from repro.analysis.bisection import (
    spectral_bisection,
    kernighan_lin_refine,
    bisection_cut,
    bisection_fraction,
)
from repro.analysis.resilience import (
    FailureSweep,
    link_failure_sweep,
    median_disconnection_sweep,
)
from repro.analysis.path_diversity import (
    PairCase,
    classify_pair,
    exact_path_counts,
    paper_path_counts,
    observed_path_counts,
    observed_counts_avoiding_midpoint,
)
from repro.analysis.cost import (
    CostModel,
    TopologyCost,
    cost_comparison,
    NORMALIZED_COSTS,
)
from repro.analysis.node_resilience import (
    remove_nodes,
    node_failure_diameter,
    node_failure_sweep,
)
from repro.analysis.feasibility import (
    polarfly_feasible_radixes,
    slimfly_feasible_radixes,
    polarfly_plus_feasible_radixes,
    feasible_radix_counts,
    moore_efficiency_curve,
    FEASIBILITY_TABLE,
)

__all__ = [
    "spectral_bisection",
    "kernighan_lin_refine",
    "bisection_cut",
    "bisection_fraction",
    "FailureSweep",
    "link_failure_sweep",
    "median_disconnection_sweep",
    "PairCase",
    "classify_pair",
    "exact_path_counts",
    "paper_path_counts",
    "observed_path_counts",
    "observed_counts_avoiding_midpoint",
    "CostModel",
    "TopologyCost",
    "cost_comparison",
    "NORMALIZED_COSTS",
    "remove_nodes",
    "node_failure_diameter",
    "node_failure_sweep",
    "polarfly_feasible_radixes",
    "slimfly_feasible_radixes",
    "polarfly_plus_feasible_radixes",
    "feasible_radix_counts",
    "moore_efficiency_curve",
    "FEASIBILITY_TABLE",
]
