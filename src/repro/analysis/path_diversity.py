"""Path diversity in ER_q (Table VI, Section IX-B).

Table VI gives, for every structural case of a vertex pair ``(v, w)``, the
number of paths of lengths 1-4 connecting them; this is what explains why
PolarFly's diameter stays at 4 beyond 50% link failure.

Two count families are provided:

* :func:`exact_path_counts` — exact closed forms for the number of
  *simple paths*, derived here and verified against brute-force
  enumeration for q in {5, 7, 9, 11} (tests re-verify).
* :func:`paper_path_counts` — the table as printed in the paper.  Its
  length-3 row counts paths *avoiding the unique minimal-path midpoint*
  ``x`` (the fault-tolerance-relevant alternatives); with that reading it
  matches enumeration exactly.  Its length-4 entries agree with the exact
  counts in the six non-quadric-endpoint cases and differ by O(q) in the
  three quadric-endpoint cases — all are Theta(q^2), which is the property
  the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.polarfly import PolarFly
from repro.routing.paths import count_paths_of_length, enumerate_paths

__all__ = [
    "PairCase",
    "classify_pair",
    "exact_path_counts",
    "paper_path_counts",
    "observed_path_counts",
    "observed_counts_avoiding_midpoint",
]


@dataclass(frozen=True)
class PairCase:
    """Structural description of a vertex pair used by Table VI."""

    adjacent: bool
    class_v: str  # "W", "V1" or "V2" — sorted so class_v <= class_w
    class_w: str
    intermediate_is_quadric: "bool | None"  # None when adjacent


def classify_pair(pf: PolarFly, v: int, w: int) -> PairCase:
    """Classify ``(v, w)`` into its Table VI case."""
    if v == w:
        raise ValueError("pair must be distinct")
    adjacent = pf.are_adjacent(v, w)
    cls_v, cls_w = sorted((pf.vertex_class(v), pf.vertex_class(w)))
    mid_quadric: "bool | None" = None
    if not adjacent:
        mid = pf.intermediate(v, w)
        mid_quadric = pf.is_quadric(mid)
    return PairCase(adjacent, cls_v, cls_w, mid_quadric)


def exact_path_counts(q: int, case: PairCase) -> dict[int, int]:
    """Exact simple-path counts for lengths 1-4 in ER_q (odd prime power).

    Closed forms fitted from and verified against exhaustive enumeration;
    see the module docstring for how they relate to the paper's table.
    """
    quadric_involved = "W" in (case.class_v, case.class_w)
    counts = {1: 1 if case.adjacent else 0}
    if case.adjacent:
        counts[2] = 0 if quadric_involved else 1
        counts[3] = 0
        counts[4] = q * q - q if quadric_involved else (q - 1) ** 2
        return counts
    counts[2] = 1
    key = (case.class_v, case.class_w)
    if key == ("W", "W"):
        counts[3] = q - 1
        counts[4] = (q - 1) ** 2
    elif key == ("V1", "W"):
        counts[3] = q
        counts[4] = q * q - q - 2
    elif key == ("V2", "W"):
        counts[3] = q
        counts[4] = q * q - q
    elif key == ("V1", "V1"):
        if case.intermediate_is_quadric:
            counts[3] = q
            counts[4] = q * q - 2
        else:
            counts[3] = q + 1
            counts[4] = q * q - 4
    elif key == ("V1", "V2"):
        counts[3] = q + 1
        counts[4] = q * q - 2
    elif key == ("V2", "V2"):
        counts[3] = q + 1
        counts[4] = q * q
    else:  # pragma: no cover - cases above are exhaustive
        raise AssertionError(f"unhandled case {case}")
    return counts


def paper_path_counts(q: int, case: PairCase) -> dict[int, int]:
    """Table VI exactly as printed in the paper.

    Length-3 entries count paths avoiding the minimal-path midpoint;
    length-4 entries are the paper's values (exact for non-quadric
    endpoint cases).
    """
    quadric_involved = "W" in (case.class_v, case.class_w)
    both_quadric = case.class_v == "W" and case.class_w == "W"
    counts = {1: 1 if case.adjacent else 0}
    if case.adjacent:
        counts[2] = 0 if quadric_involved else 1
        counts[3] = 0
        counts[4] = q * q - q if quadric_involved else (q - 1) ** 2
        return counts
    counts[2] = 1
    counts[3] = q if case.intermediate_is_quadric else q - 1
    key = (case.class_v, case.class_w)
    if both_quadric:
        counts[4] = q * q - q
    elif key == ("V1", "W"):
        counts[4] = q * q - 3
    elif key == ("V1", "V1"):
        counts[4] = q * q - 2 if case.intermediate_is_quadric else q * q - 4
    elif key == ("V1", "V2"):
        counts[4] = q * q - 2
    elif key == ("V2", "W"):
        counts[4] = q * q - 1
    elif key == ("V2", "V2"):
        counts[4] = q * q
    else:  # pragma: no cover
        raise AssertionError(f"unhandled case {case}")
    return counts


def observed_path_counts(
    pf: PolarFly, v: int, w: int, max_length: int = 4
) -> dict[int, int]:
    """Exact simple-path counts between ``v`` and ``w`` by enumeration."""
    return {
        length: count_paths_of_length(pf.graph, v, w, length)
        for length in range(1, max_length + 1)
    }


def observed_counts_avoiding_midpoint(
    pf: PolarFly, v: int, w: int, max_length: int = 4
) -> dict[int, int]:
    """Simple-path counts excluding paths through the minimal midpoint.

    Only defined for non-adjacent pairs; this is the reading under which
    the paper's length-3 row is exact.
    """
    if pf.are_adjacent(v, w):
        raise ValueError("midpoint avoidance defined for non-adjacent pairs")
    mid = pf.intermediate(v, w)
    out = {}
    for length in range(1, max_length + 1):
        paths = enumerate_paths(pf.graph, v, w, length)
        out[length] = sum(1 for p in paths if mid not in p[1:-1])
    return out
