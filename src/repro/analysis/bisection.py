"""Bisection bandwidth via balanced graph partitioning (Figure 12).

The paper uses METIS; we substitute the two classic heuristics METIS is
built from: a spectral (Fiedler-vector) initial split refined by
Kernighan-Lin passes.  The metric reported is the paper's: edges crossing
the best balanced bisection found, normalized by total edges.
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Topology
from repro.utils.graph import Graph
from repro.utils.rng import make_rng

__all__ = [
    "spectral_bisection",
    "kernighan_lin_refine",
    "bisection_cut",
    "bisection_fraction",
]


def spectral_bisection(graph: Graph, weights=None) -> np.ndarray:
    """Weight-balanced split from the Fiedler vector of the Laplacian.

    ``weights`` (default: all ones) is what the split balances — for
    indirect topologies the natural choice is endpoints per switch, so the
    bisection separates half the *compute* from the other half rather
    than half the switches.  Vertices are sorted by Fiedler value and the
    prefix holding half the total weight forms side 0.
    """
    adj = graph.adjacency_matrix(dtype=np.float64)
    deg = adj.sum(axis=1)
    lap = np.diag(deg) - adj
    # Dense symmetric eigensolve: topologies here are <= a few thousand
    # vertices, well within dense range.
    vals, vecs = np.linalg.eigh(lap)
    fiedler = vecs[:, np.argsort(vals)[1]]
    order = np.argsort(fiedler, kind="stable")
    if weights is None:
        weights = np.ones(graph.n)
    weights = np.asarray(weights, dtype=np.float64)
    half = weights.sum() / 2
    side = np.zeros(graph.n, dtype=bool)
    acc = 0.0
    for pos, v in enumerate(order):
        if acc >= half:
            side[order[pos:]] = True
            break
        acc += weights[v]
    return side


def _cut_size(graph: Graph, side: np.ndarray) -> int:
    e = graph.edges()
    return int(np.count_nonzero(side[e[:, 0]] != side[e[:, 1]]))


def kernighan_lin_refine(
    graph: Graph, side: np.ndarray, max_passes: int = 8, weights=None
) -> np.ndarray:
    """Kernighan-Lin refinement of a balanced bisection.

    Classic pairwise-swap passes: repeatedly compute vertex gains
    (external minus internal degree), greedily swap the best
    cross-partition pairs with locking, and keep the best prefix of the
    swap sequence.  Stops when a pass yields no improvement.  When
    ``weights`` is given, only equal-weight pairs may swap, so the weight
    balance of the input split is preserved exactly.
    """
    side = side.copy()
    n = graph.n
    adj = graph.adjacency_matrix(dtype=np.int64)
    if weights is not None:
        weights = np.asarray(weights)
    for _ in range(max_passes):
        # D[v] = external - internal degree under the current partition.
        same = side[None, :] == side[:, None]
        internal = (adj * same).sum(axis=1)
        external = (adj * ~same).sum(axis=1)
        D = external - internal
        locked = np.zeros(n, dtype=bool)
        swaps: list[tuple[int, int, int]] = []
        total_gain = 0
        work_side = side.copy()
        for _step in range(n // 2):
            a_cand = np.flatnonzero(~locked & ~work_side)
            b_cand = np.flatnonzero(~locked & work_side)
            if a_cand.size == 0 or b_cand.size == 0:
                break
            # Best pair by gain D[a] + D[b] - 2*adj[a,b]; evaluate against
            # the top few candidates on each side to stay near O(n log n).
            # With weights, only equal-weight swaps keep the balance.
            best = None
            classes = (
                [None]
                if weights is None
                else np.unique(weights[np.concatenate([a_cand, b_cand])])
            )
            for wclass in classes:
                ac = a_cand if wclass is None else a_cand[weights[a_cand] == wclass]
                bc = b_cand if wclass is None else b_cand[weights[b_cand] == wclass]
                if ac.size == 0 or bc.size == 0:
                    continue
                top_a = ac[np.argsort(D[ac])[-8:]]
                top_b = bc[np.argsort(D[bc])[-8:]]
                gains = (
                    D[top_a][:, None]
                    + D[top_b][None, :]
                    - 2 * adj[np.ix_(top_a, top_b)]
                )
                ai, bi = np.unravel_index(np.argmax(gains), gains.shape)
                cand = (int(gains[ai, bi]), int(top_a[ai]), int(top_b[bi]))
                if best is None or cand[0] > best[0]:
                    best = cand
            if best is None:
                break
            gain, a, b = best
            locked[a] = locked[b] = True
            total_gain += gain
            swaps.append((a, b, total_gain))
            # Update D for unlocked vertices (standard KL update).
            nb_a, nb_b = adj[a] > 0, adj[b] > 0
            unlocked = ~locked
            same_a = work_side == work_side[a]
            D += np.where(
                nb_a & unlocked, np.where(same_a, 2, -2) * adj[:, a], 0
            )
            same_b = work_side == work_side[b]
            D += np.where(
                nb_b & unlocked, np.where(same_b, 2, -2) * adj[:, b], 0
            )
            work_side[a], work_side[b] = work_side[b], work_side[a]
        if not swaps:
            break
        best_prefix = int(np.argmax([g for (_, _, g) in swaps]))
        if swaps[best_prefix][2] <= 0:
            break
        for a, b, _ in swaps[: best_prefix + 1]:
            side[a], side[b] = side[b], side[a]
    return side


def _graph_and_weights(topo_or_graph):
    if isinstance(topo_or_graph, Topology):
        graph = topo_or_graph.graph
        conc = topo_or_graph.concentration
        # Indirect topologies: balance compute endpoints, not switches.
        weights = conc if conc.sum() and (conc == 0).any() else None
        return graph, weights
    return topo_or_graph, None


def bisection_cut(
    topo_or_graph, refine: bool = True, seed=0
) -> tuple[np.ndarray, int]:
    """Best balanced bisection found; returns ``(side, cut_edges)``.

    For topologies whose endpoints sit on a subset of routers (fat trees),
    the balance constraint is endpoint weight; otherwise vertex count.
    """
    graph, weights = _graph_and_weights(topo_or_graph)
    side = spectral_bisection(graph, weights=weights)
    if refine:
        side = kernighan_lin_refine(graph, side, weights=weights)
    return side, _cut_size(graph, side)


def bisection_fraction(topo_or_graph, refine: bool = True) -> float:
    """Fraction of all links crossing the bisection (Figure 12's y-axis)."""
    graph, _ = _graph_and_weights(topo_or_graph)
    _, cut = bisection_cut(topo_or_graph, refine=refine)
    return cut / graph.num_edges
