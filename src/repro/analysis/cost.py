"""Network cost under iso-injection-bandwidth constraints (Section X, Fig 15).

The paper's cost indicator is the total number of optical IO (OIO) ports
per node at a ~1,024-node scale with equal injection bandwidth, divided by
the saturation throughput each network can actually deliver:

* **PolarFly** (q=31, 993 routers, radix 32) and **Slim Fly** (q=23, 1058
  routers, radix 35) are direct co-packaged networks — their OIO ports are
  the network radix, normalized to a 1,024-node configuration.  Slim Fly's
  ~20% surcharge is exactly its larger radix-and-router count at iso-scale
  (the 8/9 Moore-bound fraction at work) plus its slightly lower
  saturation.
* **Dragonfly** needs 6 OIO modules / 48 links (diameter-3: a 1:3
  injection-to-network bandwidth ratio) and is bottlenecked by intra-group
  links under permutations (saturation ~1/3).
* **Fat tree**: shoreline limits switches to 32 links, so each switch
  hosts only two 16-link node connections, forcing the deep 10-level
  construction of 512 switches per level (256 at the top); nodes carry 2
  OIOs of injection on top.  Fat trees are nearly insensitive to
  permutations.

Saturation defaults follow the paper's text (~90% uniform for diameter-2
direct networks, ~50% under permutation with misrouting; Figure 8 for the
rest).  The resulting normalized costs land within ~10% of Figure 15's
published bars, which :data:`NORMALIZED_COSTS` records for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TopologyCost", "CostModel", "cost_comparison", "NORMALIZED_COSTS"]


@dataclass(frozen=True)
class TopologyCost:
    """Port accounting and achievable saturation for one topology."""

    name: str
    #: OIO ports per node, already normalized to the 1,024-node scale
    ports_per_node: float
    saturation_uniform: float
    saturation_permutation: float

    def cost_per_node(self, scenario: str) -> float:
        """Ports per node divided by achievable saturation."""
        sat = (
            self.saturation_uniform
            if scenario == "uniform"
            else self.saturation_permutation
        )
        return self.ports_per_node / sat


class CostModel:
    """Section X's concrete ~1,024-node configurations."""

    def __init__(self, nodes: int = 1024):
        self.nodes = nodes
        pf_ports = 32 * 993 / nodes       # q=31 PolarFly
        sf_ports = 35 * 1058 / nodes      # q=23 Slim Fly
        df_ports = 48 * 978 / nodes       # DF2-scale Dragonfly, 6 OIOs
        ft_switches = 512 * 9 + 256       # 10-level folded construction
        ft_ports = (16 * nodes + 32 * ft_switches) / nodes
        self.entries = {
            "PolarFly": TopologyCost("PolarFly", pf_ports, 0.90, 0.50),
            "Slim Fly": TopologyCost("Slim Fly", sf_ports, 0.85, 0.47),
            "Dragonfly": TopologyCost("Dragonfly", df_ports, 0.75, 1 / 3),
            "Fat-tree": TopologyCost("Fat-tree", ft_ports, 0.98, 0.98),
        }

    def normalized(self, scenario: str) -> dict[str, float]:
        """Cost per node normalized to PolarFly for ``scenario``."""
        base = self.entries["PolarFly"].cost_per_node(scenario)
        return {
            name: entry.cost_per_node(scenario) / base
            for name, entry in self.entries.items()
        }


#: Figure 15's published bars, for comparison in benches/EXPERIMENTS.md.
NORMALIZED_COSTS = {
    "uniform": {"PolarFly": 1.0, "Slim Fly": 1.24, "Dragonfly": 1.81, "Fat-tree": 5.19},
    "permutation": {"PolarFly": 1.0, "Slim Fly": 1.21, "Dragonfly": 2.25, "Fat-tree": 2.68},
}


def cost_comparison(nodes: int = 1024) -> dict[str, dict[str, float]]:
    """Model-predicted normalized costs for both traffic scenarios."""
    model = CostModel(nodes)
    return {
        "uniform": model.normalized("uniform"),
        "permutation": model.normalized("permutation"),
    }
