"""Router (node) failure analysis (paper Section IX-B, last paragraph).

The paper argues that a single node failure raises PolarFly's diameter
from 2 to exactly 3: the failed router x was the unique midpoint for the
pairs of its neighbors, but each neighbor of x retains 1- or 2-hop paths
to the others that avoid x.  This module measures that claim for any
topology, plus multi-node sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Topology
from repro.utils.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["remove_nodes", "node_failure_diameter", "node_failure_sweep"]


def remove_nodes(topo_or_graph, doomed) -> Graph:
    """Subgraph with the ``doomed`` routers (and their links) removed.

    Vertices are relabelled densely; use for metric computations, not
    identity-preserving routing.
    """
    graph = (
        topo_or_graph.graph
        if isinstance(topo_or_graph, Topology)
        else topo_or_graph
    )
    mask = np.ones(graph.n, dtype=bool)
    mask[list(doomed)] = False
    return graph.subgraph_mask(mask)


def node_failure_diameter(topo_or_graph, node: int) -> int:
    """Diameter after removing one router (-1 if disconnected)."""
    return remove_nodes(topo_or_graph, [node]).diameter()


def node_failure_sweep(
    topo_or_graph, counts, runs: int = 5, seed=0
) -> dict[int, list[int]]:
    """Diameters after removing ``c`` random routers, for each c in counts.

    Returns ``{count: [diameter per run]}`` (-1 marks disconnection).
    """
    graph = (
        topo_or_graph.graph
        if isinstance(topo_or_graph, Topology)
        else topo_or_graph
    )
    rng = make_rng(seed)
    out: dict[int, list[int]] = {}
    for c in counts:
        diams = []
        for _ in range(runs):
            doomed = rng.choice(graph.n, size=c, replace=False)
            diams.append(remove_nodes(graph, doomed).diameter())
        out[int(c)] = diams
    return out
