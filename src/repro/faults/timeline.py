"""Fault timelines: deterministic, seed-derived failure schedules.

A :class:`FaultTimeline` is an ordered list of :class:`FaultEvent`\\ s —
link down/up and router down/up at integer cycles — that both simulation
engines consume (see :mod:`repro.flitsim.engine` for the in-simulation
semantics).  Timelines are plain data: building one never touches the
simulator, and the same spec string always produces the same events, so
a fault scenario can be hashed into an experiment cell exactly like a
traffic pattern or a workload.

Generators registered in :data:`~repro.experiments.registry.FAULTS`
(factories take ``(topo, **kwargs)`` and return a timeline):

* ``linkflap`` — ``count`` random links fail together at ``cycle`` and
  (with ``duration > 0``) recover together: the minimal transient.
* ``mtbf`` — a random-link failure/repair process: network-wide
  failure inter-arrival times are exponential with mean ``mtbf``
  cycles, each failed link repairs after an exponential ``mttr`` draw
  (``mttr=0`` leaves failures permanent).
* ``routerdown`` — correlated router-radix failure: ``count`` random
  routers lose their whole radix at ``cycle`` (all incident links at
  once), optionally recovering after ``duration`` cycles.
* ``progressive`` — the paper's Figure-14 methodology made dynamic:
  remove a fixed fraction of links in equal batches at a fixed period,
  in seeded random order, never repairing.

Every generator is *connectivity-safe* by construction: candidate
victims whose removal would disconnect the surviving routers are
redrawn (and the failure skipped if no safe victim exists), so a
generated timeline never aborts the run the way an explicit
disconnecting timeline does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.registry import FAULTS
from repro.utils.rng import make_rng

__all__ = ["FaultEvent", "FaultTimeline", "LINK_KINDS", "ROUTER_KINDS"]

LINK_KINDS = ("link_down", "link_up")
ROUTER_KINDS = ("router_down", "router_up")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure or repair.

    ``u``/``v`` are the link's endpoints for link events; router events
    put the router id in ``u`` and leave ``v`` at -1.
    """

    cycle: int
    kind: str
    u: int
    v: int = -1

    def __post_init__(self):
        if self.kind not in LINK_KINDS + ROUTER_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("fault events need cycle >= 0")
        if self.kind in LINK_KINDS and (self.u < 0 or self.v < 0):
            raise ValueError("link events need both endpoints")
        if self.kind in ROUTER_KINDS and self.v != -1:
            raise ValueError("router events take a single router id in u")

    @property
    def link(self) -> tuple:
        """The event's link as a canonical ``(min, max)`` pair."""
        return (min(self.u, self.v), max(self.u, self.v))


class FaultTimeline:
    """An immutable, cycle-sorted schedule of fault events.

    ``retransmit`` selects the closed-loop drop semantics: when True
    (default), a workload packet whose tail flit is lost re-enters the
    network at its source on the next cycle; open-loop runs ignore it.
    The sort is stable, so same-cycle events keep their given order.
    """

    def __init__(self, events, name: str = "faults", retransmit: bool = True):
        events = tuple(
            e if isinstance(e, FaultEvent) else FaultEvent(*e) for e in events
        )
        self.events = tuple(sorted(events, key=lambda e: e.cycle))
        self.name = str(name)
        self.retransmit = bool(retransmit)

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def event_cycles(self) -> tuple:
        """Distinct event cycles, ascending (the epoch boundaries)."""
        return tuple(sorted({e.cycle for e in self.events}))

    @property
    def first_event_cycle(self) -> int:
        """Cycle of the earliest event (-1 for an empty timeline)."""
        return self.events[0].cycle if self.events else -1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultTimeline({self.name!r}, events={len(self.events)}, "
            f"retransmit={self.retransmit})"
        )


# ----------------------------------------------------------------------
# Connectivity-safe victim selection
# ----------------------------------------------------------------------
def _alive_connected(graph, dead_links, dead_routers) -> bool:
    """True iff the surviving routers still form one component."""
    g = graph
    if dead_links:
        g = g.remove_edges(np.asarray(sorted(dead_links), dtype=np.int64))
    if dead_routers:
        mask = np.ones(g.n, dtype=bool)
        mask[np.asarray(sorted(dead_routers), dtype=np.int64)] = False
        g = g.subgraph_mask(mask)
    return g.n == 0 or g.is_connected()


def _draw_safe_link(rng, graph, dead_links, dead_routers, tries: int = 24):
    """A random alive link whose removal keeps survivors connected.

    Returns ``None`` when ``tries`` draws find no safe victim (the
    generator then skips that failure rather than disconnecting).
    """
    alive = [
        (int(u), int(v))
        for u, v in graph.edges()
        if (int(u), int(v)) not in dead_links
        and int(u) not in dead_routers
        and int(v) not in dead_routers
    ]
    for _ in range(tries):
        if not alive:
            return None
        pick = alive[int(rng.integers(len(alive)))]
        if _alive_connected(graph, dead_links | {pick}, dead_routers):
            return pick
        alive.remove(pick)
    return None


def _draw_safe_router(rng, graph, dead_links, dead_routers, tries: int = 24):
    """A random alive router whose loss keeps survivors connected."""
    alive = sorted(set(range(graph.n)) - set(dead_routers))
    for _ in range(tries):
        if not alive:
            return None
        pick = alive[int(rng.integers(len(alive)))]
        if _alive_connected(graph, dead_links, dead_routers | {pick}):
            return pick
        alive.remove(pick)
    return None


# ----------------------------------------------------------------------
# Registered generators — factories take (topo, **kwargs)
# ----------------------------------------------------------------------
@FAULTS.register("linkflap", example="linkflap:count=2,cycle=300,duration=300,seed=1")
def linkflap(
    topo,
    cycle: int = 300,
    count: int = 1,
    duration: int = 0,
    seed: int = 0,
    retransmit: bool = True,
) -> FaultTimeline:
    """``count`` random links down at ``cycle``, back up after ``duration``."""
    if cycle < 0 or count < 0 or duration < 0:
        raise ValueError("linkflap needs cycle, count, duration >= 0")
    rng = make_rng(int(seed))
    dead: set = set()
    events = []
    for _ in range(int(count)):
        pick = _draw_safe_link(rng, topo.graph, dead, set())
        if pick is None:
            break
        dead.add(pick)
        events.append(FaultEvent(int(cycle), "link_down", *pick))
        if duration > 0:
            events.append(FaultEvent(int(cycle + duration), "link_up", *pick))
    return FaultTimeline(events, name="linkflap", retransmit=retransmit)


@FAULTS.register("mtbf", example="mtbf:count=3,mtbf=300,mttr=250,seed=2,start=150")
def mtbf_process(
    topo,
    mtbf: float = 500.0,
    mttr: float = 0.0,
    count: int = 3,
    start: int = 100,
    seed: int = 0,
    retransmit: bool = True,
) -> FaultTimeline:
    """Random-link MTBF failure process with optional exponential repair."""
    if mtbf <= 0 or mttr < 0 or count < 0 or start < 0:
        raise ValueError("mtbf needs mtbf > 0 and mttr, count, start >= 0")
    rng = make_rng(int(seed))
    graph = topo.graph
    events = []
    dead: set = set()
    repairs: list = []  # (cycle, link) pending, kept sorted
    t = int(start)
    for i in range(int(count)):
        t += max(1, int(round(rng.exponential(float(mtbf))))) if i else 0
        # Apply repairs that land before this failure.
        repairs.sort()
        while repairs and repairs[0][0] <= t:
            r_cycle, link = repairs.pop(0)
            dead.discard(link)
            events.append(FaultEvent(r_cycle, "link_up", *link))
        pick = _draw_safe_link(rng, graph, dead, set())
        if pick is None:
            continue
        dead.add(pick)
        events.append(FaultEvent(t, "link_down", *pick))
        if mttr > 0:
            repairs.append(
                (t + max(1, int(round(rng.exponential(float(mttr))))), pick)
            )
    for r_cycle, link in sorted(repairs):
        events.append(FaultEvent(r_cycle, "link_up", *link))
    return FaultTimeline(events, name="mtbf", retransmit=retransmit)


@FAULTS.register("routerdown", example="routerdown:cycle=350,count=1,duration=400,seed=3")
def routerdown(
    topo,
    cycle: int = 300,
    count: int = 1,
    duration: int = 0,
    seed: int = 0,
    retransmit: bool = True,
) -> FaultTimeline:
    """Correlated radix loss: ``count`` random routers fail together."""
    if cycle < 0 or count < 0 or duration < 0:
        raise ValueError("routerdown needs cycle, count, duration >= 0")
    rng = make_rng(int(seed))
    dead: set = set()
    events = []
    for _ in range(int(count)):
        pick = _draw_safe_router(rng, topo.graph, set(), dead)
        if pick is None:
            break
        dead.add(pick)
        events.append(FaultEvent(int(cycle), "router_down", pick))
        if duration > 0:
            events.append(FaultEvent(int(cycle + duration), "router_up", pick))
    return FaultTimeline(events, name="routerdown", retransmit=retransmit)


@FAULTS.register(
    "progressive", example="progressive:frac=0.08,steps=3,period=200,start=200,seed=4"
)
def progressive(
    topo,
    frac: float = 0.1,
    steps: int = 4,
    period: int = 250,
    start: int = 250,
    seed: int = 0,
    retransmit: bool = True,
) -> FaultTimeline:
    """Figure-14 progressive link removal as a live schedule.

    ``floor(frac * links)`` links die in ``steps`` equal batches, one
    batch every ``period`` cycles starting at ``start``; no repairs.
    """
    if not 0.0 <= frac <= 1.0:
        raise ValueError("progressive needs frac in [0, 1]")
    if steps < 1 or period < 1 or start < 0:
        raise ValueError("progressive needs steps, period >= 1 and start >= 0")
    rng = make_rng(int(seed))
    graph = topo.graph
    total = int(frac * graph.num_edges)
    per_step = -(-total // int(steps)) if total else 0
    dead: set = set()
    events = []
    killed = 0
    for s in range(int(steps)):
        t = int(start + s * period)
        for _ in range(min(per_step, total - killed)):
            pick = _draw_safe_link(rng, graph, dead, set())
            if pick is None:
                break
            dead.add(pick)
            events.append(FaultEvent(t, "link_down", *pick))
            killed += 1
    return FaultTimeline(events, name="progressive", retransmit=retransmit)
