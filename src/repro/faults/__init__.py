"""repro.faults — dynamic fault injection for the live simulator.

Turns the paper's static Section IX-B resilience story (remove links,
recompute graph metrics) into *performance under failure*: deterministic
seed-derived :class:`FaultTimeline`\\ s of link/router down/up events
that both simulation engines consume mid-run — masking ports, dropping
in-flight flits, repairing routing tables incrementally, optionally
retransmitting lost workload packets — with flat and reference engines
pinned bit-identical per seed.

Layers:

* :mod:`~repro.faults.timeline` — events, timelines, and the
  :data:`~repro.experiments.registry.FAULTS` registry generators
  (``linkflap``, ``mtbf``, ``routerdown``, ``progressive``);
* :mod:`~repro.faults.state` — :class:`FaultState`, the engine-shared
  epoch schedule, drop/retransmit accounting, and repaired-table cache;
* :mod:`~repro.faults.result` — :class:`FaultResult` metrics (drops,
  blackholes, retransmits, post-event latency transient).

Quickstart::

    from repro.experiments import ExperimentSpec, SweepRunner

    spec = ExperimentSpec.fault_grid(
        ["polarfly:conc=2,q=7"], ["ugal-pf"], ["uniform"],
        ["mtbf:count=3,mtbf=300,mttr=250,seed=2,start=150"],
        loads=(0.3, 0.6),
    )
    result = SweepRunner.with_default_cache().run(spec)
"""

from repro.faults.timeline import FaultEvent, FaultTimeline
from repro.faults.state import FaultDelta, FaultState, prepare_fault_policy
from repro.faults.result import FaultResult, build_fault_result

__all__ = [
    "FaultEvent",
    "FaultTimeline",
    "FaultDelta",
    "FaultState",
    "FaultResult",
    "build_fault_result",
    "prepare_fault_policy",
]
