"""Fault-run metrics: what a resilience-under-load cell reports.

Static resilience (Figure 14) answers "does the graph stay small and
connected"; a dynamic fault run answers *what did the failures cost
while traffic was flowing* — flits and packets lost, traffic blackholed
at dead endpoints, retransmissions issued, and the latency transient
around the first event.  The transient comes from the sample-index marks
the engines record at every applied event: latency samples are appended
in a shared deterministic order, so splitting the stream at the first
mark cleanly separates pre-fault from post-fault packets in both
engines, bit-identically.

When the run was collected through a windowed driver
(:func:`repro.flitsim.telemetry.run_with_timeseries`), the result also
carries *recovery* analytics derived from the window series
(:func:`repro.obs.timeseries.fault_recovery`): pre-fault baseline
throughput and how many cycles the network took to return to it — a
time-resolved upgrade over the single pre/post split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FaultResult", "build_fault_result"]


def _mean(x: np.ndarray) -> float:
    return float(np.mean(x)) if len(x) else float("nan")


def _pct(x: np.ndarray, pct: float) -> float:
    return float(np.percentile(x, pct)) if len(x) else float("nan")


@dataclass
class FaultResult:
    """Fault accounting of one simulation run."""

    #: timeline generator name (presentation only)
    timeline: str
    #: scheduled epoch transitions in the timeline
    num_events: int
    #: transitions that fired within the simulated window
    applied_events: int
    #: cycle of the earliest scheduled event (-1: empty timeline)
    first_event_cycle: int
    #: flits lost to dead links/routers (event, feed, and wire drops)
    dropped_flits: int
    #: packets whose tail flit was lost
    dropped_packets: int
    #: packets delivered incomplete (tail ejected, body flits lost)
    damaged_packets: int
    #: packets never injected because an endpoint router was dead
    blackholed_packets: int
    #: workload packets re-injected at the source after a tail loss
    retransmitted_packets: int
    #: measured packet latencies before the first applied event
    pre_fault_latencies: np.ndarray
    #: measured packet latencies from the first applied event on
    post_fault_latencies: np.ndarray
    #: window-series recovery analytics (None unless the run was
    #: collected through a windowed driver): fault_cycle, fault_window,
    #: baseline, recovered_window, recovery_cycles
    recovery: "dict | None" = None

    @property
    def pre_fault_avg_latency(self) -> float:
        return _mean(self.pre_fault_latencies)

    @property
    def post_fault_avg_latency(self) -> float:
        return _mean(self.post_fault_latencies)

    @property
    def post_fault_p99_latency(self) -> float:
        return _pct(self.post_fault_latencies, 99)

    @property
    def latency_inflation(self) -> float:
        """Post-fault over pre-fault mean latency (NaN without samples)."""
        pre = self.pre_fault_avg_latency
        post = self.post_fault_avg_latency
        return post / pre if pre and pre == pre else float("nan")

    def summary(self) -> dict:
        """JSON-safe headline statistics (what faulted sweep cells persist).

        Sample-less transients (e.g. every event fired before the first
        measured packet) report ``None`` rather than NaN: cached cells
        must compare equal to freshly simulated ones, and NaN breaks
        that contract under Python equality.
        """

        def _safe(x: float):
            return None if x != x else x

        doc = {
            "fault_timeline": self.timeline,
            "fault_events": self.num_events,
            "fault_applied_events": self.applied_events,
            "fault_first_cycle": self.first_event_cycle,
            "dropped_flits": self.dropped_flits,
            "dropped_packets": self.dropped_packets,
            "damaged_packets": self.damaged_packets,
            "blackholed_packets": self.blackholed_packets,
            "retransmitted_packets": self.retransmitted_packets,
            "pre_fault_avg_latency": _safe(self.pre_fault_avg_latency),
            "post_fault_avg_latency": _safe(self.post_fault_avg_latency),
            "post_fault_p99_latency": _safe(self.post_fault_p99_latency),
        }
        if self.recovery is not None:
            # Only windowed runs carry these keys, so summaries of cells
            # cached before time-series collection existed still compare
            # equal to fresh non-windowed ones.
            doc["fault_recovery_baseline"] = self.recovery["baseline"]
            doc["fault_recovery_cycles"] = self.recovery["recovery_cycles"]
            doc["fault_recovery_window"] = self.recovery["recovered_window"]
        return doc


def build_fault_result(state, stat, series=None) -> FaultResult:
    """Assemble a :class:`FaultResult` after the run loop exits.

    ``state`` is the engine's :class:`~repro.faults.state.FaultState`,
    ``stat`` its finalized :class:`~repro.flitsim.engine.SimResult`.
    With a :class:`~repro.obs.timeseries.WindowSeries` (windowed runs)
    the result additionally carries throughput-recovery analytics.
    """
    recovery = None
    if series is not None:
        from repro.obs.timeseries import fault_recovery

        recovery = fault_recovery(series)
    lat = np.asarray(stat.latencies)
    split = state.marks[0][1] if state.marks else len(lat)
    return FaultResult(
        timeline=state.timeline.name,
        num_events=len(state.epochs) - 1,
        applied_events=state.applied_events,
        first_event_cycle=state.timeline.first_event_cycle,
        dropped_flits=state.dropped_flits,
        dropped_packets=state.dropped_packets,
        damaged_packets=state.damaged_packets,
        blackholed_packets=state.blackholed_packets,
        retransmitted_packets=state.retransmitted_packets,
        pre_fault_latencies=lat[:split],
        post_fault_latencies=lat[split:],
        recovery=recovery,
    )
