"""Engine-shared dynamic-fault bookkeeping.

The golden rule of the simulator pair — flat and reference produce
**bit-identical** results per seed — extends to faults the same way it
does to workloads: every semantic decision lives in this one class, and
both engines drive it at the same points of the cycle.

At construction the timeline is compiled into **epochs**: every distinct
event cycle starts one, with the effective dead-link set (explicit link
failures plus all links incident to dead routers), the dead-router set,
and *repaired routing tables* precomputed per epoch (incrementally from
the previous tables, memoized per topology across cells).  A timeline
whose surviving routers ever disconnect raises here, at attach time —
deterministically, before a single cycle runs.

Precomputing the epochs also solves buffer sizing: degraded paths can be
longer than the intact worst case, so :meth:`pin_policy` walks the
policy through every epoch's tables once, ratcheting ``max_hops`` to the
global ceiling before VC counts and route buffers are derived from it.

During the run, engines call :meth:`advance` at the top of every cycle;
on an event cycle it returns the epoch's :class:`FaultDelta` (sorted
newly-dead/newly-alive links and routers plus the repaired tables) and
the engine applies the masks and drops in the canonical order documented
in :mod:`repro.flitsim.engine`.  Drop/blackhole/retransmit accounting
flows back through the ``note_*`` methods, keeping the counters — and
the retransmit queue order, which feeds route selection and therefore
the RNG stream — identical across engines.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass

import numpy as np

from repro.faults.timeline import ROUTER_KINDS, FaultTimeline
from repro.obs import counter as _obs_counter
from repro.routing.degraded import fault_epoch_tables

__all__ = ["FaultDelta", "FaultState", "prepare_fault_policy"]

#: per-topology memo of fault-epoch tables keyed by (dead links, dead
#: routers); sweeps running many cells on one topology repair each
#: distinct failure state once
_EPOCH_TABLES_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: distinct failure states cached per topology (epoch sets are small;
#: the cap only guards against unbounded many-spec sweeps)
_EPOCH_MEMO_CAP = 32


@dataclass(frozen=True)
class FaultDelta:
    """State change at one epoch boundary (all tuples sorted)."""

    cycle: int
    down_links: tuple
    up_links: tuple
    down_routers: tuple
    up_routers: tuple
    tables: object


@dataclass(frozen=True)
class _Epoch:
    start: int
    dead_links: frozenset
    dead_routers: frozenset
    tables: object


def _tables_for(topo, dead_links: frozenset, dead_routers: frozenset, base):
    """Memoized repaired tables for one failure state of ``topo``."""
    if not dead_links and not dead_routers:
        return base
    memo = _EPOCH_TABLES_MEMO.get(topo)
    if memo is None:
        memo = _EPOCH_TABLES_MEMO[topo] = {}
    key = (dead_links, dead_routers)
    tables = memo.get(key)
    if tables is None:
        while len(memo) >= _EPOCH_MEMO_CAP:
            memo.pop(next(iter(memo)))
        tables = memo[key] = fault_epoch_tables(
            topo, sorted(dead_links), sorted(dead_routers), base=base
        )
    return tables


def prepare_fault_policy(policy, timeline: FaultTimeline, topo):
    """Ratchet ``policy.max_hops`` over every epoch of ``timeline``.

    Call before deriving VC counts (``auto_sim_config``) for a faulted
    cell: degraded shortest paths can exceed the intact worst case, and
    the simulator sizes buffers from ``max_hops`` once.  Compiles a
    throwaway :class:`FaultState` — one epoch fold, one pinning code
    path — whose repaired tables are memoized, so the engine's own state
    construction reuses them.  Returns the policy.
    """
    FaultState(timeline, topo, policy)
    return policy


class FaultState:
    """Mutable per-run fault progress (one instance per simulator).

    Single-run by design: counters, the retransmit queue, and the epoch
    cursor all advance monotonically.  Construct a fresh simulator (and
    with it a fresh state) per run.
    """

    def __init__(self, timeline: FaultTimeline, topo, policy):
        self.timeline = timeline
        self.topo = topo
        graph = topo.graph
        n = graph.n
        # Validate events against the topology once, up front.
        for e in timeline.events:
            if e.kind in ("link_down", "link_up"):
                u, v = e.link
                if not (0 <= u < n and 0 <= v < n) or not graph.has_edge(u, v):
                    raise ValueError(
                        f"fault event references non-edge ({e.u}, {e.v})"
                    )
            elif not 0 <= e.u < n:
                raise ValueError(f"fault event references router {e.u} >= {n}")

        base = policy.tables
        # Per-router incident links, one O(E) pass — and only when some
        # router event actually needs the map.
        incident: dict = {}
        if any(e.kind in ROUTER_KINDS for e in timeline.events):
            incident = {r: set() for r in range(n)}
            for u, v in graph.edges():
                link = (int(min(u, v)), int(max(u, v)))
                incident[link[0]].add(link)
                incident[link[1]].add(link)
            incident = {r: frozenset(s) for r, s in incident.items()}

        # Compile epochs: one per distinct event cycle, each carrying
        # the effective dead sets and repaired tables; epoch 0 is the
        # pristine network.  Raises here if survivors ever disconnect.
        dead_links: set = set()
        dead_routers: set = set()
        self.epochs = [_Epoch(0, frozenset(), frozenset(), base)]
        self.deltas: list = [None]
        # timeline.events is cycle-sorted (stable), so one groupby pass
        # yields each epoch's event batch in order.
        for cycle, batch in itertools.groupby(
            timeline.events, key=lambda e: e.cycle
        ):
            for e in batch:
                if e.kind == "link_down":
                    dead_links.add(e.link)
                elif e.kind == "link_up":
                    dead_links.discard(e.link)
                elif e.kind == "router_down":
                    dead_routers.add(int(e.u))
                else:
                    dead_routers.discard(int(e.u))
            fl, fr = frozenset(dead_links), frozenset(dead_routers)
            eff = fl | frozenset().union(*(incident[r] for r in fr)) if fr else fl
            prev = self.epochs[-1]
            prev_eff = self._effective(prev, incident)
            tables = _tables_for(topo, fl, fr, base)
            self.epochs.append(_Epoch(int(cycle), fl, fr, tables))
            self.deltas.append(
                FaultDelta(
                    cycle=int(cycle),
                    down_links=tuple(sorted(eff - prev_eff)),
                    up_links=tuple(sorted(prev_eff - eff)),
                    down_routers=tuple(sorted(fr - prev.dead_routers)),
                    up_routers=tuple(sorted(prev.dead_routers - fr)),
                    tables=tables,
                )
            )

        # Pin the policy's hop ceiling across every epoch, then park it
        # back on the pristine tables for cycle 0.
        for ep in self.epochs[1:]:
            policy.retable(ep.tables)
        policy.retable(base)

        #: router/endpoint survival masks (engines read these directly)
        self.router_alive = np.ones(n, dtype=bool)
        self.ep_alive = np.ones(topo.num_endpoints, dtype=bool)
        #: fast-path flag: True once any router is currently dead
        self.any_dead_router = False
        self.retransmit_enabled = bool(timeline.retransmit)

        self._next = 1
        self._started = False
        self._rt_queue: list = []
        #: (cycle, latency-sample index) at each applied event
        self.marks: list = []
        self.dropped_flits = 0
        self.dropped_packets = 0
        self.damaged_packets = 0
        self.blackholed_packets = 0
        self.retransmitted_packets = 0

    @staticmethod
    def _effective(epoch: _Epoch, incident) -> frozenset:
        if not epoch.dead_routers:
            return epoch.dead_links
        return epoch.dead_links | frozenset().union(
            *(incident[r] for r in epoch.dead_routers)
        )

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, policy) -> None:
        """Park the policy on epoch-0 tables; rejects a second run."""
        if self._started:
            raise RuntimeError(
                "FaultState is single-run; construct a fresh simulator"
            )
        self._started = True
        policy.retable(self.epochs[0].tables)

    def advance(self, now: int) -> "FaultDelta | None":
        """The epoch delta taking effect at cycle ``now`` (None if any).

        Engines call this at the top of every cycle, before injection,
        and apply the returned delta (masks, drops, policy retable) in
        the canonical order.  Survival masks update here so injection
        filters and the applying engine agree within the cycle.
        """
        if self._next >= len(self.epochs) or now < self.epochs[self._next].start:
            return None
        delta = self.deltas[self._next]
        self._next += 1
        for r in delta.down_routers:
            self.router_alive[r] = False
            lo, hi = self.topo.endpoint_offsets[r], self.topo.endpoint_offsets[r + 1]
            self.ep_alive[lo:hi] = False
        for r in delta.up_routers:
            self.router_alive[r] = True
            lo, hi = self.topo.endpoint_offsets[r], self.topo.endpoint_offsets[r + 1]
            self.ep_alive[lo:hi] = True
        self.any_dead_router = not bool(self.router_alive.all())
        return delta

    def note_mark(self, now: int, sample_index: int) -> None:
        """Record where in the latency-sample stream an event landed."""
        self.marks.append((int(now), int(sample_index)))

    # ------------------------------------------------------------------
    # Drop accounting (both engines call in identical order).  The obs
    # counters shadow the per-run fields into the process-global metric
    # registry — pure bookkeeping, never consulted by either engine, so
    # the bit-identity contract is untouched.
    # ------------------------------------------------------------------
    def note_flit_drops(self, count: int) -> None:
        self.dropped_flits += int(count)
        _obs_counter("faults.flit_drops").inc(int(count))

    def note_tail_drop(self, mid: int) -> None:
        """A packet's tail flit was lost: the packet is gone.

        Workload packets (``mid >= 0``) re-enter the retransmit queue
        when the timeline enables it; queue order is drop order, which
        both engines produce identically.
        """
        self.dropped_packets += 1
        _obs_counter("faults.tail_drops").inc()
        if mid >= 0 and self.retransmit_enabled:
            self._rt_queue.append(int(mid))

    def note_tail_drops(self, mids) -> None:
        """Batched :meth:`note_tail_drop`, preserving array order."""
        for mid in np.asarray(mids, dtype=np.int64):
            self.note_tail_drop(int(mid))

    def note_blackholed(self, packets: int) -> None:
        """Packets that could never inject (dead source or destination)."""
        self.blackholed_packets += int(packets)
        _obs_counter("faults.blackholed_packets").inc(int(packets))

    def note_damaged_deliveries(self, packets: int) -> None:
        """Packets whose tail ejected after losing body flits.

        Possible only when a link revives mid-packet: flits ahead of the
        tail were dropped at the dead link, the stalled tail crossed
        after repair.  The packet still counts as delivered (its tail
        ejection records the latency sample and credits its workload
        message), but the payload is incomplete — this counter keeps
        that data loss visible.
        """
        self.damaged_packets += int(packets)

    # ------------------------------------------------------------------
    # Injection-side filters
    # ------------------------------------------------------------------
    def filter_messages(self, mids, srcs, dsts, pkts) -> np.ndarray:
        """Drop ready messages whose endpoints are dead (blackholed)."""
        ok = self.router_alive[srcs] & self.router_alive[dsts]
        if not ok.all():
            self.note_blackholed(int(pkts[~ok].sum()))
        return mids[ok]

    def pop_retransmits(self, workload) -> np.ndarray:
        """Drain the retransmit queue (FIFO) as a message-id array.

        Entries whose source or destination router is dead *now* are
        permanently blackholed instead of re-queued.
        """
        if not self._rt_queue:
            return np.empty(0, dtype=np.int64)
        q = np.asarray(self._rt_queue, dtype=np.int64)
        self._rt_queue = []
        ok = self.router_alive[workload.src[q]] & self.router_alive[workload.dst[q]]
        self.blackholed_packets += int((~ok).sum())
        kept = q[ok]
        self.retransmitted_packets += int(kept.size)
        return kept

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    @property
    def applied_events(self) -> int:
        """Epoch transitions that actually fired during the run."""
        return self._next - 1

    def build_result(self, stat, series=None):
        from repro.faults.result import build_fault_result

        return build_fault_result(self, stat, series=series)
