"""The formal construction of ER_q (paper Section IV-E).

The dot-product construction of :mod:`repro.core.polarfly` has a more
structural twin: start from the point-line incidence graph ``B(q)`` of the
projective plane PG(2, q) — bipartite, ``2(q^2+q+1)`` vertices, degree
``q+1``, diameter 3 — and glue each point to its dual line under the
standard polarity ``[a] -> [a]^perp``.  The quotient is ER_q with the
diameter reduced to 2.

This module builds both objects explicitly and is used by the tests to
verify that the polarity quotient is *identical* (not merely isomorphic)
to the dot-product construction — the paper's two derivations really are
the same graph.
"""

from __future__ import annotations

import numpy as np

from repro.core.polarfly import PolarFly
from repro.fields import GF, is_prime_power
from repro.utils.graph import Graph

__all__ = ["IncidenceGraph", "polarity_quotient"]


class IncidenceGraph:
    """The bipartite point-line incidence graph B(q) of PG(2, q).

    Vertices ``0 .. N-1`` are points (left-normalized vectors of F_q^3 in
    PolarFly's canonical order) and ``N .. 2N-1`` are lines, where line
    ``N + i`` is the dual of point ``i`` (the line with coefficient
    vector equal to point ``i``'s coordinates).  Point ``u`` is adjacent
    to line ``N + v`` iff ``dot(u, v) == 0``.
    """

    def __init__(self, q: int):
        if is_prime_power(q) is None:
            raise ValueError(f"PG(2, q) requires a prime power q, got {q}")
        self.q = int(q)
        self.field = GF(q)
        # Reuse PolarFly's canonical projective-point enumeration.
        self.points = PolarFly(q).vectors
        self.n_points = self.points.shape[0]
        dots = self.field.dot(
            self.points[:, None, :], self.points[None, :, :]
        )
        pu, lv = np.nonzero(dots == 0)
        edges = zip(pu.tolist(), (lv + self.n_points).tolist())
        self.graph = Graph(2 * self.n_points, edges)

    def is_point(self, v: int) -> bool:
        """True for point-side vertices."""
        return v < self.n_points

    def dual(self, v: int) -> int:
        """The polarity partner: point i <-> line N + i."""
        return v + self.n_points if self.is_point(v) else v - self.n_points


def polarity_quotient(bq: IncidenceGraph) -> Graph:
    """Glue each point of B(q) to its dual line (Section IV-E.2).

    Returns the quotient graph on the ``q^2+q+1`` point representatives;
    self-loops arising at quadric points (which lie on their own dual
    line) are dropped, exactly as in the simple-graph ER_q.
    """
    n = bq.n_points
    edges = []
    for u, v in bq.graph.edges():
        u, v = int(u), int(v)
        # Map both endpoints to their point representative.
        pu = u if u < n else u - n
        pv = v if v < n else v - n
        if pu != pv:
            edges.append((pu, pv))
    return Graph(n, edges)
