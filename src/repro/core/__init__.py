"""The paper's primary contribution: PolarFly and its structural theory.

* :class:`~repro.core.polarfly.PolarFly` — the ER_q polarity-graph topology.
* :class:`~repro.core.layout.ClusterLayout` — Algorithm 1 rack layout.
* :mod:`~repro.core.expansion` — incremental growth without rewiring.
* :mod:`~repro.core.triangles` — triangle census, block design, Tables II/III.
"""

from repro.core.polarfly import (
    PolarFly,
    polarfly_order,
    polarfly_radix,
    feasible_q_for_radix,
)
from repro.core.layout import ClusterLayout
from repro.core.expansion import (
    ExpandedPolarFly,
    replicate_quadrics,
    replicate_nonquadric_clusters,
)
from repro.core.incidence import IncidenceGraph, polarity_quotient
from repro.core import triangles

__all__ = [
    "IncidenceGraph",
    "polarity_quotient",
    "PolarFly",
    "polarfly_order",
    "polarfly_radix",
    "feasible_q_for_radix",
    "ClusterLayout",
    "ExpandedPolarFly",
    "replicate_quadrics",
    "replicate_nonquadric_clusters",
    "triangles",
]
