"""Incremental expansion of PolarFly (paper Section VI).

Both schemes replicate a cluster of the layout per Definition VI.1 — the
replica copies the cluster's intra-cluster edges among fresh vertices and
re-attaches every inter-cluster edge of the original — so expansion never
rewires an existing link:

* :func:`replicate_quadrics` — clone the quadric rack ``C0``; every quadric
  and its clones form a clique.  Adds ``q + 1`` nodes per step, keeps
  diameter 2, but concentrates new links on ``W`` and ``V1`` (non-uniform
  degree growth).
* :func:`replicate_nonquadric_clusters` — clone non-quadric racks
  round-robin, wiring each clone of the Proposition-V.4.3 "orphan" vertex
  to the centers of the clusters it missed.  Adds ``q`` nodes per step with
  near-uniform degree growth, at the price of diameter 3 (ASPL stays < 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import ClusterLayout
from repro.core.polarfly import PolarFly
from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = [
    "ExpandedPolarFly",
    "replicate_quadrics",
    "replicate_nonquadric_clusters",
]


class ExpandedPolarFly(Topology):
    """A PolarFly grown by cluster replication.

    Attributes
    ----------
    base:
        The original :class:`PolarFly`.
    scheme:
        ``"quadric"`` or ``"nonquadric"``.
    times:
        Number of replication steps applied.
    replica_of:
        Length-N array: for replica vertices the original vertex they
        clone, for original vertices the vertex itself.
    """

    def __init__(
        self,
        base: PolarFly,
        scheme: str,
        times: int,
        graph: Graph,
        replica_of: np.ndarray,
        concentration=0,
    ):
        super().__init__(
            f"{base.name}+{scheme}x{times}", graph, concentration
        )
        self.base = base
        self.scheme = scheme
        self.times = times
        self.replica_of = replica_of

    @property
    def growth_fraction(self) -> float:
        """Relative size increase over the base network."""
        return self.num_routers / self.base.num_routers - 1.0


def _edge_set(graph: Graph) -> set[tuple[int, int]]:
    return {(int(u), int(v)) for u, v in graph.edges()}


def _replicate_cluster(
    edges: set[tuple[int, int]],
    neighbors: dict[int, set[int]],
    members: list[int],
    next_id: int,
) -> tuple[dict[int, int], int]:
    """Apply Definition VI.1 to ``members``; returns the replica id map.

    ``edges``/``neighbors`` are updated in place (they describe the graph
    being grown across successive replications).
    """
    member_set = set(members)
    replica = {v: next_id + i for i, v in enumerate(members)}
    for v in members:
        for w in neighbors[v]:
            if w in member_set:
                # Intra-cluster edge: connect the two replicas (once).
                if v < w:
                    _add_edge(edges, neighbors, replica[v], replica[w])
            else:
                # Inter-cluster edge: replica attaches to the outside end.
                _add_edge(edges, neighbors, replica[v], w)
    return replica, next_id + len(members)


def _add_edge(edges, neighbors, u, v):
    a, b = (u, v) if u < v else (v, u)
    if (a, b) in edges:
        return
    edges.add((a, b))
    neighbors.setdefault(u, set()).add(v)
    neighbors.setdefault(v, set()).add(u)


def _neighbor_map(graph: Graph) -> dict[int, set[int]]:
    return {
        v: {int(w) for w in graph.neighbors(v)} for v in range(graph.n)
    }


def replicate_quadrics(
    pf: PolarFly,
    times: int = 1,
    layout: "ClusterLayout | None" = None,
    concentration=0,
) -> ExpandedPolarFly:
    """Grow ``pf`` by replicating the quadric cluster ``times`` times.

    After each replication every quadric is directly connected with all of
    its replicas (growing per-quadric cliques), which is what keeps the
    diameter at 2 (Section VI-A).
    """
    if times < 1:
        raise ValueError("times must be >= 1")
    layout = layout or ClusterLayout(pf)
    edges = _edge_set(pf.graph)
    neighbors = _neighbor_map(pf.graph)
    quadrics = [int(v) for v in pf.quadrics]
    # clique_members[v] collects v and all of its clones.
    clique_members = {v: [v] for v in quadrics}
    replica_of = list(range(pf.num_routers))
    next_id = pf.num_routers
    for _ in range(times):
        replica, next_id = _replicate_cluster(edges, neighbors, quadrics, next_id)
        for v, v_rep in replica.items():
            replica_of.append(v)
            for other in clique_members[v]:
                _add_edge(edges, neighbors, other, v_rep)
            clique_members[v].append(v_rep)
    graph = Graph(next_id, edges)
    return ExpandedPolarFly(
        pf, "quadric", times, graph, np.array(replica_of), concentration
    )


def replicate_nonquadric_clusters(
    pf: PolarFly,
    times: int = 1,
    layout: "ClusterLayout | None" = None,
    concentration=0,
) -> ExpandedPolarFly:
    """Grow ``pf`` by replicating non-quadric clusters round-robin.

    Replication step ``t`` (1-based) clones cluster ``C_t``; the clone is
    labelled ``C_{q+t}`` as in Figure 7.  To keep degrees near-uniform, the
    clone of the unique vertex of ``C_t`` with no edge to ``C_j``
    (Proposition V.4.3) is wired to the center of ``C_j`` — and to the
    center of ``C_j``'s clone when it exists (Section VI-B).
    """
    if times < 1:
        raise ValueError("times must be >= 1")
    if times > pf.q:
        raise ValueError(f"at most q={pf.q} non-quadric replications supported")
    layout = layout or ClusterLayout(pf)
    edges = _edge_set(pf.graph)
    neighbors = _neighbor_map(pf.graph)
    replica_of = list(range(pf.num_routers))
    next_id = pf.num_routers
    # center_clone[j] = center of C_{q+j} once cluster j has been cloned.
    center_clone: dict[int, int] = {}
    for t in range(1, times + 1):
        members = [int(v) for v in layout.cluster(t)]
        replica, next_id = _replicate_cluster(edges, neighbors, members, next_id)
        replica_of.extend(members)  # replicas were assigned ids in member order
        for j in range(1, pf.q + 1):
            if j == t:
                continue
            orphan = layout.unconnected_vertex(t, j)
            orphan_clone = replica[orphan]
            _add_edge(edges, neighbors, orphan_clone, layout.center(j))
            if j in center_clone:
                _add_edge(edges, neighbors, orphan_clone, center_clone[j])
        center_clone[t] = replica[layout.center(t)]
    graph = Graph(next_id, edges)
    return ExpandedPolarFly(
        pf, "nonquadric", times, graph, np.array(replica_of), concentration
    )
