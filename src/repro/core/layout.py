"""PolarFly cluster (rack) layout — Algorithm 1 of the paper.

For odd prime power ``q``, the vertex set of ER_q decomposes into ``q + 1``
clusters:

* ``C0`` — the ``q + 1`` quadrics, mutually non-adjacent (an independent
  set, Property 1.1);
* ``C1 .. Cq`` — one cluster per neighbor of an arbitrarily chosen starter
  quadric.  Each consists of that neighbor (the *center*) plus its ``q - 1``
  non-quadric neighbors, and its internal edges form ``(q-1)/2`` triangles
  fanning out of the center (Proposition V.2).

Inter-rack structure (Propositions V.3/V.4): exactly ``q + 1`` links between
``C0`` and each non-quadric cluster, and exactly ``q - 2`` pairwise
independent links between any two non-quadric clusters.
"""

from __future__ import annotations

import numpy as np

from repro.core.polarfly import PolarFly

__all__ = ["ClusterLayout"]


class ClusterLayout:
    """Rack assignment of a PolarFly per Algorithm 1.

    Parameters
    ----------
    pf:
        The PolarFly topology (odd ``q`` required; even ``q`` has a
        different quadric structure and is out of the paper's layout scope).
    starter:
        Index of the quadric used to seed the layout; defaults to the
        lowest-indexed quadric.  Any quadric yields an isomorphic layout
        (Theorem V.8).

    Attributes
    ----------
    cluster_of:
        Length-N array mapping vertex -> cluster id (0 = quadrics rack).
    centers:
        ``centers[i]`` is the center vertex of cluster ``i`` for
        ``i >= 1``; ``centers[0] = -1`` (the quadric rack has no center).
    """

    def __init__(self, pf: PolarFly, starter: "int | None" = None):
        if pf.q % 2 == 0:
            raise ValueError(
                "Algorithm 1 layout is defined for odd q "
                "(even q has a degenerate quadric structure)"
            )
        self.pf = pf
        q = pf.q
        if starter is None:
            starter = int(pf.quadrics[0])
        if not pf.is_quadric(starter):
            raise ValueError(f"starter vertex {starter} is not a quadric")
        self.starter = int(starter)

        n = pf.num_routers
        cluster_of = np.full(n, -1, dtype=np.int64)
        cluster_of[pf.quadrics] = 0

        centers = np.full(q + 1, -1, dtype=np.int64)
        graph = pf.graph
        for i, center in enumerate(graph.neighbors(self.starter), start=1):
            center = int(center)
            centers[i] = center
            members = [center]
            for u in graph.neighbors(center):
                u = int(u)
                if not pf.is_quadric(u) and u != center:
                    members.append(u)
            members_arr = np.array(members, dtype=np.int64)
            if np.any(cluster_of[members_arr] != -1):
                raise RuntimeError(
                    "cluster overlap — violates Proposition V.1"
                )
            cluster_of[members_arr] = i

        if np.any(cluster_of < 0):
            raise RuntimeError("unassigned vertices — violates Proposition V.1")
        self.cluster_of = cluster_of
        self.centers = centers
        self.num_clusters = q + 1

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def cluster(self, i: int) -> np.ndarray:
        """Vertex indices of cluster ``i`` (sorted)."""
        return np.flatnonzero(self.cluster_of == i)

    def clusters(self) -> list[np.ndarray]:
        """All clusters, ``C0`` first."""
        return [self.cluster(i) for i in range(self.num_clusters)]

    def center(self, i: int) -> int:
        """Center vertex of non-quadric cluster ``i >= 1``."""
        if i == 0:
            raise ValueError("the quadric cluster C0 has no center")
        return int(self.centers[i])

    # ------------------------------------------------------------------
    # Structure census (Propositions V.2-V.4)
    # ------------------------------------------------------------------
    def intra_cluster_edges(self, i: int) -> list[tuple[int, int]]:
        """Edges internal to cluster ``i``."""
        members = set(self.cluster(i).tolist())
        out = []
        for u in sorted(members):
            for v in self.pf.graph.neighbors(u):
                v = int(v)
                if v > u and v in members:
                    out.append((u, v))
        return out

    def inter_cluster_edges(self, i: int, j: int) -> list[tuple[int, int]]:
        """Edges between clusters ``i`` and ``j`` (``i != j``)."""
        if i == j:
            raise ValueError("use intra_cluster_edges for i == j")
        members_i = set(self.cluster(i).tolist())
        members_j = set(self.cluster(j).tolist())
        out = []
        for u in sorted(members_i):
            for v in self.pf.graph.neighbors(u):
                v = int(v)
                if v in members_j:
                    out.append((u, v))
        return out

    def link_census(self) -> np.ndarray:
        """Matrix ``L[i, j]`` = number of links between clusters i and j.

        Expected: ``L[0, i] = q + 1`` and ``L[i, j] = q - 2`` for distinct
        non-quadric clusters (near-balanced all-to-all between racks).
        """
        c = self.num_clusters
        census = np.zeros((c, c), dtype=np.int64)
        cluster_of = self.cluster_of
        for u, v in self.pf.graph.edges():
            ci, cj = int(cluster_of[u]), int(cluster_of[v])
            if ci != cj:
                census[ci, cj] += 1
                census[cj, ci] += 1
        return census

    def fan_triangles(self, i: int) -> list[tuple[int, int, int]]:
        """The ``(q-1)/2`` internal triangles of non-quadric cluster ``i``.

        Each contains the cluster center (Proposition V.2); returned as
        sorted triples.
        """
        if i == 0:
            return []
        members = set(self.cluster(i).tolist())
        center = self.center(i)
        graph = self.pf.graph
        out = []
        nbrs = [int(v) for v in graph.neighbors(center) if int(v) in members]
        for a_pos, a in enumerate(nbrs):
            for b in nbrs[a_pos + 1 :]:
                if graph.has_edge(a, b):
                    out.append(tuple(sorted((center, a, b))))
        return out

    def unconnected_vertex(self, i: int, j: int) -> int:
        """The unique ``u' in Ci \\ {center}`` with no edge to ``Cj``.

        Proposition V.4.3 — used by the non-quadric expansion scheme to
        re-balance degrees.
        """
        if i == 0 or j == 0 or i == j:
            raise ValueError("defined for distinct non-quadric clusters")
        members_j = set(self.cluster(j).tolist())
        center = self.center(i)
        orphans = []
        for u in self.cluster(i):
            u = int(u)
            if u == center:
                continue
            if not any(int(v) in members_j for v in self.pf.graph.neighbors(u)):
                orphans.append(u)
        if len(orphans) != 1:
            raise RuntimeError(
                f"expected exactly one unconnected vertex, got {orphans} "
                "— violates Proposition V.4.3"
            )
        return orphans[0]
