"""Triangle structure of ER_q (paper Section V-C).

PolarFly has exactly ``C(q+1, 3)`` triangles and no quadrangles.  Relative
to a cluster layout they split into

* ``C(q, 2)`` *intra-cluster* triangles — the fan blades, and
* ``C(q, 3)`` *inter-cluster* triangles, exactly one per triplet of
  non-quadric clusters (Theorem V.7 — a 3-(q, 3, 1) style block design).

This module classifies triangles, checks the block design, and evaluates
the closed-form distributions of Table II and the intermediate-vertex type
table (Table III).
"""

from __future__ import annotations

from collections import Counter
from math import comb

import numpy as np

from repro.core.layout import ClusterLayout
from repro.core.polarfly import PolarFly

__all__ = [
    "expected_triangle_count",
    "expected_intra_cluster_triangles",
    "expected_inter_cluster_triangles",
    "expected_inter_cluster_distribution",
    "expected_intermediate_type",
    "classify_triangles",
    "triangle_type_distribution",
    "block_design_matrix",
    "intermediate_type_census",
]


# ----------------------------------------------------------------------
# Closed forms from the paper
# ----------------------------------------------------------------------
def expected_triangle_count(q: int) -> int:
    """Proposition V.5: total number of triangles, ``C(q+1, 3)``."""
    return comb(q + 1, 3)


def expected_intra_cluster_triangles(q: int) -> int:
    """Proposition V.6(b): ``C(q, 2)`` triangles internal to clusters."""
    return comb(q, 2)


def expected_inter_cluster_triangles(q: int) -> int:
    """Proposition V.6(a): ``C(q, 3)`` triangles joining three clusters."""
    return comb(q, 3)


def expected_inter_cluster_distribution(q: int) -> dict[str, int]:
    """Table II: inter-cluster triangle counts by vertex-type signature.

    Signatures are sorted strings like ``"v1v1v2"``.  Only odd prime powers
    are classified by the paper; the two congruence classes mod 4 have
    disjoint supports.
    """
    if q % 4 == 1:
        return {
            "v1v1v1": q * (q - 1) * (q - 5) // 24,
            "v1v1v2": 0,
            "v1v2v2": q * (q - 1) ** 2 // 8,
            "v2v2v2": 0,
        }
    if q % 4 == 3:
        return {
            "v1v1v1": 0,
            "v1v1v2": q * (q - 1) * (q - 3) // 8,
            "v1v2v2": 0,
            "v2v2v2": (q + 1) * q * (q - 1) // 24,
        }
    raise ValueError("Table II is stated for odd prime powers q")


def expected_intermediate_type(q: int, type_v: str, type_w: str) -> str:
    """Table III: type of the 2-hop midpoint between *adjacent* ``v, w``.

    ``type_v``/``type_w`` in {"V1", "V2"}; result is "V1" or "V2".  The
    midpoint completes the edge's unique triangle (Property 1.5), so the
    table is forced by which triangle signatures exist in Table II:

    * ``q = 1 (mod 4)`` — only (v1,v1,v1) and (v1,v2,v2) triangles, so
      same-type pairs have a V1 midpoint and mixed pairs a V2 midpoint.
    * ``q = 3 (mod 4)`` — only (v1,v1,v2) and (v2,v2,v2), so same-type
      pairs have a V2 midpoint and mixed pairs a V1 midpoint.
    """
    if type_v not in ("V1", "V2") or type_w not in ("V1", "V2"):
        raise ValueError("Table III covers non-quadric endpoints only")
    same = type_v == type_w
    if q % 4 == 1:
        return "V1" if same else "V2"
    if q % 4 == 3:
        return "V2" if same else "V1"
    raise ValueError("Table III is stated for odd prime powers q")


# ----------------------------------------------------------------------
# Empirical classification
# ----------------------------------------------------------------------
def classify_triangles(
    pf: PolarFly, layout: "ClusterLayout | None" = None
) -> dict[str, list[tuple[int, int, int]]]:
    """Split all triangles into ``intra`` and ``inter`` cluster lists."""
    layout = layout or ClusterLayout(pf)
    intra, inter = [], []
    cluster_of = layout.cluster_of
    for tri in pf.graph.triangles():
        a, b, c = tri
        if cluster_of[a] == cluster_of[b] == cluster_of[c]:
            intra.append(tri)
        else:
            inter.append(tri)
    return {"intra": intra, "inter": inter}


def _signature(pf: PolarFly, tri) -> str:
    return "".join(sorted(pf.vertex_class(v).lower() for v in tri))


def triangle_type_distribution(
    pf: PolarFly, layout: "ClusterLayout | None" = None
) -> dict[str, Counter]:
    """Observed Table-II style distribution (plus the intra side)."""
    split = classify_triangles(pf, layout)
    return {
        "intra": Counter(_signature(pf, t) for t in split["intra"]),
        "inter": Counter(_signature(pf, t) for t in split["inter"]),
    }


def block_design_matrix(
    pf: PolarFly, layout: "ClusterLayout | None" = None
) -> Counter:
    """Triangles per non-quadric cluster triplet.

    Theorem V.7 says this is the all-ones function on the ``C(q, 3)``
    triplets — i.e. the inter-cluster triangles form a block design where
    every 3-subset of clusters appears in exactly one block.
    """
    layout = layout or ClusterLayout(pf)
    counts: Counter = Counter()
    cluster_of = layout.cluster_of
    for tri in pf.graph.triangles():
        clusters = tuple(sorted({int(cluster_of[v]) for v in tri}))
        if len(clusters) == 3:
            counts[clusters] += 1
    return counts


def intermediate_type_census(
    pf: PolarFly, layout: "ClusterLayout | None" = None
) -> dict[tuple[str, str], Counter]:
    """Observed Table III: midpoint types for adjacent non-quadric pairs.

    For every edge between non-quadric vertices, the alternative 2-hop
    path's midpoint (the third vertex of the edge's unique triangle,
    Property 1.5) is classified.  Returns ``{(class_v, class_w): Counter}``
    with unordered endpoint classes.
    """
    census: dict[tuple[str, str], Counter] = {}
    for u, v in pf.graph.edges():
        u, v = int(u), int(v)
        if pf.is_quadric(u) or pf.is_quadric(v):
            continue
        mid = pf.intermediate(u, v)
        key = tuple(sorted((pf.vertex_class(u), pf.vertex_class(v))))
        census.setdefault(key, Counter())[pf.vertex_class(mid)] += 1
    return census
