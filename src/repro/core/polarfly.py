"""PolarFly: the Erdős–Rényi polarity graph ER_q as a network topology.

Construction (paper Section IV-C): vertices are the left-normalized nonzero
vectors of F_q^3 (equivalently, points of the projective plane PG(2, q));
two distinct vertices are adjacent iff their dot product over GF(q) is zero.
The resulting graph has

* ``N = q**2 + q + 1`` vertices,
* degree ``q + 1`` (quadric vertices — the self-orthogonal ones — have
  simple-graph degree ``q`` since their self-loop is dropped),
* diameter 2, asymptotically meeting the Moore bound ``N <= k**2 + 1``.

The vertex set splits into the quadrics ``W`` (size ``q+1``), the vertices
adjacent to a quadric ``V1`` (size ``q(q+1)/2``) and the rest ``V2``
(size ``q(q-1)/2``) — Property 1 of the paper (odd ``q``).

Construction is **sparse**: instead of the O(N^2) all-pairs dot product,
each vertex enumerates the ``q+1`` points of its *polar line* (the
projective line of vectors orthogonal to it) directly — O(N*q) work and
memory, which is what unlocks the q=53/q=79 tier.  The dense all-pairs
adjacency remains available as :meth:`PolarFly._build_adjacency`, the
golden oracle the sparse edge list is pinned against in the tests.  All
arithmetic is vectorized GF(q) table gathers; no Python loop touches a
vertex pair.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import TOPOLOGIES
from repro.fields import GF, is_prime_power
from repro.topologies.base import Topology
from repro.utils.graph import Graph

__all__ = ["PolarFly", "polarfly_order", "polarfly_radix", "feasible_q_for_radix"]


def polarfly_order(q: int) -> int:
    """Number of routers of PolarFly(q): ``q**2 + q + 1``."""
    return q * q + q + 1


def polarfly_radix(q: int) -> int:
    """Network radix of PolarFly(q): ``q + 1``."""
    return q + 1


def feasible_q_for_radix(k: int) -> "int | None":
    """The ``q`` realizing network radix exactly ``k``, or None.

    PolarFly needs ``q = k - 1`` to be a prime power.
    """
    q = k - 1
    return q if (q >= 2 and is_prime_power(q)) else None


class PolarFly(Topology):
    """The ER_q polarity-graph topology (the paper's contribution).

    Parameters
    ----------
    q:
        Any prime power >= 2.  Odd ``q`` gives the layout/expansion
        structure analysed in the paper; even ``q`` still yields a valid
        diameter-2 ER graph.
    concentration:
        Endpoints per router (the paper's ``p``); default 0 builds the bare
        router graph for structural analyses.

    Attributes
    ----------
    vectors:
        ``(N, 3)`` array of left-normalized vertex vectors (GF(q) codes).
    quadric_mask, v1_mask, v2_mask:
        Boolean partition of the vertex set into W, V1 and V2.
    """

    def __init__(self, q: int, concentration: int = 0):
        if is_prime_power(q) is None:
            raise ValueError(f"PolarFly requires a prime power q, got {q}")
        self.q = int(q)
        self.field = GF(q)
        self.vectors = self._generate_vertices()
        graph = self._build_graph()
        super().__init__(f"PF(q={q})", graph, concentration)
        self._classify_vertices(graph)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _generate_vertices(self) -> np.ndarray:
        """All left-normalized nonzero vectors of F_q^3, in a fixed order.

        Order: ``[1, y, z]`` lexicographically, then ``[0, 1, z]``, then
        ``[0, 0, 1]`` — q^2 + q + 1 rows.
        """
        q = self.q
        yy, zz = np.meshgrid(np.arange(q), np.arange(q), indexing="ij")
        block1 = np.column_stack(
            [np.ones(q * q, dtype=np.int64), yy.ravel(), zz.ravel()]
        )
        block2 = np.column_stack(
            [np.zeros(q, dtype=np.int64), np.ones(q, dtype=np.int64), np.arange(q)]
        )
        block3 = np.array([[0, 0, 1]], dtype=np.int64)
        return np.vstack([block1, block2, block3])

    def _vertex_codes(self, normalized: np.ndarray) -> np.ndarray:
        """Closed-form vertex index of left-normalized vectors.

        Inverts the :meth:`_generate_vertices` ordering without a lookup
        table: ``[1, y, z] -> y*q + z``, ``[0, 1, z] -> q^2 + z``,
        ``[0, 0, 1] -> q^2 + q``.  Vectorized over leading axes.
        """
        q = self.q
        a, b, c = normalized[..., 0], normalized[..., 1], normalized[..., 2]
        return np.where(a == 1, b * q + c, np.where(b == 1, q * q + c, q * q + q))

    def _build_graph(self) -> Graph:
        """Sparse edge list via polar lines — O(N*q) work and memory.

        The neighbors of ``v`` are exactly the points of its polar line
        ``v^perp = {w : dot(v, w) == 0}`` (minus ``v`` itself when ``v``
        is a quadric).  A basis of that plane comes from the cross
        products ``c_i = v x e_i`` with the standard basis vectors: pick
        ``p1`` as the first nonzero ``c_i`` and ``p2`` as the first
        ``c_j`` independent of it; the line is ``{p1} ∪ {p2 + t*p1}`` for
        ``t`` in GF(q) — ``q + 1`` projective points per vertex, no N^2
        structure anywhere.  Pinned against the dense dot-product oracle
        (:meth:`_build_adjacency`) by the golden construction tests.
        """
        f, v = self.field, self.vectors
        n = v.shape[0]
        basis = np.eye(3, dtype=np.int64)
        c = f.cross(v[:, None, :], basis[None, :, :])  # (N, 3, 3)
        nz = (c != 0).any(axis=2)
        i1 = np.argmax(nz, axis=1)
        p1 = c[np.arange(n), i1]
        indep = (f.cross(p1[:, None, :], c) != 0).any(axis=2)
        i2 = np.argmax(indep, axis=1)
        p2 = c[np.arange(n), i2]
        t = f.elements()
        pts = f.add(p2[:, None, :], f.mul(t[None, :, None], p1[:, None, :]))
        line = np.concatenate([p1[:, None, :], pts], axis=1)  # (N, q+1, 3)
        nbr = self._vertex_codes(f.left_normalize(line))
        src = np.repeat(np.arange(n, dtype=np.int64), self.q + 1)
        dst = nbr.ravel()
        keep = src != dst  # quadrics lie on their own polar line
        return Graph(n, np.column_stack([src[keep], dst[keep]]))

    def _build_adjacency(self) -> np.ndarray:
        """Dense boolean adjacency oracle: dot(v, w) == 0, diagonal cleared.

        One broadcasted field-dot over all N^2 pairs.  Not called on the
        construction path (see :meth:`_build_graph`); kept as the golden
        oracle the sparse polar-line edge list is pinned against.
        """
        v = self.vectors
        dots = self.field.dot(v[:, None, :], v[None, :, :])
        adj = dots == 0
        np.fill_diagonal(adj, False)
        return adj

    def _classify_vertices(self, graph: Graph) -> None:
        v = self.vectors
        self_dots = self.field.dot(v, v)
        self.quadric_mask = self_dots == 0
        # V1 = non-quadrics adjacent to at least one quadric, found by
        # scanning the (sparse) edge list rather than a dense adjacency.
        e = graph.edges()
        touches_quadric = np.zeros(v.shape[0], dtype=bool)
        touches_quadric[e[:, 0][self.quadric_mask[e[:, 1]]]] = True
        touches_quadric[e[:, 1][self.quadric_mask[e[:, 0]]]] = True
        self.v1_mask = touches_quadric & ~self.quadric_mask
        self.v2_mask = ~touches_quadric & ~self.quadric_mask
        self.quadrics = np.flatnonzero(self.quadric_mask)
        self.v1 = np.flatnonzero(self.v1_mask)
        self.v2 = np.flatnonzero(self.v2_mask)

    # ------------------------------------------------------------------
    # Vertex identity and classification
    # ------------------------------------------------------------------
    def vertex_index(self, vector) -> int:
        """Index of the vertex for any nonzero vector (normalizes first)."""
        norm = self.field.left_normalize(np.asarray(vector, dtype=np.int64))[0]
        return int(self._vertex_codes(norm))

    def vertex_class(self, v: int) -> str:
        """``"W"``, ``"V1"`` or ``"V2"`` for vertex ``v``."""
        if self.quadric_mask[v]:
            return "W"
        return "V1" if self.v1_mask[v] else "V2"

    def is_quadric(self, v: int) -> bool:
        """True iff ``v`` is self-orthogonal (lies on the quadric conic)."""
        return bool(self.quadric_mask[v])

    # ------------------------------------------------------------------
    # Algebraic routing (Section IV-D)
    # ------------------------------------------------------------------
    def intermediate(self, s: int, d: int) -> int:
        """The unique midpoint of the 2-hop minimal path between ``s``, ``d``.

        Computed algebraically as the left-normalized cross product
        ``s x d`` (equation (2) in the paper) — the single vector
        orthogonal to both endpoints.  Valid for any distinct pair; when
        ``s`` and ``d`` are adjacent the result is the intermediate vertex
        of the *alternative* 2-hop path (it may coincide with an endpoint
        when one endpoint is a quadric).
        """
        if s == d:
            raise ValueError("intermediate vertex undefined for s == d")
        cross = self.field.cross(self.vectors[s], self.vectors[d])
        return self.vertex_index(cross)

    def are_adjacent(self, s: int, d: int) -> bool:
        """True iff ``dot(s, d) == 0`` and ``s != d``."""
        if s == d:
            return False
        return int(self.field.dot(self.vectors[s], self.vectors[d])) == 0

    def minimal_path(self, s: int, d: int) -> list[int]:
        """The unique minimal path from ``s`` to ``d`` (length <= 2)."""
        if s == d:
            return [s]
        if self.are_adjacent(s, d):
            return [s, d]
        return [s, self.intermediate(s, d), d]

    # ------------------------------------------------------------------
    # Bound bookkeeping
    # ------------------------------------------------------------------
    @property
    def moore_bound_efficiency(self) -> float:
        """``N / (k**2 + 1)`` — fraction of the diameter-2 Moore bound."""
        k = polarfly_radix(self.q)
        return polarfly_order(self.q) / (k * k + 1)


@TOPOLOGIES.register("polarfly", example="polarfly:conc=2,q=5")
def _polarfly_from_spec(q: int, conc: int = 0) -> PolarFly:
    return PolarFly(q, concentration=conc)
