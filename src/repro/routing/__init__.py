"""Routing: distance tables, path policies, and path enumeration.

Implements the paper's Section VII protocols (minimal, Valiant, Compact
Valiant, UGAL, UGAL_PF) plus fat-tree NCA routing for the indirect
baseline.
"""

from repro.routing.tables import RoutingTables
from repro.routing.policies import (
    CongestionView,
    RoutingPolicy,
    MinimalRouting,
    ValiantRouting,
    CompactValiantRouting,
    UGALRouting,
    UGALGRouting,
    UGALPFRouting,
    FatTreeNCARouting,
    ZERO_CONGESTION,
)
from repro.routing.algebraic import AlgebraicMinimalRouting
from repro.routing.degraded import (
    degraded_topology,
    fault_epoch_tables,
    reroute_after_failures,
)
from repro.routing.paths import (
    enumerate_paths,
    count_paths_of_length,
    count_paths_up_to,
)

__all__ = [
    "RoutingTables",
    "UGALGRouting",
    "AlgebraicMinimalRouting",
    "degraded_topology",
    "fault_epoch_tables",
    "reroute_after_failures",
    "CongestionView",
    "RoutingPolicy",
    "MinimalRouting",
    "ValiantRouting",
    "CompactValiantRouting",
    "UGALRouting",
    "UGALPFRouting",
    "FatTreeNCARouting",
    "ZERO_CONGESTION",
    "enumerate_paths",
    "count_paths_of_length",
    "count_paths_up_to",
]
