"""All-pairs distance tables and shortest-path extraction.

The paper notes table-based routing is the method of choice for ER graphs
(Section IV-D); the same tables also serve every baseline topology.  The
distance matrix is built by one vectorized BFS per source and stored as
int16 (N x N), from which minimal next-hops are recovered on demand —
storing full next-hop sets would be O(N^2 * k) for no benefit.
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import make_rng

__all__ = ["RoutingTables"]


class RoutingTables:
    """Distance matrix plus shortest-path queries for a topology.

    Parameters
    ----------
    topo:
        Any :class:`~repro.topologies.base.Topology`; the router graph
        must be connected.
    """

    def __init__(self, topo: Topology):
        if not topo.is_connected():
            raise ValueError("routing tables require a connected topology")
        self.topo = topo
        graph = topo.graph
        n = graph.n
        dist = np.empty((n, n), dtype=np.int16)
        for s in range(n):
            dist[s] = graph.bfs_distances(s)
        self.dist = dist
        # Lazily-built CSR of minimal next-hop candidates per (src, dst)
        # pair, for the batched path extractor.
        self._min_hop_csr: "tuple | None" = None
        # Lazily-built dense cache of the pairs whose shortest path is
        # unique (no ECMP tie anywhere along it).
        self._unique_paths: "tuple | None" = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, src: int, dst: int) -> int:
        """Hop distance between routers."""
        return int(self.dist[src, dst])

    def min_next_hops(self, cur: int, dst: int) -> np.ndarray:
        """All neighbors of ``cur`` lying on a shortest path to ``dst``."""
        if cur == dst:
            return np.empty(0, dtype=np.int64)
        nbrs = self.topo.graph.neighbors(cur)
        return nbrs[self.dist[nbrs, dst] == self.dist[cur, dst] - 1]

    def shortest_path(self, src: int, dst: int, rng=None) -> list[int]:
        """One shortest path ``[src, ..., dst]``.

        Deterministic (first next-hop) when ``rng`` is None, otherwise a
        uniformly random choice at each step — the ECMP behaviour used for
        baselines with path diversity.
        """
        path = [src]
        cur = src
        rng = make_rng(rng) if rng is not None else None
        while cur != dst:
            hops = self.min_next_hops(cur, dst)
            # integers() is much cheaper than rng.choice for the
            # per-hop tie-break on this per-packet hot path.
            cur = int(hops[0] if rng is None else hops[rng.integers(hops.size)])
            path.append(cur)
        return path

    def path_length(self, path: list[int]) -> int:
        """Hop count of a router path."""
        return len(path) - 1

    # ------------------------------------------------------------------
    # Batched extraction (the per-cycle routing hot path)
    # ------------------------------------------------------------------
    def _candidate_csr(self) -> tuple:
        """CSR of minimal next hops per (src, dst) pair, built on demand.

        ``indptr`` has ``n*n + 1`` entries indexed by ``src*n + dst``;
        ``data`` lists the candidate neighbors in ascending id order (so
        candidate 0 matches the deterministic scalar path).
        """
        if self._min_hop_csr is None:
            graph = self.topo.graph
            n = graph.n
            dist = self.dist
            indptr = np.zeros(n * n + 1, dtype=np.int64)
            chunks = []
            for s in range(n):
                nbrs = graph.neighbors(s)
                on_path = dist[nbrs, :] == dist[s, :][None, :] - 1
                dst_idx, nbr_idx = np.nonzero(on_path.T)
                indptr[s * n + 1 : s * n + n + 1] = np.bincount(
                    dst_idx, minlength=n
                )
                chunks.append(nbrs[nbr_idx].astype(np.int64))
            np.cumsum(indptr, out=indptr)
            data = np.concatenate(chunks) if chunks else np.empty(0, np.int64)
            self._min_hop_csr = (indptr, data)
        return self._min_hop_csr

    def _unique_path_cache(self) -> tuple:
        """Dense ``(paths, lens, unique)`` cache over all pairs, lazily.

        ``unique[pair]`` marks pairs whose shortest path has no ECMP tie
        at any step; for those, ``paths[pair]`` is *the* path and batched
        extraction is a single gather with zero RNG draws (the batch
        protocol only draws where there is a tie to break).  Pairs with
        ties are never served from the cache.
        """
        if self._unique_paths is None:
            n = self.topo.num_routers
            indptr, data = self._candidate_csr()
            width = int(self.dist.max()) + 1
            lens = self.dist.ravel().astype(np.int64) + 1
            paths = np.zeros((n * n, width), dtype=np.int64)
            srcs = np.repeat(np.arange(n, dtype=np.int64), n)
            dsts = np.tile(np.arange(n, dtype=np.int64), n)
            paths[:, 0] = srcs
            unique = np.ones(n * n, dtype=bool)
            cur = srcs.copy()
            for col in range(1, width):
                act = lens > col
                pair = cur[act] * n + dsts[act]
                start = indptr[pair]
                unique[act] &= indptr[pair + 1] - start == 1
                nxt = data[start]
                cur[act] = nxt
                paths[act, col] = nxt
            self._unique_paths = (paths, lens, unique)
        return self._unique_paths

    def shortest_paths_batch(self, srcs, dsts, rng=None) -> tuple:
        """Vectorized ECMP shortest paths for a batch of (src, dst) pairs.

        Returns ``(paths, lens)``: a ``[k, max_len]`` int matrix whose
        row ``i`` holds the path in columns ``0..lens[i]-1`` (columns
        beyond a row's length are unspecified).  With ``rng`` the
        tie-break at every step is a uniform candidate draw (one
        vectorized ``integers`` call per path column across the batch);
        without it the lowest-id candidate is taken, matching scalar
        :meth:`shortest_path`'s deterministic mode.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        k = srcs.size
        n = self.topo.num_routers
        if k and n * n <= 4_000_000:
            # Serve the batch from the unique-path cache when no row
            # needs a tie-break — draw-free, so RNG-stream identical.
            cache_paths, cache_lens, unique = self._unique_path_cache()
            pairs = srcs * n + dsts
            if unique[pairs].all():
                lens = cache_lens[pairs]
                # Trim to this batch's width so callers see the same
                # shape contract as the general extractor.
                return cache_paths[pairs][:, : int(lens.max())], lens
        lens = self.dist[srcs, dsts].astype(np.int64) + 1
        if k == 0:
            return np.empty((0, 1), dtype=np.int64), lens
        indptr, data = self._candidate_csr()
        max_len = int(lens.max())
        paths = np.empty((k, max_len), dtype=np.int64)
        paths[:, 0] = srcs
        cur = srcs
        for col in range(1, max_len):
            # A row is still walking while col < lens - 1 + 1.
            act = np.flatnonzero(lens > col)
            whole = act.size == cur.size
            pair = (cur if whole else cur[act]) * n + (
                dsts if whole else dsts[act]
            )
            start = indptr[pair]
            count = indptr[pair + 1] - start
            # Draw tie-breaks only where there is a tie to break: unique
            # shortest paths (the common case on PolarFly) cost no RNG.
            pick = 0
            if rng is not None:
                multi = np.flatnonzero(count > 1)
                if multi.size:
                    pick = np.zeros(pair.size, dtype=np.int64)
                    pick[multi] = rng.integers(count[multi])
            nxt = data[start + pick]
            if whole and col + 1 < max_len:
                cur = nxt
                paths[:, col] = nxt
            else:
                if not whole:
                    full = cur.copy() if cur is srcs else cur
                    full[act] = nxt
                    cur = full
                paths[act, col] = nxt
        return paths, lens
