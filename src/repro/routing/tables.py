"""All-pairs distance tables and shortest-path extraction.

The paper notes table-based routing is the method of choice for ER graphs
(Section IV-D); the same tables also serve every baseline topology.  The
distance matrix comes from one level-synchronous *batched* BFS over every
source simultaneously (:meth:`repro.utils.graph.Graph.all_pairs_distances`)
and is stored as int16 (N x N); the minimal-next-hop candidates fall out
of the same BFS frontier expansion (the shortest-path DAG edges are
exactly the fresh discoveries at each level) and land in a compact table
— a per-pair count byte, a narrow lowest-id ``first`` hop, and an
overflow CSR holding only the pairs with an ECMP tie — instead of the
seed's dense ``n*n + 1`` int64 ``indptr``.  All of it is pinned
bit-identical to the seed per-source builds by golden tests, so
large-radix networks (q=79, N=6321, ~40M pairs) construct in seconds and
~200 MB instead of minutes and ~1 GB without changing a single routed
path.

Path buffers are int32; the unique-path cache stores int16 entries when
router ids fit and streams its build in row chunks, so enabling it never
allocates more than its steady-state footprint.  The cache is
memory-capped (``$REPRO_PATH_CACHE_MB``, default 256) and can be disabled
outright (``$REPRO_PATH_CACHE=0`` or ``path_cache=False``).

Fault-epoch tables wrap the intact distance matrix in
:class:`RowPatchedDist` — only the BFS rows a failure actually changed
are stored densely.
"""

from __future__ import annotations

import os

import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import make_rng

__all__ = [
    "RoutingTables",
    "RowPatchedDist",
    "per_source_candidate_csr",
    "PATH_CACHE_ENV",
    "PATH_CACHE_MB_ENV",
]

#: set to ``0`` to disable the unique-path cache entirely
PATH_CACHE_ENV = "REPRO_PATH_CACHE"

#: memory budget (MiB) the unique-path cache must fit under to be built
PATH_CACHE_MB_ENV = "REPRO_PATH_CACHE_MB"

_PATH_CACHE_DEFAULT_MB = 256.0

#: pair-entry bound per chunk of the streamed unique-path cache build
_PATH_CHUNK_ENTRIES = 1 << 20


def _value_dtype(n: int):
    """Narrowest signed dtype holding router ids ``0..n-1`` (and -1)."""
    return np.int16 if n <= np.iinfo(np.int16).max else np.int32


def _count_dtype(max_degree: int):
    """Narrowest unsigned dtype holding per-pair candidate counts."""
    if max_degree < 2**8:
        return np.uint8
    if max_degree < 2**16:
        return np.uint16
    return np.uint32


def _scatter_sorted_run(pair_s, hop_s, count, first):
    """Scatter one pair-sorted candidate run into ``count``/``first``.

    ``pair_s`` must be sorted ascending with equal pairs holding their
    candidate hops in ascending id order (``hop_s`` aligned).  Pairs in
    one run must be disjoint from pairs scattered by other runs.
    Returns the overflow ``(pairs, sizes, data)`` for pairs with two or
    more candidates, or None when every pair in the run is unique.
    """
    if pair_s.size == 0:
        return None
    head = np.empty(pair_s.size, dtype=bool)
    head[0] = True
    np.not_equal(pair_s[1:], pair_s[:-1], out=head[1:])
    starts = np.flatnonzero(head)
    sizes = np.diff(np.append(starts, pair_s.size))
    keys = pair_s[starts]
    count[keys] = sizes.astype(count.dtype)
    first[keys] = hop_s[starts]
    multi = sizes >= 2
    if not multi.any():
        return None
    return keys[multi], sizes[multi], hop_s[np.repeat(multi, sizes)]


class _CandidateTable:
    """Compact minimal-next-hop candidates over all ``(src, dst)`` pairs.

    Three flat pieces replace the seed's dense CSR (whose ``n*n + 1``
    int64 ``indptr`` alone is 320 MB at q=79):

    - ``count``: candidates per pair (uint8 for any realistic radix),
    - ``first``: the lowest-id candidate per pair (int16 when router
      ids fit; -1 for unset/unreachable pairs),
    - an overflow CSR (``multi_pairs`` sorted int64 keys,
      ``multi_indptr``, ``multi_data``) listing *all* candidates, in
      ascending id order, only for the pairs with an ECMP tie.

    Deterministic serving reads ``first``; tie-breaking draws an index
    and only touches the overflow CSR for nonzero picks, so the RNG
    stream and every served hop are bit-identical to the dense layout's.
    """

    __slots__ = ("n", "count", "first", "multi_pairs", "multi_indptr", "multi_data")

    def __init__(self, n, count, first, parts):
        self.n = int(n)
        self.count = count
        self.first = first
        parts = [p for p in parts if p is not None]
        if parts:
            mp = np.concatenate([p[0] for p in parts])
            mc = np.concatenate([p[1] for p in parts])
            md = np.concatenate([p[2] for p in parts])
            # Runs cover disjoint pair sets but interleave globally (the
            # fused build scatters one BFS source block at a time), so
            # merge by one argsort over the tied pairs only.
            order = np.argsort(mp, kind="stable")
            old_starts = (np.cumsum(mc) - mc)[order]
            sizes = mc[order]
            indptr = np.zeros(sizes.size + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            within = np.arange(md.size, dtype=np.int64) - np.repeat(
                indptr[:-1], sizes
            )
            self.multi_pairs = mp[order]
            self.multi_indptr = indptr
            self.multi_data = md[np.repeat(old_starts, sizes) + within]
        else:
            self.multi_pairs = np.empty(0, dtype=np.int64)
            self.multi_indptr = np.zeros(1, dtype=np.int64)
            self.multi_data = np.empty(0, dtype=first.dtype)

    def next_hops(self, pairs, rng=None) -> np.ndarray:
        """One candidate per pair key, int64.

        Deterministic mode returns ``first``.  With ``rng``, a uniform
        index is drawn per tied pair (one vectorized ``integers`` call
        over int64 counts — the exact draw the dense CSR path made) and
        nonzero picks are resolved through the overflow CSR.
        """
        nxt = self.first[pairs].astype(np.int64)
        if rng is not None:
            cnt = self.count[pairs]
            multi = np.flatnonzero(cnt > 1)
            if multi.size:
                pick = rng.integers(cnt[multi].astype(np.int64))
                pos = np.flatnonzero(pick > 0)
                if pos.size:
                    sel = multi[pos]
                    mi = np.searchsorted(self.multi_pairs, pairs[sel])
                    nxt[sel] = self.multi_data[
                        self.multi_indptr[mi] + pick[pos]
                    ]
        return nxt

    def dense_csr(self) -> tuple:
        """Materialize the seed-shaped dense ``(indptr, data)`` CSR.

        Only tests and oracle comparisons call this — it allocates the
        O(n^2) ``indptr`` the compact layout exists to avoid.
        """
        n = self.n
        indptr = np.zeros(n * n + 1, dtype=np.int64)
        np.cumsum(self.count, dtype=np.int64, out=indptr[1:])
        data = np.empty(int(indptr[-1]), dtype=np.int32)
        single = np.flatnonzero(self.count == 1)
        data[indptr[single]] = self.first[single]
        if self.multi_pairs.size:
            sizes = np.diff(self.multi_indptr)
            dest = np.repeat(indptr[self.multi_pairs], sizes) + (
                np.arange(self.multi_data.size, dtype=np.int64)
                - np.repeat(self.multi_indptr[:-1], sizes)
            )
            data[dest] = self.multi_data
        return indptr, data

    def nbytes(self) -> int:
        """Total bytes across the table's arrays (for perf reporting)."""
        return sum(
            a.nbytes
            for a in (
                self.count,
                self.first,
                self.multi_pairs,
                self.multi_indptr,
                self.multi_data,
            )
        )


class RowPatchedDist:
    """Row-sparse view of a fault-patched distance matrix.

    Incremental repair after a failure recomputes only the BFS rows the
    failure could have changed; this wraps the intact base matrix plus
    that patch block without materializing a dense copy per fault epoch.
    It implements exactly the indexing surface the routing/policy/fault
    layers use — pair gathers ``d[srcs, dsts]``, row and column gathers,
    ``np.ix_`` blocks, ``max()``, ``astype``, ``np.asarray`` — and
    anything fancier should materialize through ``np.asarray`` first.
    The base is never written.
    """

    __slots__ = ("base", "rows", "patch", "shape", "dtype", "_row_of", "_max")

    def __init__(self, base, rows, patch):
        self.base = np.asarray(base)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.patch = np.asarray(patch)
        self.shape = self.base.shape
        self.dtype = self.base.dtype
        self._row_of = np.full(self.shape[0], -1, dtype=np.int64)
        self._row_of[self.rows] = np.arange(self.rows.size, dtype=np.int64)
        self._max = None

    @property
    def ndim(self) -> int:
        return 2

    def dense(self) -> np.ndarray:
        out = self.base.copy()
        if self.rows.size:
            out[self.rows] = self.patch
        return out

    def __array__(self, dtype=None, copy=None):
        out = self.dense()
        if dtype is not None:
            out = out.astype(dtype, copy=False)
        return out

    def astype(self, dtype, copy=True) -> np.ndarray:
        return self.dense().astype(dtype, copy=False)

    def copy(self) -> np.ndarray:
        return self.dense()

    def max(self):
        if self._max is None:
            # Axis-wise max reads the base without an n^2 copy.
            row_max = self.base.max(axis=1)
            best = []
            if self.rows.size:
                best.append(self.patch.max())
                keep = np.ones(self.shape[0], dtype=bool)
                keep[self.rows] = False
                if keep.any():
                    best.append(row_max[keep].max())
            else:
                best.append(row_max.max())
            self._max = int(max(int(b) for b in best))
        return self._max

    def _take_rows(self, i):
        if isinstance(i, (int, np.integer)):
            p = int(self._row_of[i])
            return self.patch[p] if p >= 0 else self.base[i]
        i = np.asarray(i)
        if i.dtype == bool:
            i = np.flatnonzero(i)
        out = self.base[i]
        pi = self._row_of[i]
        m = pi >= 0
        if m.any():
            out[m] = self.patch[pi[m]]
        return out

    def _take_pairs(self, i, j):
        out = self.base[i, j]
        pi = self._row_of[i]
        if out.ndim == 0:
            p = int(pi)
            return self.patch[p, j] if p >= 0 else out
        bi, bj = np.broadcast_arrays(pi, np.asarray(j))
        m = bi >= 0
        if m.any():
            out[m] = self.patch[bi[m], bj[m]]
        return out

    def __getitem__(self, key):
        if isinstance(key, tuple) and len(key) == 2:
            i, j = key
            i_slice = isinstance(i, slice)
            j_slice = isinstance(j, slice)
            if not i_slice and j_slice and j == slice(None):
                return self._take_rows(i)
            if i_slice and i == slice(None) and not j_slice:
                out = np.array(self.base[:, j])
                if self.rows.size:
                    out[self.rows] = self.patch[:, j]
                return out
            if not i_slice and not j_slice:
                return self._take_pairs(i, j)
            return self.dense()[key]
        if isinstance(key, tuple):
            return self.dense()[key]
        return self._take_rows(key)


class RoutingTables:
    """Distance matrix plus shortest-path queries for a topology.

    Parameters
    ----------
    topo:
        Any :class:`~repro.topologies.base.Topology`; the router graph
        must be connected (unless ``alive`` marks failed routers).
    path_cache:
        ``True``/``False`` forces the unique-path cache on or off;
        ``None`` (default) defers to ``$REPRO_PATH_CACHE`` and the
        ``$REPRO_PATH_CACHE_MB`` memory cap.
    alive:
        Optional boolean mask of surviving routers for fault-epoch
        tables.  Dead routers stay in the vertex set with -1 distances;
        only the alive-alive block must be connected.  Policies consult
        :attr:`alive_routers` (e.g. Valiant intermediate draws) and the
        fault subsystem guarantees no route ever targets a dead router.
    """

    def __init__(
        self,
        topo: Topology,
        path_cache: "bool | None" = None,
        alive: "np.ndarray | None" = None,
    ):
        if alive is None and not topo.is_connected():
            raise ValueError("routing tables require a connected topology")
        graph = topo.graph
        n = graph.n
        # One batched all-sources BFS instead of n Python-level ones,
        # driven in source blocks so the BFS's (sources x n) int64 stamp
        # scratch never materializes an N x N transient, and with the
        # minimal-next-hop candidates collected from the frontier
        # expansion itself — no second compare pass over the finished
        # distance matrix (that pass is bandwidth-bound; see
        # :meth:`_candidates_from_dist`, kept for rebuilt tables and as
        # a golden cross-check).
        dist = np.empty((n, n), dtype=np.int16)
        max_degree = int(graph.degree().max()) if n else 0
        vdt = _value_dtype(n)
        count = np.zeros(n * n, dtype=_count_dtype(max_degree))
        first = np.full(n * n, -1, dtype=vdt)
        parts = []
        for block in graph._source_blocks(np.arange(n, dtype=np.int64)):
            dblock, (c_row, c_vert, c_hop) = graph.all_pairs_distances(
                block, dtype=np.int16, return_candidates=True
            )
            lo = int(block[0]) if block.size else 0
            dist[lo : lo + block.size] = dblock
            # Triple (row, vert, hop): hop is a minimal next hop for the
            # pair (src=vert, dst=block[row]).
            pair = c_vert.astype(np.int64) * n + block[c_row]
            order = np.lexsort((c_hop, pair))
            parts.append(
                _scatter_sorted_run(
                    pair[order], c_hop[order].astype(vdt), count, first
                )
            )
        self._init_from(topo, dist, path_cache, alive)
        self._cands = _CandidateTable(n, count, first, parts)

    @classmethod
    def from_distances(
        cls,
        topo: Topology,
        dist,
        path_cache: "bool | None" = None,
        alive: "np.ndarray | None" = None,
    ) -> "RoutingTables":
        """Tables over an externally computed distance matrix.

        The incremental fault-repair path
        (:func:`repro.routing.degraded.reroute_after_failures`) patches
        only the BFS rows a failure could have changed — handing over a
        :class:`RowPatchedDist` view instead of a dense copy — and
        builds the rest of the table state through here; the lazy caches
        are rebuilt on demand, so served paths are identical to a fresh
        build's.
        """
        self = cls.__new__(cls)
        self._init_from(topo, dist, path_cache, alive)
        return self

    def _init_from(self, topo, dist, path_cache, alive) -> None:
        self.topo = topo
        self.dist = dist
        #: surviving-router mask for fault epochs (None: all alive)
        self.alive_routers = (
            np.asarray(alive, dtype=bool) if alive is not None else None
        )
        if self.alive_routers is not None:
            sub = dist[np.ix_(self.alive_routers, self.alive_routers)]
            if sub.size and bool((sub < 0).any()):
                raise ValueError("failures disconnect the network")
        self._path_cache_opt = path_cache
        self._path_cache_on: "bool | None" = None
        # Lazily-built compact table of minimal next-hop candidates per
        # (src, dst) pair, for the batched path extractor.  Fresh builds
        # overwrite this with the fused-BFS table in __init__.
        self._cands: "_CandidateTable | None" = None
        # Lazily-built cache of the pairs whose shortest path is unique
        # (no ECMP tie anywhere along it).
        self._unique_paths: "tuple | None" = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, src: int, dst: int) -> int:
        """Hop distance between routers."""
        return int(self.dist[src, dst])

    def min_next_hops(self, cur: int, dst: int) -> np.ndarray:
        """All neighbors of ``cur`` lying on a shortest path to ``dst``."""
        if cur == dst:
            return np.empty(0, dtype=np.int64)
        nbrs = self.topo.graph.neighbors(cur)
        return nbrs[self.dist[nbrs, dst] == self.dist[cur, dst] - 1]

    def shortest_path(self, src: int, dst: int, rng=None) -> list[int]:
        """One shortest path ``[src, ..., dst]``.

        Deterministic (first next-hop) when ``rng`` is None, otherwise a
        uniformly random choice at each step — the ECMP behaviour used for
        baselines with path diversity.
        """
        path = [src]
        cur = src
        rng = make_rng(rng) if rng is not None else None
        while cur != dst:
            hops = self.min_next_hops(cur, dst)
            # integers() is much cheaper than rng.choice for the
            # per-hop tie-break on this per-packet hot path.
            cur = int(hops[0] if rng is None else hops[rng.integers(hops.size)])
            path.append(cur)
        return path

    def path_length(self, path: list[int]) -> int:
        """Hop count of a router path."""
        return len(path) - 1

    # ------------------------------------------------------------------
    # Batched extraction (the per-cycle routing hot path)
    # ------------------------------------------------------------------
    def _candidate_table(self) -> _CandidateTable:
        """The compact candidate table, building from ``dist`` on demand.

        Fresh :class:`RoutingTables` builds get the table fused into the
        BFS; tables rebuilt over an external distance matrix
        (:meth:`from_distances`, i.e. fault repair) derive it here.
        """
        if self._cands is None:
            self._cands = self._candidates_from_dist()
        return self._cands

    def _candidates_from_dist(self) -> _CandidateTable:
        """Compact candidate table derived from the distance matrix.

        One vectorized pass over the *directed* edge set: edge ``u -> v``
        is a candidate for destination ``dst`` iff
        ``dist[v, dst] == dist[u, dst] - 1``, tested for every edge and
        destination at once (blocked to bound the boolean workspace).
        Candidates come out in ascending id order per pair (so candidate
        0 matches the deterministic scalar path) — identical rows to the
        seed per-source build (:func:`per_source_candidate_csr`) *and*
        to the fused frontier-derived build, both pinned by golden
        tests.
        """
        graph = self.topo.graph
        n = graph.n
        dist = self.dist
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        nbr = graph.indices
        # The comparison only needs to distinguish equal-vs-not of
        # values that differ by at most the diameter: int8 rows (when
        # the diameter fits) halve the gather traffic of the
        # bandwidth-bound edges x destinations pass.
        if int(dist.max()) < 127:
            cmp_dist = dist.astype(np.int8)
        else:
            cmp_dist = np.asarray(dist)
        shifted = cmp_dist - cmp_dist.dtype.type(1)
        flat_parts = []
        # Edge blocks sized so each comparison block (~2M entries)
        # stays cache-resident — same total work as one giant pass,
        # much better locality.  flatnonzero on the raveled block is
        # several times faster than 2-D nonzero; the flat index
        # decomposes into (edge, dst) afterwards.
        step = max(1, (1 << 21) // max(n, 1))
        for lo in range(0, src.size, step):
            on_path = (
                cmp_dist[nbr[lo : lo + step], :]
                == shifted[src[lo : lo + step], :]
            )
            flat_parts.append(np.flatnonzero(on_path) + lo * n)
        flat = (
            np.concatenate(flat_parts) if flat_parts else np.empty(0, np.int64)
        )
        e_idx = flat // n
        dst_idx = flat - e_idx * n
        pair = src[e_idx] * n + dst_idx
        # Stable sort by pair keeps equal pairs in edge order, which
        # is ascending neighbor id within a source (CSR neighbors are
        # sorted) — the order the scalar tie-break contract requires.
        # int32 keys when they fit: the stable integer radix sort
        # then runs half the passes.
        if n * n < np.iinfo(np.int32).max:
            order = np.argsort(pair.astype(np.int32), kind="stable")
        else:
            order = np.argsort(pair, kind="stable")
        vdt = _value_dtype(n)
        max_degree = int(graph.degree().max()) if n else 0
        count = np.zeros(n * n, dtype=_count_dtype(max_degree))
        first = np.full(n * n, -1, dtype=vdt)
        part = _scatter_sorted_run(
            pair[order], nbr[e_idx[order]].astype(vdt), count, first
        )
        return _CandidateTable(n, count, first, [part])

    def _candidate_csr(self) -> tuple:
        """Dense ``(indptr, data)`` CSR materialized from the compact table.

        Kept as the oracle-shaped view the golden tests compare against
        :func:`per_source_candidate_csr`; serving paths use the compact
        table directly and never allocate the ``n*n + 1`` indptr.
        """
        return self._candidate_table().dense_csr()

    def _path_cache_enabled(self) -> bool:
        """Whether the unique-path cache may be built and served.

        An explicit ``path_cache=`` argument wins; otherwise
        ``$REPRO_PATH_CACHE=0`` disables it, and the estimated footprint
        (narrow path entries + unique flags over all n^2 pairs) must
        fit under ``$REPRO_PATH_CACHE_MB`` MiB — q=31 (N=993) needs
        about 7 MB, comfortably inside the 256 MB default.

        The decision is memoized: this sits on the per-cycle routing hot
        path, and the ``dist.max()`` footprint estimate is O(n^2).
        """
        if self._path_cache_on is None:
            self._path_cache_on = self._decide_path_cache()
        return self._path_cache_on

    def _decide_path_cache(self) -> bool:
        if self._path_cache_opt is not None:
            return bool(self._path_cache_opt)
        if os.environ.get(PATH_CACHE_ENV, "1").strip().lower() in (
            "0", "false", "off",
        ):
            return False
        n = self.topo.num_routers
        width = int(self.dist.max()) + 1
        psize = np.dtype(_value_dtype(n)).itemsize
        budget_mb = float(
            os.environ.get(PATH_CACHE_MB_ENV, _PATH_CACHE_DEFAULT_MB)
        )
        return n * n * (psize * width + 1) <= budget_mb * 2**20

    def _unique_path_cache(self) -> tuple:
        """Streamed ``(paths, unique)`` cache over all pairs, lazily.

        ``unique[pair]`` marks pairs whose shortest path has no ECMP tie
        at any step; for those, ``paths[pair]`` is *the* path and batched
        extraction is a single gather with zero RNG draws (the batch
        protocol only draws where there is a tie to break).  Pairs with
        ties are never served from the cache.

        The build walks row chunks (~1M pairs at a time), so its
        transient scratch stays bounded no matter how large the fabric;
        path entries are int16 when router ids fit, and lengths are not
        stored at all — they are ``dist + 1``, recomputed on serve.
        """
        if self._unique_paths is None:
            n = self.topo.num_routers
            tab = self._candidate_table()
            width = int(self.dist.max()) + 1
            paths = np.zeros((n * n, width), dtype=_value_dtype(n))
            unique = np.ones(n * n, dtype=bool)
            dsts_row = np.arange(n, dtype=np.int64)
            step = max(1, _PATH_CHUNK_ENTRIES // max(n, 1))
            for lo in range(0, n, step):
                rows = np.arange(lo, min(lo + step, n), dtype=np.int64)
                sl = slice(lo * n, (lo + rows.size) * n)
                pview = paths[sl]
                uview = unique[sl]
                srcs = np.repeat(rows, n)
                dsts = np.tile(dsts_row, rows.size)
                lens = (
                    np.asarray(self.dist[rows]).ravel().astype(np.int64) + 1
                )
                pview[:, 0] = srcs
                cur = srcs.copy()
                for col in range(1, width):
                    act = lens > col
                    pair = cur[act] * n + dsts[act]
                    uview[act] &= tab.count[pair] == 1
                    nxt = tab.first[pair].astype(np.int64)
                    cur[act] = nxt
                    pview[act, col] = nxt
            self._unique_paths = (paths, unique)
        return self._unique_paths

    def shortest_paths_batch(self, srcs, dsts, rng=None) -> tuple:
        """Vectorized ECMP shortest paths for a batch of (src, dst) pairs.

        Returns ``(paths, lens)``: a ``[k, max_len]`` int32 matrix whose
        row ``i`` holds the path in columns ``0..lens[i]-1`` (columns
        beyond a row's length are unspecified).  With ``rng`` the
        tie-break at every step is a uniform candidate draw (one
        vectorized ``integers`` call per path column across the batch);
        without it the lowest-id candidate is taken, matching scalar
        :meth:`shortest_path`'s deterministic mode.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        k = srcs.size
        n = self.topo.num_routers
        if k and self._path_cache_enabled():
            # Serve the batch from the unique-path cache when no row
            # needs a tie-break — draw-free, so RNG-stream identical.
            cache_paths, unique = self._unique_path_cache()
            pairs = srcs * n + dsts
            if unique[pairs].all():
                lens = self.dist[srcs, dsts].astype(np.int64) + 1
                # Trim to this batch's width so callers see the same
                # shape contract as the general extractor.
                return (
                    cache_paths[pairs][:, : int(lens.max())].astype(
                        np.int32, copy=False
                    ),
                    lens,
                )
        lens = self.dist[srcs, dsts].astype(np.int64) + 1
        if k == 0:
            return np.empty((0, 1), dtype=np.int32), lens
        tab = self._candidate_table()
        max_len = int(lens.max())
        paths = np.empty((k, max_len), dtype=np.int32)
        paths[:, 0] = srcs
        cur = srcs
        for col in range(1, max_len):
            # A row is still walking while col < lens - 1 + 1.
            act = np.flatnonzero(lens > col)
            whole = act.size == cur.size
            pair = (cur if whole else cur[act]) * n + (
                dsts if whole else dsts[act]
            )
            nxt = tab.next_hops(pair, rng)
            if whole and col + 1 < max_len:
                cur = nxt
                paths[:, col] = nxt
            else:
                if not whole:
                    full = cur.copy() if cur is srcs else cur
                    full[act] = nxt
                    cur = full
                paths[act, col] = nxt
        return paths, lens


def per_source_candidate_csr(graph, dist) -> tuple:
    """The seed per-source candidate-CSR build, kept as the golden oracle.

    The frontier-derived compact table (materialized through
    :meth:`RoutingTables._candidate_csr`) is pinned to produce identical
    rows, and the construction benchmark measures this loop as the
    speedup baseline.  ``data`` is int64 as in the seed; the golden
    comparison is value-wise.
    """
    n = graph.n
    dist = np.asarray(dist)
    indptr = np.zeros(n * n + 1, dtype=np.int64)
    chunks = []
    for s in range(n):
        nbrs = graph.neighbors(s)
        on_path = dist[nbrs, :] == dist[s, :][None, :] - 1
        dst_idx, nbr_idx = np.nonzero(on_path.T)
        indptr[s * n + 1 : s * n + n + 1] = np.bincount(dst_idx, minlength=n)
        chunks.append(nbrs[nbr_idx].astype(np.int64))
    np.cumsum(indptr, out=indptr)
    data = np.concatenate(chunks) if chunks else np.empty(0, np.int64)
    return indptr, data
