"""All-pairs distance tables and shortest-path extraction.

The paper notes table-based routing is the method of choice for ER graphs
(Section IV-D); the same tables also serve every baseline topology.  The
distance matrix is built by one vectorized BFS per source and stored as
int16 (N x N), from which minimal next-hops are recovered on demand —
storing full next-hop sets would be O(N^2 * k) for no benefit.
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import make_rng

__all__ = ["RoutingTables"]


class RoutingTables:
    """Distance matrix plus shortest-path queries for a topology.

    Parameters
    ----------
    topo:
        Any :class:`~repro.topologies.base.Topology`; the router graph
        must be connected.
    """

    def __init__(self, topo: Topology):
        if not topo.is_connected():
            raise ValueError("routing tables require a connected topology")
        self.topo = topo
        graph = topo.graph
        n = graph.n
        dist = np.empty((n, n), dtype=np.int16)
        for s in range(n):
            dist[s] = graph.bfs_distances(s)
        self.dist = dist

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, src: int, dst: int) -> int:
        """Hop distance between routers."""
        return int(self.dist[src, dst])

    def min_next_hops(self, cur: int, dst: int) -> np.ndarray:
        """All neighbors of ``cur`` lying on a shortest path to ``dst``."""
        if cur == dst:
            return np.empty(0, dtype=np.int64)
        nbrs = self.topo.graph.neighbors(cur)
        return nbrs[self.dist[nbrs, dst] == self.dist[cur, dst] - 1]

    def shortest_path(self, src: int, dst: int, rng=None) -> list[int]:
        """One shortest path ``[src, ..., dst]``.

        Deterministic (first next-hop) when ``rng`` is None, otherwise a
        uniformly random choice at each step — the ECMP behaviour used for
        baselines with path diversity.
        """
        path = [src]
        cur = src
        rng = make_rng(rng) if rng is not None else None
        while cur != dst:
            hops = self.min_next_hops(cur, dst)
            cur = int(hops[0] if rng is None else rng.choice(hops))
            path.append(cur)
        return path

    def path_length(self, path: list[int]) -> int:
        """Hop count of a router path."""
        return len(path) - 1
