"""All-pairs distance tables and shortest-path extraction.

The paper notes table-based routing is the method of choice for ER graphs
(Section IV-D); the same tables also serve every baseline topology.  The
distance matrix comes from one level-synchronous *batched* BFS over every
source simultaneously (:meth:`repro.utils.graph.Graph.all_pairs_distances`)
and is stored as int16 (N x N); the minimal-next-hop candidate CSR is
built in a single vectorized pass over the directed edge set.  Both are
pinned bit-identical to the seed per-source builds by golden tests, so
large-radix networks (q=31, N=993, ~1M pairs) construct in milliseconds
instead of minutes without changing a single routed path.

Path buffers are int32 — router ids are tiny, and halving the candidate
CSR plus the dense unique-path cache is what lets the cache stay enabled
at production scale.  The cache itself is memory-capped
(``$REPRO_PATH_CACHE_MB``, default 256) and can be disabled outright
(``$REPRO_PATH_CACHE=0`` or ``path_cache=False``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import make_rng

__all__ = [
    "RoutingTables",
    "per_source_candidate_csr",
    "PATH_CACHE_ENV",
    "PATH_CACHE_MB_ENV",
]

#: set to ``0`` to disable the dense unique-path cache entirely
PATH_CACHE_ENV = "REPRO_PATH_CACHE"

#: memory budget (MiB) the unique-path cache must fit under to be built
PATH_CACHE_MB_ENV = "REPRO_PATH_CACHE_MB"

_PATH_CACHE_DEFAULT_MB = 256.0


class RoutingTables:
    """Distance matrix plus shortest-path queries for a topology.

    Parameters
    ----------
    topo:
        Any :class:`~repro.topologies.base.Topology`; the router graph
        must be connected (unless ``alive`` marks failed routers).
    path_cache:
        ``True``/``False`` forces the dense unique-path cache on or off;
        ``None`` (default) defers to ``$REPRO_PATH_CACHE`` and the
        ``$REPRO_PATH_CACHE_MB`` memory cap.
    alive:
        Optional boolean mask of surviving routers for fault-epoch
        tables.  Dead routers stay in the vertex set with -1 distances;
        only the alive-alive block must be connected.  Policies consult
        :attr:`alive_routers` (e.g. Valiant intermediate draws) and the
        fault subsystem guarantees no route ever targets a dead router.
    """

    def __init__(
        self,
        topo: Topology,
        path_cache: "bool | None" = None,
        alive: "np.ndarray | None" = None,
    ):
        if alive is None and not topo.is_connected():
            raise ValueError("routing tables require a connected topology")
        # One batched all-sources BFS instead of n Python-level ones.
        dist = topo.graph.all_pairs_distances(dtype=np.int16)
        self._init_from(topo, dist, path_cache, alive)

    @classmethod
    def from_distances(
        cls,
        topo: Topology,
        dist: np.ndarray,
        path_cache: "bool | None" = None,
        alive: "np.ndarray | None" = None,
    ) -> "RoutingTables":
        """Tables over an externally computed distance matrix.

        The incremental fault-repair path
        (:func:`repro.routing.degraded.reroute_after_failures`) patches
        only the BFS rows a failure could have changed and builds the
        rest of the table state through here — the lazy caches are
        rebuilt on demand, so served paths are identical to a fresh
        build's.
        """
        self = cls.__new__(cls)
        self._init_from(topo, dist, path_cache, alive)
        return self

    def _init_from(self, topo, dist, path_cache, alive) -> None:
        self.topo = topo
        self.dist = dist
        #: surviving-router mask for fault epochs (None: all alive)
        self.alive_routers = (
            np.asarray(alive, dtype=bool) if alive is not None else None
        )
        if self.alive_routers is not None:
            sub = dist[np.ix_(self.alive_routers, self.alive_routers)]
            if sub.size and bool((sub < 0).any()):
                raise ValueError("failures disconnect the network")
        self._path_cache_opt = path_cache
        self._path_cache_on: "bool | None" = None
        # Lazily-built CSR of minimal next-hop candidates per (src, dst)
        # pair, for the batched path extractor.
        self._min_hop_csr: "tuple | None" = None
        # Lazily-built dense cache of the pairs whose shortest path is
        # unique (no ECMP tie anywhere along it).
        self._unique_paths: "tuple | None" = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, src: int, dst: int) -> int:
        """Hop distance between routers."""
        return int(self.dist[src, dst])

    def min_next_hops(self, cur: int, dst: int) -> np.ndarray:
        """All neighbors of ``cur`` lying on a shortest path to ``dst``."""
        if cur == dst:
            return np.empty(0, dtype=np.int64)
        nbrs = self.topo.graph.neighbors(cur)
        return nbrs[self.dist[nbrs, dst] == self.dist[cur, dst] - 1]

    def shortest_path(self, src: int, dst: int, rng=None) -> list[int]:
        """One shortest path ``[src, ..., dst]``.

        Deterministic (first next-hop) when ``rng`` is None, otherwise a
        uniformly random choice at each step — the ECMP behaviour used for
        baselines with path diversity.
        """
        path = [src]
        cur = src
        rng = make_rng(rng) if rng is not None else None
        while cur != dst:
            hops = self.min_next_hops(cur, dst)
            # integers() is much cheaper than rng.choice for the
            # per-hop tie-break on this per-packet hot path.
            cur = int(hops[0] if rng is None else hops[rng.integers(hops.size)])
            path.append(cur)
        return path

    def path_length(self, path: list[int]) -> int:
        """Hop count of a router path."""
        return len(path) - 1

    # ------------------------------------------------------------------
    # Batched extraction (the per-cycle routing hot path)
    # ------------------------------------------------------------------
    def _candidate_csr(self) -> tuple:
        """CSR of minimal next hops per (src, dst) pair, built on demand.

        One vectorized pass over the *directed* edge set: edge ``u -> v``
        is a candidate for destination ``dst`` iff
        ``dist[v, dst] == dist[u, dst] - 1``, tested for every edge and
        destination at once (blocked to bound the boolean workspace).
        ``indptr`` has ``n*n + 1`` entries indexed by ``src*n + dst``;
        ``data`` lists the candidate neighbors in ascending id order (so
        candidate 0 matches the deterministic scalar path) — identical
        rows to the seed per-source build
        (:func:`per_source_candidate_csr`, pinned by golden tests).
        """
        if self._min_hop_csr is None:
            graph = self.topo.graph
            n = graph.n
            dist = self.dist
            src = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(graph.indptr)
            )
            nbr = graph.indices
            # The comparison only needs to distinguish equal-vs-not of
            # values that differ by at most the diameter: int8 rows (when
            # the diameter fits) halve the gather traffic of the
            # bandwidth-bound edges x destinations pass.
            cmp_dist = (
                dist.astype(np.int8) if int(dist.max()) < 127 else dist
            )
            shifted = cmp_dist - cmp_dist.dtype.type(1)
            flat_parts = []
            # Edge blocks sized so each comparison block (~2M entries)
            # stays cache-resident — same total work as one giant pass,
            # much better locality.  flatnonzero on the raveled block is
            # several times faster than 2-D nonzero; the flat index
            # decomposes into (edge, dst) afterwards.
            step = max(1, (1 << 21) // max(n, 1))
            for lo in range(0, src.size, step):
                on_path = (
                    cmp_dist[nbr[lo : lo + step], :]
                    == shifted[src[lo : lo + step], :]
                )
                flat_parts.append(np.flatnonzero(on_path) + lo * n)
            flat = (
                np.concatenate(flat_parts)
                if flat_parts
                else np.empty(0, np.int64)
            )
            e_idx = flat // n
            dst_idx = flat - e_idx * n
            pair = src[e_idx] * n + dst_idx
            # Stable sort by pair keeps equal pairs in edge order, which
            # is ascending neighbor id within a source (CSR neighbors are
            # sorted) — the order the scalar tie-break contract requires.
            # int32 keys when they fit: the stable integer radix sort
            # then runs half the passes.
            if n * n < np.iinfo(np.int32).max:
                order = np.argsort(pair.astype(np.int32), kind="stable")
            else:
                order = np.argsort(pair, kind="stable")
            data = nbr[e_idx[order]].astype(np.int32)
            indptr = np.zeros(n * n + 1, dtype=np.int64)
            np.cumsum(np.bincount(pair, minlength=n * n), out=indptr[1:])
            self._min_hop_csr = (indptr, data)
        return self._min_hop_csr

    def _path_cache_enabled(self) -> bool:
        """Whether the dense unique-path cache may be built and served.

        An explicit ``path_cache=`` argument wins; otherwise
        ``$REPRO_PATH_CACHE=0`` disables it, and the estimated footprint
        (int32 paths + int64 lens + unique flags over all n^2 pairs) must
        fit under ``$REPRO_PATH_CACHE_MB`` MiB — q=31 (N=993) needs about
        20 MB, comfortably inside the 256 MB default.

        The decision is memoized: this sits on the per-cycle routing hot
        path, and the ``dist.max()`` footprint estimate is O(n^2).
        """
        if self._path_cache_on is None:
            self._path_cache_on = self._decide_path_cache()
        return self._path_cache_on

    def _decide_path_cache(self) -> bool:
        if self._path_cache_opt is not None:
            return bool(self._path_cache_opt)
        if os.environ.get(PATH_CACHE_ENV, "1").strip().lower() in (
            "0", "false", "off",
        ):
            return False
        n = self.topo.num_routers
        width = int(self.dist.max()) + 1
        budget_mb = float(
            os.environ.get(PATH_CACHE_MB_ENV, _PATH_CACHE_DEFAULT_MB)
        )
        return n * n * (4 * width + 9) <= budget_mb * 2**20

    def _unique_path_cache(self) -> tuple:
        """Dense ``(paths, lens, unique)`` cache over all pairs, lazily.

        ``unique[pair]`` marks pairs whose shortest path has no ECMP tie
        at any step; for those, ``paths[pair]`` is *the* path and batched
        extraction is a single gather with zero RNG draws (the batch
        protocol only draws where there is a tie to break).  Pairs with
        ties are never served from the cache.
        """
        if self._unique_paths is None:
            n = self.topo.num_routers
            indptr, data = self._candidate_csr()
            width = int(self.dist.max()) + 1
            lens = self.dist.ravel().astype(np.int64) + 1
            paths = np.zeros((n * n, width), dtype=np.int32)
            srcs = np.repeat(np.arange(n, dtype=np.int64), n)
            dsts = np.tile(np.arange(n, dtype=np.int64), n)
            paths[:, 0] = srcs
            unique = np.ones(n * n, dtype=bool)
            cur = srcs.copy()
            for col in range(1, width):
                act = lens > col
                pair = cur[act] * n + dsts[act]
                start = indptr[pair]
                unique[act] &= indptr[pair + 1] - start == 1
                nxt = data[start]
                cur[act] = nxt
                paths[act, col] = nxt
            self._unique_paths = (paths, lens, unique)
        return self._unique_paths

    def shortest_paths_batch(self, srcs, dsts, rng=None) -> tuple:
        """Vectorized ECMP shortest paths for a batch of (src, dst) pairs.

        Returns ``(paths, lens)``: a ``[k, max_len]`` int32 matrix whose
        row ``i`` holds the path in columns ``0..lens[i]-1`` (columns
        beyond a row's length are unspecified).  With ``rng`` the
        tie-break at every step is a uniform candidate draw (one
        vectorized ``integers`` call per path column across the batch);
        without it the lowest-id candidate is taken, matching scalar
        :meth:`shortest_path`'s deterministic mode.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        k = srcs.size
        n = self.topo.num_routers
        if k and self._path_cache_enabled():
            # Serve the batch from the unique-path cache when no row
            # needs a tie-break — draw-free, so RNG-stream identical.
            cache_paths, cache_lens, unique = self._unique_path_cache()
            pairs = srcs * n + dsts
            if unique[pairs].all():
                lens = cache_lens[pairs]
                # Trim to this batch's width so callers see the same
                # shape contract as the general extractor.
                return cache_paths[pairs][:, : int(lens.max())], lens
        lens = self.dist[srcs, dsts].astype(np.int64) + 1
        if k == 0:
            return np.empty((0, 1), dtype=np.int32), lens
        indptr, data = self._candidate_csr()
        max_len = int(lens.max())
        paths = np.empty((k, max_len), dtype=np.int32)
        paths[:, 0] = srcs
        cur = srcs
        for col in range(1, max_len):
            # A row is still walking while col < lens - 1 + 1.
            act = np.flatnonzero(lens > col)
            whole = act.size == cur.size
            pair = (cur if whole else cur[act]) * n + (
                dsts if whole else dsts[act]
            )
            start = indptr[pair]
            count = indptr[pair + 1] - start
            # Draw tie-breaks only where there is a tie to break: unique
            # shortest paths (the common case on PolarFly) cost no RNG.
            pick = 0
            if rng is not None:
                multi = np.flatnonzero(count > 1)
                if multi.size:
                    pick = np.zeros(pair.size, dtype=np.int64)
                    pick[multi] = rng.integers(count[multi])
            nxt = data[start + pick].astype(np.int64)
            if whole and col + 1 < max_len:
                cur = nxt
                paths[:, col] = nxt
            else:
                if not whole:
                    full = cur.copy() if cur is srcs else cur
                    full[act] = nxt
                    cur = full
                paths[act, col] = nxt
        return paths, lens


def per_source_candidate_csr(graph, dist) -> tuple:
    """The seed per-source candidate-CSR build, kept as the golden oracle.

    The vectorized :meth:`RoutingTables._candidate_csr` is pinned to
    produce identical rows, and the construction benchmark measures this
    loop as the speedup baseline.  ``data`` is int64 as in the seed; the
    golden comparison is value-wise.
    """
    n = graph.n
    indptr = np.zeros(n * n + 1, dtype=np.int64)
    chunks = []
    for s in range(n):
        nbrs = graph.neighbors(s)
        on_path = dist[nbrs, :] == dist[s, :][None, :] - 1
        dst_idx, nbr_idx = np.nonzero(on_path.T)
        indptr[s * n + 1 : s * n + n + 1] = np.bincount(dst_idx, minlength=n)
        chunks.append(nbrs[nbr_idx].astype(np.int64))
    np.cumsum(indptr, out=indptr)
    data = np.concatenate(chunks) if chunks else np.empty(0, np.int64)
    return indptr, data
