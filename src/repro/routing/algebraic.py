"""Table-free algebraic routing for PolarFly (paper Section IV-D).

The paper notes table-based routing is the efficient implementation, but
the unique 2-hop midpoint can also be computed *in the router* from the
endpoint coordinates alone: the cross product ``s x d`` left-normalized,
"in the worst case needing only two multiplies and three adds in F_q ...
then at most another two multiplies" — no O(N^2) state.

:class:`AlgebraicMinimalRouting` is a drop-in
:class:`~repro.routing.policies.RoutingPolicy` that derives routes purely
from GF(q) arithmetic on the vertex vectors.  Tests assert it produces
exactly the same routes as the BFS table implementation; the cost bench
uses it to demonstrate O(1)-state routing.
"""

from __future__ import annotations

from repro.core.polarfly import PolarFly
from repro.routing.policies import RoutingPolicy, ZERO_CONGESTION

__all__ = ["AlgebraicMinimalRouting"]


class AlgebraicMinimalRouting(RoutingPolicy):
    """Minimal PolarFly routing computed from coordinates, not tables.

    Parameters
    ----------
    pf:
        The PolarFly topology (works on any prime power q).

    Notes
    -----
    ``tables`` is intentionally absent: the point of this policy is that
    a router needs only its own and the destination's 3-vectors.  The
    ``max_hops`` bound is the ER graph diameter, 2.
    """

    max_hops = 2

    def __init__(self, pf: PolarFly):
        # RoutingPolicy's constructor expects tables; this policy carries
        # the topology directly instead.
        self.pf = pf
        self.topo = pf
        self.tables = None

    def retable(self, tables) -> None:
        raise NotImplementedError(
            "dynamic fault repair is not supported for table-free "
            "algebraic routing (routes derive from intact coordinates)"
        )

    def select_route(self, src: int, dst: int, rng, congestion=ZERO_CONGESTION):
        """The unique minimal route, via one dot and one cross product."""
        return self.pf.minimal_path(src, dst)

    def next_hop(self, current: int, dst: int) -> int:
        """Hardware-style per-hop decision from coordinates only.

        At the source of a 2-hop pair this returns the cross-product
        midpoint; at the midpoint (or any neighbor of ``dst``) it returns
        ``dst``.
        """
        if current == dst:
            raise ValueError("already at destination")
        if self.pf.are_adjacent(current, dst):
            return dst
        return self.pf.intermediate(current, dst)
