"""Routing policies (paper Section VII).

A policy turns ``(src_router, dst_router)`` into a concrete router path at
injection time.  Adaptive policies additionally inspect the injecting
router's local output-queue state through the
:class:`CongestionView` protocol the simulator provides — the same
information a UGAL-L router has in hardware (local buffer occupancies).

Implemented policies:

* :class:`MinimalRouting` — unique/ECMP shortest paths.
* :class:`ValiantRouting` — classic two-phase Valiant through a uniformly
  random intermediate router (up to 4 hops on a diameter-2 network).
* :class:`CompactValiantRouting` — the paper's PolarFly-specific variant:
  the intermediate is drawn from the *neighborhood* of the source (3-hop
  worst case), applied only when source and destination are not adjacent.
* :class:`UGALRouting` — UGAL-L: pick min vs Valiant by comparing
  queue-depth x hop-count products.
* :class:`UGALPFRouting` — the paper's UGAL_PF: Compact Valiant plus an
  adaptation threshold (divert only when the min-path output buffer is
  more than ``threshold`` full).
* :class:`FatTreeNCARouting` — up/down least-common-ancestor routing for
  k-ary n-trees (the FT-NCA baseline).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.experiments.registry import POLICIES
from repro.routing.tables import RoutingTables
from repro.topologies.fattree import FatTree
from repro.utils.rng import make_rng

__all__ = [
    "CongestionView",
    "RoutingPolicy",
    "MinimalRouting",
    "ValiantRouting",
    "CompactValiantRouting",
    "UGALRouting",
    "UGALPFRouting",
    "FatTreeNCARouting",
    "routes_as_matrix",
    "iter_routes",
]


class CongestionView(Protocol):
    """Local congestion info a router can legally observe (credits)."""

    def output_occupancy(self, router: int, next_hop: int) -> int:
        """Flits currently occupying the output buffer toward ``next_hop``."""
        ...

    def output_occupancies(self, routers, next_hops) -> np.ndarray:
        """Batched :meth:`output_occupancy` over parallel index arrays."""
        ...

    def output_capacity(self) -> int:
        """Total flit capacity of one output buffer (all VCs)."""
        ...


class _ZeroCongestion:
    """Congestion view used outside a simulation (everything idle)."""

    def output_occupancy(self, router: int, next_hop: int) -> int:
        return 0

    def output_occupancies(self, routers, next_hops) -> np.ndarray:
        return np.zeros(len(routers), dtype=np.int64)

    def output_capacity(self) -> int:
        return 1


ZERO_CONGESTION = _ZeroCongestion()


# ----------------------------------------------------------------------
# Route-batch plumbing
# ----------------------------------------------------------------------
# ``select_routes`` may return either a plain list of paths or a
# ``(paths, lens)`` padded-matrix pair (the vectorized policies do).
# The two helpers below are how the engines consume either form.
def routes_as_matrix(routes) -> tuple:
    """Normalize a ``select_routes`` result to a padded ``(paths, lens)``.

    Identity for the matrix form the vectorized policies return; list
    results are packed into a fresh padded matrix.
    """
    if isinstance(routes, tuple):
        return routes
    lens = np.fromiter((len(r) for r in routes), count=len(routes), dtype=np.int64)
    paths = np.zeros((len(routes), int(lens.max()) if len(routes) else 1),
                     dtype=np.int64)
    for i, route in enumerate(routes):
        paths[i, : len(route)] = route
    return paths, lens


def iter_routes(routes):
    """Iterate a ``select_routes`` result as per-packet router tuples."""
    if isinstance(routes, tuple):
        paths, lens = routes
        for i in range(lens.size):
            yield tuple(paths[i, : lens[i]])
    else:
        for r in routes:
            yield tuple(r)


def _splice(first_mat, first_lens, second_mat, second_lens) -> tuple:
    """Join two path batches at their shared middle router, row-wise."""
    k = first_lens.size
    lens = first_lens + second_lens - 1
    width = int(lens.max())
    paths = np.zeros((k, width), dtype=np.result_type(first_mat, second_mat))
    paths[:, : first_mat.shape[1]] = first_mat
    cols = np.arange(second_mat.shape[1])[None, :]
    pos = (first_lens - 1)[:, None] + cols
    valid = cols < second_lens[:, None]
    rows = np.broadcast_to(np.arange(k)[:, None], pos.shape)
    paths[rows[valid], pos[valid]] = second_mat[valid]
    return paths, lens


def _overlay(base_mat, base_lens, rows, alt_mat, alt_lens) -> tuple:
    """Replace ``rows`` of a path batch with rows of an alternative."""
    if rows.size == 0:
        return base_mat, base_lens
    if alt_mat.shape[1] > base_mat.shape[1]:
        wide = np.zeros((base_mat.shape[0], alt_mat.shape[1]), dtype=base_mat.dtype)
        wide[:, : base_mat.shape[1]] = base_mat
        base_mat = wide
    base_mat[rows, : alt_mat.shape[1]] = alt_mat
    base_lens[rows] = alt_lens
    return base_mat, base_lens


class RoutingPolicy:
    """Base class: owns the tables and the path-selection entry point."""

    #: worst-case hops this policy can produce (used to size VCs)
    max_hops: int = 0

    def __init__(self, tables: RoutingTables):
        self.tables = tables
        self.topo = tables.topo

    def retable(self, tables: RoutingTables) -> None:
        """Repoint at repaired tables (the dynamic fault-repair hook).

        Swaps tables *and* topology view (so neighbor draws see the
        degraded graph) and lets :attr:`max_hops` only **ratchet up**:
        VC budgets and route buffers are sized once at simulator
        construction and must stay valid across every fault epoch.  The
        fault subsystem pre-walks all epoch tables through here before
        the run so the ceiling is known up front.
        """
        self.tables = tables
        self.topo = tables.topo

    def select_route(
        self, src: int, dst: int, rng, congestion: CongestionView = ZERO_CONGESTION
    ) -> list[int]:
        """Return the router path ``[src, ..., dst]`` for a new packet."""
        raise NotImplementedError

    def select_routes(
        self, srcs, dsts, rng, congestion: CongestionView = ZERO_CONGESTION
    ):
        """Routes for a batch of same-cycle injections, in order.

        The simulator's per-cycle entry point (both engines call it once
        with all Bernoulli winners), and the method that *defines* a
        policy's RNG-consumption protocol — vectorized overrides draw in
        batch order, so they need not consume the stream like repeated
        scalar :meth:`select_route` calls would.

        May return a list of paths or a padded ``(paths, lens)`` matrix
        pair; engines consume either via :func:`routes_as_matrix` /
        :func:`iter_routes`.  The default selects sequentially.
        """
        return [
            self.select_route(int(s), int(d), rng, congestion)
            for s, d in zip(srcs, dsts)
        ]

    # Helper: shortest path with random ECMP tie-breaks.
    def _sp(self, src: int, dst: int, rng) -> list[int]:
        return self.tables.shortest_path(src, dst, rng=rng)


class MinimalRouting(RoutingPolicy):
    """Table-based minimal routing (unique path on PolarFly)."""

    def __init__(self, tables: RoutingTables):
        super().__init__(tables)
        self.max_hops = int(tables.dist.max())

    def retable(self, tables: RoutingTables) -> None:
        super().retable(tables)
        self.max_hops = max(self.max_hops, int(tables.dist.max()))

    def select_route(self, src, dst, rng, congestion=ZERO_CONGESTION):
        return self._sp(src, dst, rng)

    def select_routes(self, srcs, dsts, rng, congestion=ZERO_CONGESTION):
        return self.tables.shortest_paths_batch(srcs, dsts, rng)


class ValiantRouting(RoutingPolicy):
    """Valiant load balancing through a uniform random intermediate."""

    def __init__(self, tables: RoutingTables):
        super().__init__(tables)
        self.max_hops = 2 * int(tables.dist.max())

    def retable(self, tables: RoutingTables) -> None:
        RoutingPolicy.retable(self, tables)
        self.max_hops = max(self.max_hops, 2 * int(tables.dist.max()))

    def random_intermediate(self, src: int, dst: int, rng) -> int:
        n = self.topo.num_routers
        alive = self.tables.alive_routers
        while True:
            r = int(rng.integers(n))
            if r != src and r != dst and (alive is None or alive[r]):
                return r

    def random_intermediates(self, srcs, dsts, rng) -> np.ndarray:
        """Batched intermediates: draw all, redraw collisions until clean.

        On fault-epoch tables, dead routers (``alive_routers`` False)
        are redrawn too — the detour must stay on the surviving fabric.
        The redraw loop consumes the RNG identically when every router
        is alive, so fault-free streams are unchanged.
        """
        n = self.topo.num_routers
        alive = self.tables.alive_routers
        mids = rng.integers(n, size=srcs.size)
        while True:
            bad = (mids == srcs) | (mids == dsts)
            if alive is not None:
                bad |= ~alive[mids]
            bad = np.flatnonzero(bad)
            if bad.size == 0:
                return mids
            mids[bad] = rng.integers(n, size=bad.size)

    def select_route(self, src, dst, rng, congestion=ZERO_CONGESTION):
        mid = self.random_intermediate(src, dst, rng)
        first = self._sp(src, mid, rng)
        second = self._sp(mid, dst, rng)
        return first + second[1:]

    def select_routes(self, srcs, dsts, rng, congestion=ZERO_CONGESTION):
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.size == 0:
            return np.empty((0, 1), np.int64), np.empty(0, np.int64)
        mids = self.random_intermediates(srcs, dsts, rng)
        first = self.tables.shortest_paths_batch(srcs, mids, rng)
        second = self.tables.shortest_paths_batch(mids, dsts, rng)
        return _splice(*first, *second)


class CompactValiantRouting(ValiantRouting):
    """Compact Valiant (Section VII-B): intermediate from ``N(src)``.

    Caps the detour at 3 hops on a diameter-2 network instead of Valiant's
    4.  When source and destination are adjacent the neighbor detour could
    bounce packets back through the source, so the general Valiant
    intermediate is used instead (as the paper prescribes).

    ``max_hops`` is therefore the *general* Valiant bound ``2 * diameter``:
    the neighbor detour itself needs only ``1 + diameter``, but the
    adjacent-pair fallback can use the full Valiant worst case (on the
    paper's diameter-2 networks both bounds are 4).
    """

    def __init__(self, tables: RoutingTables):
        super().__init__(tables)
        self.max_hops = 2 * int(tables.dist.max())

    def select_route(self, src, dst, rng, congestion=ZERO_CONGESTION):
        if self.tables.distance(src, dst) <= 1:
            return super().select_route(src, dst, rng, congestion)
        nbrs = self.topo.graph.neighbors(src)
        mid = int(nbrs[int(rng.integers(nbrs.size))])
        if mid == dst:
            return self._sp(src, dst, rng)
        tail = self._sp(mid, dst, rng)
        return [src] + tail

    def select_routes(self, srcs, dsts, rng, congestion=ZERO_CONGESTION):
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        k = srcs.size
        if k == 0:
            return np.empty((0, 1), np.int64), np.empty(0, np.int64)
        dist = self.tables.dist[srcs, dsts].astype(np.int64)
        far = np.flatnonzero(dist > 1)
        adj = np.flatnonzero(dist <= 1)
        lens = np.empty(k, dtype=np.int64)
        pieces = []
        if far.size:
            # Neighbor intermediate (cannot equal dst: dist > 1) + tail.
            graph = self.topo.graph
            src_far = srcs[far]
            start = graph.indptr[src_far]
            degree = graph.indptr[src_far + 1] - start
            mids = graph.indices[start + rng.integers(degree)]
            tail_mat, tail_lens = self.tables.shortest_paths_batch(
                mids, dsts[far], rng
            )
            far_mat = np.empty((far.size, tail_mat.shape[1] + 1), dtype=np.int64)
            far_mat[:, 0] = src_far
            far_mat[:, 1:] = tail_mat
            lens[far] = tail_lens + 1
            pieces.append((far, far_mat))
        if adj.size:
            # Adjacent pairs fall back to general Valiant, batched.
            adj_mat, adj_lens = ValiantRouting.select_routes(
                self, srcs[adj], dsts[adj], rng, congestion
            )
            lens[adj] = adj_lens
            pieces.append((adj, adj_mat))
        paths = np.zeros((k, int(lens.max())), dtype=np.int64)
        for rows, mat in pieces:
            paths[rows, : mat.shape[1]] = mat
        return paths, lens


class UGALRouting(RoutingPolicy):
    """UGAL-L: min vs Valiant chosen by local queue x hop products.

    The packet takes the Valiant path iff
    ``occ(min_port) * H_min > occ(val_port) * H_val + bias`` — the
    standard UGAL comparison with a small min-path bias to avoid
    needless diversion at low load.
    """

    def __init__(self, tables: RoutingTables, bias: int = 1):
        super().__init__(tables)
        self.valiant = ValiantRouting(tables)
        self.bias = bias
        self.max_hops = self.valiant.max_hops

    def retable(self, tables: RoutingTables) -> None:
        RoutingPolicy.retable(self, tables)
        self.valiant.retable(tables)
        self.max_hops = max(self.max_hops, self.valiant.max_hops)

    def _valiant_candidate(self, src, dst, rng):
        return self.valiant.select_route(src, dst, rng)

    def select_route(self, src, dst, rng, congestion=ZERO_CONGESTION):
        min_path = self._sp(src, dst, rng)
        if len(min_path) < 2:
            return min_path
        val_path = self._valiant_candidate(src, dst, rng)
        q_min = congestion.output_occupancy(src, min_path[1])
        q_val = congestion.output_occupancy(src, val_path[1])
        h_min, h_val = len(min_path) - 1, len(val_path) - 1
        if q_min * h_min > q_val * h_val + self.bias:
            return val_path
        return min_path

    def _valiant_candidates_batch(self, srcs, dsts, rng, congestion):
        return self.valiant.select_routes(srcs, dsts, rng, congestion)

    def select_routes(self, srcs, dsts, rng, congestion=ZERO_CONGESTION):
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.size == 0:
            return np.empty((0, 1), np.int64), np.empty(0, np.int64)
        min_mat, min_lens = self.tables.shortest_paths_batch(srcs, dsts, rng)
        cand = np.flatnonzero(min_lens > 1)
        if cand.size == 0:
            return min_mat, min_lens
        val_mat, val_lens = self._valiant_candidates_batch(
            srcs[cand], dsts[cand], rng, congestion
        )
        q_min = congestion.output_occupancies(srcs[cand], min_mat[cand, 1])
        q_val = congestion.output_occupancies(srcs[cand], val_mat[:, 1])
        divert = q_min * (min_lens[cand] - 1) > q_val * (val_lens - 1) + self.bias
        return _overlay(
            min_mat, min_lens, cand[divert], val_mat[divert], val_lens[divert]
        )


class UGALGRouting(UGALRouting):
    """UGAL-G: the globally-informed UGAL upper bound.

    Instead of only the injecting router's local queues, compare the
    summed output occupancy along the *entire* candidate paths.  Real
    hardware cannot see remote queues instantaneously, so UGAL-G is the
    idealized reference adaptive router (BookSim ships the same variant);
    the gap between UGAL-L and UGAL-G measures how much the local
    approximation costs.
    """

    def _path_cost(self, path, congestion) -> int:
        return sum(
            congestion.output_occupancy(a, b) for a, b in zip(path, path[1:])
        )

    def select_route(self, src, dst, rng, congestion=ZERO_CONGESTION):
        min_path = self._sp(src, dst, rng)
        if len(min_path) < 2:
            return min_path
        val_path = self._valiant_candidate(src, dst, rng)
        q_min = self._path_cost(min_path, congestion)
        q_val = self._path_cost(val_path, congestion)
        h_min, h_val = len(min_path) - 1, len(val_path) - 1
        if q_min * h_min > q_val * h_val + self.bias:
            return val_path
        return min_path

    def select_routes(self, srcs, dsts, rng, congestion=ZERO_CONGESTION):
        # Whole-path costs don't vectorize over the local view; the
        # idealized baseline keeps the sequential default.
        return RoutingPolicy.select_routes(self, srcs, dsts, rng, congestion)


class UGALPFRouting(UGALRouting):
    """UGAL_PF (Section VII-C): Compact Valiant + adaptation threshold.

    Divert to the (compact) Valiant path only when the min-path output
    buffer is more than ``threshold`` (default 2/3) full *and* the UGAL
    queue comparison still favors the detour.
    """

    def __init__(self, tables: RoutingTables, threshold: float = 2.0 / 3.0, bias: int = 1):
        super().__init__(tables, bias=bias)
        self.compact = CompactValiantRouting(tables)
        self.threshold = float(threshold)
        self.max_hops = self.compact.max_hops

    def retable(self, tables: RoutingTables) -> None:
        super().retable(tables)
        self.compact.retable(tables)
        self.max_hops = max(self.max_hops, self.compact.max_hops)

    def _valiant_candidate(self, src, dst, rng):
        return self.compact.select_route(src, dst, rng)

    def select_route(self, src, dst, rng, congestion=ZERO_CONGESTION):
        min_path = self._sp(src, dst, rng)
        if len(min_path) < 2:
            return min_path
        occ_frac = congestion.output_occupancy(
            src, min_path[1]
        ) / max(congestion.output_capacity(), 1)
        if occ_frac <= self.threshold:
            return min_path
        return super().select_route(src, dst, rng, congestion)

    def _valiant_candidates_batch(self, srcs, dsts, rng, congestion):
        return self.compact.select_routes(srcs, dsts, rng, congestion)

    def select_routes(self, srcs, dsts, rng, congestion=ZERO_CONGESTION):
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.size == 0:
            return np.empty((0, 1), np.int64), np.empty(0, np.int64)
        min_mat, min_lens = self.tables.shortest_paths_batch(srcs, dsts, rng)
        multi = np.flatnonzero(min_lens > 1)
        if multi.size == 0:
            return min_mat, min_lens
        occ = congestion.output_occupancies(srcs[multi], min_mat[multi, 1])
        over = occ > self.threshold * max(congestion.output_capacity(), 1)
        cand = multi[over]
        if cand.size == 0:
            return min_mat, min_lens
        val_mat, val_lens = self._valiant_candidates_batch(
            srcs[cand], dsts[cand], rng, congestion
        )
        q_min = occ[over]
        q_val = congestion.output_occupancies(srcs[cand], val_mat[:, 1])
        divert = q_min * (min_lens[cand] - 1) > q_val * (val_lens - 1) + self.bias
        return _overlay(
            min_mat, min_lens, cand[divert], val_mat[divert], val_lens[divert]
        )


class FatTreeNCARouting(RoutingPolicy):
    """Nearest-common-ancestor up/down routing on a k-ary n-tree.

    Up-hops pick a uniformly random parent (the tree's full path
    diversity); once at the NCA level the down path is digit-determined.
    Both endpoints must be level-0 (edge) switches.
    """

    def __init__(self, tables: RoutingTables):
        if not isinstance(tables.topo, FatTree):
            raise TypeError("FatTreeNCARouting requires a FatTree topology")
        super().__init__(tables)
        self.ft: FatTree = tables.topo
        self.max_hops = 2 * (self.ft.n_levels - 1)

    def retable(self, tables: RoutingTables) -> None:
        raise NotImplementedError(
            "dynamic fault repair is not supported for FT-NCA routing"
        )

    def select_route(self, src, dst, rng, congestion=ZERO_CONGESTION):
        ft = self.ft
        if src == dst:
            return [src]
        nca = ft.nca_level(src, dst)
        path = [src]
        cur = src
        # Ascend with random parent choice.
        for level in range(nca):
            ups = [
                int(v)
                for v in self.topo.graph.neighbors(cur)
                if ft.switch_level(int(v)) == level + 1
            ]
            cur = ups[int(rng.integers(len(ups)))]
            path.append(cur)
        # Descend: at each level pick the unique child on a shortest path
        # to dst (digit-determined).
        while cur != dst:
            hops = self.tables.min_next_hops(cur, dst)
            level = ft.switch_level(cur)
            downs = hops[[ft.switch_level(int(h)) == level - 1 for h in hops]]
            cur = int(downs[0])
            path.append(cur)
        return path


# ----------------------------------------------------------------------
# Spec registrations — factories take (tables, **spec kwargs)
# ----------------------------------------------------------------------
@POLICIES.register("min")
def _min_from_spec(tables) -> MinimalRouting:
    return MinimalRouting(tables)


@POLICIES.register("valiant")
def _valiant_from_spec(tables) -> ValiantRouting:
    return ValiantRouting(tables)


@POLICIES.register("compact-valiant")
def _compact_valiant_from_spec(tables) -> CompactValiantRouting:
    return CompactValiantRouting(tables)


@POLICIES.register("ugal", example="ugal:bias=1")
def _ugal_from_spec(tables, bias: int = 1) -> UGALRouting:
    return UGALRouting(tables, bias=bias)


@POLICIES.register("ugal-g", example="ugal-g:bias=1")
def _ugal_g_from_spec(tables, bias: int = 1) -> UGALGRouting:
    return UGALGRouting(tables, bias=bias)


@POLICIES.register("ugal-pf", example="ugal-pf:bias=1,threshold=0.5")
def _ugal_pf_from_spec(tables, threshold: float = 2.0 / 3.0, bias: int = 1) -> UGALPFRouting:
    return UGALPFRouting(tables, threshold=threshold, bias=bias)


@POLICIES.register("ftnca")
def _ftnca_from_spec(tables) -> FatTreeNCARouting:
    return FatTreeNCARouting(tables)
