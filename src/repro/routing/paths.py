"""Exact path enumeration for small hop budgets.

Used by the Table-VI path-diversity analysis and by fault-tolerance
reasoning: counts *simple* paths (no repeated vertices) of a given length
between vertex pairs.  Depth-limited DFS over CSR neighbor slices; lengths
of interest never exceed 4, so the search tree is tiny compared to the
graph.
"""

from __future__ import annotations

import numpy as np

from repro.utils.graph import Graph

__all__ = ["count_paths_of_length", "enumerate_paths", "count_paths_up_to"]


def enumerate_paths(
    graph: Graph, src: int, dst: int, length: int
) -> list[tuple[int, ...]]:
    """All simple paths from ``src`` to ``dst`` with exactly ``length`` hops."""
    if length < 0:
        return []
    if length == 0:
        return [(src,)] if src == dst else []
    out: list[tuple[int, ...]] = []
    stack: list[tuple[int, tuple[int, ...]]] = [(src, (src,))]
    while stack:
        cur, path = stack.pop()
        remaining = length - (len(path) - 1)
        if remaining == 0:
            if cur == dst:
                out.append(path)
            continue
        for nxt in graph.neighbors(cur):
            nxt = int(nxt)
            if nxt in path:
                continue
            # Prune: must still be able to reach dst in the remaining hops
            # (cheap check: if this is the last hop it must land on dst).
            if remaining == 1 and nxt != dst:
                continue
            stack.append((nxt, path + (nxt,)))
    return out


def count_paths_of_length(graph: Graph, src: int, dst: int, length: int) -> int:
    """Number of simple ``length``-hop paths between ``src`` and ``dst``."""
    return len(enumerate_paths(graph, src, dst, length))


def count_paths_up_to(
    graph: Graph, src: int, dst: int, max_length: int
) -> dict[int, int]:
    """Path counts keyed by length for ``1 .. max_length``."""
    return {
        length: count_paths_of_length(graph, src, dst, length)
        for length in range(1, max_length + 1)
    }
