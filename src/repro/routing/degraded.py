"""Failure-aware routing: rebuild tables on a degraded network.

Section IX-B studies metrics under link failures; this module closes the
loop operationally — given a set of failed links (or routers), produce a
same-vertex-id degraded topology and fresh routing tables so simulations
can run on the broken network.  Combined with Table VI's path diversity,
this demonstrates the paper's claim that PolarFly keeps routing at <= 4
hops deep into failure regimes.

Two construction modes:

* **Fresh** (``base=None``): full batched all-pairs BFS on the degraded
  graph — the simple oracle.
* **Incremental** (``base=`` existing tables of the intact topology):
  only the BFS rows a removed edge could have perturbed are recomputed.
  An edge ``(u, v)`` lies on some shortest path from source ``s`` iff
  ``|d(s,u) - d(s,v)| == 1`` (adjacent vertices differ by at most 1), so
  rows where every removed edge has equal endpoint distances are copied
  verbatim.  This is the repair path the dynamic fault subsystem
  (:mod:`repro.faults`) runs at every in-simulation failure epoch; a
  golden test pins it row-identical to the fresh build.

Both modes raise :class:`ValueError` when the failures disconnect the
surviving routers — callers should treat that as the terminal condition
it is.
"""

from __future__ import annotations

import numpy as np

from repro.routing.tables import RoutingTables, RowPatchedDist
from repro.topologies.base import Topology

__all__ = ["degraded_topology", "reroute_after_failures", "fault_epoch_tables"]


def _as_edge_array(failed_links) -> np.ndarray:
    arr = (
        failed_links.astype(np.int64, copy=True)
        if isinstance(failed_links, np.ndarray)
        else np.asarray([tuple(e) for e in failed_links], dtype=np.int64)
    )
    arr = arr.reshape(-1, 2)
    arr.sort(axis=1)
    return arr


def degraded_topology(topo: Topology, failed_links) -> Topology:
    """Copy of ``topo`` with ``failed_links`` removed (vertex ids kept).

    Raises if the failures disconnect the network — callers should treat
    that as the terminal condition it is.
    """
    graph = topo.graph.remove_edges(failed_links)
    degraded = Topology(f"{topo.name}-deg{len(list(failed_links))}",
                        graph, topo.concentration)
    if not degraded.is_connected():
        raise ValueError("failures disconnect the network")
    return degraded


def _incremental_tables(
    degraded: Topology,
    base: RoutingTables,
    failed: np.ndarray,
    alive: "np.ndarray | None" = None,
) -> RoutingTables:
    """Repair ``base`` for ``degraded``: recompute only perturbed rows.

    The repaired matrix is a :class:`RowPatchedDist` view — the intact
    base matrix shared read-only plus a dense block holding just the
    recomputed rows — so a fault epoch costs O(affected x n) memory, not
    O(n^2).  When ``base`` itself carries a patched view (chained
    repairs), it is materialized first; patches never stack.
    """
    dist = base.dist
    if isinstance(dist, RowPatchedDist):
        dist = dist.dense()
    if failed.size:
        touched = dist[:, failed[:, 0]] != dist[:, failed[:, 1]]
        affected = np.flatnonzero(touched.any(axis=1))
    else:
        affected = np.empty(0, dtype=np.int64)
    if affected.size:
        patch = degraded.graph.all_pairs_distances(affected, dtype=np.int16)
        # Unaffected rows are provably identical on the degraded graph,
        # so any new disconnection must surface in the patch block.
        if alive is None and bool((patch < 0).any()):
            raise ValueError("failures disconnect the network")
        if affected.size < dist.shape[0]:
            new_dist = RowPatchedDist(dist, affected, patch)
        else:
            new_dist = dist.copy()
            new_dist[affected] = patch
    else:
        # No row touched a failed edge: the base matrix is exact and can
        # be shared as-is (RoutingTables never mutates its dist).
        new_dist = dist
    return RoutingTables.from_distances(
        degraded, new_dist, path_cache=base._path_cache_opt, alive=alive
    )


def reroute_after_failures(
    topo: Topology, failed_links, base: "RoutingTables | None" = None
) -> RoutingTables:
    """Routing tables recomputed around the failed links.

    With ``base`` (tables of the *intact* ``topo``) the rebuild is
    incremental: rows whose shortest-path DAG cannot have used a failed
    link are copied, the rest re-run one batched BFS.  Identical tables
    either way, pinned by the golden degraded-routing tests.
    """
    failed = _as_edge_array(failed_links)
    if base is None:
        return RoutingTables(degraded_topology(topo, failed))
    graph = topo.graph.remove_edges(failed)
    degraded = Topology(
        f"{topo.name}-deg{failed.shape[0]}", graph, topo.concentration
    )
    return _incremental_tables(degraded, base, failed)


def fault_epoch_tables(
    topo: Topology,
    failed_links=(),
    failed_routers=(),
    base: "RoutingTables | None" = None,
) -> RoutingTables:
    """Tables for one dynamic-fault epoch: links and/or whole routers out.

    Dead routers stay in the vertex set (the simulator's port geometry
    is immutable) with all incident links removed and -1 distances; the
    returned tables carry the ``alive_routers`` mask so adaptive
    policies can exclude them from intermediate draws.  Raises when the
    surviving routers disconnect.
    """
    failed_routers = sorted(int(r) for r in failed_routers)
    failed = _as_edge_array(failed_links)
    if failed_routers:
        dead = np.asarray(failed_routers, dtype=np.int64)
        edges = topo.graph.edges()
        incident = edges[np.isin(edges[:, 0], dead) | np.isin(edges[:, 1], dead)]
        failed = np.unique(
            np.concatenate([failed, incident.astype(np.int64)]), axis=0
        ) if failed.size else incident.astype(np.int64)
        alive = np.ones(topo.num_routers, dtype=bool)
        alive[dead] = False
    else:
        alive = None
    if not failed_routers and base is None:
        return reroute_after_failures(topo, failed)
    graph = topo.graph.remove_edges(failed)
    degraded = Topology(
        f"{topo.name}-deg{failed.shape[0]}", graph, topo.concentration
    )
    if base is None:
        return RoutingTables(degraded, alive=alive)
    return _incremental_tables(degraded, base, failed, alive=alive)
