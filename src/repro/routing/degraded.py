"""Failure-aware routing: rebuild tables on a degraded network.

Section IX-B studies metrics under link failures; this module closes the
loop operationally — given a set of failed links (or routers), produce a
same-vertex-id degraded topology and fresh routing tables so simulations
can run on the broken network.  Combined with Table VI's path diversity,
this demonstrates the paper's claim that PolarFly keeps routing at <= 4
hops deep into failure regimes.
"""

from __future__ import annotations

import numpy as np

from repro.routing.tables import RoutingTables
from repro.topologies.base import Topology

__all__ = ["degraded_topology", "reroute_after_failures"]


def degraded_topology(topo: Topology, failed_links) -> Topology:
    """Copy of ``topo`` with ``failed_links`` removed (vertex ids kept).

    Raises if the failures disconnect the network — callers should treat
    that as the terminal condition it is.
    """
    graph = topo.graph.remove_edges(failed_links)
    degraded = Topology(f"{topo.name}-deg{len(list(failed_links))}",
                        graph, topo.concentration)
    if not degraded.is_connected():
        raise ValueError("failures disconnect the network")
    return degraded


def reroute_after_failures(topo: Topology, failed_links) -> RoutingTables:
    """Routing tables recomputed around the failed links."""
    return RoutingTables(degraded_topology(topo, failed_links))
