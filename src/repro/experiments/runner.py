"""The parallel sweep runner: one engine behind every figure and script.

:class:`SweepRunner` executes an :class:`~repro.experiments.spec.ExperimentSpec`
by (1) consulting the :class:`~repro.experiments.cache.ResultCache` for
already-simulated cells, (2) fanning the missing cells out over
``concurrent.futures`` worker processes, and (3) assembling the per-combo
:class:`~repro.flitsim.sweep.LoadSweep` curves callers plot or assert on.

Determinism contract: a cell's result depends only on the cell record
(spec strings + windows + derived seed), never on which worker ran it,
in what order, in which chunk, or whether it came from the cache — so
serial, parallel, and cached runs of the same spec are bit-identical.

Scheduling is **topology-affine**: missing cells are grouped by topology
spec and submitted as chunks (not single cells), so a worker builds each
fabric and routing table at most once per chunk and the per-process memo
absorbs the rest.  The :class:`ProcessPoolExecutor` persists across
``run()`` calls — a script that fires many sweeps pays process spin-up
and per-worker construction once.  Workers rebuild
topologies/policies/traffic from registry spec strings (cheap to ship,
no pickled simulator state); the default worker count is
``os.cpu_count()``, overridable with ``$REPRO_SWEEP_WORKERS``.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache
from repro.experiments.registry import (
    FAULTS,
    POLICIES,
    TOPOLOGIES,
    TRAFFICS,
    WORKLOADS,
)
from repro.experiments.spec import ExperimentSpec
from repro.flitsim.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    SimConfig,
    SimResult,
    make_simulator,
)
from repro.flitsim.sweep import LoadSweep, SweepPoint

__all__ = [
    "SweepRunner",
    "ExperimentResult",
    "simulate_point",
    "simulate_workload",
    "run_cell",
    "run_chunk",
    "auto_sim_config",
    "default_worker_count",
]

#: environment override for the default worker count
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def default_worker_count() -> int:
    """Worker processes to use when the caller doesn't say.

    ``$REPRO_SWEEP_WORKERS`` wins when set; otherwise every core —
    sweeps are embarrassingly parallel and the determinism contract
    makes the count result-invisible.
    """
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        return int(env)
    return os.cpu_count() or 1

#: per-process memo: canonical topology spec -> (topology, routing tables)
_TOPO_MEMO: dict = {}

#: memo entries kept per process — the pool now persists across run()
#: calls, so without a bound a worker would accumulate every topology it
#: ever simulated (N x N tables, path caches, fabrics).  Topology-affine
#: chunks make eviction churn rare.
_TOPO_MEMO_CAP = 8


def auto_sim_config(
    policy,
    port_budget: int = 32,
    num_vcs: "int | None" = None,
    vc_depth: "int | None" = None,
    packet_size: int = 4,
) -> SimConfig:
    """Simulator config sized for ``policy`` under a fixed port budget.

    The paper's methodology: total buffering per port is constant while
    the VC count covers the policy's worst-case hop count (deadlock
    freedom needs ``max_hops - 1`` hop classes).  Explicit ``num_vcs`` /
    ``vc_depth`` override either half of the derivation.
    """
    vcs = int(num_vcs) if num_vcs else max(4, policy.max_hops - 1)
    depth = int(vc_depth) if vc_depth else max(2, port_budget // vcs)
    return SimConfig(num_vcs=vcs, vc_depth=depth, packet_size=packet_size)


def simulate_point(
    topo,
    policy,
    traffic,
    load: float,
    config: "SimConfig | None" = None,
    warmup: int = 600,
    measure: int = 1200,
    drain: int = 300,
    seed=0,
    engine: "str | None" = None,
    faults=None,
) -> SimResult:
    """Run one simulation cell on already-built objects.

    The single execution path for every simulation point in the repo —
    benchmarks, examples, and cache-missing sweep cells all end here.
    ``engine`` of ``None`` selects the struct-of-arrays flat engine
    unless ``$REPRO_SIM_ENGINE`` overrides it; the two engines are
    result-equivalent, so cached artifacts are engine-agnostic.  With a
    ``faults`` timeline the returned result carries the run's
    :class:`~repro.faults.FaultResult` as ``.fault`` (size the config
    via :func:`~repro.faults.prepare_fault_policy` first, or pass
    ``config=None`` after preparing the policy).
    """
    if config is None:
        config = auto_sim_config(policy)
    sim = make_simulator(
        topo, policy, traffic, float(load), config=config, seed=seed,
        engine=engine, faults=faults,
    )
    res = sim.run(warmup=warmup, measure=measure, drain=drain)
    if sim.fault_result is not None:
        res.fault = sim.fault_result
    return res


def simulate_workload(
    topo,
    policy,
    workload,
    config: "SimConfig | None" = None,
    max_cycles: int = 200_000,
    seed=0,
    engine: "str | None" = None,
    faults=None,
):
    """Run one closed-loop workload cell on already-built objects.

    The workload counterpart of :func:`simulate_point`: every
    closed-loop simulation in the repo — benchmarks, examples, and
    cache-missing workload sweep cells — ends here.  Returns a
    :class:`~repro.workloads.WorkloadResult` (carrying ``.fault`` when a
    timeline was attached).
    """
    if config is None:
        config = auto_sim_config(policy)
    sim = make_simulator(
        topo, policy, None, 0.0, config=config, seed=seed, engine=engine,
        workload=workload, faults=faults,
    )
    res = sim.run_workload(max_cycles=max_cycles)
    if sim.fault_result is not None:
        res.fault = sim.fault_result
    return res


def _build_cell_objects(cell: dict):
    """(topo, policy, traffic) for a cell record, memoizing per process."""
    from repro.routing.tables import RoutingTables

    topo_spec = cell["topology"]
    memo = _TOPO_MEMO.get(topo_spec)
    if memo is None:
        while len(_TOPO_MEMO) >= _TOPO_MEMO_CAP:
            _TOPO_MEMO.pop(next(iter(_TOPO_MEMO)))
        topo = TOPOLOGIES.create(topo_spec)
        memo = _TOPO_MEMO[topo_spec] = (topo, RoutingTables(topo))
        # Pre-warm the flat engine's dense port geometry: it is memoized
        # weakly per topology object, and this memo keeps the object
        # alive, so every later cell on this topology reuses it.  (Skip
        # when the env pins the reference engine — it never uses one.)
        if os.environ.get(ENGINE_ENV, DEFAULT_ENGINE) != "reference":
            from repro.flitsim.flatcore import fabric_for

            fabric_for(topo)
    topo, tables = memo
    policy = POLICIES.create(cell["policy"], tables)
    traffic = TRAFFICS.create(cell["traffic"], topo) if cell["traffic"] else None
    return topo, policy, traffic


def run_cell(cell: dict) -> dict:
    """Execute one cell record and return its JSON-safe statistics.

    Module-level (picklable) so :class:`ProcessPoolExecutor` can run it
    in workers; also called inline for serial sweeps.  Closed-loop
    cells (a ``workload`` field instead of a traffic spec) run to
    completion and report workload metrics alongside the standard
    sweep-point fields — avg/p50/p99 are then *packet* statistics of
    the whole run and ``accepted_load`` the achieved throughput, so
    workload curves assemble through the same
    :class:`~repro.flitsim.sweep.LoadSweep` plumbing.
    """
    topo, policy, traffic = _build_cell_objects(cell)
    faults = None
    if cell.get("faults"):
        from repro.faults import prepare_fault_policy

        # Built per cell (cheap); the repaired per-epoch tables are
        # memoized on the topology, so repeated cells share them.  The
        # policy's hop ceiling must cover every degraded epoch *before*
        # VC counts are derived below.
        faults = FAULTS.create(cell["faults"], topo)
        prepare_fault_policy(policy, faults, topo)
    config = auto_sim_config(
        policy,
        port_budget=cell["port_budget"],
        num_vcs=cell["num_vcs"],
        vc_depth=cell["vc_depth"],
        packet_size=cell["packet_size"],
    )
    if cell.get("workload"):
        workload = WORKLOADS.create(cell["workload"], topo)
        res = simulate_workload(
            topo,
            policy,
            workload,
            config=config,
            max_cycles=cell["max_cycles"],
            seed=cell["seed"],
            faults=faults,
        )
        stats = {
            "offered_load": cell["load"],
            "accepted_load": res.achieved_throughput,
            "avg_latency": res.avg_packet_latency,
            "p50_latency": res.packet_latency_percentile(50),
            "p99_latency": res.packet_latency_percentile(99),
            "avg_hops": res.avg_hops,
            "cycles": res.cycles,
            "num_endpoints": res.num_endpoints,
            "injected_flits": res.injected_flits,
            "ejected_flits": res.ejected_flits,
            "num_packets": int(len(res.packet_latencies)),
        }
        stats.update(res.summary())
        if faults is not None:
            stats.update(res.fault.summary())
        return stats
    res = simulate_point(
        topo,
        policy,
        traffic,
        cell["load"],
        config=config,
        warmup=cell["warmup"],
        measure=cell["measure"],
        drain=cell["drain"],
        seed=cell["seed"],
        faults=faults,
    )
    stats = {
        "offered_load": res.offered_load,
        "accepted_load": res.accepted_load,
        "avg_latency": res.avg_latency,
        "p50_latency": res.p50_latency,
        "p99_latency": res.p99_latency,
        "avg_hops": res.avg_hops,
        "cycles": res.cycles,
        "num_endpoints": res.num_endpoints,
        "injected_flits": res.injected_flits,
        "ejected_flits": res.ejected_flits,
        "num_packets": int(len(res.latencies)),
    }
    if faults is not None:
        stats.update(res.fault.summary())
    return stats


def run_chunk(cells: list) -> list:
    """Execute a topology-affine chunk of cell records, in order.

    The pool's unit of work: every cell in a chunk shares one topology
    spec, so a worker pays fabric/table construction once (via the
    per-process memo) and then just simulates.
    """
    return [run_cell(cell) for cell in cells]


def _point_from_stats(stats: dict) -> SweepPoint:
    return SweepPoint(
        offered_load=stats["offered_load"],
        avg_latency=stats["avg_latency"],
        p99_latency=stats["p99_latency"],
        accepted_load=stats["accepted_load"],
        avg_hops=stats["avg_hops"],
        p50_latency=stats["p50_latency"],
    )


@dataclass
class ExperimentResult:
    """Assembled output of one :meth:`SweepRunner.run` invocation."""

    spec: ExperimentSpec
    sweeps: list = field(default_factory=list)
    #: raw per-cell statistics keyed by cell hash
    cells: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def sweep(self, label: str) -> LoadSweep:
        """The curve with ``label`` (exact match)."""
        for s in self.sweeps:
            if s.label == label:
                return s
        raise KeyError(
            f"no sweep labelled {label!r}; have "
            + ", ".join(repr(s.label) for s in self.sweeps)
        )

    def saturation_table(self) -> dict:
        """label -> saturation throughput, the headline number per curve."""
        return {s.label: s.saturation_load() for s in self.sweeps}


class SweepRunner:
    """Runs experiment specs with caching and process-parallel fan-out.

    Parameters
    ----------
    cache:
        A :class:`ResultCache`, or ``None`` to always simulate.
    max_workers:
        Worker processes for cache-missing cells.  ``None`` reads
        ``$REPRO_SWEEP_WORKERS``, defaulting to ``os.cpu_count()``; the
        pool persists across :meth:`run` calls (use :meth:`close` or a
        ``with`` block to reap it eagerly — garbage collection does too).

    Notes
    -----
    Because the pool persists, workers snapshot the environment when
    first spawned: flipping env knobs (``$REPRO_SIM_ENGINE``,
    ``$REPRO_PATH_CACHE``) between :meth:`run` calls requires
    :meth:`close` first so the next pool re-reads them.  On platforms
    whose default start method is *spawn* (macOS, Windows), scripts
    using a multi-worker runner need the standard
    ``if __name__ == "__main__":`` guard; set
    ``REPRO_SWEEP_WORKERS=1`` to force inline execution instead.
    """

    def __init__(self, cache: "ResultCache | None" = None, max_workers: "int | None" = None):
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.cache = cache
        self.max_workers = max_workers
        self._pool: "ProcessPoolExecutor | None" = None
        self._pool_workers = 0

    @classmethod
    def with_default_cache(cls, max_workers: "int | None" = None) -> "SweepRunner":
        return cls(cache=ResultCache.default(), max_workers=max_workers)

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, created on first use at full width.

        Always sized to ``max_workers`` — sizing to the current run's
        chunk count would tear the pool down whenever a later run has
        more chunks, discarding the per-worker construction memo the
        persistent pool exists to keep warm.  Excess workers just idle.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._pool_workers = self.max_workers
            # Reap worker processes when the runner is collected without
            # an explicit close() (shutdown is idempotent).
            weakref.finalize(self, self._pool.shutdown, wait=False)
        return self._pool

    def _chunks(self, missing: list) -> list:
        """Topology-affine, cost-ordered chunks of ``missing``.

        Cells are grouped by topology spec (first-seen order) and each
        group is split into pieces of at most ``ceil(missing/workers)``
        cells: a chunk never mixes topologies (one fabric/table build
        per chunk), yet a single big topology still fans out across the
        whole pool.  Within each group cells are stable-sorted by
        *descending offered load* first — high-load cells simulate the
        most flits per cycle, so scheduling the expensive work first
        evens out the tail instead of leaving one worker grinding a
        saturated cell after the pool has drained.  Chunking and
        ordering affect only placement — per-cell results are
        chunk-invariant by the determinism contract.
        """
        groups: dict = {}
        for cell in missing:
            groups.setdefault(cell["topology"], []).append(cell)
        size = max(1, -(-len(missing) // self.max_workers))
        chunks = []
        for group in groups.values():
            group = sorted(group, key=lambda c: -c["load"])
            for i in range(0, len(group), size):
                chunks.append(group[i : i + size])
        return chunks

    # ------------------------------------------------------------------
    # Spec execution
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute ``spec``: cache lookups, fan-out, curve assembly."""
        cells = spec.cells()
        result = ExperimentResult(spec=spec)

        missing = []
        for cell in cells:
            doc = self.cache.get(cell["key"]) if self.cache is not None else None
            if doc is not None and doc.get("cell", {}).get("version") == cell["version"]:
                result.cells[cell["key"]] = doc["result"]
                result.cache_hits += 1
            else:
                missing.append(cell)

        if missing:
            result.cache_misses = len(missing)
            chunks = self._chunks(missing)
            if self.max_workers > 1 and len(chunks) > 1:
                pool = self._ensure_pool()
                try:
                    stats_chunks = list(pool.map(run_chunk, chunks))
                except Exception:
                    # Don't hand a possibly-broken pool (e.g. an
                    # OOM-killed worker) to the next run() — drop the
                    # not-yet-started chunks and recreate next time
                    # rather than blocking on the doomed sweep.
                    pool.shutdown(cancel_futures=True)
                    self._pool = None
                    self._pool_workers = 0
                    raise
            else:
                stats_chunks = [run_chunk(chunk) for chunk in chunks]
            for chunk, stats_list in zip(chunks, stats_chunks):
                for cell, stats in zip(chunk, stats_list):
                    result.cells[cell["key"]] = stats
                    if self.cache is not None:
                        self.cache.put(cell["key"], {"cell": cell, "result": stats})

        # cells() is combo-major then load-major, so the precomputed list
        # partitions into one len(loads) slice per combo — no re-hashing.
        per_combo = len(spec.loads)
        for i, combo in enumerate(spec.combos):
            points = [
                _point_from_stats(result.cells[cell["key"]])
                for cell in cells[i * per_combo : (i + 1) * per_combo]
            ]
            result.sweeps.append(LoadSweep(combo.label, points))
        return result

    # ------------------------------------------------------------------
    # Object execution (pre-built topology/policy/traffic)
    # ------------------------------------------------------------------
    def run_objects(
        self,
        topo,
        policy,
        traffic,
        loads,
        label: str = "",
        config: "SimConfig | None" = None,
        warmup: int = 600,
        measure: int = 1200,
        drain: int = 300,
        seed=0,
        engine: "str | None" = None,
    ) -> LoadSweep:
        """Sweep ``loads`` over already-constructed objects, inline.

        The escape hatch for callers whose topology isn't expressible as
        a registry spec (degraded fabrics, incremental expansions).  No
        caching or multiprocessing — live objects have no content hash
        and may not pickle — but the per-point execution path is the
        same :func:`simulate_point` the spec path uses.  ``engine`` pins
        a simulator engine without touching ``$REPRO_SIM_ENGINE``.
        """
        points = [
            SweepPoint.from_result(
                simulate_point(
                    topo, policy, traffic, load, config=config,
                    warmup=warmup, measure=measure, drain=drain, seed=seed,
                    engine=engine,
                )
            )
            for load in loads
        ]
        return LoadSweep(label or f"{topo.name}", points)
