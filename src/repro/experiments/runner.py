"""The parallel sweep runner: one engine behind every figure and script.

:class:`SweepRunner` executes an :class:`~repro.experiments.spec.ExperimentSpec`
by (1) consulting the :class:`~repro.experiments.cache.ResultCache` for
already-simulated cells, (2) fanning the missing cells out over
``concurrent.futures`` worker processes, and (3) assembling the per-combo
:class:`~repro.flitsim.sweep.LoadSweep` curves callers plot or assert on.

Determinism contract: a cell's result depends only on the cell record
(spec strings + windows + derived seed), never on which worker ran it,
in what order, in which chunk, whether it came from the cache — or how
many times it had to be retried after a fault — so serial, parallel,
cached, and crash-recovered runs of the same spec are bit-identical.

Scheduling is **topology-affine** and **crash-resilient**: missing cells
are grouped by topology spec and split into small dynamically-sized
chunks (several per worker, so a worker builds each fabric at most once
per chunk while the grid still drains without a static-ordering tail),
dispatched as futures and harvested as they complete.  Each finished
chunk's cells are committed to the cache *immediately* — a killed run
resumes from the cache with zero re-simulation of finished cells.  A
chunk that fails (worker death, in-worker exception, or wall-clock
timeout) is retried with exponential backoff; a broken pool is killed
and respawned with only the in-flight chunks re-dispatched; a chunk
that fails twice is bisected until the offending cell is isolated,
recorded as a :class:`CellError`, and quarantined so the rest of the
grid completes.  Workers rebuild topologies/policies/traffic from
registry spec strings (cheap to ship, no pickled simulator state); the
default worker count is ``os.cpu_count()``, overridable with
``$REPRO_SWEEP_WORKERS``.
"""

from __future__ import annotations

import os
import sys
import time
import traceback as _traceback
import weakref
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro import obs
from repro.experiments.cache import ResultCache
from repro.experiments.registry import (
    FAULTS,
    POLICIES,
    TOPOLOGIES,
    TRAFFICS,
    WORKLOADS,
)
from repro.experiments.spec import ExperimentSpec, cell_cost
from repro.flitsim.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    SimConfig,
    SimResult,
    make_simulator,
)
from repro.flitsim.sweep import LoadSweep, SweepPoint

__all__ = [
    "SweepRunner",
    "ExperimentResult",
    "CellError",
    "SweepCellError",
    "SweepTimeoutError",
    "simulate_point",
    "simulate_workload",
    "run_cell",
    "run_chunk",
    "auto_sim_config",
    "default_worker_count",
    "cell_timeout",
]

#: environment override for the default worker count
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: environment override for the per-cell wall-clock timeout (seconds)
TIMEOUT_ENV = "REPRO_SWEEP_TIMEOUT"

#: environment override for the cells-per-chunk size
CHUNK_ENV = "REPRO_SWEEP_CHUNK"

#: progress heartbeat: seconds between one-line stderr summaries (off
#: unless set; independent of ``REPRO_OBS``)
PROGRESS_ENV = "REPRO_SWEEP_PROGRESS"

#: heartbeat cadence for ``sweep.progress`` events when only
#: ``REPRO_OBS`` is configured (no explicit ``REPRO_SWEEP_PROGRESS``)
_OBS_PROGRESS_DEFAULT_S = 5.0

#: default chunk sizing: aim for this many chunks per worker, so the
#: grid drains without a static-ordering tail and checkpoint commits
#: stay fine-grained
CHUNKS_PER_WORKER = 4

#: a chunk (or serial cell) is bisected/quarantined after this many
#: failed execution attempts
MAX_ATTEMPTS = 2

#: exponential retry backoff: base * 2**(attempts-1), capped
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0

#: per-cell timeout derivation: max(floor, cycles * routers * rate).
#: The rate is deliberately generous — the timeout is a hang guard of
#: last resort, not a performance budget.
TIMEOUT_FLOOR_S = 30.0
TIMEOUT_PER_CYCLE_ROUTER_S = 2e-4

#: slack added to every chunk deadline (dispatch + unpickling headroom)
CHUNK_DEADLINE_SLACK_S = 2.0

#: harvest-loop poll granularity (deadline checks between completions)
_POLL_S = 0.1


def default_worker_count() -> int:
    """Worker processes to use when the caller doesn't say.

    ``$REPRO_SWEEP_WORKERS`` wins when set; otherwise every core —
    sweeps are embarrassingly parallel and the determinism contract
    makes the count result-invisible.
    """
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        return int(env)
    return os.cpu_count() or 1


def _estimate_routers(topo_spec: str) -> int:
    """Crude router-count estimate parsed from a topology spec string.

    Only used to derive a generous default per-cell timeout
    (cycles x routers) without building the topology in the parent; a
    wrong guess just loosens or tightens the hang guard, never results.
    """
    name, _, params = topo_spec.partition(":")
    kv: dict = {}
    for part in params.split(","):
        k, _, v = part.partition("=")
        try:
            kv[k.strip()] = int(v)
        except ValueError:
            pass
    q = kv.get("q", 0)
    if name == "polarfly" and q:
        return q * q + q + 1
    if name == "polarstar" and q:
        return (q * q + q + 1) * max(1, kv.get("sq", 2 * q + 3))
    if name == "slimfly" and q:
        return 2 * q * q
    if name == "dragonfly" and kv.get("a") and kv.get("h"):
        return kv["a"] * (kv["a"] * kv["h"] + 1)
    for alias in ("n", "size", "num_routers"):
        if kv.get(alias):
            return kv[alias]
    return 1024


def cell_timeout(cell: dict) -> float:
    """Wall-clock budget for one cell, in seconds.

    ``$REPRO_SWEEP_TIMEOUT`` wins when set; the default is derived from
    the cell's simulated-cycle count times an estimated router count —
    generous enough that it only ever fires on a genuine hang.
    """
    env = os.environ.get(TIMEOUT_ENV, "").strip()
    if env:
        return float(env)
    cycles = cell_cost(cell)
    routers = _estimate_routers(cell["topology"])
    return max(TIMEOUT_FLOOR_S, cycles * routers * TIMEOUT_PER_CYCLE_ROUTER_S)


def _chunk_deadline(cells: list) -> float:
    """Wall-clock budget for a chunk: the sum of its cells' budgets."""
    return sum(cell_timeout(cell) for cell in cells) + CHUNK_DEADLINE_SLACK_S


def _backoff(attempts: int) -> float:
    return min(BACKOFF_CAP_S, BACKOFF_BASE_S * 2 ** max(0, attempts - 1))


def _format_exception(exc: BaseException) -> str:
    """Full traceback text, including the worker-side traceback that
    ``concurrent.futures`` chains as ``exc.__cause__`` when an exception
    crosses the process boundary."""
    return "".join(
        _traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


def _chunk_label(cells: list) -> str:
    """Stable short identity for a chunk in event streams: the first
    cell's key prefix (bisection halves get distinct labels)."""
    return cells[0]["key"][:12] if cells else "-"


class _Heartbeat:
    """Periodic sweep progress: a one-line stderr summary when
    ``$REPRO_SWEEP_PROGRESS`` is set (seconds interval), and/or
    ``sweep.progress`` events when ``$REPRO_OBS`` is configured.

    Inert (every call a no-op after one attribute check) when neither
    knob is set.  ``final()`` always prints one closing summary line
    when printing is enabled, even for runs shorter than the interval.
    """

    __slots__ = (
        "result", "total", "interval", "print_line", "obs_on",
        "t0", "start_done", "next_beat", "samples",
    )

    #: completion samples kept for the sliding-window rate (one per
    #: beat, so the window spans roughly the last 5 intervals)
    _RATE_WINDOW = 6

    def __init__(self, result: "ExperimentResult", total: int):
        self.result = result
        self.total = total
        self.print_line = False
        interval = None
        env = os.environ.get(PROGRESS_ENV, "").strip()
        if env:
            try:
                interval = max(0.1, float(env))
                self.print_line = True
            except ValueError:
                pass
        self.obs_on = obs.enabled()
        if interval is None and self.obs_on:
            interval = _OBS_PROGRESS_DEFAULT_S
        self.interval = interval
        self.t0 = time.monotonic()
        self.start_done = len(result.cells)
        self.samples = deque(maxlen=self._RATE_WINDOW)
        self.samples.append((self.t0, self.start_done))
        self.next_beat = (
            self.t0 + interval if interval is not None else float("inf")
        )

    def maybe_beat(self, now: "float | None" = None) -> None:
        if self.interval is None:
            return
        now = time.monotonic() if now is None else now
        if now < self.next_beat:
            return
        self.next_beat = now + self.interval
        self._beat(now)

    def final(self) -> None:
        """Closing beat: unconditional when any channel is configured."""
        if self.interval is not None:
            self._beat(time.monotonic())

    def _beat(self, now: float) -> None:
        r = self.result
        done = len(r.cells)
        failed = len(r.failed_cells)
        remaining = max(0, self.total - done - failed)
        elapsed = now - self.t0
        # ETA from the recent-completion window, not the whole-run mean:
        # early cache-hit bursts or a slow cold start would otherwise
        # skew the estimate for the entire sweep.  Falls back to the
        # whole-run mean until the window has seen any completions.
        w_t, w_done = self.samples[0]
        self.samples.append((now, done))
        span = now - w_t
        rate = (done - w_done) / span if span > 0 else 0.0
        if rate <= 0:
            rate_done = done - self.start_done
            rate = rate_done / elapsed if elapsed > 0 else 0.0
        eta = remaining / rate if rate > 0 and remaining else 0.0
        hits = r.cache_hits
        looked_up = hits + r.cache_misses
        hit_ratio = hits / looked_up if looked_up else 0.0
        if self.obs_on:
            obs.emit(
                "sweep.progress",
                done=done,
                total=self.total,
                eta_s=round(eta, 3),
                cells_per_s=round(rate, 3),
                cache_hits=hits,
                cache_misses=r.cache_misses,
                hit_ratio=round(hit_ratio, 4),
                retries=r.retries,
                pool_restarts=r.pool_restarts,
            )
        if self.print_line:
            pct = 100.0 * done / self.total if self.total else 100.0
            print(
                f"[sweep] {done}/{self.total} cells ({pct:.0f}%) "
                f"elapsed {elapsed:.1f}s eta {eta:.1f}s "
                f"rate {rate:.2f}/s hits {hits} retries {r.retries} "
                f"restarts {r.pool_restarts} failed {failed}",
                file=sys.stderr,
                flush=True,
            )


#: per-process memo: canonical topology spec -> (topology, routing tables)
_TOPO_MEMO: dict = {}

#: memo entries kept per process — the pool now persists across run()
#: calls, so without a bound a worker would accumulate every topology it
#: ever simulated (N x N tables, path caches, fabrics).  Topology-affine
#: chunks make eviction churn rare.
_TOPO_MEMO_CAP = 8


def auto_sim_config(
    policy,
    port_budget: int = 32,
    num_vcs: "int | None" = None,
    vc_depth: "int | None" = None,
    packet_size: int = 4,
) -> SimConfig:
    """Simulator config sized for ``policy`` under a fixed port budget.

    The paper's methodology: total buffering per port is constant while
    the VC count covers the policy's worst-case hop count (deadlock
    freedom needs ``max_hops - 1`` hop classes).  Explicit ``num_vcs`` /
    ``vc_depth`` override either half of the derivation.
    """
    vcs = int(num_vcs) if num_vcs else max(4, policy.max_hops - 1)
    depth = int(vc_depth) if vc_depth else max(2, port_budget // vcs)
    return SimConfig(num_vcs=vcs, vc_depth=depth, packet_size=packet_size)


def simulate_point(
    topo,
    policy,
    traffic,
    load: float,
    config: "SimConfig | None" = None,
    warmup: int = 600,
    measure: int = 1200,
    drain: int = 300,
    seed=0,
    engine: "str | None" = None,
    faults=None,
    link_telemetry: bool = False,
    window: int = 0,
) -> SimResult:
    """Run one simulation cell on already-built objects.

    The single execution path for every simulation point in the repo —
    benchmarks, examples, and cache-missing sweep cells all end here.
    ``engine`` of ``None`` selects the struct-of-arrays flat engine
    unless ``$REPRO_SIM_ENGINE`` overrides it; the two engines are
    result-equivalent, so cached artifacts are engine-agnostic.  With a
    ``faults`` timeline the returned result carries the run's
    :class:`~repro.faults.FaultResult` as ``.fault`` (size the config
    via :func:`~repro.faults.prepare_fault_policy` first, or pass
    ``config=None`` after preparing the policy).  ``link_telemetry=True``
    attaches the flat engine's per-link flit counters (measure window
    only) and hangs the nonzero ``{(u, v): flits}`` map on the result as
    ``.link_flits`` — counters never perturb simulation results.  A
    nonzero ``window`` collects a per-window time series through
    :func:`~repro.flitsim.telemetry.run_with_timeseries` (result
    bit-identical to the uninstrumented run) and hangs the
    :class:`~repro.obs.timeseries.WindowSeries` as ``.timeseries``.
    """
    if config is None:
        config = auto_sim_config(policy)
    sim = make_simulator(
        topo, policy, traffic, float(load), config=config, seed=seed,
        engine=engine, faults=faults,
    )
    want_links = link_telemetry and hasattr(sim, "attach_link_telemetry")
    if want_links:
        sim.attach_link_telemetry()
    if window:
        from repro.flitsim.telemetry import run_with_timeseries

        res, series = run_with_timeseries(
            sim, warmup=warmup, measure=measure, window=int(window),
            drain=drain,
        )
        res.timeseries = series
    else:
        res = sim.run(warmup=warmup, measure=measure, drain=drain)
    if sim.fault_result is not None:
        res.fault = sim.fault_result
    if want_links:
        res.link_flits = sim.link_flit_counts()
    return res


def simulate_workload(
    topo,
    policy,
    workload,
    config: "SimConfig | None" = None,
    max_cycles: int = 200_000,
    seed=0,
    engine: "str | None" = None,
    faults=None,
    window: int = 0,
):
    """Run one closed-loop workload cell on already-built objects.

    The workload counterpart of :func:`simulate_point`: every
    closed-loop simulation in the repo — benchmarks, examples, and
    cache-missing workload sweep cells — ends here.  Returns a
    :class:`~repro.workloads.WorkloadResult` (carrying ``.fault`` when a
    timeline was attached, and ``.timeseries`` when ``window`` is
    nonzero).
    """
    if config is None:
        config = auto_sim_config(policy)
    sim = make_simulator(
        topo, policy, None, 0.0, config=config, seed=seed, engine=engine,
        workload=workload, faults=faults,
    )
    if window:
        from repro.flitsim.telemetry import run_workload_with_timeseries

        res, series = run_workload_with_timeseries(
            sim, window=int(window), max_cycles=max_cycles
        )
        res.timeseries = series
    else:
        res = sim.run_workload(max_cycles=max_cycles)
    if sim.fault_result is not None:
        res.fault = sim.fault_result
    return res


def _build_cell_objects(cell: dict):
    """(topo, policy, traffic) for a cell record, memoizing per process."""
    from repro.routing.tables import RoutingTables

    topo_spec = cell["topology"]
    memo = _TOPO_MEMO.get(topo_spec)
    if memo is None:
        while len(_TOPO_MEMO) >= _TOPO_MEMO_CAP:
            _TOPO_MEMO.pop(next(iter(_TOPO_MEMO)))
        topo = TOPOLOGIES.create(topo_spec)
        memo = _TOPO_MEMO[topo_spec] = (topo, RoutingTables(topo))
        # Pre-warm the flat engine's dense port geometry: it is memoized
        # weakly per topology object, and this memo keeps the object
        # alive, so every later cell on this topology reuses it.  (Skip
        # when the env pins the reference engine — it never uses one.)
        if os.environ.get(ENGINE_ENV, DEFAULT_ENGINE) != "reference":
            from repro.flitsim.flatcore import fabric_for

            fabric_for(topo)
    topo, tables = memo
    policy = POLICIES.create(cell["policy"], tables)
    traffic = TRAFFICS.create(cell["traffic"], topo) if cell["traffic"] else None
    return topo, policy, traffic


def run_cell(cell: dict) -> dict:
    """Execute one cell record and return its JSON-safe statistics.

    Module-level (picklable) so :class:`ProcessPoolExecutor` can run it
    in workers; also called inline for serial sweeps.  Closed-loop
    cells (a ``workload`` field instead of a traffic spec) run to
    completion and report workload metrics alongside the standard
    sweep-point fields — avg/p50/p99 are then *packet* statistics of
    the whole run and ``accepted_load`` the achieved throughput, so
    workload curves assemble through the same
    :class:`~repro.flitsim.sweep.LoadSweep` plumbing.
    """
    # Chaos injection point (tests only): the env check is inlined so
    # the hot path never imports the chaos module.  The literal must
    # match repro.experiments.chaos.CHAOS_ENV.
    if os.environ.get("REPRO_CHAOS"):
        from repro.experiments.chaos import active_plan

        plan = active_plan()
        if plan is not None:
            plan.before_cell(cell)
    # Observability is gated the same way: with $REPRO_OBS unset this is
    # one env lookup and nothing else on the hot path.
    obs_on = bool(os.environ.get(obs.OBS_ENV)) and obs.enabled()
    topo, policy, traffic = _build_cell_objects(cell)
    faults = None
    if cell.get("faults"):
        from repro.faults import prepare_fault_policy

        # Built per cell (cheap); the repaired per-epoch tables are
        # memoized on the topology, so repeated cells share them.  The
        # policy's hop ceiling must cover every degraded epoch *before*
        # VC counts are derived below.
        faults = FAULTS.create(cell["faults"], topo)
        prepare_fault_policy(policy, faults, topo)
    config = auto_sim_config(
        policy,
        port_budget=cell["port_budget"],
        num_vcs=cell["num_vcs"],
        vc_depth=cell["vc_depth"],
        packet_size=cell["packet_size"],
    )
    if cell.get("workload"):
        workload = WORKLOADS.create(cell["workload"], topo)
        with obs.span(
            "sweep.cell", sampled=True, key=cell["key"][:12], load=cell["load"]
        ):
            res = simulate_workload(
                topo,
                policy,
                workload,
                config=config,
                max_cycles=cell["max_cycles"],
                seed=cell["seed"],
                faults=faults,
                window=cell.get("window", 0),
            )
        stats = {
            "offered_load": cell["load"],
            "accepted_load": res.achieved_throughput,
            "avg_latency": res.avg_packet_latency,
            "p50_latency": res.packet_latency_percentile(50),
            "p99_latency": res.packet_latency_percentile(99),
            "avg_hops": res.avg_hops,
            "cycles": res.cycles,
            "num_endpoints": res.num_endpoints,
            "injected_flits": res.injected_flits,
            "ejected_flits": res.ejected_flits,
            "num_packets": int(len(res.packet_latencies)),
        }
        stats.update(res.summary())
        if faults is not None:
            stats.update(res.fault.summary())
        _timeseries_stats(res, stats, cell, obs_on)
        return stats
    with obs.span(
        "sweep.cell", sampled=True, key=cell["key"][:12], load=cell["load"]
    ):
        res = simulate_point(
            topo,
            policy,
            traffic,
            cell["load"],
            config=config,
            warmup=cell["warmup"],
            measure=cell["measure"],
            drain=cell["drain"],
            seed=cell["seed"],
            faults=faults,
            link_telemetry=obs_on,
            window=cell.get("window", 0),
        )
    link_flits = getattr(res, "link_flits", None)
    if obs_on and link_flits:
        ranked = sorted(link_flits.items(), key=lambda kv: (-kv[1], kv[0]))
        obs.emit(
            "cell.telemetry",
            sampled=True,
            key=cell["key"][:12],
            cycles=int(res.cycles),
            top_links=[
                [int(u), int(v), int(c)] for (u, v), c in ranked[:8]
            ],
        )
    stats = {
        "offered_load": res.offered_load,
        "accepted_load": res.accepted_load,
        "avg_latency": res.avg_latency,
        "p50_latency": res.p50_latency,
        "p99_latency": res.p99_latency,
        "avg_hops": res.avg_hops,
        "cycles": res.cycles,
        "num_endpoints": res.num_endpoints,
        "injected_flits": res.injected_flits,
        "ejected_flits": res.ejected_flits,
        "num_packets": int(len(res.latencies)),
    }
    if faults is not None:
        stats.update(res.fault.summary())
    _timeseries_stats(res, stats, cell, obs_on)
    return stats


def _timeseries_stats(res, stats: dict, cell: dict, obs_on: bool) -> None:
    """Fold a windowed run's series into the cell's persisted stats.

    The series summary rides the normal cache commit (JSON-safe lists
    and dicts only), ``steady_state_window`` lets sweeps gate on
    time-to-steady-state, and — when the obs sink is configured — each
    window is also emitted as a ``ts.window`` event for live timelines.
    No-op for non-windowed cells.
    """
    series = getattr(res, "timeseries", None)
    if series is None:
        return
    from repro.obs.timeseries import emit_window_events, steady_state_window

    stats["timeseries"] = series.summary()
    stats["steady_state_window"] = steady_state_window(series)
    if obs_on:
        emit_window_events(series, key=cell["key"][:12])


def run_chunk(cells: list) -> list:
    """Execute a topology-affine chunk of cell records, in order.

    The pool's unit of work: every cell in a chunk shares one topology
    spec, so a worker pays fabric/table construction once (via the
    per-process memo) and then just simulates.
    """
    return [run_cell(cell) for cell in cells]


def _point_from_stats(stats: dict) -> SweepPoint:
    return SweepPoint(
        offered_load=stats["offered_load"],
        avg_latency=stats["avg_latency"],
        p99_latency=stats["p99_latency"],
        accepted_load=stats["accepted_load"],
        avg_hops=stats["avg_hops"],
        p50_latency=stats["p50_latency"],
    )


@dataclass
class CellError:
    """Structured record of a quarantined cell: what failed and how.

    Surfaced in :attr:`ExperimentResult.failed_cells` and — when the
    runner has a cache — persisted as a ``failed/<key>.json`` artifact
    so post-mortems survive the run.
    """

    key: str
    cell: dict
    error: str
    traceback: str
    attempts: int

    def to_doc(self) -> dict:
        """JSON-safe artifact form."""
        return {
            "cell": self.cell,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }


class SweepCellError(RuntimeError):
    """Raised by ``run(strict=True)`` when cells were quarantined.

    Carries the quarantined :class:`CellError` records as ``.failed``;
    the message names the offending cell keys.
    """

    def __init__(self, message: str, failed: dict):
        super().__init__(message)
        self.failed = failed


class SweepTimeoutError(RuntimeError):
    """A chunk exceeded its wall-clock deadline and its workers were
    killed (recorded as the chunk's failure cause; the chunk is retried
    and, if it keeps hanging, bisected/quarantined like any failure)."""


@dataclass
class _WorkItem:
    """One dispatched unit: a chunk of cells plus its retry state."""

    cells: list
    attempts: int = 0
    #: earliest monotonic time this item may be (re-)dispatched
    not_before: float = 0.0
    #: monotonic submit time of the current attempt (chunk span timing)
    t0: float = 0.0
    #: True once the item was in flight during a pool death — suspects
    #: run solo so the next death is attributable to exactly one chunk
    suspect: bool = False


@dataclass
class ExperimentResult:
    """Assembled output of one :meth:`SweepRunner.run` invocation."""

    spec: ExperimentSpec
    sweeps: list = field(default_factory=list)
    #: raw per-cell statistics keyed by cell hash
    cells: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: quarantined cells: cell hash -> :class:`CellError` (empty on a
    #: clean run; non-strict runs assemble curves from the survivors)
    failed_cells: dict = field(default_factory=dict)
    #: chunk execution attempts that failed and were requeued
    retries: int = 0
    #: times the worker pool was killed and respawned mid-run
    pool_restarts: int = 0

    def sweep(self, label: str) -> LoadSweep:
        """The curve with ``label`` (exact match)."""
        for s in self.sweeps:
            if s.label == label:
                return s
        raise KeyError(
            f"no sweep labelled {label!r}; have "
            + ", ".join(repr(s.label) for s in self.sweeps)
        )

    def saturation_table(self) -> dict:
        """label -> saturation throughput, the headline number per curve."""
        return {s.label: s.saturation_load() for s in self.sweeps}


class SweepRunner:
    """Runs experiment specs with caching, process-parallel fan-out, and
    crash-resilient scheduling.

    Parameters
    ----------
    cache:
        A :class:`ResultCache`, or ``None`` to always simulate.
    max_workers:
        Worker processes for cache-missing cells.  ``None`` reads
        ``$REPRO_SWEEP_WORKERS``, defaulting to ``os.cpu_count()``; the
        pool persists across :meth:`run` calls (use :meth:`close` or a
        ``with`` block to reap it eagerly — garbage collection does too).
    chunk_cells:
        Cells per dispatched chunk.  ``None`` reads
        ``$REPRO_SWEEP_CHUNK``, defaulting to a dynamic size targeting
        :data:`CHUNKS_PER_WORKER` chunks per worker — small chunks keep
        checkpoint commits fine-grained and kill the static-ordering
        tail, while topology affinity still amortizes construction.

    Resilience
    ----------
    :meth:`run` survives worker deaths (OOM kills, segfaults), hung
    cells, and poison cells: finished chunks are committed to the cache
    the moment they arrive (a killed run resumes from the cache), failed
    chunks are retried with exponential backoff, a broken pool is killed
    and respawned with only the in-flight chunks re-dispatched, chunks
    exceeding their wall-clock deadline (``$REPRO_SWEEP_TIMEOUT`` per
    cell; default derived from cycles x routers) are killed and retried,
    and a chunk that fails twice is bisected until the offending cell is
    isolated and quarantined as a :class:`CellError`.  With
    ``strict=True`` (the default) quarantined cells raise
    :class:`SweepCellError` *after* the rest of the grid completes; with
    ``strict=False`` they are reported in
    :attr:`ExperimentResult.failed_cells` and the surviving cells'
    curves assemble normally.

    Observability
    -------------
    With ``$REPRO_OBS=dir=...`` set (see :mod:`repro.obs`) the runner
    emits structured lifecycle events — ``sweep.start/progress/end``,
    ``chunk.dispatch/retry/timeout/bisect``, per-chunk ``span`` records,
    ``pool.restart``, ``cell.retry``/``cell.quarantine`` — and workers
    add sampled per-cell spans plus ``cell.telemetry`` hottest-link
    records.  Independently, ``$REPRO_SWEEP_PROGRESS=SECONDS`` prints a
    one-line progress heartbeat to stderr at that interval (plus a final
    summary line), with or without ``$REPRO_OBS``.

    Notes
    -----
    Because the pool persists, workers snapshot the environment when
    first spawned: flipping env knobs (``$REPRO_SIM_ENGINE``,
    ``$REPRO_PATH_CACHE``, ``$REPRO_SWEEP_TIMEOUT``, ``$REPRO_CHAOS``,
    ``$REPRO_OBS``) between :meth:`run` calls requires :meth:`close`
    first so the next pool re-reads them.  On platforms whose default start method is
    *spawn* (macOS, Windows), scripts using a multi-worker runner need
    the standard ``if __name__ == "__main__":`` guard; set
    ``REPRO_SWEEP_WORKERS=1`` to force inline execution instead.
    Timeouts are enforced only on the multi-worker path — an inline
    (serial) run cannot preempt itself.
    """

    def __init__(
        self,
        cache: "ResultCache | None" = None,
        max_workers: "int | None" = None,
        chunk_cells: "int | None" = None,
    ):
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_cells is None:
            env = os.environ.get(CHUNK_ENV, "").strip()
            chunk_cells = int(env) if env else None
        if chunk_cells is not None and chunk_cells < 1:
            raise ValueError("chunk_cells must be >= 1")
        self.cache = cache
        self.max_workers = max_workers
        self.chunk_cells = chunk_cells
        self._pool: "ProcessPoolExecutor | None" = None
        self._pool_workers = 0

    @classmethod
    def with_default_cache(cls, max_workers: "int | None" = None) -> "SweepRunner":
        return cls(cache=ResultCache.default(), max_workers=max_workers)

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, created on first use at full width.

        Always sized to ``max_workers`` — sizing to the current run's
        chunk count would tear the pool down whenever a later run has
        more chunks, discarding the per-worker construction memo the
        persistent pool exists to keep warm.  Excess workers just idle.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._pool_workers = self.max_workers
            # Reap worker processes when the runner is collected without
            # an explicit close() (shutdown is idempotent).
            weakref.finalize(self, self._pool.shutdown, wait=False)
        return self._pool

    def _restart_pool(self, result: "ExperimentResult | None" = None) -> None:
        """Kill the current pool outright; the next dispatch respawns it.

        Worker processes are SIGKILLed (a hung cell would survive a
        plain shutdown), so this is the teardown half of both the
        broken-pool self-healing path and timeout enforcement.
        """
        pool, self._pool = self._pool, None
        self._pool_workers = 0
        if pool is not None:
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.kill()
                except Exception:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        if result is not None:
            result.pool_restarts += 1
            obs.counter("sweep.pool_restarts").inc()
            obs.emit("pool.restart", restarts=result.pool_restarts)

    def _chunks(self, missing: list) -> list:
        """Topology-affine, cost-ordered chunks of ``missing``.

        Cells are grouped by topology spec (first-seen order) and each
        group is split into pieces of at most ``chunk_cells`` cells
        (default: ``ceil(missing / (workers * CHUNKS_PER_WORKER))``,
        i.e. several small chunks per worker): a chunk never mixes
        topologies (one fabric/table build per chunk), yet a single big
        topology still fans out across the whole pool, finished work
        checkpoints frequently, and the pool drains without the
        static-ordering tail a one-chunk-per-worker split leaves.
        Within each group cells are stable-sorted by *descending
        offered load* first — high-load cells simulate the most flits
        per cycle, so scheduling the expensive work first evens out the
        tail.  Chunking and ordering affect only placement — per-cell
        results are chunk-invariant by the determinism contract.
        """
        groups: dict = {}
        for cell in missing:
            groups.setdefault(cell["topology"], []).append(cell)
        size = self.chunk_cells or max(
            1, -(-len(missing) // (self.max_workers * CHUNKS_PER_WORKER))
        )
        chunks = []
        for group in groups.values():
            group = sorted(group, key=lambda c: -c["load"])
            for i in range(0, len(group), size):
                chunks.append(group[i : i + size])
        return chunks

    # ------------------------------------------------------------------
    # Spec execution
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec, strict: bool = True) -> ExperimentResult:
        """Execute ``spec``: cache lookups, resilient fan-out, assembly.

        Every cell is attempted (with retries, pool self-healing, and
        poison-cell bisection) before any failure surfaces, and every
        finished chunk is committed to the cache immediately — so even
        a strict run that ultimately raises leaves all recoverable work
        checkpointed.  ``strict=True`` raises :class:`SweepCellError`
        naming the quarantined cell keys; ``strict=False`` reports them
        in :attr:`ExperimentResult.failed_cells` and assembles the
        surviving cells' curves.
        """
        cells = spec.cells()
        result = ExperimentResult(spec=spec)

        missing = []
        for cell in cells:
            doc = self.cache.get(cell["key"]) if self.cache is not None else None
            if doc is not None and doc.get("cell", {}).get("version") == cell["version"]:
                result.cells[cell["key"]] = doc["result"]
                result.cache_hits += 1
            else:
                missing.append(cell)

        hb = _Heartbeat(result, total=len(cells))
        obs.emit(
            "sweep.start",
            cells=len(cells),
            cached=result.cache_hits,
            missing=len(missing),
            workers=self.max_workers,
        )
        if missing:
            result.cache_misses = len(missing)
            with obs.span("sweep.run", cells=len(missing)):
                if self.max_workers > 1 and len(missing) > 1:
                    self._run_parallel(missing, result, hb)
                else:
                    self._run_serial(missing, result, hb)
        hb.final()
        obs.emit(
            "sweep.end",
            done=len(result.cells),
            total=len(cells),
            retries=result.retries,
            pool_restarts=result.pool_restarts,
            failed=len(result.failed_cells),
        )
        obs.emit_counters()

        if result.failed_cells and strict:
            keys = sorted(result.failed_cells)
            first = result.failed_cells[keys[0]]
            raise SweepCellError(
                f"{len(keys)} cell(s) failed after {MAX_ATTEMPTS} attempts: "
                + ", ".join(k[:12] for k in keys)
                + f"; first failure: {first.error}",
                result.failed_cells,
            )

        # cells() is combo-major then load-major, so the precomputed list
        # partitions into one len(loads) slice per combo — no re-hashing.
        # Quarantined cells are simply absent from a combo's points.
        per_combo = len(spec.loads)
        for i, combo in enumerate(spec.combos):
            points = [
                _point_from_stats(result.cells[cell["key"]])
                for cell in cells[i * per_combo : (i + 1) * per_combo]
                if cell["key"] in result.cells
            ]
            result.sweeps.append(LoadSweep(combo.label, points))
        return result

    # ------------------------------------------------------------------
    # Resilient execution paths
    # ------------------------------------------------------------------
    def _commit(self, result: ExperimentResult, cell: dict, stats: dict) -> None:
        """Checkpoint one finished cell: result map + immediate cache put."""
        result.cells[cell["key"]] = stats
        obs.counter("sweep.cells_done").inc()
        if self.cache is not None:
            self.cache.put(cell["key"], {"cell": cell, "result": stats})

    def _quarantine_cell(
        self, result: ExperimentResult, cell: dict, exc: BaseException, attempts: int
    ) -> None:
        """Record a poison cell as a :class:`CellError` (plus artifact)."""
        err = CellError(
            key=cell["key"],
            cell=cell,
            error=f"{type(exc).__name__}: {exc}",
            traceback=_format_exception(exc),
            attempts=attempts,
        )
        result.failed_cells[cell["key"]] = err
        obs.counter("sweep.quarantined").inc()
        obs.emit("cell.quarantine", key=cell["key"][:12], error=err.error)
        if self.cache is not None:
            self.cache.put_failure(cell["key"], err.to_doc())

    def _run_serial(
        self,
        missing: list,
        result: ExperimentResult,
        hb: "_Heartbeat | None" = None,
    ) -> None:
        """Inline execution with the same retry/quarantine semantics.

        Each cell commits to the cache the moment it finishes, so an
        interrupted serial sweep (SIGKILL, power loss) resumes from the
        cache too.  No timeout enforcement — inline execution cannot
        preempt itself.
        """
        for cell in missing:
            last: "BaseException | None" = None
            for attempt in range(1, MAX_ATTEMPTS + 1):
                try:
                    stats = run_cell(cell)
                except Exception as exc:
                    last = exc
                    result.retries += 1
                    obs.counter("sweep.retries").inc()
                    obs.emit(
                        "cell.retry",
                        key=cell["key"][:12],
                        attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    if attempt < MAX_ATTEMPTS:
                        time.sleep(_backoff(attempt))
                    continue
                self._commit(result, cell, stats)
                break
            else:
                self._quarantine_cell(result, cell, last, MAX_ATTEMPTS)
            if hb is not None:
                hb.maybe_beat()

    def _dispatch(
        self, item: _WorkItem, inflight: dict, result: ExperimentResult
    ) -> None:
        """Submit one work item, respawning the pool if submit fails."""
        for _ in range(2):
            pool = self._ensure_pool()
            try:
                fut = pool.submit(run_chunk, item.cells)
            except BrokenExecutor:
                self._restart_pool(result)
                continue
            item.t0 = time.monotonic()
            inflight[fut] = (item, item.t0 + _chunk_deadline(item.cells))
            obs.emit(
                "chunk.dispatch",
                chunk=_chunk_label(item.cells),
                cells=len(item.cells),
                attempt=item.attempts + 1,
            )
            return
        raise RuntimeError("worker pool could not be respawned")

    def _requeue_failure(
        self,
        item: _WorkItem,
        exc: BaseException,
        queue: list,
        result: ExperimentResult,
        penalize: bool = True,
        suspect: bool = False,
    ) -> None:
        """Handle one failed chunk attempt: retry, bisect, or quarantine.

        ``penalize=False`` marks collateral damage — a chunk whose
        future died only because *another* chunk broke the shared pool;
        it is re-dispatched (as a suspect, so it runs solo and the next
        pool death is attributable) without burning one of its
        :data:`MAX_ATTEMPTS`.
        """
        result.retries += 1
        obs.counter("sweep.retries").inc()
        if isinstance(exc, SweepTimeoutError):
            obs.emit(
                "chunk.timeout",
                chunk=_chunk_label(item.cells),
                cells=len(item.cells),
                deadline_s=round(_chunk_deadline(item.cells), 3),
            )
        obs.emit(
            "chunk.retry",
            chunk=_chunk_label(item.cells),
            cells=len(item.cells),
            attempt=item.attempts + (1 if penalize else 0),
            error=f"{type(exc).__name__}: {exc}",
        )
        item.suspect = item.suspect or suspect
        if penalize:
            item.attempts += 1
        hold = time.monotonic() + _backoff(max(1, item.attempts))
        if item.attempts < MAX_ATTEMPTS:
            item.not_before = hold
            queue.append(item)
        elif len(item.cells) == 1:
            self._quarantine_cell(result, item.cells[0], exc, item.attempts)
        else:
            # Bisect: the offending cell is somewhere inside — halve
            # until it is alone, then quarantine it.  Halves inherit
            # suspect status (solo execution keeps attribution exact
            # for worker-killing cells) but start with fresh attempts.
            mid = len(item.cells) // 2
            obs.emit(
                "chunk.bisect",
                chunk=_chunk_label(item.cells),
                cells=len(item.cells),
            )
            for half in (item.cells[:mid], item.cells[mid:]):
                queue.append(
                    _WorkItem(
                        list(half), not_before=hold, suspect=item.suspect
                    )
                )

    def _fill(
        self, queue: list, inflight: dict, result: ExperimentResult, now: float
    ) -> None:
        """Dispatch ready work up to the concurrency limit.

        The limit is *twice* the worker count: the extra chunks sit
        queued inside the executor so a worker that finishes pulls its
        next chunk immediately instead of idling for the parent's
        harvest-and-resubmit round trip (which costs ~10% wall clock on
        small grids).  A queued chunk's deadline clock starts at submit,
        so the expiry path cancels never-started futures instead of
        killing the pool.

        While any suspect chunk exists, exactly one chunk runs at a
        time (suspects first): a pool death with a single chunk in
        flight is attributable to that chunk, which is what lets the
        bisection converge on worker-killing poison cells without
        quarantining innocent bystanders.
        """
        has_suspect = any(i.suspect for i in queue) or any(
            it.suspect for it, _ in inflight.values()
        )
        if has_suspect:
            if not inflight:
                item = self._pop_ready(queue, now, suspect_first=True)
                if item is not None:
                    self._dispatch(item, inflight, result)
            return
        while len(inflight) < 2 * self.max_workers:
            item = self._pop_ready(queue, now)
            if item is None:
                break
            self._dispatch(item, inflight, result)

    @staticmethod
    def _pop_ready(queue: list, now: float, suspect_first: bool = False):
        """Remove and return a dispatchable item, or None."""
        ready = [
            (i, item) for i, item in enumerate(queue) if item.not_before <= now
        ]
        if not ready:
            return None
        if suspect_first:
            for i, item in ready:
                if item.suspect:
                    del queue[i]
                    return item
        i, item = ready[0]
        del queue[i]
        return item

    def _run_parallel(
        self,
        missing: list,
        result: ExperimentResult,
        hb: "_Heartbeat | None" = None,
    ) -> None:
        """The as-completed scheduler: dispatch, harvest, heal, repeat."""
        queue = [_WorkItem(list(chunk)) for chunk in self._chunks(missing)]
        inflight: dict = {}  # future -> (_WorkItem, deadline)
        while queue or inflight:
            now = time.monotonic()
            if hb is not None:
                hb.maybe_beat(now)
            self._fill(queue, inflight, result, now)
            if not inflight:
                # Everything dispatchable is backing off; sleep to the
                # earliest release instead of spinning.
                delay = min(i.not_before for i in queue) - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, BACKOFF_CAP_S))
                continue
            done, _ = wait(
                list(inflight), timeout=_POLL_S, return_when=FIRST_COMPLETED
            )
            round_inflight = len(inflight)
            broken = False
            for fut in done:
                item, _deadline = inflight.pop(fut)
                exc = fut.exception()
                if exc is None:
                    for cell, stats in zip(item.cells, fut.result()):
                        self._commit(result, cell, stats)
                    obs.emit(
                        "span",
                        name="sweep.chunk",
                        secs=time.monotonic() - item.t0,
                        ok=True,
                        chunk=_chunk_label(item.cells),
                        cells=len(item.cells),
                    )
                elif isinstance(exc, BrokenExecutor):
                    # A worker died.  With exactly one chunk in flight
                    # the guilt is certain; otherwise every in-flight
                    # chunk becomes a solo-run suspect.
                    broken = True
                    self._requeue_failure(
                        item, exc, queue, result,
                        penalize=(round_inflight == 1), suspect=True,
                    )
                else:
                    # In-worker exception: the pool survives and the
                    # failure attributes to exactly this chunk.
                    self._requeue_failure(item, exc, queue, result)
            now = time.monotonic()
            expired = [f for f, (_, dl) in inflight.items() if now > dl]
            for fut in expired:
                item, _deadline = inflight.pop(fut)
                if fut.cancel():
                    # Never started running — its deadline clock was
                    # ticking in the executor's queue, not in a worker.
                    # Requeue as-is; dispatch restarts the clock.
                    queue.append(item)
                    continue
                broken = True  # running workers can't be preempted: kill
                self._requeue_failure(
                    item,
                    SweepTimeoutError(
                        f"chunk of {len(item.cells)} cell(s) exceeded its "
                        f"{_chunk_deadline(item.cells):.1f}s deadline"
                    ),
                    queue, result, suspect=True,
                )
            if broken:
                self._restart_pool(result)
                # Remaining in-flight futures belonged to the killed
                # pool: reap them back into the queue as unpenalized
                # suspects and let solo re-runs sort guilt out.
                for fut, (item, _deadline) in list(inflight.items()):
                    self._requeue_failure(
                        item, BrokenExecutor("pool killed mid-flight"),
                        queue, result, penalize=False, suspect=True,
                    )
                inflight.clear()

    # ------------------------------------------------------------------
    # Object execution (pre-built topology/policy/traffic)
    # ------------------------------------------------------------------
    def run_objects(
        self,
        topo,
        policy,
        traffic,
        loads,
        label: str = "",
        config: "SimConfig | None" = None,
        warmup: int = 600,
        measure: int = 1200,
        drain: int = 300,
        seed=0,
        engine: "str | None" = None,
    ) -> LoadSweep:
        """Sweep ``loads`` over already-constructed objects, inline.

        The escape hatch for callers whose topology isn't expressible as
        a registry spec (degraded fabrics, incremental expansions).  No
        caching or multiprocessing — live objects have no content hash
        and may not pickle — but the per-point execution path is the
        same :func:`simulate_point` the spec path uses.  ``engine`` pins
        a simulator engine without touching ``$REPRO_SIM_ENGINE``.
        """
        points = [
            SweepPoint.from_result(
                simulate_point(
                    topo, policy, traffic, load, config=config,
                    warmup=warmup, measure=measure, drain=drain, seed=seed,
                    engine=engine,
                )
            )
            for load in loads
        ]
        return LoadSweep(label or f"{topo.name}", points)
