"""The parallel sweep runner: one engine behind every figure and script.

:class:`SweepRunner` executes an :class:`~repro.experiments.spec.ExperimentSpec`
by (1) consulting the :class:`~repro.experiments.cache.ResultCache` for
already-simulated cells, (2) fanning the missing cells out over
``concurrent.futures`` worker processes, and (3) assembling the per-combo
:class:`~repro.flitsim.sweep.LoadSweep` curves callers plot or assert on.

Determinism contract: a cell's result depends only on the cell record
(spec strings + windows + derived seed), never on which worker ran it,
in what order, or whether it came from the cache — so serial, parallel,
and cached runs of the same spec are bit-identical.

Workers rebuild topologies/policies/traffic from registry spec strings
(cheap to ship, no pickled simulator state) and memoize the expensive
topology + routing-table construction per process, so a sweep of many
loads over one topology pays table construction once per worker.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache
from repro.experiments.registry import POLICIES, TOPOLOGIES, TRAFFICS
from repro.experiments.spec import ExperimentSpec
from repro.flitsim.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    SimConfig,
    SimResult,
    make_simulator,
)
from repro.flitsim.sweep import LoadSweep, SweepPoint

__all__ = [
    "SweepRunner",
    "ExperimentResult",
    "simulate_point",
    "run_cell",
    "auto_sim_config",
]

#: environment override for the default worker count
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: per-process memo: canonical topology spec -> (topology, routing tables)
_TOPO_MEMO: dict = {}


def auto_sim_config(
    policy,
    port_budget: int = 32,
    num_vcs: "int | None" = None,
    vc_depth: "int | None" = None,
    packet_size: int = 4,
) -> SimConfig:
    """Simulator config sized for ``policy`` under a fixed port budget.

    The paper's methodology: total buffering per port is constant while
    the VC count covers the policy's worst-case hop count (deadlock
    freedom needs ``max_hops - 1`` hop classes).  Explicit ``num_vcs`` /
    ``vc_depth`` override either half of the derivation.
    """
    vcs = int(num_vcs) if num_vcs else max(4, policy.max_hops - 1)
    depth = int(vc_depth) if vc_depth else max(2, port_budget // vcs)
    return SimConfig(num_vcs=vcs, vc_depth=depth, packet_size=packet_size)


def simulate_point(
    topo,
    policy,
    traffic,
    load: float,
    config: "SimConfig | None" = None,
    warmup: int = 600,
    measure: int = 1200,
    drain: int = 300,
    seed=0,
    engine: "str | None" = None,
) -> SimResult:
    """Run one simulation cell on already-built objects.

    The single execution path for every simulation point in the repo —
    benchmarks, examples, and cache-missing sweep cells all end here.
    ``engine`` of ``None`` selects the struct-of-arrays flat engine
    unless ``$REPRO_SIM_ENGINE`` overrides it; the two engines are
    result-equivalent, so cached artifacts are engine-agnostic.
    """
    if config is None:
        config = auto_sim_config(policy)
    sim = make_simulator(
        topo, policy, traffic, float(load), config=config, seed=seed, engine=engine
    )
    return sim.run(warmup=warmup, measure=measure, drain=drain)


def _build_cell_objects(cell: dict):
    """(topo, policy, traffic) for a cell record, memoizing per process."""
    from repro.routing.tables import RoutingTables

    topo_spec = cell["topology"]
    memo = _TOPO_MEMO.get(topo_spec)
    if memo is None:
        topo = TOPOLOGIES.create(topo_spec)
        memo = _TOPO_MEMO[topo_spec] = (topo, RoutingTables(topo))
        # Pre-warm the flat engine's dense port geometry: it is memoized
        # weakly per topology object, and this memo keeps the object
        # alive, so every later cell on this topology reuses it.  (Skip
        # when the env pins the reference engine — it never uses one.)
        if os.environ.get(ENGINE_ENV, DEFAULT_ENGINE) != "reference":
            from repro.flitsim.flatcore import fabric_for

            fabric_for(topo)
    topo, tables = memo
    policy = POLICIES.create(cell["policy"], tables)
    traffic = TRAFFICS.create(cell["traffic"], topo)
    return topo, policy, traffic


def run_cell(cell: dict) -> dict:
    """Execute one cell record and return its JSON-safe statistics.

    Module-level (picklable) so :class:`ProcessPoolExecutor` can run it
    in workers; also called inline for serial sweeps.
    """
    topo, policy, traffic = _build_cell_objects(cell)
    res = simulate_point(
        topo,
        policy,
        traffic,
        cell["load"],
        config=auto_sim_config(
            policy,
            port_budget=cell["port_budget"],
            num_vcs=cell["num_vcs"],
            vc_depth=cell["vc_depth"],
            packet_size=cell["packet_size"],
        ),
        warmup=cell["warmup"],
        measure=cell["measure"],
        drain=cell["drain"],
        seed=cell["seed"],
    )
    return {
        "offered_load": res.offered_load,
        "accepted_load": res.accepted_load,
        "avg_latency": res.avg_latency,
        "p50_latency": res.p50_latency,
        "p99_latency": res.p99_latency,
        "avg_hops": res.avg_hops,
        "cycles": res.cycles,
        "num_endpoints": res.num_endpoints,
        "injected_flits": res.injected_flits,
        "ejected_flits": res.ejected_flits,
        "num_packets": int(len(res.latencies)),
    }


def _point_from_stats(stats: dict) -> SweepPoint:
    return SweepPoint(
        offered_load=stats["offered_load"],
        avg_latency=stats["avg_latency"],
        p99_latency=stats["p99_latency"],
        accepted_load=stats["accepted_load"],
        avg_hops=stats["avg_hops"],
        p50_latency=stats["p50_latency"],
    )


@dataclass
class ExperimentResult:
    """Assembled output of one :meth:`SweepRunner.run` invocation."""

    spec: ExperimentSpec
    sweeps: list = field(default_factory=list)
    #: raw per-cell statistics keyed by cell hash
    cells: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def sweep(self, label: str) -> LoadSweep:
        """The curve with ``label`` (exact match)."""
        for s in self.sweeps:
            if s.label == label:
                return s
        raise KeyError(
            f"no sweep labelled {label!r}; have "
            + ", ".join(repr(s.label) for s in self.sweeps)
        )

    def saturation_table(self) -> dict:
        """label -> saturation throughput, the headline number per curve."""
        return {s.label: s.saturation_load() for s in self.sweeps}


class SweepRunner:
    """Runs experiment specs with caching and process-parallel fan-out.

    Parameters
    ----------
    cache:
        A :class:`ResultCache`, or ``None`` to always simulate.
    max_workers:
        Worker processes for cache-missing cells.  ``None`` reads
        ``$REPRO_SWEEP_WORKERS`` (default 1 = run inline, no pool).
    """

    def __init__(self, cache: "ResultCache | None" = None, max_workers: "int | None" = None):
        if max_workers is None:
            max_workers = int(os.environ.get(WORKERS_ENV, "1"))
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.cache = cache
        self.max_workers = max_workers

    @classmethod
    def with_default_cache(cls, max_workers: "int | None" = None) -> "SweepRunner":
        return cls(cache=ResultCache.default(), max_workers=max_workers)

    # ------------------------------------------------------------------
    # Spec execution
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute ``spec``: cache lookups, fan-out, curve assembly."""
        cells = spec.cells()
        result = ExperimentResult(spec=spec)

        missing = []
        for cell in cells:
            doc = self.cache.get(cell["key"]) if self.cache is not None else None
            if doc is not None and doc.get("cell", {}).get("version") == cell["version"]:
                result.cells[cell["key"]] = doc["result"]
                result.cache_hits += 1
            else:
                missing.append(cell)

        if missing:
            result.cache_misses = len(missing)
            if self.max_workers > 1 and len(missing) > 1:
                with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                    stats_list = list(pool.map(run_cell, missing))
            else:
                stats_list = [run_cell(cell) for cell in missing]
            for cell, stats in zip(missing, stats_list):
                result.cells[cell["key"]] = stats
                if self.cache is not None:
                    self.cache.put(cell["key"], {"cell": cell, "result": stats})

        # cells() is combo-major then load-major, so the precomputed list
        # partitions into one len(loads) slice per combo — no re-hashing.
        per_combo = len(spec.loads)
        for i, combo in enumerate(spec.combos):
            points = [
                _point_from_stats(result.cells[cell["key"]])
                for cell in cells[i * per_combo : (i + 1) * per_combo]
            ]
            result.sweeps.append(LoadSweep(combo.label, points))
        return result

    # ------------------------------------------------------------------
    # Object execution (pre-built topology/policy/traffic)
    # ------------------------------------------------------------------
    def run_objects(
        self,
        topo,
        policy,
        traffic,
        loads,
        label: str = "",
        config: "SimConfig | None" = None,
        warmup: int = 600,
        measure: int = 1200,
        drain: int = 300,
        seed=0,
    ) -> LoadSweep:
        """Sweep ``loads`` over already-constructed objects, inline.

        The escape hatch for callers whose topology isn't expressible as
        a registry spec (degraded fabrics, incremental expansions).  No
        caching or multiprocessing — live objects have no content hash
        and may not pickle — but the per-point execution path is the
        same :func:`simulate_point` the spec path uses.
        """
        points = [
            SweepPoint.from_result(
                simulate_point(
                    topo, policy, traffic, load, config=config,
                    warmup=warmup, measure=measure, drain=drain, seed=seed,
                )
            )
            for load in loads
        ]
        return LoadSweep(label or f"{topo.name}", points)
