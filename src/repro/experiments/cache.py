"""Content-addressed on-disk cache of simulation-cell results.

Artifacts are small JSON documents keyed by the cell's content hash
(:func:`repro.experiments.spec.cell_hash`), sharded into two-character
subdirectories.  Because the key covers *everything* that determines the
result — topology/policy/traffic specs, load, windows, buffers, and the
derived seed — a hit can be replayed verbatim: re-running a figure only
simulates the cells that are actually missing.

Floats survive the JSON round trip exactly (``repr`` serialization), so
cached statistics are bit-identical to freshly simulated ones.

The cache is hardened against on-disk damage: every artifact written by
:meth:`ResultCache.put` carries a payload checksum verified on read, and
an unreadable artifact (truncated JSON, checksum mismatch) is moved to
the ``corrupt/`` quarantine subdirectory and treated as a miss — a
corrupt cell re-simulates instead of crashing the sweep.  Quarantined
*cells* (poison cells the runner gave up on) are recorded as structured
failure artifacts under ``failed/``.  Neither subdirectory counts as
cache contents: ``len()`` and :meth:`clear` see only the two-character
result shards.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.obs import counter, emit
from repro.utils.export import read_json_artifact, write_json_artifact

__all__ = ["ResultCache"]

#: environment override for the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class ResultCache:
    """A directory of ``<hash>.json`` cell artifacts."""

    def __init__(self, root):
        self.root = Path(root)

    @classmethod
    def default(cls) -> "ResultCache":
        """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/experiments``."""
        env = os.environ.get(CACHE_DIR_ENV)
        if env:
            return cls(env)
        return cls(Path.home() / ".cache" / "repro" / "experiments")

    @classmethod
    def from_env(cls) -> "ResultCache | None":
        """The opt-in policy: a cache iff ``$REPRO_CACHE_DIR`` is set.

        Benchmarks and examples use this so that results are never
        silently persisted (and later replayed stale) without the
        operator asking for it.
        """
        env = os.environ.get(CACHE_DIR_ENV)
        return cls(env) if env else None

    @property
    def corrupt_dir(self) -> Path:
        """Quarantine directory for unreadable artifacts."""
        return self.root / "corrupt"

    @property
    def failed_dir(self) -> Path:
        """Directory of structured failure artifacts for poison cells."""
        return self.root / "failed"

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> "dict | None":
        """The cached artifact for ``key``, or None on a miss.

        An artifact that exists but cannot be read back (truncated or
        garbled JSON, checksum mismatch) is quarantined to ``corrupt/``
        and reported as a miss, so the cell re-simulates and the next
        write replaces it cleanly.
        """
        path = self.path_for(key)
        doc = read_json_artifact(path)
        if doc is None and path.is_file():
            counter("cache.corrupt").inc()
            emit("cache.corrupt", key=key)
            self.quarantine(key)
        counter("cache.hits" if doc is not None else "cache.misses").inc()
        return doc

    def put(self, key: str, doc: dict) -> Path:
        """Store ``doc`` under ``key``; returns the artifact path.

        Artifacts are written atomically and stamped with a payload
        checksum that :meth:`get` verifies.
        """
        path = write_json_artifact(self.path_for(key), doc, checksum=True)
        # Chaos injection point (tests only): may truncate the artifact
        # just written, simulating a non-atomic writer's crash.  The
        # literal must match repro.experiments.chaos.CHAOS_ENV.
        if os.environ.get("REPRO_CHAOS"):
            from repro.experiments.chaos import active_plan

            plan = active_plan()
            if plan is not None:
                plan.after_artifact_write(path)
        return path

    def quarantine(self, key: str) -> "Path | None":
        """Move ``key``'s artifact to ``corrupt/``; its new path, or None.

        Keeps the damaged bytes for post-mortems instead of deleting
        evidence; a name collision (the same key quarantined twice)
        gains a numeric suffix.
        """
        src = self.path_for(key)
        if not src.is_file():
            return None
        counter("cache.quarantined").inc()
        self.corrupt_dir.mkdir(parents=True, exist_ok=True)
        dest = self.corrupt_dir / src.name
        n = 0
        while dest.exists():
            n += 1
            dest = self.corrupt_dir / f"{src.name}.{n}"
        try:
            os.replace(src, dest)
        except OSError:
            src.unlink(missing_ok=True)
            return None
        return dest

    def put_failure(self, key: str, doc: dict) -> Path:
        """Record a quarantined cell's failure artifact under ``failed/``."""
        return write_json_artifact(
            self.failed_dir / f"{key}.json", doc, checksum=True
        )

    def get_failure(self, key: str) -> "dict | None":
        """The failure artifact for ``key``, or None."""
        return read_json_artifact(self.failed_dir / f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        # Only the two-character hex shards hold results; corrupt/ and
        # failed/ quarantine subdirectories never count.
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every result artifact; returns how many were removed.

        Empty shard directories are removed too, and the ``corrupt/`` /
        ``failed/`` quarantine subdirectories are left untouched (they
        are post-mortem evidence, not cache contents).
        """
        removed = 0
        if self.root.is_dir():
            for p in self.root.glob("??/*.json"):
                p.unlink(missing_ok=True)
                removed += 1
            for d in self.root.glob("??"):
                if d.is_dir():
                    try:
                        d.rmdir()
                    except OSError:
                        pass  # stray non-artifact files: leave the shard
        return removed

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
