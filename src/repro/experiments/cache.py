"""Content-addressed on-disk cache of simulation-cell results.

Artifacts are small JSON documents keyed by the cell's content hash
(:func:`repro.experiments.spec.cell_hash`), sharded into two-character
subdirectories.  Because the key covers *everything* that determines the
result — topology/policy/traffic specs, load, windows, buffers, and the
derived seed — a hit can be replayed verbatim: re-running a figure only
simulates the cells that are actually missing.

Floats survive the JSON round trip exactly (``repr`` serialization), so
cached statistics are bit-identical to freshly simulated ones.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.utils.export import read_json_artifact, write_json_artifact

__all__ = ["ResultCache"]

#: environment override for the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class ResultCache:
    """A directory of ``<hash>.json`` cell artifacts."""

    def __init__(self, root):
        self.root = Path(root)

    @classmethod
    def default(cls) -> "ResultCache":
        """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/experiments``."""
        env = os.environ.get(CACHE_DIR_ENV)
        if env:
            return cls(env)
        return cls(Path.home() / ".cache" / "repro" / "experiments")

    @classmethod
    def from_env(cls) -> "ResultCache | None":
        """The opt-in policy: a cache iff ``$REPRO_CACHE_DIR`` is set.

        Benchmarks and examples use this so that results are never
        silently persisted (and later replayed stale) without the
        operator asking for it.
        """
        env = os.environ.get(CACHE_DIR_ENV)
        return cls(env) if env else None

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> "dict | None":
        """The cached artifact for ``key``, or None on a miss."""
        return read_json_artifact(self.path_for(key))

    def put(self, key: str, doc: dict) -> Path:
        """Store ``doc`` under ``key``; returns the artifact path."""
        return write_json_artifact(self.path_for(key), doc)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for p in self.root.glob("*/*.json"):
                p.unlink(missing_ok=True)
                removed += 1
        return removed

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
