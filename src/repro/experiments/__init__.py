"""repro.experiments — the unified experiment engine.

One orchestration layer shared by every figure/table benchmark, example
script, and ad-hoc study:

* :mod:`~repro.experiments.registry` — string-spec registries mapping
  ``"polarfly:conc=3,q=7"`` / ``"ugal-pf"`` / ``"uniform"`` to
  constructors (populated by decorators in the topology, routing, and
  traffic modules);
* :mod:`~repro.experiments.spec` — :class:`ExperimentSpec` grids of
  hashable, seed-derived simulation cells;
* :mod:`~repro.experiments.cache` — a content-addressed JSON result
  cache so repeated sweeps only simulate missing cells;
* :mod:`~repro.experiments.runner` — :class:`SweepRunner`, fanning cells
  out over worker processes with bit-identical results at any worker
  count.

Quickstart::

    from repro.experiments import ExperimentSpec, SweepRunner

    spec = ExperimentSpec.grid(
        ["polarfly:conc=2,q=7", "slimfly:conc=2,q=5"],
        ["min", "ugal-pf"],
        ["uniform", "tornado"],
        loads=(0.2, 0.5, 0.8),
        root_seed=7,
    )
    result = SweepRunner.with_default_cache().run(spec)
    print(result.saturation_table())

This ``__init__`` eagerly imports only the dependency-free registry
module (low layers import it from their decorators at class-definition
time); the engine modules — which import the simulator stack — load
lazily via PEP 562 so no import cycle can form.
"""

from repro.experiments.registry import (
    FAULTS,
    POLICIES,
    Registry,
    TOPOLOGIES,
    TRAFFICS,
    WORKLOADS,
)

__all__ = [
    "Registry",
    "TOPOLOGIES",
    "POLICIES",
    "TRAFFICS",
    "WORKLOADS",
    "FAULTS",
    "Combo",
    "ExperimentSpec",
    "cell_hash",
    "ResultCache",
    "SweepRunner",
    "ExperimentResult",
    "CellError",
    "SweepCellError",
    "simulate_point",
    "simulate_workload",
    "run_cell",
    "auto_sim_config",
]

_LAZY = {
    "Combo": "repro.experiments.spec",
    "ExperimentSpec": "repro.experiments.spec",
    "cell_hash": "repro.experiments.spec",
    "ResultCache": "repro.experiments.cache",
    "SweepRunner": "repro.experiments.runner",
    "ExperimentResult": "repro.experiments.runner",
    "CellError": "repro.experiments.runner",
    "SweepCellError": "repro.experiments.runner",
    "simulate_point": "repro.experiments.runner",
    "simulate_workload": "repro.experiments.runner",
    "run_cell": "repro.experiments.runner",
    "auto_sim_config": "repro.experiments.runner",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.experiments' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
