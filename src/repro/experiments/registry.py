"""String-spec registries for topologies, routing policies, and traffic.

Every experiment cell is described by three short strings — e.g.
``"polarfly:conc=3,q=7"``, ``"ugal-pf"``, ``"uniform"`` — so a sweep can
be hashed, cached, shipped to a worker process, and rebuilt there without
pickling any live object.  Constructors register themselves with the
decorators below from their home modules (``topologies/``,
``routing/policies.py``, ``flitsim/traffic.py``); this module depends on
nothing inside :mod:`repro`, which keeps it importable from any layer.

Spec grammar::

    name                      # defaults only
    name:key=value,key=value  # keyword overrides

Values parse as bool (``true``/``false``), int, float, or bare string, in
that order.  :meth:`Registry.canonical` re-serializes a spec with sorted
keys, so equal specs hash equally regardless of key order.
"""

from __future__ import annotations

import importlib

__all__ = ["Registry", "TOPOLOGIES", "POLICIES", "TRAFFICS", "WORKLOADS", "FAULTS"]


def _parse_value(text: str):
    """bool -> int -> float -> str, first parse wins."""
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


class Registry:
    """A name -> factory map with spec parsing and lazy registration.

    Parameters
    ----------
    kind:
        Human label used in error messages (``"topology"`` ...).
    providers:
        Dotted module names imported on first lookup so that importing
        only :mod:`repro.experiments` still sees every registered
        constructor (registration happens at provider import time).
    """

    def __init__(self, kind: str, providers: "tuple[str, ...]" = ()):
        self.kind = kind
        self._providers = tuple(providers)
        self._factories: dict = {}
        self._examples: dict = {}
        self._loaded = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, example: "str | None" = None):
        """Decorator: register ``factory`` under ``name``.

        ``example`` is a canonical spec string exercised by the
        round-trip tests; it defaults to the bare name.
        """
        if ":" in name or "," in name or "=" in name:
            raise ValueError(f"registry name may not contain ':,=' ({name!r})")

        def decorator(factory):
            if name in self._factories:
                raise ValueError(f"duplicate {self.kind} name {name!r}")
            self._factories[name] = factory
            self._examples[name] = example or name
            return factory

        return decorator

    def _ensure(self) -> None:
        if self._loaded:
            return
        # Mark loaded up front so provider imports that consult this
        # registry re-entrantly don't recurse — but roll back on failure,
        # otherwise later lookups would silently see a half-populated
        # registry and mask the real ImportError.
        self._loaded = True
        try:
            for module in self._providers:
                importlib.import_module(module)
        except BaseException:
            self._loaded = False
            raise

    # ------------------------------------------------------------------
    # Lookup and parsing
    # ------------------------------------------------------------------
    def names(self) -> list:
        """Sorted registered names."""
        self._ensure()
        return sorted(self._factories)

    def example(self, name: str) -> str:
        """The canonical example spec registered for ``name``."""
        self._ensure()
        return self._examples[name]

    def __contains__(self, name: str) -> bool:
        self._ensure()
        return name in self._factories

    def parse(self, spec: str) -> "tuple[str, dict]":
        """Split ``spec`` into ``(name, kwargs)``; validates the name."""
        if not isinstance(spec, str) or not spec:
            raise ValueError(f"{self.kind} spec must be a non-empty string")
        name, _, tail = spec.partition(":")
        name = name.strip()
        self._ensure()
        if name not in self._factories:
            raise KeyError(
                f"unknown {self.kind} {name!r}; valid choices: "
                + ", ".join(self.names())
            )
        kwargs = {}
        if tail:
            for item in tail.split(","):
                key, eq, value = item.partition("=")
                key = key.strip()
                if not eq or not key:
                    raise ValueError(
                        f"malformed {self.kind} spec {spec!r}: expected "
                        f"'key=value', got {item!r}"
                    )
                if key in kwargs:
                    raise ValueError(
                        f"duplicate key {key!r} in {self.kind} spec {spec!r}"
                    )
                kwargs[key] = _parse_value(value.strip())
        return name, kwargs

    def canonical(self, spec: str) -> str:
        """Canonical form: name, then ``key=value`` sorted by key."""
        name, kwargs = self.parse(spec)
        if not kwargs:
            return name
        tail = ",".join(f"{k}={_format_value(kwargs[k])}" for k in sorted(kwargs))
        return f"{name}:{tail}"

    def create(self, spec: str, *args, **extra):
        """Instantiate ``spec``; positional ``args`` precede spec kwargs.

        ``extra`` keywords override same-named spec keys (used e.g. to
        inject a seed into a traffic spec that omitted one).
        """
        name, kwargs = self.parse(spec)
        kwargs.update(extra)
        try:
            return self._factories[name](*args, **kwargs)
        except TypeError as exc:
            # Chain the original so a TypeError raised deep inside the
            # constructor isn't misread as a spec typo.
            raise TypeError(
                f"bad arguments for {self.kind} {spec!r}: {exc}"
            ) from exc


#: topology constructors (see ``repro/topologies`` and ``repro/core``)
TOPOLOGIES = Registry("topology", providers=("repro.topologies", "repro.core.polarfly"))
#: routing-policy constructors; factories take ``(tables, **kwargs)``
POLICIES = Registry("routing policy", providers=("repro.routing.policies",))
#: traffic-pattern constructors; factories take ``(topo, **kwargs)``
TRAFFICS = Registry(
    "traffic pattern",
    providers=("repro.flitsim.traffic", "repro.flitsim.patterns_extra"),
)
#: closed-loop workload generators; factories take ``(topo, **kwargs)``
#: and return a :class:`repro.workloads.Workload`
WORKLOADS = Registry("workload", providers=("repro.workloads.generators",))
#: fault-timeline generators; factories take ``(topo, **kwargs)`` and
#: return a :class:`repro.faults.FaultTimeline`
FAULTS = Registry("fault timeline", providers=("repro.faults.timeline",))
