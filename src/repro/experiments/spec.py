"""Experiment specifications: the declarative half of the sweep engine.

An :class:`ExperimentSpec` names a grid of simulation *cells* — each cell
one ``(topology, policy, traffic, load)`` point plus the simulation
window — entirely with registry spec strings and numbers.  That makes a
cell:

* **hashable** — :func:`cell_hash` keys the on-disk result cache;
* **portable** — a plain dict of primitives crosses process boundaries
  without pickling live simulator objects;
* **reproducible** — every cell's RNG seed is derived from the spec's
  root seed and the cell's own coordinates, so results are bit-identical
  regardless of worker count, execution order, or cache state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

from repro.experiments.registry import (
    FAULTS,
    POLICIES,
    TOPOLOGIES,
    TRAFFICS,
    WORKLOADS,
)
from repro.utils.rng import derive_seed

__all__ = [
    "Combo",
    "ExperimentSpec",
    "cell_hash",
    "cell_cost",
    "CELL_VERSION",
    "WINDOWED_CELL_VERSION",
]

#: bump to invalidate cached artifacts when cell semantics change
#: (4: dynamic fault-injection cells — optional fault axis; fault-free
#: cell hashes unchanged.  3: closed-loop workload cells — workload
#: axis, run-to-completion windows — joining the v2
#: synchronous-router-phase protocol)
CELL_VERSION = 4

#: the version stamped on cells that carry the optional ``window``
#: field (time-series collection enabled): those cells gained a
#: ``timeseries`` result block, so their artifacts need refreshing —
#: while the untouched non-windowed fleet keeps validating against
#: :data:`CELL_VERSION` (5: per-window time-series persistence)
WINDOWED_CELL_VERSION = 5


@dataclass(frozen=True)
class Combo:
    """One curve of a sweep: a (topology, policy, traffic) triple — or,
    for closed-loop cells, a (topology, policy, workload) triple —
    optionally under a fault timeline.

    Spec strings are canonicalized on construction so equal combos
    compare and hash equally however the caller spelled them.  ``label``
    is presentation-only and excluded from cache keys.  Exactly one of
    ``traffic`` (open loop) and ``workload`` (closed loop) must be set;
    ``faults`` is orthogonal and composes with either.
    """

    topology: str
    policy: str
    traffic: str = ""
    label: str = ""
    workload: str = ""
    faults: str = ""

    def __post_init__(self):
        object.__setattr__(self, "topology", TOPOLOGIES.canonical(self.topology))
        object.__setattr__(self, "policy", POLICIES.canonical(self.policy))
        if bool(self.traffic) == bool(self.workload):
            raise ValueError(
                "combo needs exactly one of traffic= (open loop) or "
                "workload= (closed loop)"
            )
        if self.workload:
            object.__setattr__(self, "workload", WORKLOADS.canonical(self.workload))
        else:
            object.__setattr__(self, "traffic", TRAFFICS.canonical(self.traffic))
        if self.faults:
            object.__setattr__(self, "faults", FAULTS.canonical(self.faults))
        if not self.label:
            label = f"{self.topology}|{self.policy}|{self.workload or self.traffic}"
            if self.faults:
                label += f"|{self.faults}"
            object.__setattr__(self, "label", label)


@dataclass(frozen=True)
class ExperimentSpec:
    """A full sweep: combos x offered loads, plus the simulation window.

    ``num_vcs``/``vc_depth`` of ``None`` mean "derive from the policy":
    enough virtual channels for the policy's worst-case hop count and a
    per-port flit budget of ``port_budget`` split across them (the
    paper's constant-buffer methodology).
    """

    combos: tuple = ()
    loads: tuple = (0.2, 0.5, 0.8)
    warmup: int = 600
    measure: int = 1200
    drain: int = 300
    root_seed: int = 0
    port_budget: int = 32
    num_vcs: "int | None" = None
    vc_depth: "int | None" = None
    packet_size: int = 4
    #: cycle budget for closed-loop (workload) cells; open-loop cells
    #: use the warmup/measure/drain window instead
    max_cycles: int = 200_000
    #: time-series window width in cycles; 0 (default) disables
    #: windowed collection — cells then hash and validate exactly as
    #: before this field existed
    window: int = 0

    def __post_init__(self):
        combos = tuple(
            c if isinstance(c, Combo) else Combo(*c) for c in self.combos
        )
        if not combos:
            raise ValueError("ExperimentSpec needs at least one combo")
        object.__setattr__(self, "combos", combos)
        loads = tuple(float(x) for x in self.loads)
        if not loads:
            raise ValueError("ExperimentSpec needs at least one load")
        object.__setattr__(self, "loads", loads)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def grid(cls, topologies, policies, traffics, **kwargs) -> "ExperimentSpec":
        """Full cross product of topology x policy x traffic specs."""
        combos = tuple(
            Combo(t, p, tr)
            for t in _aslist(topologies)
            for p in _aslist(policies)
            for tr in _aslist(traffics)
        )
        return cls(combos=combos, **kwargs)

    @classmethod
    def workload_grid(
        cls, topologies, policies, workloads, loads=(0.0,), **kwargs
    ) -> "ExperimentSpec":
        """Closed-loop cross product: topology x policy x workload.

        ``loads`` defaults to a single dummy point — a workload cell
        runs to completion rather than at an offered load, so the load
        axis only multiplies seeds (useful for replicated collectives).
        """
        combos = tuple(
            Combo(t, p, workload=w)
            for t in _aslist(topologies)
            for p in _aslist(policies)
            for w in _aslist(workloads)
        )
        return cls(combos=combos, loads=loads, **kwargs)

    @classmethod
    def fault_grid(
        cls, topologies, policies, traffics, faults, **kwargs
    ) -> "ExperimentSpec":
        """Resilience-under-load cross product with a fault axis.

        ``faults`` entries of ``""`` give fault-free control curves in
        the same spec, so degraded and intact saturation loads come out
        of one sweep.  (Closed-loop faulted combos are built directly:
        ``Combo(t, p, workload=w, faults=f)``.)
        """
        combos = tuple(
            Combo(t, p, tr, faults=f)
            for t in _aslist(topologies)
            for p in _aslist(policies)
            for tr in _aslist(traffics)
            for f in _aslist(faults)
        )
        return cls(combos=combos, **kwargs)

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def cell(self, combo: Combo, load: float) -> dict:
        """The primitive-only execution record for one grid point."""
        load = float(load)
        cell = {
            "version": CELL_VERSION,
            "topology": combo.topology,
            "policy": combo.policy,
            "traffic": combo.traffic,
            "load": load,
            "warmup": int(self.warmup),
            "measure": int(self.measure),
            "drain": int(self.drain),
            "port_budget": int(self.port_budget),
            "num_vcs": self.num_vcs,
            "vc_depth": self.vc_depth,
            "packet_size": int(self.packet_size),
            # The seed axis: workload cells key on the workload spec
            # (prefixed so a traffic and a workload never collide), and
            # faulted cells additionally on the fault spec — fault-free
            # cells derive exactly the pre-fault-axis seeds.
            "seed": derive_seed(
                self.root_seed, combo.topology, combo.policy,
                f"wl:{combo.workload}" if combo.workload else combo.traffic,
                repr(load),
                *((f"ft:{combo.faults}",) if combo.faults else ()),
            ),
        }
        if combo.faults:
            # Only faulted cells carry the field: fault-free cell keys
            # (and therefore hashes) are unchanged by the fault axis,
            # so the v4 version bump refreshes stale artifacts in place.
            cell["faults"] = combo.faults
        if combo.workload:
            # Only closed-loop cells carry the workload fields: open-loop
            # cell *keys* are unchanged, so the v3 version bump refreshes
            # their stale artifacts in place instead of orphaning them
            # (the invalidation design cell_hash documents).  The
            # open-loop window is dropped symmetrically — a workload
            # runs to completion, so warmup/measure/drain must not
            # perturb its cache key.
            cell["workload"] = combo.workload
            cell["max_cycles"] = int(self.max_cycles)
            for window in ("warmup", "measure", "drain"):
                del cell[window]
        if self.window:
            # Only windowed cells carry the field and the bumped
            # version: enabling time-series collection changes the key
            # (a windowed result is a superset) and refreshes any stale
            # artifact under it, while the non-windowed fleet's keys and
            # CELL_VERSION validation stay byte-for-byte unchanged.
            cell["window"] = int(self.window)
            cell["version"] = WINDOWED_CELL_VERSION
        cell["key"] = cell_hash(cell)
        return cell

    def cells(self) -> list:
        """All cells, combo-major then load-major (deterministic order)."""
        return [self.cell(combo, load) for combo in self.combos for load in self.loads]

    def describe(self) -> str:
        return (
            f"{len(self.combos)} combo(s) x {len(self.loads)} load(s) = "
            f"{len(self.combos) * len(self.loads)} cells "
            f"(warmup={self.warmup}, measure={self.measure}, drain={self.drain}, "
            f"root_seed={self.root_seed})"
        )


def cell_hash(cell: dict) -> str:
    """Content hash of a cell (sans presentation fields) — the cache key.

    ``version`` is deliberately excluded: a :data:`CELL_VERSION` bump
    keeps the same keys and invalidates through the runner's version
    check, so stale artifacts are overwritten in place rather than
    orphaned forever under dead keys.
    """
    doc = {k: v for k, v in cell.items() if k not in ("key", "version")}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cell_cost(cell: dict) -> int:
    """Simulated-cycle count of a cell — the scheduler's cost unit.

    Open-loop cells simulate exactly ``warmup + measure + drain``
    cycles; closed-loop (workload) cells are bounded by ``max_cycles``.
    The runner derives per-cell wall-clock timeouts from this.
    """
    if cell.get("workload"):
        return int(cell.get("max_cycles", 200_000))
    return int(
        cell.get("warmup", 0) + cell.get("measure", 0) + cell.get("drain", 0)
    )


def _aslist(x):
    return [x] if isinstance(x, str) else list(x)
