"""Deterministic chaos injection for the sweep scheduler's fault paths.

The resilient scheduler's claims — checkpointed resume, pool
self-healing, retry/bisection/quarantine, corrupt-artifact recovery —
are only worth anything if they are *exercised*.  This module injects
faults into a real sweep from the inside: a :class:`ChaosPlan` parsed
from ``$REPRO_CHAOS`` hooks into :func:`~repro.experiments.runner.run_cell`
(worker side) and :meth:`~repro.experiments.cache.ResultCache.put`
(parent side), and the chaos test matrix asserts that results under
chaos are bit-identical to a clean single-worker run.

Fault plans are deterministic: per-cell decisions derive from the
plan's seed and the cell's content hash, and one-shot faults (kill a
worker once, truncate one artifact) are sequenced through marker files
in the plan's scratch directory — atomic ``O_EXCL`` creates, so the
bookkeeping is race-free across worker processes and a retried cell is
not re-killed.

Plan syntax (comma-separated ``key=value`` pairs)::

    REPRO_CHAOS="kill=1,corrupt=1,delay_ms=5,dir=/tmp/chaos"

============  ========================================================
``seed=N``    root seed for per-cell derivations (default 0)
``kill=K``    SIGKILL the worker for the first K cells to execute
              (once each, marker-sequenced)
``hang=K``    sleep ``hang_s`` seconds in the first K cells (once
              each) — exercises the wall-clock timeout path
``hang_s=X``  hang duration in seconds (default 3600)
``corrupt=K``  truncate the first K artifacts written through
              :meth:`ResultCache.put` (once each)
``delay_ms=X``  per-cell seed-derived injection delay in [0, X) ms —
              jitters scheduling order without changing results
``kill_key=P``  SIGKILL the worker running any cell whose hash starts
              with prefix ``P`` (once per cell, marker-sequenced)
``flaky_key=P``  raise :class:`ChaosError` on the *first* attempt of
              cells matching ``P`` — exercises plain retry
``raise_key=P``  raise :class:`ChaosError` on *every* attempt of cells
              matching ``P`` — a deterministic poison cell, exercises
              bisection + quarantine
``dir=PATH``  marker scratch directory (``$REPRO_CHAOS_DIR`` is the
              fallback); required by the marker-sequenced modes
============  ========================================================

Chaos is entirely inert unless ``$REPRO_CHAOS`` is set — the hooks gate
on the raw environment variable before importing this module.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, fields
from pathlib import Path

from repro.utils.rng import derive_seed

__all__ = ["CHAOS_ENV", "CHAOS_DIR_ENV", "ChaosError", "ChaosPlan", "active_plan"]

#: environment variable holding the chaos plan spec
CHAOS_ENV = "REPRO_CHAOS"

#: fallback environment variable for the marker scratch directory
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"


class ChaosError(RuntimeError):
    """The exception chaos-injected cells raise."""


@dataclass
class ChaosPlan:
    """A parsed ``$REPRO_CHAOS`` fault plan (see the module docstring)."""

    seed: int = 0
    kill: int = 0
    hang: int = 0
    corrupt: int = 0
    delay_ms: float = 0.0
    hang_s: float = 3600.0
    kill_key: str = ""
    raise_key: str = ""
    flaky_key: str = ""
    dir: str = ""

    # ------------------------------------------------------------------
    # Marker bookkeeping (one-shot fault sequencing)
    # ------------------------------------------------------------------
    def _scratch(self) -> str:
        if not self.dir:
            raise ChaosError(
                "chaos plan uses one-shot faults (kill/hang/corrupt/"
                "kill_key/flaky_key) but has no marker directory: add "
                f"dir=PATH to ${CHAOS_ENV} or set ${CHAOS_DIR_ENV}"
            )
        return self.dir

    def _acquire(self, name: str) -> bool:
        """Atomically claim marker ``name``; True iff newly created."""
        scratch = self._scratch()
        os.makedirs(scratch, exist_ok=True)
        try:
            fd = os.open(
                os.path.join(scratch, name),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _slot(self, kind: str, count: int) -> bool:
        """Claim one of ``count`` one-shot slots for fault ``kind``."""
        for i in range(count):
            if self._acquire(f"{kind}-{i}"):
                return True
        return False

    # ------------------------------------------------------------------
    # Injection hooks
    # ------------------------------------------------------------------
    def before_cell(self, cell: dict) -> None:
        """Worker-side hook: called at the top of ``run_cell``."""
        key = str(cell.get("key", ""))
        if self.delay_ms > 0:
            frac = (derive_seed(self.seed, "delay", key) % 100) / 100.0
            time.sleep(self.delay_ms * frac / 1000.0)
        if (
            self.flaky_key
            and key.startswith(self.flaky_key)
            and self._acquire(f"flaky-{key[:16]}")
        ):
            raise ChaosError(f"chaos: transient failure in cell {key[:12]}")
        if self.raise_key and key.startswith(self.raise_key):
            raise ChaosError(f"chaos: poison cell {key[:12]}")
        if (
            self.kill_key
            and key.startswith(self.kill_key)
            and self._acquire(f"kill-{key[:16]}")
        ):
            os.kill(os.getpid(), signal.SIGKILL)
        if self.kill and self._slot("kill", self.kill):
            os.kill(os.getpid(), signal.SIGKILL)
        if self.hang and self._slot("hang", self.hang):
            time.sleep(self.hang_s)

    def after_artifact_write(self, path) -> None:
        """Parent-side hook: may truncate the artifact just written.

        Deliberately non-atomic (in-place truncation to half length),
        simulating the torn writes a crashed non-atomic writer or a
        full disk leaves behind.
        """
        if self.corrupt and self._slot("corrupt", self.corrupt):
            path = Path(path)
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])


def parse_plan(text: str) -> ChaosPlan:
    """Parse a ``key=value,key=value`` chaos spec into a plan."""
    types = {f.name: f.type for f in fields(ChaosPlan)}
    casts = {"int": int, "float": float, "str": str}
    kwargs: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        name = name.strip()
        if not sep or name not in types:
            raise ChaosError(f"bad ${CHAOS_ENV} entry {part!r}")
        kwargs[name] = casts[str(types[name])](value.strip())
    return ChaosPlan(**kwargs)


def active_plan() -> "ChaosPlan | None":
    """The plan from ``$REPRO_CHAOS``, or None when chaos is off.

    Re-parsed on every call (the string is tiny) so tests can flip the
    environment between runs without process-level caching surprises.
    """
    text = os.environ.get(CHAOS_ENV, "").strip()
    if not text:
        return None
    plan = parse_plan(text)
    if not plan.dir:
        plan.dir = os.environ.get(CHAOS_DIR_ENV, "")
    return plan
