"""Engine performance harness: the repo's perf-baseline trajectory.

Times both simulation engines (the struct-of-arrays flat core and the
dict-of-deques reference) on a small set of canonical cells, plus the
*construction* path — topology build, :class:`RoutingTables` (batched
all-pairs BFS), candidate CSR, unique-path cache, and
:class:`FlatFabric` — at q ∈ {7, 19, 31}, against the seed per-source
builders.  Everything is written to ``BENCH_flitsim.json`` — cycles/sec
per engine, construction walls, speedups, and machine info — so every
future hot-path change is measured against a recorded baseline instead
of asserted.

Used by ``benchmarks/perf_smoke.py`` (pytest-free script), ``tools/bench.py``
(CLI with ``--check`` / ``--check-construction`` gates for CI), and
importable directly.
"""

from __future__ import annotations

import contextlib
import os
import platform
import time

import numpy as np

from repro import obs
from repro.experiments.registry import POLICIES, TOPOLOGIES, TRAFFICS
from repro.experiments.runner import auto_sim_config
from repro.flitsim._kernel import load_kernel, numpy_fallback
from repro.flitsim.engine import make_simulator

__all__ = [
    "CANONICAL_CELLS",
    "HEADLINE_CELL",
    "CONSTRUCTION_SPECS",
    "CONSTRUCTION_GATE",
    "BASELINE_MAX_ROUTERS",
    "SCALE_CELLS",
    "SCALE_ENGINES",
    "WORKLOAD_CELLS",
    "FAULT_CELLS",
    "CLOSED_LOOP_ENGINES",
    "SWEEP_RESILIENCE_MAX_OVERHEAD",
    "OBS_OVERHEAD_MAX",
    "TS_OVERHEAD_MAX",
    "bench_cell",
    "bench_obs_overhead",
    "bench_ts_overhead",
    "bench_sweep_resilience",
    "bench_workload_cell",
    "bench_fault_cell",
    "bench_construction_spec",
    "measure_construction_memory",
    "run_construction_benchmarks",
    "run_scale_benchmarks",
    "run_workload_benchmarks",
    "run_fault_benchmarks",
    "run_sweep_resilience_benchmark",
    "run_obs_overhead_benchmark",
    "run_ts_overhead_benchmark",
    "run_benchmarks",
    "machine_info",
    "write_bench_json",
]

#: The canonical perf cells.  ``fig09_pf_ugalpf_uniform`` is the
#: headline: the Figure-9 PolarFly q=7 UGAL_PF configuration whose
#: sweeps bottleneck every adaptive-routing figure.
CANONICAL_CELLS = {
    "fig09_pf_ugalpf_uniform": dict(
        topology="polarfly:conc=2,q=7", policy="ugal-pf", traffic="uniform",
        load=0.5,
    ),
    "fig09_pf_ugalpf_perm1hop": dict(
        topology="polarfly:conc=2,q=7", policy="ugal-pf",
        traffic="perm1hop:seed=1", load=0.6,
    ),
    "df_min_adversarial": dict(
        topology="dragonfly:a=4,h=2,p=2", policy="min", traffic="tornado",
        load=0.7,
    ),
}

HEADLINE_CELL = "fig09_pf_ugalpf_uniform"

#: The construction-trajectory topologies: the paper's headline PolarFly
#: sizes from the q=7 toy (N=57) through the large-radix regime the
#: batched builders unlock (q=31: N=993, ~1M router pairs), plus the
#: sparse tier — q=53 (N=2863), q=79 (N=6321) and the PolarStar
#: star-product instance PS(q=11, s=25) (N=3325) — that the O(N^2)-free
#: structures exist for.
CONSTRUCTION_SPECS = {
    "pf_q7": "polarfly:conc=2,q=7",
    "pf_q19": "polarfly:conc=2,q=19",
    "pf_q31": "polarfly:conc=2,q=31",
    "pf_q53": "polarfly:conc=2,q=53",
    "pf_q79": "polarfly:conc=2,q=79",
    "ps_q11": "polarstar:conc=2,q=11,sq=25",
}

#: the construction entry the CI regression gate checks
CONSTRUCTION_GATE = "pf_q19"

#: Largest router count at which the seed per-source baselines (a
#: Python BFS loop per source, plus the dense-CSR oracle) are still
#: cheap enough to time.  Larger specs record batched walls and memory
#: only, with a ``baseline_skipped`` note — q=31 keeps its baseline, so
#: the committed speedup trajectory is unbroken.
BASELINE_MAX_ROUTERS = 1200

#: Scale-tier simulation cells: flat-engine only (the dict-of-deques
#: reference engine is quadratic-in-spirit at these sizes and is pinned
#: bit-identical on the small golden cells instead).  Recorded in the
#: separate ``scale`` section of BENCH_flitsim.json.
SCALE_CELLS = {
    "scale_pf_q53_min_uniform": dict(
        topology="polarfly:conc=2,q=53", policy="min", traffic="uniform",
        load=0.2,
    ),
    "scale_ps_q11_min_uniform": dict(
        topology="polarstar:conc=2,q=11,sq=25", policy="min",
        traffic="uniform", load=0.2,
    ),
}

#: Engines timed on the scale cells (no reference at these sizes).
SCALE_ENGINES = ("flat-numpy", "flat")

#: The canonical closed-loop cells: collective completion time is the
#: workload engine's headline number (the paper-adjacent metric real
#: systems are judged on), recorded per engine with the same
#: flat-over-reference speedup bookkeeping as the open-loop cells.
#: The ``wk01`` cell is the kernel-path headline: min routing keeps the
#: Python share (batched route selection) small, so its
#: kernel-over-numpy speedup tracks the C cycle kernel itself.
WORKLOAD_CELLS = {
    "allreduce_ring_pf_q7": dict(
        topology="polarfly:conc=2,q=7", policy="ugal-pf",
        workload="allreduce:algo=ring,size=64",
    ),
    "alltoall_pf_q7": dict(
        topology="polarfly:conc=2,q=7", policy="min", workload="alltoall:size=8",
    ),
    "wk01_allreduce_kernel": dict(
        topology="polarfly:conc=2,q=7", policy="min",
        workload="allreduce:algo=ring,size=64",
    ),
}

#: The canonical resilience-under-load cells: the Figure-9 headline
#: configuration with a mid-run MTBF link failure/repair process.  The
#: fault cycle phases run in the C kernel too (drops, dead-port masks,
#: credit semantics — epoch deltas stay in Python); ``fault01`` is the
#: kernel-path headline with min routing, mirroring ``wk01``.
FAULT_CELLS = {
    "fig14_pf_ugalpf_mtbf": dict(
        topology="polarfly:conc=2,q=7", policy="ugal-pf", traffic="uniform",
        load=0.5, faults="mtbf:count=3,mtbf=250,mttr=200,seed=2,start=150",
    ),
    "fault01_mtbf_kernel": dict(
        topology="polarfly:conc=2,q=7", policy="min", traffic="uniform",
        load=0.5, faults="mtbf:count=3,mtbf=250,mttr=200,seed=2,start=150",
    ),
}

#: Engines benchmarked on workload/fault cells.  ``flat-numpy`` is the
#: flat engine with the C kernel disabled for the construction (see
#: :func:`~repro.flitsim._kernel.numpy_fallback`) — recording it next
#: to ``flat`` turns every closed-loop/fault cell into a
#: kernel-vs-numpy measurement.  Dropped automatically (with a notice)
#: when no kernel is available, since both names would time the same
#: code.
CLOSED_LOOP_ENGINES = ("reference", "flat-numpy", "flat")

#: CI gate for the sweep scheduler: the crash-resilient as-completed
#: dispatcher may cost at most this factor over a bare ``pool.map`` of
#: statically pre-split chunks on the same grid and pool size.
SWEEP_RESILIENCE_MAX_OVERHEAD = 1.05

#: CI gate for observability: with ``$REPRO_OBS`` unset, the fully
#: instrumented serial execution path may cost at most this factor over
#: the seed execution spine (a bare ``run_cell`` loop on the same cells).
OBS_OVERHEAD_MAX = 1.03

#: CI gate for time-series collection: with windows *off* (the default
#: ``window=0``), the merged feature may cost at most this factor over
#: the seed execution spine (a direct simulator ``run()`` loop on the
#: same points) — the dormant collector must stay dormant.
TS_OVERHEAD_MAX = 1.05


def _engine_ctx(engine: str):
    """(real engine name, construction context) for one engine label."""
    if engine == "flat-numpy":
        return "flat", numpy_fallback()
    return engine, contextlib.nullcontext()


def _resolve_engines(engines) -> tuple:
    """Drop ``flat-numpy`` when the kernel is unavailable anyway."""
    if "flat-numpy" in engines and load_kernel() is None:
        return tuple(e for e in engines if e != "flat-numpy")
    return tuple(engines)


def _add_speedups(result: dict) -> None:
    """Attach the derived speedup ratios for one cell's engine dict."""
    eng = result["engines"]
    if "reference" in eng and "flat" in eng:
        result["speedup_flat_over_reference"] = (
            eng["flat"]["cycles_per_sec"] / eng["reference"]["cycles_per_sec"]
        )
    if "flat-numpy" in eng and "flat" in eng:
        result["speedup_kernel_over_numpy"] = (
            eng["flat"]["cycles_per_sec"] / eng["flat-numpy"]["cycles_per_sec"]
        )


def machine_info() -> dict:
    """Environment fingerprint recorded next to every measurement."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "processor": platform.processor() or platform.machine(),
        "flat_kernel": load_kernel() is not None,
    }


def bench_cell(
    cell: dict,
    warmup: int = 150,
    measure: int = 400,
    seed: int = 1,
    engines=("reference", "flat"),
) -> dict:
    """Time ``warmup + measure`` simulated cycles per engine on one cell.

    Objects are built once per engine run (fresh simulator each time,
    same seed — the engines are result-equivalent, so both time the
    exact same simulated work).  Returns per-engine wall/cycles-per-sec
    plus the flat-over-reference speedup, and a ``phases`` section
    splitting the wall into construct (topology build), route (tables +
    policy + traffic), and simulate (summed engine loops) — each phase
    also emitted as a ``bench.phase`` span when ``$REPRO_OBS`` is on.
    """
    from repro.routing.tables import RoutingTables

    topo, policy, traffic = None, None, None
    with obs.span("bench.phase", phase="construct"):
        t0 = time.perf_counter()
        topo = TOPOLOGIES.create(cell["topology"])
        construct_s = time.perf_counter() - t0
    with obs.span("bench.phase", phase="route"):
        t0 = time.perf_counter()
        tables = RoutingTables(topo)
        policy = POLICIES.create(cell["policy"], tables)
        traffic = TRAFFICS.create(cell["traffic"], topo)
        route_s = time.perf_counter() - t0
    config = auto_sim_config(policy)
    cycles = warmup + measure
    result: dict = {"cell": dict(cell), "cycles": cycles, "engines": {}}
    simulate_s = 0.0
    for engine in _resolve_engines(engines):
        real, ctx = _engine_ctx(engine)
        with ctx:
            sim = make_simulator(
                topo, policy, traffic, cell["load"], config=config,
                seed=seed, engine=real,
            )
        with obs.span("bench.phase", phase="simulate", engine=engine):
            start = time.perf_counter()
            for _ in range(cycles):
                sim.step()
            wall = time.perf_counter() - start
        simulate_s += wall
        result["engines"][engine] = {
            "wall_s": wall,
            "cycles_per_sec": cycles / wall,
        }
    result["phases"] = {
        "construct_s": construct_s,
        "route_s": route_s,
        "simulate_s": simulate_s,
    }
    _add_speedups(result)
    return result


def bench_workload_cell(
    cell: dict,
    max_cycles: int = 100_000,
    seed: int = 1,
    engines=CLOSED_LOOP_ENGINES,
) -> dict:
    """Time one closed-loop cell to completion per engine.

    Both engines run the exact same collective (bit-identical results
    per seed), so the recorded completion time is engine-agnostic and
    the walls measure pure engine speed.
    """
    from repro.experiments.registry import WORKLOADS
    from repro.experiments.runner import simulate_workload
    from repro.routing.tables import RoutingTables

    topo = TOPOLOGIES.create(cell["topology"])
    tables = RoutingTables(topo)
    policy = POLICIES.create(cell["policy"], tables)
    workload = WORKLOADS.create(cell["workload"], topo)
    config = auto_sim_config(policy)
    result: dict = {"cell": dict(cell), "engines": {}}
    for engine in _resolve_engines(engines):
        real, ctx = _engine_ctx(engine)
        with ctx:
            start = time.perf_counter()
            res = simulate_workload(
                topo, policy, workload, config=config, max_cycles=max_cycles,
                seed=seed, engine=real,
            )
            wall = time.perf_counter() - start
        result["engines"][engine] = {
            "wall_s": wall,
            "cycles_per_sec": res.cycles / wall if wall else float("inf"),
        }
        if "completion_cycles" in result and (
            result["completion_cycles"] != res.completion_time
            or result["num_messages"] != res.num_messages
        ):
            # The engines are pinned bit-identical; a divergence here
            # means the baseline would be silently wrong — fail loudly.
            raise RuntimeError(
                f"engine divergence on {cell}: {engine} completed in "
                f"{res.completion_time} cycles vs recorded "
                f"{result['completion_cycles']}"
            )
        result["completion_cycles"] = res.completion_time
        result["num_messages"] = res.num_messages
        result["wire_flits"] = res.wire_flits
        result["bisection_utilization"] = res.bisection_utilization
        result["finished"] = res.finished
    _add_speedups(result)
    return result


def bench_fault_cell(
    cell: dict,
    warmup: int = 150,
    measure: int = 400,
    seed: int = 1,
    engines=CLOSED_LOOP_ENGINES,
) -> dict:
    """Time one faulted open-loop cell per engine.

    The engines are pinned bit-identical under faults, so the recorded
    drop counters are engine-agnostic; a divergence fails loudly rather
    than committing a silently wrong baseline.
    """
    from repro.experiments.registry import FAULTS
    from repro.faults import prepare_fault_policy
    from repro.routing.tables import RoutingTables

    topo = TOPOLOGIES.create(cell["topology"])
    tables = RoutingTables(topo)
    traffic = TRAFFICS.create(cell["traffic"], topo)
    cycles = warmup + measure
    result: dict = {"cell": dict(cell), "cycles": cycles, "engines": {}}
    for engine in _resolve_engines(engines):
        # Fault state (and the policy it pins) is single-run: rebuild.
        timeline = FAULTS.create(cell["faults"], topo)
        policy = POLICIES.create(cell["policy"], tables)
        prepare_fault_policy(policy, timeline, topo)
        real, ctx = _engine_ctx(engine)
        with ctx:
            sim = make_simulator(
                topo, policy, traffic, cell["load"],
                config=auto_sim_config(policy), seed=seed, engine=real,
                faults=timeline,
            )
        start = time.perf_counter()
        for _ in range(cycles):
            sim.step()
        wall = time.perf_counter() - start
        result["engines"][engine] = {
            "wall_s": wall,
            "cycles_per_sec": cycles / wall,
        }
        counters = {
            "dropped_flits": sim._fault.dropped_flits,
            "dropped_packets": sim._fault.dropped_packets,
            "damaged_packets": sim._fault.damaged_packets,
            "blackholed_packets": sim._fault.blackholed_packets,
            "fault_applied_events": sim._fault.applied_events,
        }
        if "dropped_flits" in result and {
            k: result[k] for k in counters
        } != counters:
            raise RuntimeError(
                f"engine divergence on faulted cell {cell}: {engine} saw "
                f"{counters}"
            )
        result.update(counters)
    _add_speedups(result)
    return result


def run_fault_benchmarks(
    cells: "dict | None" = None,
    warmup: int = 150,
    measure: int = 400,
    seed: int = 1,
    engines=CLOSED_LOOP_ENGINES,
) -> dict:
    """The ``faults`` section of ``BENCH_flitsim.json``."""
    cells = FAULT_CELLS if cells is None else cells
    return {
        name: bench_fault_cell(
            cell, warmup=warmup, measure=measure, seed=seed, engines=engines
        )
        for name, cell in cells.items()
    }


def bench_sweep_resilience(
    max_workers: int = 2, repeats: int = 5, seed: int = 1
) -> dict:
    """Scheduler overhead: resilient dispatch vs a bare ``pool.map``.

    Runs the Figure-9 headline grid (PolarFly q=7, UGAL_PF, uniform,
    16 loads — wide enough that per-cell jitter averages out within a
    round) twice at the same pool size: once through the full
    crash-resilient scheduler (dynamic chunking, as-completed harvest,
    deadline tracking — the retry machinery idles on a clean run) and
    once as the seed's ``pool.map`` over statically pre-split chunks.
    Both paths time against a pre-warmed pool (the per-worker
    construction memo is persistent-pool state, not scheduling cost),
    interleaved in rounds — scheduler then pool.map, ``repeats`` times.
    The gated ratio is the *median of per-round ratios*: the two sides
    of one round are adjacent in time, so CPU-frequency and box-load
    drift (easily ±15% across a CI run) cancels out of each ratio
    instead of landing on whichever side was measured during the slow
    patch.  The recorded ratio is what resilience costs when nothing
    goes wrong; ``tools/bench.py --check`` gates it at
    :data:`SWEEP_RESILIENCE_MAX_OVERHEAD`.
    """
    import math
    import statistics
    from concurrent.futures import ProcessPoolExecutor

    from repro.experiments.runner import SweepRunner, run_chunk
    from repro.experiments.spec import ExperimentSpec

    spec = ExperimentSpec.grid(
        ["polarfly:conc=2,q=7"], ["ugal-pf"], ["uniform"],
        loads=tuple(0.1 + 0.05 * i for i in range(16)),
        warmup=150, measure=400, drain=100, root_seed=seed,
    )
    cells = spec.cells()
    per = math.ceil(len(cells) / max_workers)
    chunks = [cells[i : i + per] for i in range(0, len(cells), per)]

    scheduler_s = pool_map_s = float("inf")
    ratios = []
    runner = SweepRunner(cache=None, max_workers=max_workers)
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            runner.run(spec)  # warm both pools + construction memos
            list(pool.map(run_chunk, chunks))
            for _ in range(repeats):
                _, s = _timed(lambda: runner.run(spec))
                _, m = _timed(lambda: list(pool.map(run_chunk, chunks)))
                scheduler_s = min(scheduler_s, s)
                pool_map_s = min(pool_map_s, m)
                ratios.append(s / m)
    finally:
        runner.close()

    return {
        "grid": {
            "cells": len(cells),
            "max_workers": max_workers,
            "repeats": repeats,
        },
        "scheduler_s": scheduler_s,
        "pool_map_s": pool_map_s,
        "round_ratios": ratios,
        "overhead_vs_pool_map": statistics.median(ratios),
        "max_overhead": SWEEP_RESILIENCE_MAX_OVERHEAD,
    }


def run_sweep_resilience_benchmark(seed: int = 1) -> dict:
    """The ``sweep_resilience`` section of ``BENCH_flitsim.json``."""
    return bench_sweep_resilience(seed=seed)


def bench_obs_overhead(repeats: int = 5, seed: int = 1) -> dict:
    """Observability tax on the disabled path: instrumented vs seed.

    With ``$REPRO_OBS`` unset, every wired emit/span/counter call must
    collapse to (at most) one env lookup.  This cell proves it end to
    end: per round it times the fully instrumented serial execution
    path — ``SweepRunner(max_workers=1).run()`` with its lifecycle
    emits, heartbeat checks, per-cell spans, and cache counters all
    disabled — against the seed execution spine, a bare ``run_cell``
    loop over the same cells.  Rounds interleave the two sides so
    CPU-frequency/box-load drift hits both equally (the
    ``bench_sweep_resilience`` methodology); the gated number is the
    *best-of-rounds* ratio — min instrumented wall over min bare wall,
    the noise-robust estimator: a transient stall in one round cannot
    fail the gate, only a cost paid in every round can.  Checked at
    :data:`OBS_OVERHEAD_MAX` by ``tools/bench.py --check``; per-round
    ratios are recorded alongside.  An *enabled*-side ratio (events
    actually written to a scratch dir) is recorded for information but
    never gated — writing JSONL costs what it costs.
    """
    import shutil
    import tempfile

    from repro.experiments.runner import SweepRunner, run_cell
    from repro.experiments.spec import ExperimentSpec

    spec = ExperimentSpec.grid(
        ["polarfly:conc=2,q=7"], ["ugal-pf"], ["uniform"],
        loads=tuple(0.1 + 0.1 * i for i in range(8)),
        warmup=150, measure=400, drain=100, root_seed=seed,
    )
    cells = spec.cells()
    runner = SweepRunner(cache=None, max_workers=1)
    disabled_s = bare_s = float("inf")
    ratios = []
    # Warm the construction memo so neither side pays first-build cost.
    for cell in cells:
        run_cell(cell)
    runner.run(spec)
    for _ in range(repeats):
        _, s = _timed(lambda: runner.run(spec))
        _, b = _timed(lambda: [run_cell(cell) for cell in cells])
        disabled_s = min(disabled_s, s)
        bare_s = min(bare_s, b)
        ratios.append(s / b)

    # Informational: the same serial run with events flowing to disk.
    tmp = tempfile.mkdtemp(prefix="repro-obs-bench-")
    saved = os.environ.get(obs.OBS_ENV)
    try:
        os.environ[obs.OBS_ENV] = f"dir={tmp},sample=1"
        _, enabled_s = _timed(lambda: runner.run(spec), repeats=2)
    finally:
        if saved is None:
            os.environ.pop(obs.OBS_ENV, None)
        else:
            os.environ[obs.OBS_ENV] = saved
        shutil.rmtree(tmp, ignore_errors=True)

    return {
        "grid": {"cells": len(cells), "repeats": repeats},
        "disabled_s": disabled_s,
        "bare_s": bare_s,
        "enabled_s": enabled_s,
        "round_ratios": ratios,
        "overhead_disabled_vs_seed": disabled_s / bare_s,
        "overhead_enabled_vs_disabled": enabled_s / disabled_s,
        "max_overhead": OBS_OVERHEAD_MAX,
    }


def run_obs_overhead_benchmark(seed: int = 1) -> dict:
    """The ``obs_overhead`` section of ``BENCH_flitsim.json``."""
    return bench_obs_overhead(seed=seed)


def bench_ts_overhead(repeats: int = 3, seed: int = 1) -> dict:
    """Time-series tax with windows *off*: merged feature vs seed spine.

    Windowed collection is opt-in (``ExperimentSpec.window=0`` by
    default), so the merged code may not slow down the fleet that never
    asked for it.  Per round this times a ``run_cell`` loop over
    non-windowed cells — the execution path every existing sweep takes
    after the merge, window checks and all — against the seed execution
    spine: a direct ``make_simulator(...).run(...)`` loop on the same
    points with none of the cell plumbing.  Rounds interleave the two
    sides (the :func:`bench_obs_overhead` methodology) and the gated
    number is the best-of-rounds ratio, checked at
    :data:`TS_OVERHEAD_MAX` by ``tools/bench.py --check``.  A
    windowed-*on* ratio (``window=64`` on the same grid) is recorded for
    information but never gated — collecting windows costs what it
    costs.
    """
    from repro.experiments.runner import (
        _build_cell_objects,
        auto_sim_config,
        run_cell,
    )
    from repro.experiments.spec import ExperimentSpec

    spec = ExperimentSpec.grid(
        ["polarfly:conc=2,q=7"], ["ugal-pf"], ["uniform"],
        loads=(0.2, 0.4, 0.6, 0.8),
        warmup=150, measure=400, drain=100, root_seed=seed,
    )
    cells = spec.cells()
    win_cells = spec.with_(window=64).cells()

    def seed_spine():
        for cell in cells:
            topo, policy, traffic = _build_cell_objects(cell)
            config = auto_sim_config(
                policy,
                port_budget=cell["port_budget"],
                num_vcs=cell["num_vcs"],
                vc_depth=cell["vc_depth"],
                packet_size=cell["packet_size"],
            )
            sim = make_simulator(
                topo, policy, traffic, cell["load"], config=config,
                seed=cell["seed"],
            )
            sim.run(
                warmup=cell["warmup"], measure=cell["measure"],
                drain=cell["drain"],
            )

    # Warm the construction memo so neither side pays first-build cost.
    run_cell(cells[0])
    seed_spine()
    off_s = bare_s = float("inf")
    ratios = []
    for _ in range(repeats):
        _, s = _timed(lambda: [run_cell(cell) for cell in cells])
        _, b = _timed(seed_spine)
        off_s = min(off_s, s)
        bare_s = min(bare_s, b)
        ratios.append(s / b)
    _, on_s = _timed(
        lambda: [run_cell(cell) for cell in win_cells], repeats=2
    )
    return {
        "grid": {"cells": len(cells), "repeats": repeats},
        "windows_off_s": off_s,
        "bare_s": bare_s,
        "windows_on_s": on_s,
        "round_ratios": ratios,
        "overhead_off_vs_seed": off_s / bare_s,
        "overhead_on_vs_off": on_s / off_s,
        "max_overhead": TS_OVERHEAD_MAX,
    }


def run_ts_overhead_benchmark(seed: int = 1) -> dict:
    """The ``ts_overhead`` section of ``BENCH_flitsim.json``."""
    return bench_ts_overhead(seed=seed)


def run_workload_benchmarks(
    cells: "dict | None" = None,
    max_cycles: int = 100_000,
    seed: int = 1,
    engines=CLOSED_LOOP_ENGINES,
) -> dict:
    """The ``workloads`` section of ``BENCH_flitsim.json``."""
    cells = WORKLOAD_CELLS if cells is None else cells
    return {
        name: bench_workload_cell(
            cell, max_cycles=max_cycles, seed=seed, engines=engines
        )
        for name, cell in cells.items()
    }


def _timed(fn, *args, repeats: int = 1):
    """(result, best wall seconds) of calling ``fn`` ``repeats`` times."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


def _reset_peak_rss() -> bool:
    """Reset the process VmHWM high-water mark; False when unsupported."""
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


def _peak_rss_kb() -> "int | None":
    """Current VmHWM (peak resident set) in KiB, or None off-Linux."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def measure_construction_memory(spec: str) -> dict:
    """Peak memory of one full construction (topology through fabric).

    Two complementary numbers: the tracemalloc *traced* peak (exact
    Python-side allocation high-water mark, machine-independent) and —
    where ``/proc`` supports resetting ``VmHWM`` — the process peak-RSS
    delta-capable counter, which also sees numpy's buffer reuse.  Run
    *after* the timing pass: tracemalloc taxes every allocation.
    """
    import tracemalloc

    from repro.flitsim.flatcore import FlatFabric
    from repro.routing.tables import RoutingTables

    rss_ok = _reset_peak_rss()
    tracemalloc.start()
    try:
        topo = TOPOLOGIES.create(spec)
        tables = RoutingTables(topo)
        fabric = FlatFabric(topo)
        if tables._path_cache_enabled():
            tables._unique_path_cache()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    entry = {
        "traced_peak_bytes": int(peak),
        "traced_current_bytes": int(current),
        "dist_bytes": int(np.asarray(tables.dist).nbytes),
        "candidate_table_bytes": int(tables._candidate_table().nbytes()),
    }
    rss = _peak_rss_kb() if rss_ok else None
    if rss is not None:
        entry["peak_rss_kb"] = rss
    del topo, tables, fabric
    return entry


def bench_construction_spec(
    spec: str, baseline: bool = True, repeats: int = 1, memory: bool = True
) -> dict:
    """Time the construction path of one topology spec.

    Measures the batched builders — topology construction,
    :class:`RoutingTables` (one fused batched all-sources BFS), the
    compact candidate table, the unique-path cache (when enabled), and
    :class:`FlatFabric` — and, with ``baseline`` (auto-skipped above
    :data:`BASELINE_MAX_ROUTERS` routers), the seed per-source
    equivalents (``bfs_distances_reference`` per source,
    :func:`per_source_candidate_csr` with the dense-CSR
    materialization), recording the speedups.  ``memory`` appends a
    :func:`measure_construction_memory` pass.
    """
    from repro.flitsim.flatcore import FlatFabric
    from repro.routing.tables import RoutingTables, per_source_candidate_csr
    from repro.utils.graph import bfs_distances_reference

    topo, topo_s = _timed(lambda: TOPOLOGIES.create(spec), repeats=repeats)
    tables, tables_s = _timed(lambda: RoutingTables(topo), repeats=repeats)

    def fresh_table():
        # Reset the lazy compact table instead of rebuilding the whole
        # tables object — times the derive-from-dist path (the fault
        # repair path) without re-paying the BFS.
        tables._cands = None
        start = time.perf_counter()
        tables._candidate_table()
        return time.perf_counter() - start

    table_s = min(fresh_table() for _ in range(repeats))
    _, fabric_s = _timed(lambda: FlatFabric(topo), repeats=repeats)

    entry = {
        "spec": spec,
        "num_routers": topo.num_routers,
        "num_links": topo.num_links,
        "topology_s": topo_s,
        "routing_tables": {"batched_s": tables_s},
        "candidate_table": {
            "batched_s": table_s,
            "nbytes": int(tables._candidate_table().nbytes()),
        },
        "fabric_s": fabric_s,
    }
    if tables._path_cache_enabled():
        # The candidate table is already built (fresh_table's last
        # pass), so this times the cache walk alone.
        _, cache_s = _timed(tables._unique_path_cache, repeats=1)
        entry["path_cache_s"] = cache_s
    if baseline and topo.num_routers > BASELINE_MAX_ROUTERS:
        baseline = False
        entry["baseline_skipped"] = (
            f"num_routers > {BASELINE_MAX_ROUTERS}: the per-source Python "
            "BFS loop and dense-CSR oracle are deliberately not run at "
            "sparse-tier sizes"
        )
    if baseline:
        graph = topo.graph

        def per_source_bfs():
            for s in range(graph.n):
                bfs_distances_reference(graph, s)

        # Same best-of-``repeats`` sampling as the batched timings, so
        # the recorded speedups aren't inflated by one noisy baseline.
        _, per_source_s = _timed(per_source_bfs, repeats=repeats)
        rt = entry["routing_tables"]
        rt["per_source_s"] = per_source_s
        rt["speedup_batched_over_per_source"] = per_source_s / tables_s

        def fresh_csr():
            # The dense-CSR oracle comparison: compact table build plus
            # the O(n^2) indptr materialization, matching what the
            # per-source baseline produces.
            tables._cands = None
            start = time.perf_counter()
            tables._candidate_csr()
            return time.perf_counter() - start

        csr_s = min(fresh_csr() for _ in range(repeats))
        _, csr_ps = _timed(
            per_source_candidate_csr, graph, tables.dist, repeats=repeats
        )
        entry["candidate_csr"] = {
            "batched_s": csr_s,
            "per_source_s": csr_ps,
            "speedup_batched_over_per_source": csr_ps / csr_s,
        }
    if memory:
        del tables
        entry["memory"] = measure_construction_memory(spec)
    return entry


def run_construction_benchmarks(
    specs: "dict | None" = None,
    baseline: bool = True,
    repeats: int = 2,
    memory: bool = True,
) -> dict:
    """The ``construction`` section of ``BENCH_flitsim.json``."""
    specs = CONSTRUCTION_SPECS if specs is None else specs
    return {
        name: bench_construction_spec(
            spec, baseline=baseline, repeats=repeats, memory=memory
        )
        for name, spec in specs.items()
    }


def run_scale_benchmarks(
    cells: "dict | None" = None,
    warmup: int = 100,
    measure: int = 300,
    seed: int = 1,
    engines=SCALE_ENGINES,
) -> dict:
    """The ``scale`` section of ``BENCH_flitsim.json``.

    Flat-engine-only open-loop cells on the sparse-tier fabrics (no
    reference engine at these sizes; bit-identity is pinned on the small
    golden suites instead).  Records the kernel-over-numpy speedup per
    cell when a compiler is available.
    """
    cells = SCALE_CELLS if cells is None else cells
    return {
        name: bench_cell(
            cell, warmup=warmup, measure=measure, seed=seed,
            engines=_resolve_engines(engines) or ("flat",),
        )
        for name, cell in cells.items()
    }


def run_benchmarks(
    cells: "dict | None" = None,
    warmup: int = 150,
    measure: int = 400,
    seed: int = 1,
    engines=("reference", "flat"),
    construction: bool = True,
    workloads: bool = True,
    faults: bool = True,
    scale: bool = True,
    sweep_resilience: bool = True,
    obs_overhead: bool = True,
    ts_overhead: bool = True,
) -> dict:
    """Run every cell and assemble the ``BENCH_flitsim.json`` document."""
    cells = CANONICAL_CELLS if cells is None else cells
    doc = {
        "benchmark": "flitsim-engine",
        "machine": machine_info(),
        "warmup": warmup,
        "measure": measure,
        "seed": seed,
        "cells": {},
    }
    for name, cell in cells.items():
        doc["cells"][name] = bench_cell(
            cell, warmup=warmup, measure=measure, seed=seed, engines=engines
        )
    if workloads:
        # Closed-loop/fault sections time three engines (reference,
        # flat-numpy, flat) so kernel-vs-numpy is recorded per cell.
        doc["workloads"] = run_workload_benchmarks(seed=seed)
    if faults:
        doc["faults"] = run_fault_benchmarks(
            warmup=warmup, measure=measure, seed=seed
        )
    if construction:
        doc["construction"] = run_construction_benchmarks()
    if scale:
        doc["scale"] = run_scale_benchmarks(seed=seed)
    if sweep_resilience:
        doc["sweep_resilience"] = run_sweep_resilience_benchmark(seed=seed)
    if obs_overhead:
        doc["obs_overhead"] = run_obs_overhead_benchmark(seed=seed)
    if ts_overhead:
        doc["ts_overhead"] = run_ts_overhead_benchmark(seed=seed)
    return doc


def write_bench_json(doc: dict, path="BENCH_flitsim.json"):
    """Atomically write the benchmark document."""
    from repro.utils.export import write_json_artifact

    return write_json_artifact(path, doc)
