"""Engine performance harness: the repo's perf-baseline trajectory.

Times both simulation engines (the struct-of-arrays flat core and the
dict-of-deques reference) on a small set of canonical cells and writes
``BENCH_flitsim.json`` — cycles/sec per engine, wall times, speedups,
and machine info — so every future hot-path change is measured against
a recorded baseline instead of asserted.

Used by ``benchmarks/perf_smoke.py`` (pytest-free script), ``tools/bench.py``
(CLI with a ``--check`` gate for CI), and importable directly.
"""

from __future__ import annotations

import platform
import time

import numpy as np

from repro.experiments.registry import POLICIES, TOPOLOGIES, TRAFFICS
from repro.experiments.runner import auto_sim_config
from repro.flitsim.engine import make_simulator

__all__ = [
    "CANONICAL_CELLS",
    "HEADLINE_CELL",
    "bench_cell",
    "run_benchmarks",
    "machine_info",
    "write_bench_json",
]

#: The canonical perf cells.  ``fig09_pf_ugalpf_uniform`` is the
#: headline: the Figure-9 PolarFly q=7 UGAL_PF configuration whose
#: sweeps bottleneck every adaptive-routing figure.
CANONICAL_CELLS = {
    "fig09_pf_ugalpf_uniform": dict(
        topology="polarfly:conc=2,q=7", policy="ugal-pf", traffic="uniform",
        load=0.5,
    ),
    "fig09_pf_ugalpf_perm1hop": dict(
        topology="polarfly:conc=2,q=7", policy="ugal-pf",
        traffic="perm1hop:seed=1", load=0.6,
    ),
    "df_min_adversarial": dict(
        topology="dragonfly:a=4,h=2,p=2", policy="min", traffic="tornado",
        load=0.7,
    ),
}

HEADLINE_CELL = "fig09_pf_ugalpf_uniform"


def machine_info() -> dict:
    """Environment fingerprint recorded next to every measurement."""
    from repro.flitsim._kernel import load_kernel

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "processor": platform.processor() or platform.machine(),
        "flat_kernel": load_kernel() is not None,
    }


def bench_cell(
    cell: dict,
    warmup: int = 150,
    measure: int = 400,
    seed: int = 1,
    engines=("reference", "flat"),
) -> dict:
    """Time ``warmup + measure`` simulated cycles per engine on one cell.

    Objects are built once per engine run (fresh simulator each time,
    same seed — the engines are result-equivalent, so both time the
    exact same simulated work).  Returns per-engine wall/cycles-per-sec
    plus the flat-over-reference speedup.
    """
    from repro.routing.tables import RoutingTables

    topo = TOPOLOGIES.create(cell["topology"])
    tables = RoutingTables(topo)
    policy = POLICIES.create(cell["policy"], tables)
    traffic = TRAFFICS.create(cell["traffic"], topo)
    config = auto_sim_config(policy)
    cycles = warmup + measure
    result: dict = {"cell": dict(cell), "cycles": cycles, "engines": {}}
    for engine in engines:
        sim = make_simulator(
            topo, policy, traffic, cell["load"], config=config, seed=seed,
            engine=engine,
        )
        start = time.perf_counter()
        for _ in range(cycles):
            sim.step()
        wall = time.perf_counter() - start
        result["engines"][engine] = {
            "wall_s": wall,
            "cycles_per_sec": cycles / wall,
        }
    eng = result["engines"]
    if "reference" in eng and "flat" in eng:
        result["speedup_flat_over_reference"] = (
            eng["flat"]["cycles_per_sec"] / eng["reference"]["cycles_per_sec"]
        )
    return result


def run_benchmarks(
    cells: "dict | None" = None,
    warmup: int = 150,
    measure: int = 400,
    seed: int = 1,
    engines=("reference", "flat"),
) -> dict:
    """Run every cell and assemble the ``BENCH_flitsim.json`` document."""
    cells = CANONICAL_CELLS if cells is None else cells
    doc = {
        "benchmark": "flitsim-engine",
        "machine": machine_info(),
        "warmup": warmup,
        "measure": measure,
        "seed": seed,
        "cells": {},
    }
    for name, cell in cells.items():
        doc["cells"][name] = bench_cell(
            cell, warmup=warmup, measure=measure, seed=seed, engines=engines
        )
    return doc


def write_bench_json(doc: dict, path="BENCH_flitsim.json"):
    """Atomically write the benchmark document."""
    from repro.utils.export import write_json_artifact

    return write_json_artifact(path, doc)
