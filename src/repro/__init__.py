"""repro — a full reproduction of *PolarFly: A Cost-Effective and Flexible
Low-Diameter Topology* (Lakhotia et al., SC 2022).

Subpackages
-----------
``repro.fields``
    Finite fields GF(q) (table-driven, vectorized) plus prime machinery.
``repro.core``
    The contribution: the ER_q PolarFly topology, Algorithm-1 layout,
    incremental expansion, and triangle/block-design structure.
``repro.topologies``
    Baselines: Slim Fly, Dragonfly, fat tree, Jellyfish, HyperX, Moore
    graphs.
``repro.routing``
    Minimal / Valiant / Compact Valiant / UGAL / UGAL_PF / fat-tree NCA.
``repro.flitsim``
    Cycle-accurate flit-level simulator with traffic patterns and load
    sweeps (the BookSim substitute).
``repro.workloads``
    Closed-loop workload engine: message DAGs, collective generators
    (all-reduce, all-to-all, halo, incast), trace replay, and
    completion-time metrics.
``repro.analysis``
    Bisection, resilience, path diversity, cost model, feasibility.

Quickstart
----------
>>> from repro import PolarFly
>>> pf = PolarFly(31)          # 993 routers, radix 32, diameter 2
>>> pf.diameter()
2
"""

from repro.core import (
    PolarFly,
    ClusterLayout,
    ExpandedPolarFly,
    replicate_quadrics,
    replicate_nonquadric_clusters,
    polarfly_order,
    polarfly_radix,
    feasible_q_for_radix,
)
from repro.topologies import (
    Topology,
    SlimFly,
    Dragonfly,
    balanced_dragonfly,
    FatTree,
    Jellyfish,
    HyperX,
    PetersenTopology,
    HoffmanSingletonTopology,
    moore_bound,
    moore_bound_diameter2,
)
from repro.routing import (
    RoutingTables,
    MinimalRouting,
    ValiantRouting,
    CompactValiantRouting,
    UGALRouting,
    UGALGRouting,
    UGALPFRouting,
    FatTreeNCARouting,
    AlgebraicMinimalRouting,
    degraded_topology,
    reroute_after_failures,
)
from repro.flitsim import (
    FlatSimulator,
    NetworkSimulator,
    SimConfig,
    SimResult,
    make_simulator,
    UniformTraffic,
    TornadoTraffic,
    RandomPermutationTraffic,
    OneHopPermutationTraffic,
    TwoHopPermutationTraffic,
    run_load_sweep,
    LoadSweep,
)
from repro.fields import GF
from repro.experiments import (
    Combo,
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    TOPOLOGIES,
    POLICIES,
    TRAFFICS,
    WORKLOADS,
    FAULTS,
)
from repro.workloads import Message, Workload, WorkloadResult
from repro.faults import FaultEvent, FaultTimeline, FaultResult, prepare_fault_policy

__version__ = "1.1.0"

__all__ = [
    "PolarFly",
    "ClusterLayout",
    "ExpandedPolarFly",
    "replicate_quadrics",
    "replicate_nonquadric_clusters",
    "polarfly_order",
    "polarfly_radix",
    "feasible_q_for_radix",
    "Topology",
    "SlimFly",
    "Dragonfly",
    "balanced_dragonfly",
    "FatTree",
    "Jellyfish",
    "HyperX",
    "PetersenTopology",
    "HoffmanSingletonTopology",
    "moore_bound",
    "moore_bound_diameter2",
    "RoutingTables",
    "MinimalRouting",
    "ValiantRouting",
    "CompactValiantRouting",
    "UGALRouting",
    "UGALGRouting",
    "UGALPFRouting",
    "FatTreeNCARouting",
    "AlgebraicMinimalRouting",
    "degraded_topology",
    "reroute_after_failures",
    "FlatSimulator",
    "NetworkSimulator",
    "make_simulator",
    "SimConfig",
    "SimResult",
    "UniformTraffic",
    "TornadoTraffic",
    "RandomPermutationTraffic",
    "OneHopPermutationTraffic",
    "TwoHopPermutationTraffic",
    "run_load_sweep",
    "LoadSweep",
    "GF",
    "Combo",
    "ExperimentSpec",
    "ResultCache",
    "SweepRunner",
    "TOPOLOGIES",
    "POLICIES",
    "TRAFFICS",
    "WORKLOADS",
    "FAULTS",
    "Message",
    "Workload",
    "WorkloadResult",
    "FaultEvent",
    "FaultTimeline",
    "FaultResult",
    "prepare_fault_policy",
    "__version__",
]
