"""Additional standard traffic patterns (BookSim's classic suite).

Beyond the paper's patterns, interconnect studies routinely exercise
bit-complement, shift, and hotspot traffic; they are included so the
harness can run the full classic suite on any topology.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import TRAFFICS
from repro.flitsim.traffic import PermutationTraffic, TrafficPattern
from repro.topologies.base import Topology

__all__ = ["BitComplementTraffic", "ShiftTraffic", "HotspotTraffic"]


class BitComplementTraffic(PermutationTraffic):
    """Terminal ``i`` sends to terminal ``n-1-i`` (index complement).

    The classic "bit complement" generalized to arbitrary terminal counts
    (for powers of two it coincides with complementing the index bits).
    Terminals mapping to themselves (the middle of an odd count) are
    shifted by one to keep the mapping a derangement-like permutation.
    """

    name = "bitcomp"

    def __init__(self, topo: Topology):
        terminals = np.flatnonzero(topo.concentration > 0)
        if terminals.size == 0:
            terminals = np.arange(topo.num_routers)
        n = terminals.size
        idx = n - 1 - np.arange(n)
        fixed = np.flatnonzero(idx == np.arange(n))
        if fixed.size:  # odd n: swap the fixed point with its neighbor
            i = int(fixed[0])
            j = (i + 1) % n
            idx[[i, j]] = idx[[j, i]]
        super().__init__(topo, terminals[idx])


class ShiftTraffic(PermutationTraffic):
    """Terminal ``i`` sends to terminal ``i + offset mod n``."""

    name = "shift"

    def __init__(self, topo: Topology, offset: int = 1):
        terminals = np.flatnonzero(topo.concentration > 0)
        if terminals.size == 0:
            terminals = np.arange(topo.num_routers)
        n = terminals.size
        if offset % n == 0:
            raise ValueError("shift offset must be nonzero modulo terminals")
        self.offset = int(offset)
        super().__init__(topo, terminals[(np.arange(n) + offset) % n])


class HotspotTraffic(TrafficPattern):
    """A fraction of packets target a fixed hot router; rest is uniform.

    Models incast-style congestion: ``fraction`` of traffic converges on
    ``hotspot`` (default: terminal 0).
    """

    name = "hotspot"

    def __init__(self, topo: Topology, fraction: float = 0.2, hotspot: "int | None" = None):
        super().__init__(topo)
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = float(fraction)
        self.hotspot = int(self.terminals[0] if hotspot is None else hotspot)
        if self.hotspot not in set(self.terminals.tolist()):
            raise ValueError("hotspot must be a terminal router")

    def dest_router(self, src_router: int, rng) -> int:
        if src_router != self.hotspot and rng.random() < self.fraction:
            return self.hotspot
        t = self.terminals
        d = int(rng.integers(t.size - 1))
        pos = self._pos[src_router]
        return int(t[d if d < pos else d + 1])

    def dest_routers(self, src_routers, rng) -> np.ndarray:
        # Batched form draws both vectors unconditionally (the uniform
        # draw is discarded for packets that hit the hotspot).
        srcs = np.asarray(src_routers, dtype=np.int64)
        t = self.terminals
        hot = rng.random(srcs.size) < self.fraction
        d = rng.integers(t.size - 1, size=srcs.size)
        pos = self._pos_arr[srcs]
        uniform = t[np.where(d < pos, d, d + 1)]
        return np.where(hot & (srcs != self.hotspot), self.hotspot, uniform)


# ----------------------------------------------------------------------
# Spec registrations
# ----------------------------------------------------------------------
@TRAFFICS.register("bitcomp")
def _bitcomp_from_spec(topo) -> BitComplementTraffic:
    return BitComplementTraffic(topo)


@TRAFFICS.register("shift", example="shift:offset=1")
def _shift_from_spec(topo, offset: int = 1) -> ShiftTraffic:
    return ShiftTraffic(topo, offset=offset)


@TRAFFICS.register("hotspot", example="hotspot:fraction=0.2")
def _hotspot_from_spec(topo, fraction: float = 0.2, hotspot: "int | None" = None) -> HotspotTraffic:
    return HotspotTraffic(topo, fraction=fraction, hotspot=hotspot)
