"""Optional C cycle kernel for the struct-of-arrays engine.

The flat engine's per-cycle work (feed, arbitration, credit flow,
forwarding) is a few hundred tiny array operations; at small network
sizes the numpy dispatch overhead dominates.  This module compiles the
same cycle protocol (see :mod:`repro.flitsim.engine`) as one C pass over
the very same flat int64 arrays, via :mod:`cffi` — no new dependencies,
no extension to build at install time.

The kernel is **universal**: it executes the full cycle protocol in
every mode, not just open loop.

* *Workload mode* needs no extra C state — ``kinject`` appends packet
  flit chains to arbitrary (possibly repeated) endpoint FIFOs, and the
  per-cycle **completion ring buffer** ``tail_pids`` (filled by
  ``kroute`` in grant order, the latency-recording order) carries every
  ejected tail back to Python, where the workload eligibility state
  machine maps packet slots to message ids.
* *Fault mode* sets ``fault_mode`` and binds the death mask
  (``dead_row``), per-packet outstanding-flit counters (``pkt_live``,
  replacing tail-order slot recycling, since drops retire packets out
  of order), the damaged-packet flags, and a second per-cycle ring
  buffer ``drop_tail_pids`` plus the ``fcnt`` counters for exact
  drop/credit reporting: head flits whose first hop is dead drop in
  endpoint order without consuming the injection credit, and granted
  flits whose next output is dead evaporate on the wire in grant order
  without consuming the upstream credit — bit-identical to the numpy
  path and the reference engine.  Epoch-boundary table swaps and
  event-time queue drops stay in Python (they are rare); they mutate
  the very arrays the kernel is bound to, so no re-binding is needed.

* Loading is best-effort: no cffi, no C compiler, or any compile error
  yields ``None`` (with a one-line stderr diagnostic) and
  :class:`~repro.flitsim.flatcore.FlatSimulator` falls back to its
  pure-numpy path (bit-identical results either way — the golden
  equivalence tests run both).
* ``REPRO_FLAT_KERNEL=0`` disables the kernel explicitly; the setting
  is re-read on every :func:`load_kernel` call, so tests and benchmarks
  can toggle the cycle path per construction without reloading.
* Compiled modules are cached under ``$REPRO_KERNEL_CACHE`` (default
  ``~/.cache/repro-flitsim``) keyed by a hash of the C source, so the
  compiler runs once per source revision, not once per process — test
  runs and CI import the cached ``.so`` instead of recompiling.

The C code mirrors the *reference* engine's decision loop (routers
ascending, link outputs then ejection, circular round-robin scan,
decide-all-then-apply) — the simplest shape to audit against
``reference.py`` side by side.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib.util
import os
import shutil
import sys
import tempfile

__all__ = ["load_kernel", "kernel_enabled", "numpy_fallback"]

_STRUCT = """
typedef struct {
    int64_t n, E, I, O, OE, Dp, V, ps, hop_latency, stride;
    int64_t fault_mode;
    int64_t *deg, *ports, *conc;
    int64_t *nbr;
    int16_t *rev;
    int64_t *adj_indptr, *adj_indices;
    int64_t *ep_router, *ep_inport, *ep_off;
    int64_t *voq_head, *voq_tail, *voq_count, *backlog, *rr, *credits;
    int64_t *pool_pid, *pool_seq, *pool_hop, *pool_ready, *pool_next;
    int64_t *src_head, *src_tail, *ep_credit;
    int64_t *pkt_len, *pkt_dst;
    int64_t *route_buf;
    int64_t *pkt_free, *pkt_free_top;
    int64_t *free_stack, *free_top;
    int64_t *g_vq, *g_f, *tail_pids;
    /* Fault mode only (fault_mode == 0 leaves these NULL): the
     * (router, out) death mask, outstanding-flit counters and damaged
     * flags per packet slot, the tail-drop ring buffer (drop order),
     * and fcnt = {dropped flits, tail drops} for the current cycle. */
    int8_t *dead_row;
    int64_t *pkt_live;
    int8_t *pkt_damaged;
    int64_t *drop_tail_pids;
    int64_t *fcnt;
    /* Per-link flit counters (n * Dp, indexed r * Dp + out): NULL
     * unless link telemetry is attached AND the measure window is open
     * — the host rebinds it every cycle, so the disabled path costs one
     * predictable branch per forwarded flit. */
    int64_t *link_flits;
    /* Windowed per-link counters (same n * Dp layout): NULL unless a
     * time-series collector is attached; the host flushes and zeroes
     * the array at each window boundary. */
    int64_t *link_flits_win;
} SimState;
"""

_CDEF = _STRUCT + """
void kinject(SimState *st, int64_t now, int64_t k,
             const int64_t *slots, const int64_t *winners);
void kfeed(SimState *st, int64_t now);
int64_t kroute(SimState *st, int64_t now, int64_t *n_ejected);
"""

_C_SOURCE = """
#include <stdint.h>
""" + _STRUCT + """

/* Account and release one dropped flit row (fault mode): bump the
 * flit-drop counter, flag the packet damaged, record a lost tail in the
 * ring buffer (array order = drop order, which feeds the retransmit
 * queue), and recycle the pool row — plus the packet slot once its
 * outstanding-flit count hits zero. */
static void drop_flit(SimState *st, int64_t f)
{
    int64_t pid = st->pool_pid[f];
    st->fcnt[0] += 1;
    st->pkt_damaged[pid] = 1;
    if (st->pool_seq[f] == st->ps - 1)
        st->drop_tail_pids[st->fcnt[1]++] = pid;
    st->free_stack[(*st->free_top)++] = f;
    if (--st->pkt_live[pid] == 0)
        st->pkt_free[(*st->pkt_free_top)++] = pid;
}

/* Output port of router r toward adjacent vertex v: the offset of v in
 * r's sorted CSR neighbor slice (binary search over adj_indices).  The
 * CSR port map replaces the former dense n*n port matrix; callers only
 * pass genuinely adjacent (r, v) pairs. */
static int64_t port_of(const SimState *st, int64_t r, int64_t v)
{
    int64_t lo = st->adj_indptr[r], hi = st->adj_indptr[r + 1];
    while (lo < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        if (st->adj_indices[mid] < v)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo - st->adj_indptr[r];
}

/* Append flit f to VOQ vq (row = router*O + out for the backlog). */
static void enqueue(SimState *st, int64_t vq, int64_t f, int64_t row)
{
    st->pool_next[f] = -1;
    if (st->voq_count[vq] == 0)
        st->voq_head[vq] = f;
    else
        st->pool_next[st->voq_tail[vq]] = f;
    st->voq_tail[vq] = f;
    st->voq_count[vq] += 1;
    st->backlog[row] += 1;
}

/* Protocol step 1 plumbing: pool rows + FIFO chains for k new packets
 * (RNG, routing, and the packet table are written by the caller).
 * winners[j] is packet j's endpoint; repeats are fine — sequential
 * appends keep per-endpoint FIFO order, which is all the protocol
 * observes — so the same call serves Bernoulli winners (distinct) and
 * workload batches (several packets may land on one endpoint). */
void kinject(SimState *st, int64_t now, int64_t k,
             const int64_t *slots, const int64_t *winners)
{
    int64_t ps = st->ps;
    for (int64_t j = 0; j < k; j++) {
        int64_t e = winners[j];
        int64_t pid = slots[j];
        int64_t first = -1, prev = -1;
        for (int64_t s = 0; s < ps; s++) {
            int64_t f = st->free_stack[--(*st->free_top)];
            st->pool_pid[f] = pid;
            st->pool_seq[f] = s;
            st->pool_hop[f] = 0;
            st->pool_ready[f] = now;
            st->pool_next[f] = -1;
            if (prev >= 0)
                st->pool_next[prev] = f;
            else
                first = f;
            prev = f;
        }
        if (st->src_tail[e] >= 0)
            st->pool_next[st->src_tail[e]] = first;
        else
            st->src_head[e] = first;
        st->src_tail[e] = prev;
    }
}

/* Protocol step 2: one flit per endpoint from FIFO to injection VOQ.
 * Fault mode: a head flit whose first-hop output is dead drops before
 * entering the buffer (endpoint-ascending drop order), spending the
 * endpoint's one-flit feed slot without consuming the credit. */
void kfeed(SimState *st, int64_t now)
{
    (void)now;
    int64_t I = st->I, O = st->O, OE = st->OE;
    int64_t fm = st->fault_mode;
    for (int64_t e = 0; e < st->E; e++) {
        int64_t f = st->src_head[e];
        if (f < 0)
            continue;
        int64_t r = st->ep_router[e];
        int64_t pid = st->pool_pid[f];
        int64_t out;
        if (st->pkt_len[pid] == 1)
            out = OE;
        else
            out = port_of(st, r, st->route_buf[pid * st->stride + 1]);
        if (fm && st->dead_row[r * O + out]) {
            st->src_head[e] = st->pool_next[f];
            if (st->src_head[e] < 0)
                st->src_tail[e] = -1;
            drop_flit(st, f);
            continue;
        }
        if (st->ep_credit[e] <= 0)
            continue;
        st->src_head[e] = st->pool_next[f];
        if (st->src_head[e] < 0)
            st->src_tail[e] = -1;
        st->ep_credit[e] -= 1;
        enqueue(st, (r * I + st->ep_inport[e]) * O + out, f, r * O + out);
    }
}

/* Protocol step 3: decide every grant from current state, then apply.
 * Returns the number of completed (tail-flit) packets written to
 * st->tail_pids; *n_ejected counts every ejected flit. */
int64_t kroute(SimState *st, int64_t now, int64_t *n_ejected)
{
    int64_t n = st->n, I = st->I, O = st->O, OE = st->OE;
    int64_t Dp = st->Dp, V = st->V;
    int64_t ng = 0;

    /* Decide: routers ascending, link outputs ascending, eject last;
     * per output a circular scan of input ports from the rr pointer. */
    for (int64_t r = 0; r < n; r++) {
        int64_t d = st->deg[r];
        int64_t P = st->ports[r];
        for (int64_t oi = 0; oi <= d; oi++) {
            int64_t out = (oi == d) ? OE : oi;
            int64_t row = r * O + out;
            int64_t limit = 1;
            if (out == OE && st->conc[r] > 1)
                limit = st->conc[r];
            int64_t ptr = st->rr[row];
            int64_t granted = 0, last = -1;
            for (int64_t s = 0; s < P; s++) {
                int64_t in = ptr + s;
                if (in >= P)
                    in -= P;
                int64_t vq = (r * I + in) * O + out;
                if (st->voq_count[vq] <= 0)
                    continue;
                int64_t f = st->voq_head[vq];
                if (st->pool_ready[f] > now)
                    continue;
                if (out != OE) {
                    int64_t dvc = st->pool_hop[f];
                    if (dvc > V - 1)
                        dvc = V - 1;
                    if (st->credits[(r * Dp + out) * V + dvc] <= 0)
                        continue;
                }
                st->g_vq[ng] = vq;
                st->g_f[ng] = f;
                ng++;
                last = in;
                if (++granted >= limit)
                    break;
            }
            if (last >= 0)
                st->rr[row] = (last + 1) % P;
        }
    }

    /* Apply. */
    int64_t n_tail = 0, n_ej = 0;
    int64_t fm = st->fault_mode;
    for (int64_t i = 0; i < ng; i++) {
        int64_t vq = st->g_vq[i], f = st->g_f[i];
        int64_t out = vq % O;
        int64_t t = vq / O;
        int64_t in = t % I;
        int64_t r = t / I;
        int64_t nx = st->pool_next[f];
        st->voq_head[vq] = nx;
        st->voq_count[vq] -= 1;
        if (nx < 0)
            st->voq_tail[vq] = -1;
        st->backlog[r * O + out] -= 1;

        int64_t pid = st->pool_pid[f];
        int64_t hop = st->pool_hop[f];
        int64_t off = pid * st->stride;
        if (in < st->deg[r]) {
            int64_t up = st->route_buf[off + hop - 1];
            int64_t upp = port_of(st, up, r);
            int64_t vc = hop - 1;
            if (vc > V - 1)
                vc = V - 1;
            st->credits[(up * Dp + upp) * V + vc] += 1;
        } else {
            st->ep_credit[st->ep_off[r] + in - st->deg[r]] += 1;
        }

        if (out == OE) {
            n_ej++;
            if (st->pool_seq[f] == st->ps - 1)
                st->tail_pids[n_tail++] = pid;
            st->free_stack[(*st->free_top)++] = f;
            /* Slot recycling: tail order when nothing can drop; by
             * outstanding-flit count under faults (drops retire
             * packets out of tail order).  The caller reads pkt_* for
             * completed pids before any slot can be reallocated (next
             * injection). */
            if (fm) {
                if (--st->pkt_live[pid] == 0)
                    st->pkt_free[(*st->pkt_free_top)++] = pid;
            } else if (st->pool_seq[f] == st->ps - 1) {
                st->pkt_free[(*st->pkt_free_top)++] = pid;
            }
        } else {
            int64_t nxt = st->nbr[r * Dp + out];
            int64_t in2 = st->rev[r * Dp + out];
            int64_t out2;
            /* Telemetry counts at grant time, before the fault doom
             * check below — the reference hook's accounting point. */
            if (st->link_flits)
                st->link_flits[r * Dp + out] += 1;
            if (st->link_flits_win)
                st->link_flits_win[r * Dp + out] += 1;
            if (nxt == st->pkt_dst[pid])
                out2 = OE;
            else
                out2 = port_of(st, nxt, st->route_buf[off + hop + 2]);
            if (fm && st->dead_row[nxt * O + out2]) {
                /* Dead output at the next router: the flit evaporates
                 * on the wire, in grant order, and the credit toward
                 * (r, out) is never consumed. */
                drop_flit(st, f);
                continue;
            }
            int64_t dvc = hop;
            if (dvc > V - 1)
                dvc = V - 1;
            st->credits[(r * Dp + out) * V + dvc] -= 1;
            st->pool_hop[f] = hop + 1;
            st->pool_ready[f] = now + st->hop_latency;
            enqueue(st, (nxt * I + in2) * O + out2, f, nxt * O + out2);
        }
    }
    *n_ejected = n_ej;
    return n_tail;
}
"""

_ENV = "REPRO_FLAT_KERNEL"
_CACHE_ENV = "REPRO_KERNEL_CACHE"

_cached = False
_module = None
_diagnosed: set = set()


def kernel_enabled() -> bool:
    """Whether the environment allows using the C kernel."""
    return os.environ.get(_ENV, "1") not in ("0", "off", "no")


def _diagnose(reason: str) -> None:
    """One-line stderr note the first time a fallback cause is hit.

    Keyed by reason so an explicit ``REPRO_FLAT_KERNEL=0`` and a missing
    compiler each announce themselves exactly once per process — the
    numpy path is bit-identical, but silently losing ~an order of
    magnitude of speed is worth a line.
    """
    if reason not in _diagnosed:
        _diagnosed.add(reason)
        print(
            f"repro.flitsim: C cycle kernel unavailable ({reason}); "
            "using the numpy cycle path",
            file=sys.stderr,
        )


@contextlib.contextmanager
def numpy_fallback():
    """Force the numpy cycle path for simulators built inside the block.

    Sets ``REPRO_FLAT_KERNEL=0`` for the duration; :func:`load_kernel`
    re-reads the toggle on every call, so the compiled module stays
    cached and simulators built outside the block are unaffected.
    """
    old = os.environ.get(_ENV)
    os.environ[_ENV] = "0"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(_ENV, None)
        else:
            os.environ[_ENV] = old


def _cache_dir() -> str:
    return os.environ.get(_CACHE_ENV) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-flitsim"
    )


def _find_built(cache: str, name: str) -> "str | None":
    if not os.path.isdir(cache):
        return None
    for entry in os.listdir(cache):
        if entry.startswith(name) and entry.endswith((".so", ".pyd", ".dylib")):
            return os.path.join(cache, entry)
    return None


def _build(cache: str, name: str) -> "str | None":
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    ffi.set_source(name, _C_SOURCE, extra_compile_args=["-O2"])
    os.makedirs(cache, exist_ok=True)
    # Build in a private directory, then move into the shared cache —
    # concurrent workers may race to compile the same source hash.
    with tempfile.TemporaryDirectory(dir=cache) as tmp:
        built = ffi.compile(tmpdir=tmp)
        target = os.path.join(cache, os.path.basename(built))
        if not os.path.exists(target):
            shutil.move(built, target)
        return target


def load_kernel():
    """The compiled kernel module (``.ffi``/``.lib``), or ``None``.

    ``REPRO_FLAT_KERNEL`` is re-read on every call (so the cycle path
    can be toggled per simulator construction — see
    :func:`numpy_fallback`); the build itself is attempted once per
    process and memoized.  Failures of any kind (no cffi, no compiler)
    degrade to ``None`` with a one-line diagnostic — the numpy path is
    always available and bit-identical.
    """
    global _cached, _module
    if not kernel_enabled():
        _diagnose(f"disabled via {_ENV}={os.environ.get(_ENV)}")
        return None
    if _cached:
        return _module
    _cached = True
    try:
        digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
        name = f"_repro_flit_kernel_{digest}"
        cache = _cache_dir()
        path = _find_built(cache, name)
        if path is None:
            path = _build(cache, name)
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
        _module = module
    except ImportError:
        _module = None
        _diagnose("cffi not installed")
    except Exception as exc:
        _module = None
        _diagnose(f"build failed: {type(exc).__name__}: {exc}")
    return _module
