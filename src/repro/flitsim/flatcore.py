"""Struct-of-arrays flit engine: the production simulator core.

Implements the cycle protocol of :mod:`repro.flitsim.engine` with flat
numpy state instead of per-flit Python objects, so a cycle is a handful
of vectorized array passes rather than an interpreter loop over every
queued flit:

* **Flit pool** — flits are rows of preallocated int arrays (packet id,
  flit sequence number, hop index, ready cycle, next-pointer).  A free
  list recycles rows; queues are intrusive linked lists through the
  ``next`` column, so enqueue/dequeue never allocates.
* **Routes** — selected once per packet and stored in a flattened route
  buffer with per-packet offsets; per-flit state is just the hop index.
* **VOQs** — head/tail/count arrays over a dense
  ``(router, in_port, out_port)`` index (ejection is the last output
  column), giving O(1) enqueue, dequeue, and occupancy checks.
* **Credits** — one ``(router, out_port, vc)`` int array; injection
  credits one array over endpoints.
* **Arbitration** — per (router, output) round-robin pointers; each
  cycle the eligible VOQ heads are scored by circular distance from the
  pointer and winners fall out of one ``argmin``/``argsort`` per cycle.
* **Injection** — one Bernoulli draw per cycle across all endpoints and
  one batched destination draw (``TrafficPattern.dest_routers``), then
  the policy's batched ``select_routes``.
* **Congestion view** — ``output_occupancy`` is an O(1) read of the
  incrementally maintained per-output backlog counters plus credit debt.

The topology-dependent port geometry (a CSR port map — O(E), not the
seed's dense O(N^2) matrix) is memoized per topology object in
:func:`fabric_for`, so sweep workers that simulate many cells on one
topology (the runner's per-process topology memo keeps the object alive)
pay its construction once.

Results are bit-identical to :class:`repro.flitsim.reference.NetworkSimulator`
for the same seed — pinned by ``tests/test_flitsim_equivalence.py``.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.flitsim._kernel import load_kernel
from repro.flitsim.engine import (
    SimConfig,
    SimResult,
    SimulatorCore,
    make_fault_state,
    make_workload_state,
    validate_sim_args,
)
from repro.flitsim.traffic import TrafficPattern
from repro.routing.policies import RoutingPolicy, routes_as_matrix
from repro.topologies.base import Topology
from repro.utils.rng import make_rng

__all__ = ["FlatFabric", "FlatSimulator", "fabric_for"]

#: initial flit-pool capacity (rows); grows by doubling
_POOL_CAP = 4096

#: initial packet-table capacity; grows by doubling
_PKT_CAP = 1024


class FlatFabric:
    """Sparse, config-independent port geometry of one topology.

    Shared by every :class:`FlatSimulator` on the same topology object
    (see :func:`fabric_for`); everything here is read-only after build.

    The output port of ``u`` toward adjacent ``v`` is ``v``'s offset in
    ``u``'s sorted CSR neighbor slice, answered by a searchsorted over
    precomputed global edge keys (:meth:`ports_toward`) instead of the
    seed's dense O(N^2) ``port_mat`` — at q=79 (N=6321) that matrix
    alone was 320 MB; the CSR port map is O(E).  The congestion view
    (`output_occupancy`) reads ports through the same lookup, so the
    whole per-cycle state stays O(N x radix).  Port ids fit int16
    (radix << 2^15), which halves the gather traffic on ``rev_mat``.
    """

    def __init__(self, topo: Topology):
        graph = topo.graph
        n = graph.n
        deg = np.diff(graph.indptr).astype(np.int64)
        conc = np.asarray(topo.concentration, dtype=np.int64)
        D = int(deg.max()) if n else 0
        C = int(conc.max()) if n else 0
        if D >= np.iinfo(np.int16).max:
            raise ValueError(f"router radix {D} exceeds int16 port ids")

        self.n = n
        self.deg = deg
        self.conc = conc
        #: max link outputs; the ejection output is column ``D``
        self.D = D
        self.OE = D
        self.O = D + 1
        #: input ports per router: links 0..deg-1, injection deg..deg+p-1
        self.P_arr = deg + conc
        self.I = max(int(self.P_arr.max()) if n else 0, 1)

        cols = max(D, 1)
        self.nbr_mat = np.full((n, cols), -1, dtype=np.int64)
        self.rev_mat = np.full((n, cols), -1, dtype=np.int16)
        # CSR port map: neighbor slices are sorted, so the port of u
        # toward v is searchsorted position of key u*n+v among the
        # directed-edge keys (strictly increasing in CSR order) minus
        # u's slice start.  The C kernel runs the same lookup as a
        # per-row binary search over the bound indptr/indices.
        self.adj_indptr = graph.indptr
        self.adj_indices = graph.indices
        indptr, indices = graph.indptr, graph.indices
        if indices.size:
            src_e = np.repeat(np.arange(n, dtype=np.int64), deg)
            self.edge_keys = src_e * n + indices
            port_e = np.arange(indices.size, dtype=np.int64) - np.repeat(
                indptr[:-1], deg
            )
            self.nbr_mat[src_e, port_e] = indices
            # Reverse port of directed edge (u -> v) = port of v toward
            # u, one searchsorted over the mirrored keys.
            rev_port = (
                np.searchsorted(self.edge_keys, indices * n + src_e)
                - indptr[indices]
            )
            self.rev_mat[src_e, port_e] = rev_port.astype(np.int16)
        else:
            self.edge_keys = np.empty(0, dtype=np.int64)

        self.E = topo.num_endpoints
        self.ep_router = np.asarray(topo.endpoint_routers, dtype=np.int64)
        self.ep_off = np.asarray(topo.endpoint_offsets, dtype=np.int64)
        self.ep_inport = deg[self.ep_router] + (
            np.arange(self.E, dtype=np.int64) - self.ep_off[self.ep_router]
        )
        #: dense VOQ count: (router, in_port, out_port) triples
        self.NV = n * self.I * self.O

    def ports_toward(self, routers, next_hops) -> np.ndarray:
        """Output ports of ``routers`` toward adjacent ``next_hops``.

        One vectorized searchsorted over the global edge keys; callers
        guarantee adjacency (non-adjacent queries return an in-range but
        meaningless port, like the old dense matrix returned -1 — no
        caller ever used a non-adjacent lookup's value).
        """
        routers = np.asarray(routers, dtype=np.int64)
        keys = routers * self.n + np.asarray(next_hops, dtype=np.int64)
        return np.searchsorted(self.edge_keys, keys) - self.adj_indptr[routers]

    def port_toward(self, router: int, next_hop: int) -> int:
        """Scalar :meth:`ports_toward` for the event-time (cold) paths."""
        return int(self.ports_toward(router, next_hop))


_FABRIC_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def fabric_for(topo: Topology) -> FlatFabric:
    """The (memoized) :class:`FlatFabric` of ``topo``.

    Keyed weakly on the topology object: sweep workers memoize the
    topology per process, so repeated cells on it reuse one fabric.
    """
    fab = _FABRIC_MEMO.get(topo)
    if fab is None:
        fab = _FABRIC_MEMO[topo] = FlatFabric(topo)
    return fab


class FlatSimulator(SimulatorCore):
    """Struct-of-arrays engine for one (topology, routing, traffic) point.

    Drop-in replacement for the reference
    :class:`~repro.flitsim.reference.NetworkSimulator`: same constructor,
    same :meth:`~repro.flitsim.engine.SimulatorCore.run` contract, same
    :class:`~repro.routing.policies.CongestionView` surface, bit-identical
    :class:`~repro.flitsim.engine.SimResult` for the same seed.
    """

    def __init__(
        self,
        topo: Topology,
        policy: RoutingPolicy,
        traffic: "TrafficPattern | None",
        load: float,
        config: SimConfig = SimConfig(),
        seed=0,
        workload=None,
        faults=None,
    ):
        self.topo = topo
        self.policy = policy
        self.traffic = traffic
        self.load = float(load)
        self.config = config
        self.rng = make_rng(seed)
        # Fault bookkeeping first: it ratchets policy.max_hops to the
        # degraded ceiling, which sizes the route stride and VC check.
        self._fault = make_fault_state(faults, topo, policy)
        validate_sim_args(topo, policy, load, config)
        self._wl = make_workload_state(workload, config, topo)

        fab = fabric_for(topo)
        self.fab = fab
        n, I, O = fab.n, fab.I, fab.O
        V = config.num_vcs

        # Credit state: link outputs carry vc_depth per hop class;
        # padding columns (port >= deg) stay 0 and are never addressed.
        valid = np.arange(max(fab.D, 1))[None, :] < fab.deg[:, None]
        self.credits = np.zeros((fab.n, max(fab.D, 1), V), dtype=np.int64)
        self.credits[valid] = config.vc_depth
        self.ep_credit = np.full(fab.E, config.vc_depth, dtype=np.int64)

        # VOQ state: intrusive linked lists through the flit pool.
        self.voq_head = np.full(fab.NV, -1, dtype=np.int64)
        self.voq_tail = np.full(fab.NV, -1, dtype=np.int64)
        self.voq_count = np.zeros(fab.NV, dtype=np.int64)
        #: flits queued per (router, out) — the O(1) occupancy counters
        self.backlog = np.zeros(n * O, dtype=np.int64)
        #: round-robin pointers per (router, out)
        self.rr = np.zeros(n * O, dtype=np.int64)
        # Static per-(router, out)-row arbitration tables: grant limit
        # (1 for links, max(1, concentration) for ejection) and the
        # router's circular input-port count.
        row_router = np.repeat(np.arange(n, dtype=np.int64), O)
        self._row_limit = np.ones(n * O, dtype=np.int64)
        self._row_limit[fab.OE :: O] = np.maximum(fab.conc, 1)
        self._row_ports = fab.P_arr[row_router]
        self._IO = fab.I * O

        # Flit pool + free list.  The stack top lives in a one-element
        # array so the C kernel can mutate it in place.
        self.pool_cap = _POOL_CAP
        self.pool_pid = np.empty(self.pool_cap, dtype=np.int64)
        self.pool_seq = np.empty(self.pool_cap, dtype=np.int64)
        self.pool_hop = np.empty(self.pool_cap, dtype=np.int64)
        self.pool_ready = np.empty(self.pool_cap, dtype=np.int64)
        self.pool_next = np.empty(self.pool_cap, dtype=np.int64)
        self.free_stack = np.arange(self.pool_cap, dtype=np.int64)
        self._free_top = np.array([self.pool_cap], dtype=np.int64)

        # Packet table + route buffer, slot-recycled so memory stays
        # O(in-flight packets), not O(packets ever injected): each
        # packet occupies one row of the pkt_* arrays and one
        # fixed-stride row of the route buffer (stride = the policy's
        # worst-case route length), identified by a pool slot that is
        # freed when the tail flit ejects.
        self.route_stride = policy.max_hops + 1
        self.pkt_cap = _PKT_CAP
        self.pkt_t_created = np.empty(self.pkt_cap, dtype=np.int64)
        self.pkt_len = np.empty(self.pkt_cap, dtype=np.int64)
        self.pkt_dst = np.full(self.pkt_cap, -1, dtype=np.int64)
        #: owning workload message id per packet slot (-1 open loop)
        self.pkt_msg = np.full(self.pkt_cap, -1, dtype=np.int64)
        self.pkt_measured = np.zeros(self.pkt_cap, dtype=bool)
        self.route_buf = np.zeros(self.pkt_cap * self.route_stride, dtype=np.int64)
        self._pslot_stack = np.arange(self.pkt_cap, dtype=np.int64)
        self._pslot_top = np.array([self.pkt_cap], dtype=np.int64)
        #: monotone count of packets ever injected (slots are recycled)
        self.packets_injected = 0

        # Per-endpoint source FIFOs (linked lists in the pool).
        self.src_head = np.full(fab.E, -1, dtype=np.int64)
        self.src_tail = np.full(fab.E, -1, dtype=np.int64)

        self.now = 0
        self._hop_latency = config.link_latency + config.router_pipeline
        self.result: "SimResult | None" = None
        self._measuring = False
        self._stat = SimResult(load, 0, fab.E)

        # Optional per-link flit counters (:meth:`attach_link_telemetry`).
        # None by default: the numpy route phase pays one identity check
        # per cycle and the C kernel a NULL pointer it never follows.
        self._ltel: "np.ndarray | None" = None
        self._ltel_dp = max(fab.D, 1)
        self._ltel_buf = None
        # Windowed sibling: flushed and zeroed at each window boundary
        # by a time-series collector (attach_link_telemetry(windowed=True)).
        self._ltel_win: "np.ndarray | None" = None
        self._ltel_win_buf = None

        # Fault-mode state: per-(router, output-column) death mask and
        # outstanding-flit counts per packet slot (drops can retire a
        # packet out of tail order, so slot recycling counts flits).
        if self._fault is not None:
            self.dead_row = np.zeros(n * O, dtype=bool)
            self.pkt_live = np.zeros(self.pkt_cap, dtype=np.int64)
            self.pkt_damaged = np.zeros(self.pkt_cap, dtype=bool)

        # Optional C cycle kernel (same protocol, same arrays) in every
        # mode — open loop, closed loop, faults, and combined; falls
        # back to the pure-numpy phases when unavailable.  Workload
        # dependency bookkeeping and epoch-boundary fault deltas stay in
        # Python and communicate through the bound arrays and the
        # per-cycle ring buffers (tail_pids, drop_tail_pids).
        self._kernel = load_kernel()
        if self._kernel is not None:
            ffi = self._kernel.ffi
            # Grants per cycle are bounded by one per (router, link
            # output) plus the per-router ejection limit (≤ E + n), and
            # per-cycle drops by the feed slots (≤ E) plus the link
            # grants — so grant_cap caps both ring buffers.
            grant_cap = n * O + fab.E
            self._g_vq = np.empty(grant_cap, dtype=np.int64)
            self._g_f = np.empty(grant_cap, dtype=np.int64)
            self._tail_pids = np.empty(max(grant_cap, 1), dtype=np.int64)
            if self._fault is not None:
                self._drop_tails = np.empty(max(grant_cap, 1), dtype=np.int64)
                self._fcnt = np.zeros(2, dtype=np.int64)
            self._n_ej = ffi.new("int64_t *")
            self._st = ffi.new("SimState *")
            self._bind_kernel_state()

    # ------------------------------------------------------------------
    # CongestionView protocol
    # ------------------------------------------------------------------
    def output_occupancy(self, router: int, next_hop: int) -> int:
        """O(1) UGAL-L signal: credit debt + maintained VOQ backlog."""
        port = self.fab.port_toward(router, next_hop)
        return int(
            self.config.vc_depth
            - self.credits[router, port, 0]
            + self.backlog[router * self.fab.O + port]
        )

    def output_occupancies(self, routers, next_hops) -> np.ndarray:
        """Vectorized occupancy reads for batched route selection."""
        fab = self.fab
        ports = fab.ports_toward(routers, next_hops)
        return (
            self.config.vc_depth
            - self.credits[routers, ports, 0]
            + self.backlog[np.asarray(routers) * fab.O + ports]
        )

    # ------------------------------------------------------------------
    # Introspection (tests, conservation checks)
    # ------------------------------------------------------------------
    @property
    def free_top(self) -> int:
        """Free-list depth (pool rows not holding a live flit)."""
        return int(self._free_top[0])

    def live_flits(self) -> int:
        """Flits currently anywhere in the system (FIFOs + VOQs)."""
        return self.pool_cap - self.free_top

    # ------------------------------------------------------------------
    # Per-link telemetry (observability; never perturbs results)
    # ------------------------------------------------------------------
    def attach_link_telemetry(self, windowed: bool = False) -> "np.ndarray":
        """Allocate (idempotently) per-link flit counters; the array.

        Flat ``int64`` counters of shape ``n * max(D, 1)``, indexed
        ``router * Dp + out_port`` (the kernel credits layout).  A link
        grant is counted during the measure window only, *before* any
        fault doom filtering — the same accounting point as the
        reference engine's ``run_with_telemetry`` forward hook, so the
        two agree bit-exactly.  Works in both the numpy and C-kernel
        route phases; attaching never changes simulation results.

        With ``windowed=True`` a second counter array of the same shape
        is allocated alongside: it ticks at the identical grant point
        but is read out and zeroed at window boundaries via
        :meth:`flush_window_link_counts`, while the cumulative array
        keeps the whole-run totals.
        """
        if self._ltel is None:
            self._ltel = np.zeros(
                self.fab.n * self._ltel_dp, dtype=np.int64
            )
            if self._kernel is not None:
                self._ltel_buf = self._kernel.ffi.from_buffer(
                    "int64_t[]", self._ltel
                )
        if windowed and self._ltel_win is None:
            self._ltel_win = np.zeros(
                self.fab.n * self._ltel_dp, dtype=np.int64
            )
            if self._kernel is not None:
                self._ltel_win_buf = self._kernel.ffi.from_buffer(
                    "int64_t[]", self._ltel_win
                )
        return self._ltel

    def link_flit_counts(self) -> dict:
        """Nonzero per-directed-link counts as ``{(u, v): flits}``.

        The dict form of the attached counter array, keyed like the
        reference telemetry's ``link_flits`` (source router, neighbor).
        Empty when telemetry was never attached.
        """
        if self._ltel is None:
            return {}
        fab = self.fab
        counts = {}
        for i in np.flatnonzero(self._ltel).tolist():
            r, out = divmod(i, self._ltel_dp)
            counts[(r, int(fab.nbr_mat[r, out]))] = int(self._ltel[i])
        return counts

    def flush_window_link_counts(self) -> dict:
        """Drain the windowed counters: nonzero ``{(u, v): flits}``.

        Reads the per-window array (nonzero entries only, keyed like
        :meth:`link_flit_counts`) and zeroes it for the next window.
        Empty when windowed telemetry was never attached.
        """
        if self._ltel_win is None:
            return {}
        fab = self.fab
        counts = {}
        for i in np.flatnonzero(self._ltel_win).tolist():
            r, out = divmod(i, self._ltel_dp)
            counts[(r, int(fab.nbr_mat[r, out]))] = int(self._ltel_win[i])
        self._ltel_win[:] = 0
        return counts

    def sampled_occupancy_total(self) -> int:
        """Total buffered flits across all real ports, as one int.

        The same credit-derived quantity ``run_with_telemetry`` samples
        per port, summed — the reference engine's
        ``sampled_occupancy_total`` computes it port by port, and the
        per-port values are already pinned bit-equal, so the totals
        agree exactly.
        """
        fab = self.fab
        if fab.D == 0:
            return 0
        cap = self.config.port_capacity
        port_mask = np.arange(self._ltel_dp)[None, :] < fab.deg[:, None]
        return int((cap - self.credits.sum(axis=2))[port_mask].sum())

    # ------------------------------------------------------------------
    # C kernel plumbing
    # ------------------------------------------------------------------
    def _bind_kernel_state(self) -> None:
        """(Re)point the kernel's state struct at the current arrays.

        Called at construction and whenever a growable array is
        replaced; keeps the cffi buffer objects alive on the instance.
        Every binding asserts dtype and C-contiguity here, once — a
        future refactor that changes a buffer's layout fails loudly at
        bind time instead of silently mis-binding the C view.
        """
        ffi = self._kernel.ffi
        fab = self.fab
        st = self._st
        refs = []

        def bind(arr, dtype, ctype):
            if arr.dtype != dtype or not arr.flags.c_contiguous:
                raise TypeError(
                    f"kernel buffer must be C-contiguous {np.dtype(dtype)}, "
                    f"got {arr.dtype} "
                    f"(c_contiguous={arr.flags.c_contiguous})"
                )
            buf = ffi.from_buffer(ctype, arr)
            refs.append(buf)
            return buf

        def ptr(arr):
            return bind(arr, np.int64, "int64_t[]")

        def bptr(arr):
            # numpy bool is one byte; the kernel reads/writes int8.
            return bind(arr, np.bool_, "int8_t[]")

        st.n, st.E, st.I, st.O, st.OE = fab.n, fab.E, fab.I, fab.O, fab.OE
        st.Dp = max(fab.D, 1)
        st.V = self.config.num_vcs
        st.ps = self.config.packet_size
        st.hop_latency = self._hop_latency
        st.stride = self.route_stride
        st.deg, st.ports, st.conc = ptr(fab.deg), ptr(fab.P_arr), ptr(fab.conc)
        st.nbr = ptr(fab.nbr_mat)
        st.rev = bind(fab.rev_mat, np.int16, "int16_t[]")
        st.adj_indptr = ptr(fab.adj_indptr)
        st.adj_indices = ptr(fab.adj_indices)
        st.ep_router, st.ep_inport = ptr(fab.ep_router), ptr(fab.ep_inport)
        st.ep_off = ptr(fab.ep_off)
        st.voq_head, st.voq_tail = ptr(self.voq_head), ptr(self.voq_tail)
        st.voq_count = ptr(self.voq_count)
        st.backlog, st.rr, st.credits = (
            ptr(self.backlog), ptr(self.rr), ptr(self.credits),
        )
        st.pool_pid, st.pool_seq = ptr(self.pool_pid), ptr(self.pool_seq)
        st.pool_hop, st.pool_ready = ptr(self.pool_hop), ptr(self.pool_ready)
        st.pool_next = ptr(self.pool_next)
        st.src_head, st.src_tail = ptr(self.src_head), ptr(self.src_tail)
        st.ep_credit = ptr(self.ep_credit)
        st.pkt_len, st.pkt_dst = ptr(self.pkt_len), ptr(self.pkt_dst)
        st.route_buf = ptr(self.route_buf)
        st.pkt_free = ptr(self._pslot_stack)
        st.pkt_free_top = ptr(self._pslot_top)
        st.free_stack, st.free_top = ptr(self.free_stack), ptr(self._free_top)
        st.g_vq, st.g_f = ptr(self._g_vq), ptr(self._g_f)
        st.tail_pids = ptr(self._tail_pids)
        st.fault_mode = 0 if self._fault is None else 1
        if self._fault is not None:
            st.dead_row = bptr(self.dead_row)
            st.pkt_live = ptr(self.pkt_live)
            st.pkt_damaged = bptr(self.pkt_damaged)
            st.drop_tail_pids = ptr(self._drop_tails)
            st.fcnt = ptr(self._fcnt)
        else:
            st.dead_row = ffi.NULL
            st.pkt_live = ffi.NULL
            st.pkt_damaged = ffi.NULL
            st.drop_tail_pids = ffi.NULL
            st.fcnt = ffi.NULL
        # Link telemetry binds per cycle (measure window only); outside
        # it the kernel sees NULL and skips counting entirely.
        st.link_flits = ffi.NULL
        st.link_flits_win = ffi.NULL
        self._st_refs = refs

    # ------------------------------------------------------------------
    # Pool + table growth
    # ------------------------------------------------------------------
    def _grow_pool(self, min_extra: int) -> None:
        old = self.pool_cap
        extra = max(min_extra, old)
        cap = old + extra
        for name in ("pool_pid", "pool_seq", "pool_hop", "pool_ready", "pool_next"):
            arr = getattr(self, name)
            new = np.empty(cap, dtype=arr.dtype)
            new[:old] = arr
            setattr(self, name, new)
        top = self.free_top
        stack = np.empty(cap, dtype=np.int64)
        stack[:top] = self.free_stack[:top]
        stack[top : top + extra] = np.arange(old, cap)
        self.free_stack = stack
        self._free_top[0] = top + extra
        self.pool_cap = cap
        if self._kernel is not None:
            self._bind_kernel_state()

    def _alloc(self, k: int) -> np.ndarray:
        if self.free_top < k:
            self._grow_pool(k - self.free_top)
        top = self.free_top - k
        self._free_top[0] = top
        return self.free_stack[top : top + k].copy()

    def _release(self, ids: np.ndarray) -> None:
        top = self.free_top
        self.free_stack[top : top + ids.size] = ids
        self._free_top[0] = top + ids.size

    def _grow_pkt_pool(self, min_extra: int) -> None:
        old = self.pkt_cap
        extra = max(min_extra, old)
        cap = old + extra
        stride = self.route_stride
        for name, fill in (
            ("pkt_t_created", None), ("pkt_len", None), ("pkt_dst", -1),
            ("pkt_msg", -1),
        ):
            arr = getattr(self, name)
            new = np.empty(cap, dtype=np.int64) if fill is None else np.full(
                cap, fill, dtype=np.int64
            )
            new[:old] = arr
            setattr(self, name, new)
        measured = np.zeros(cap, dtype=bool)
        measured[:old] = self.pkt_measured
        self.pkt_measured = measured
        if self._fault is not None:
            live = np.zeros(cap, dtype=np.int64)
            live[:old] = self.pkt_live
            self.pkt_live = live
            damaged = np.zeros(cap, dtype=bool)
            damaged[:old] = self.pkt_damaged
            self.pkt_damaged = damaged
        route_buf = np.zeros(cap * stride, dtype=np.int64)
        route_buf[: old * stride] = self.route_buf
        self.route_buf = route_buf
        top = int(self._pslot_top[0])
        stack = np.empty(cap, dtype=np.int64)
        stack[:top] = self._pslot_stack[:top]
        stack[top : top + extra] = np.arange(old, cap)
        self._pslot_stack = stack
        self._pslot_top[0] = top + extra
        self.pkt_cap = cap
        if self._kernel is not None:
            self._bind_kernel_state()

    def _alloc_pkt_slots(self, k: int) -> np.ndarray:
        if int(self._pslot_top[0]) < k:
            self._grow_pkt_pool(k - int(self._pslot_top[0]))
        top = int(self._pslot_top[0]) - k
        self._pslot_top[0] = top
        return self._pslot_stack[top : top + k].copy()

    # ------------------------------------------------------------------
    # Injection (protocol step 1)
    # ------------------------------------------------------------------
    def _fill_packet_slots(self, srcs, dsts, pkt_mid=None):
        """Select routes and populate packet slots for a same-cycle batch.

        The half of injection both modes share: one batched
        ``select_routes`` call, slot allocation, route-row/metadata
        fill, and the injected-flit accounting.  Returns ``(slots, k)``;
        the caller materializes the flit chains (numpy or C kernel) and
        appends them to source FIFOs.
        """
        routes = self.policy.select_routes(srcs, dsts, self.rng, congestion=self)
        mat, lens = routes_as_matrix(routes)
        k = lens.size
        max_len = int(lens.max())
        if max_len > self.route_stride:
            raise ValueError(
                f"route of {max_len - 1} hops exceeds the policy's "
                f"declared max_hops={self.policy.max_hops}"
            )
        slots = self._alloc_pkt_slots(k)
        route_rows = self.route_buf.reshape(self.pkt_cap, self.route_stride)
        # The matrix may carry padding columns wider than any surviving
        # route; only columns within the slot stride are meaningful.
        width = min(mat.shape[1], self.route_stride)
        route_rows[slots, :width] = mat[:, :width]
        self.pkt_len[slots] = lens
        self.pkt_dst[slots] = mat[np.arange(k), lens - 1]
        self.pkt_t_created[slots] = self.now
        if pkt_mid is not None:
            self.pkt_msg[slots] = pkt_mid
        if self._fault is not None:
            self.pkt_live[slots] = self.config.packet_size
            self.pkt_damaged[slots] = False
        self.pkt_measured[slots] = self._measuring
        self.packets_injected += k
        if self._measuring:
            self._stat.injected_flits += k * self.config.packet_size
        return slots, k

    def _chain_flits(self, slots, k):
        """Allocate and intra-link the flit rows of ``k`` fresh packets.

        Returns the ``(k, packet_size)`` pool-row matrix, packets in
        slot order, each packet's flits chained head to tail.
        """
        ps = self.config.packet_size
        idx = self._alloc(k * ps).reshape(k, ps)
        self.pool_pid[idx] = slots[:, None]
        self.pool_seq[idx] = np.arange(ps, dtype=np.int64)[None, :]
        self.pool_hop[idx] = 0
        self.pool_ready[idx] = self.now
        if ps > 1:
            self.pool_next[idx[:, :-1]] = idx[:, 1:]
        self.pool_next[idx[:, -1]] = -1
        return idx

    def _inject(self) -> None:
        ps = self.config.packet_size
        prob = self.load / ps
        if prob <= 0.0:
            return
        rng = self.rng
        fab = self.fab
        winners = np.flatnonzero(rng.random(fab.E) < prob)
        if winners.size == 0:
            return
        ft = self._fault
        if ft is not None and ft.any_dead_router:
            # The Bernoulli draw above always covers every endpoint (the
            # stream is failure-independent); dead ones just can't win.
            winners = winners[ft.ep_alive[winners]]
            if winners.size == 0:
                return
        srcs = fab.ep_router[winners]
        dsts = self.traffic.dest_routers(srcs, rng)
        if ft is not None and ft.any_dead_router:
            keep = ft.router_alive[dsts]
            if not keep.all():
                ft.note_blackholed(int((~keep).sum()))
                winners, srcs, dsts = winners[keep], srcs[keep], dsts[keep]
                if winners.size == 0:
                    return
        slots, k = self._fill_packet_slots(srcs, dsts)

        if self._kernel is not None:
            if self.free_top < k * ps:
                self._grow_pool(k * ps - self.free_top)
            ffi = self._kernel.ffi
            self._kernel.lib.kinject(
                self._st,
                self.now,
                k,
                ffi.from_buffer("int64_t[]", slots),
                ffi.from_buffer("int64_t[]", winners),
            )
            return

        idx = self._chain_flits(slots, k)

        # Append each packet's flit chain to its endpoint FIFO (winners
        # are distinct endpoints — at most one packet each per cycle).
        first, last = idx[:, 0], idx[:, -1]
        tails = self.src_tail[winners]
        linked = tails >= 0
        self.pool_next[tails[linked]] = first[linked]
        self.src_head[winners[~linked]] = first[~linked]
        self.src_tail[winners] = last

    def _inject_workload(self) -> None:
        """Closed-loop protocol step 1, vectorized.

        Drains the ready queue into packets (message-major,
        packet-minor), one batched route selection for the cycle, then
        appends every packet's flit chain to the FIFO of its
        round-robin-assigned endpoint — handling several packets landing
        on one endpoint in the same cycle, which Bernoulli injection
        never produces.
        """
        st = self._wl
        ft = self._fault
        mids = st.pop_ready()
        if ft is not None:
            if ft.any_dead_router and mids.size:
                mids = ft.filter_messages(
                    mids, st.workload.src[mids], st.workload.dst[mids],
                    st.msg_pkts[mids],
                )
            # Lost packets re-enter ahead of new messages, in drop order.
            rt = ft.pop_retransmits(st.workload)
            if rt.size == 0 and mids.size == 0:
                return
            pkt_mid = np.concatenate([rt, np.repeat(mids, st.msg_pkts[mids])])
        else:
            if mids.size == 0:
                return
            pkt_mid = np.repeat(mids, st.msg_pkts[mids])
        if pkt_mid.size == 0:
            return
        fab = self.fab
        srcs = st.workload.src[pkt_mid]
        dsts = st.workload.dst[pkt_mid]
        slots, k = self._fill_packet_slots(srcs, dsts, pkt_mid=pkt_mid)
        eps = fab.ep_off[srcs] + st.next_endpoints(srcs)

        if self._kernel is not None:
            # kinject appends sequentially, so several packets landing
            # on one endpoint keep injection order automatically.
            ps = self.config.packet_size
            if self.free_top < k * ps:
                self._grow_pool(k * ps - self.free_top)
            ffi = self._kernel.ffi
            self._kernel.lib.kinject(
                self._st,
                self.now,
                k,
                ffi.from_buffer("int64_t[]", slots),
                ffi.from_buffer("int64_t[]", np.ascontiguousarray(eps)),
            )
            return

        idx = self._chain_flits(slots, k)

        # FIFO append with possible same-endpoint collisions: group the
        # packets by endpoint (stable, preserving injection order), link
        # consecutive chains within a group, then splice each group onto
        # its endpoint's existing tail.
        first, last = idx[:, 0], idx[:, -1]
        order = np.argsort(eps, kind="stable")
        es, fo, lo = eps[order], first[order], last[order]
        head = np.empty(k, dtype=bool)
        head[0] = True
        np.not_equal(es[1:], es[:-1], out=head[1:])
        inner = np.flatnonzero(~head)
        self.pool_next[lo[inner - 1]] = fo[inner]
        tail = np.empty(k, dtype=bool)
        tail[-1] = True
        np.not_equal(es[1:], es[:-1], out=tail[:-1])
        group_ep = es[head]
        group_first = fo[head]
        tails_cur = self.src_tail[group_ep]
        linked = tails_cur >= 0
        self.pool_next[tails_cur[linked]] = group_first[linked]
        self.src_head[group_ep[~linked]] = group_first[~linked]
        self.src_tail[group_ep] = lo[tail]

    # ------------------------------------------------------------------
    # Feed (protocol step 2)
    # ------------------------------------------------------------------
    def _feed(self) -> None:
        if self._fault is not None:
            self._feed_with_faults()
            return
        ids = np.flatnonzero((self.src_head >= 0) & (self.ep_credit > 0))
        if ids.size == 0:
            return
        fab = self.fab
        flits = self.src_head[ids]
        nxt = self.pool_next[flits]
        self.src_head[ids] = nxt
        self.src_tail[ids[nxt < 0]] = -1
        self.ep_credit[ids] -= 1
        routers = fab.ep_router[ids]
        pid = self.pool_pid[flits]
        out = np.full(ids.size, fab.OE, dtype=np.int64)
        multi = self.pkt_len[pid] > 1
        out[multi] = fab.ports_toward(
            routers[multi], self.route_buf[pid[multi] * self.route_stride + 1]
        )
        vq = (routers * fab.I + fab.ep_inport[ids]) * fab.O + out
        self._enqueue(vq, flits, routers, out)

    def _feed_with_faults(self) -> None:
        """Feed phase when a timeline is attached.

        A head flit whose first hop is dead drops without consuming the
        injection credit (it never enters the buffer), spending the
        endpoint's one-flit-per-cycle feed slot; live heads feed as
        usual.  Drop order is ascending endpoint id — the reference
        engine's iteration order.
        """
        fab = self.fab
        cand = np.flatnonzero(self.src_head >= 0)
        if cand.size == 0:
            return
        flits = self.src_head[cand]
        pid = self.pool_pid[flits]
        routers = fab.ep_router[cand]
        out = np.full(cand.size, fab.OE, dtype=np.int64)
        multi = self.pkt_len[pid] > 1
        out[multi] = fab.ports_toward(
            routers[multi], self.route_buf[pid[multi] * self.route_stride + 1]
        )
        doomed = self.dead_row[routers * fab.O + out]
        move = doomed | (self.ep_credit[cand] > 0)
        if not move.any():
            return
        ids = cand[move]
        mflits = flits[move]
        nxt = self.pool_next[mflits]
        self.src_head[ids] = nxt
        self.src_tail[ids[nxt < 0]] = -1
        dr = np.flatnonzero(doomed[move])
        if dr.size:
            self._drop_flit_rows(mflits[dr], pid[move][dr])
        fd = np.flatnonzero(~doomed[move])
        if fd.size:
            ids_f = ids[fd]
            self.ep_credit[ids_f] -= 1
            routers_f = routers[move][fd]
            out_f = out[move][fd]
            vq = (routers_f * fab.I + fab.ep_inport[ids_f]) * fab.O + out_f
            self._enqueue(vq, mflits[fd], routers_f, out_f)

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def _enqueue(self, vq, flits, routers, outs) -> None:
        """Append ``flits`` to VOQs ``vq`` (distinct per call, by design)."""
        self.pool_next[flits] = -1
        empty = self.voq_count[vq] == 0
        occupied = ~empty
        self.voq_head[vq[empty]] = flits[empty]
        self.pool_next[self.voq_tail[vq[occupied]]] = flits[occupied]
        self.voq_tail[vq] = flits
        self.voq_count[vq] += 1
        np.add.at(self.backlog, routers * self.fab.O + outs, 1)

    # ------------------------------------------------------------------
    # Router phase (protocol step 3): decide synchronously, apply at once
    # ------------------------------------------------------------------
    def _route_phase(self) -> None:
        occ = np.flatnonzero(self.voq_count > 0)
        if occ.size == 0:
            return
        fab = self.fab
        now = self.now
        O, I, OE = fab.O, fab.I, fab.OE
        V = self.config.num_vcs

        # Eligibility of every nonempty VOQ head.
        heads = self.voq_head[occ]
        out_c = occ % O
        ok = self.pool_ready[heads] <= now
        lnk = ok & (out_c != OE)
        vq_l = occ[lnk]
        dvc = np.minimum(self.pool_hop[heads[lnk]], V - 1)
        ok[lnk] = self.credits[vq_l // self._IO, out_c[lnk], dvc] > 0
        if not ok.any():
            return
        vq_e = occ[ok]
        head_e = heads[ok]
        in_e = (vq_e // O) % I
        rows = (vq_e // self._IO) * O + out_c[ok]

        # One sort decides every grant: candidates ordered by
        # (router, output, circular distance from the rr pointer).  The
        # first candidate of each (router, output) group wins; ejection
        # groups take up to max(1, concentration).  Ejection is the
        # highest output column, so group order == the reference
        # engine's decision order (routers ascending, links before
        # eject) — which is also the latency-recording order.
        score = (in_e - self.rr[rows]) % self._row_ports[rows]
        order = np.lexsort((score, rows))
        row_s = rows[order]
        in_s = in_e[order]
        first = np.empty(row_s.size, dtype=bool)
        first[0] = True
        np.not_equal(row_s[1:], row_s[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        group = np.cumsum(first) - 1
        rank = np.arange(row_s.size, dtype=np.int64) - starts[group]
        take = rank < self._row_limit[row_s]

        row_w = row_s[take]
        in_w = in_s[take]
        vq_w = vq_e[order][take]
        flit = head_e[order][take]
        r_w = row_w // O
        out_w = row_w % O

        # Advance each granted group's pointer past its last grant.
        wg = group[take]
        last = np.empty(wg.size, dtype=bool)
        last[-1] = True
        np.not_equal(wg[1:], wg[:-1], out=last[:-1])
        row_last = row_w[last]
        self.rr[row_last] = (in_w[last] + 1) % self._row_ports[row_last]

        # ---- Apply: pop winners, return credits, forward/eject. ----
        succ = self.pool_next[flit]
        self.voq_head[vq_w] = succ
        self.voq_count[vq_w] -= 1
        self.voq_tail[vq_w[succ < 0]] = -1
        np.add.at(self.backlog, row_w, -1)

        pid_w = self.pool_pid[flit]
        hop_w = self.pool_hop[flit]
        off_w = pid_w * self.route_stride
        deg_w = fab.deg[r_w]

        # Upstream credit returns (link inputs) / injection credits.
        from_link = in_w < deg_w
        li = np.flatnonzero(from_link)
        if li.size:
            upstream = self.route_buf[off_w[li] + hop_w[li] - 1]
            up_port = fab.ports_toward(upstream, r_w[li])
            vc = np.minimum(hop_w[li] - 1, V - 1)
            np.add.at(self.credits, (upstream, up_port, vc), 1)
        ii = np.flatnonzero(~from_link)
        if ii.size:
            endpoint = fab.ep_off[r_w[ii]] + in_w[ii] - deg_w[ii]
            np.add.at(self.ep_credit, endpoint, 1)

        # Forward the link winners one hop.
        is_ej = out_w == OE
        fwd = np.flatnonzero(~is_ej)
        if fwd.size:
            fl = flit[fwd]
            r_f, out_f = r_w[fwd], out_w[fwd]
            if self._measuring:
                # Count at grant time, before fault doom filtering — the
                # reference telemetry hook's accounting point.
                if self._ltel is not None:
                    np.add.at(self._ltel, r_f * self._ltel_dp + out_f, 1)
                if self._ltel_win is not None:
                    np.add.at(
                        self._ltel_win, r_f * self._ltel_dp + out_f, 1
                    )
            hop_f = hop_w[fwd]
            nxt_r = fab.nbr_mat[r_f, out_f]
            in_next = fab.rev_mat[r_f, out_f]
            hop2 = hop_f + 1
            pid_f = pid_w[fwd]
            pos = off_w[fwd] + np.minimum(hop2 + 1, self.pkt_len[pid_f] - 1)
            # The non-destination branch is evaluated for every row (as
            # np.where always did); destination rows get an in-range but
            # meaningless port that the OE branch discards.
            out_next = np.where(
                nxt_r == self.pkt_dst[pid_f],
                OE,
                fab.ports_toward(nxt_r, self.route_buf[pos]),
            )
            if self._fault is not None:
                doomed = self.dead_row[nxt_r * O + out_next]
                if doomed.any():
                    # Dead output at the next router: drop on the wire,
                    # in grant order, without consuming the credit.
                    d = np.flatnonzero(doomed)
                    self._drop_flit_rows(fl[d], pid_f[d])
                    keep = np.flatnonzero(~doomed)
                    fl, r_f, out_f = fl[keep], r_f[keep], out_f[keep]
                    hop_f, hop2 = hop_f[keep], hop2[keep]
                    nxt_r, in_next = nxt_r[keep], in_next[keep]
                    out_next = out_next[keep]
            if fl.size:
                np.add.at(
                    self.credits, (r_f, out_f, np.minimum(hop_f, V - 1)), -1
                )
                self.pool_hop[fl] = hop2
                self.pool_ready[fl] = now + self._hop_latency
                self._enqueue(
                    (nxt_r * I + in_next) * O + out_next, fl, nxt_r, out_next
                )

        # Eject the rest (already in recording order); tail flits
        # complete their packet.
        ejs = np.flatnonzero(is_ej)
        if ejs.size:
            fe = flit[ejs]
            if self._measuring:
                self._stat.ejected_flits += fe.size
            tails = self.pool_seq[fe] == self.config.packet_size - 1
            done = pid_w[ejs[tails]]
            measured = done[self.pkt_measured[done]]
            if measured.size:
                self._stat.latencies.extend(
                    (now - self.pkt_t_created[measured]).tolist()
                )
                self._stat.hop_counts.extend((self.pkt_len[measured] - 1).tolist())
            self._release(fe)
            if done.size and self._wl is not None:
                # Closed loop: report completed packets' messages and
                # their wire flit-hops before recycling slots.
                self._wl.note_tails(
                    self.pkt_msg[done],
                    int((self.pkt_len[done] - 1).sum())
                    * self.config.packet_size,
                )
            if self._fault is not None:
                # A tail that ejects from a damaged packet means body
                # flits were lost to a since-revived link: delivered,
                # but incomplete.
                dmg = int(self.pkt_damaged[done].sum())
                if dmg:
                    self._fault.note_damaged_deliveries(dmg)
                # Drops can retire a packet out of tail order, so slot
                # recycling counts outstanding flits instead.
                self._retire_packets(pid_w[ejs])
            elif done.size:
                # The tail flit is the last of its packet out of the
                # network: recycle the packet slot.
                top = int(self._pslot_top[0])
                self._pslot_stack[top : top + done.size] = done
                self._pslot_top[0] = top + done.size

    # ------------------------------------------------------------------
    # Fault phase (protocol step 0): masks, drops, and route repair
    # ------------------------------------------------------------------
    def _drop_flit_rows(self, rows: np.ndarray, pids: np.ndarray) -> None:
        """Account and release dropped flit rows (array order = drop order)."""
        ft = self._fault
        ft.note_flit_drops(rows.size)
        self.pkt_damaged[pids] = True
        tails = self.pool_seq[rows] == self.config.packet_size - 1
        if tails.any():
            ft.note_tail_drops(self.pkt_msg[pids[tails]])
        self._release(rows)
        self._retire_packets(pids)

    def _retire_packets(self, pids: np.ndarray) -> None:
        """Decrement outstanding-flit counts; recycle exhausted slots."""
        np.subtract.at(self.pkt_live, pids, 1)
        u = np.unique(pids)
        done = u[self.pkt_live[u] == 0]
        if done.size:
            top = int(self._pslot_top[0])
            self._pslot_stack[top : top + done.size] = done
            self._pslot_top[0] = top + done.size

    def _drop_vq(self, r: int, in_port: int, out: int, return_credit: bool) -> None:
        """Drop one VOQ wholesale, front to back (event-time drops).

        Same rule-1/rule-2 credit semantics as the reference engine's
        ``_drop_queue`` — the canonical order both engines share.
        """
        fab = self.fab
        vq = (r * fab.I + in_port) * fab.O + out
        f = int(self.voq_head[vq])
        if f < 0:
            return
        chain = []
        while f >= 0:
            chain.append(f)
            f = int(self.pool_next[f])
        rows = np.asarray(chain, dtype=np.int64)
        self.voq_head[vq] = -1
        self.voq_tail[vq] = -1
        self.voq_count[vq] = 0
        self.backlog[r * fab.O + out] -= rows.size
        if return_credit:
            deg = int(fab.deg[r])
            if in_port < deg:
                upstream = int(fab.nbr_mat[r, in_port])
                up_port = fab.port_toward(upstream, r)
                vcs = np.minimum(
                    self.pool_hop[rows] - 1, self.config.num_vcs - 1
                )
                np.add.at(self.credits, (upstream, up_port, vcs), 1)
            else:
                self.ep_credit[int(fab.ep_off[r]) + in_port - deg] += rows.size
        self._drop_flit_rows(rows, self.pool_pid[rows])

    def _apply_fault_delta(self, delta) -> None:
        """Apply one epoch transition in the canonical order."""
        fab = self.fab
        depth = self.config.vc_depth
        self.policy.retable(delta.tables)
        self._fault.note_mark(self.now, len(self._stat.latencies))
        for u, v in delta.down_links:
            for r, nbr in ((u, v), (v, u)):
                p = fab.port_toward(r, nbr)
                # Rule 1: nothing may travel toward the dead link.
                for in_port in range(int(fab.P_arr[r])):
                    self._drop_vq(r, in_port, p, return_credit=True)
                # Rule 2: the link's wire and input buffer are lost.
                for out in list(range(int(fab.deg[r]))) + [fab.OE]:
                    self._drop_vq(r, p, out, return_credit=False)
                self.dead_row[r * fab.O + p] = True
        for r in delta.down_routers:
            # Incident links died above; drop the residue (injection
            # inputs) and the endpoints' source FIFOs.
            for in_port in range(int(fab.P_arr[r])):
                for out in list(range(int(fab.deg[r]))) + [fab.OE]:
                    self._drop_vq(r, in_port, out, return_credit=False)
            for e in range(int(fab.ep_off[r]), int(fab.ep_off[r + 1])):
                f = int(self.src_head[e])
                if f < 0:
                    continue
                chain = []
                while f >= 0:
                    chain.append(f)
                    f = int(self.pool_next[f])
                rows = np.asarray(chain, dtype=np.int64)
                self.src_head[e] = -1
                self.src_tail[e] = -1
                self._drop_flit_rows(rows, self.pool_pid[rows])
            self.dead_row[r * fab.O + fab.OE] = True
        for u, v in delta.up_links:
            for r, nbr in ((u, v), (v, u)):
                p = fab.port_toward(r, nbr)
                # Death emptied the downstream input buffer, so full
                # depth is exact — credit conservation holds.
                self.credits[r, p, :] = depth
                self.dead_row[r * fab.O + p] = False
        for r in delta.up_routers:
            self.ep_credit[int(fab.ep_off[r]) : int(fab.ep_off[r + 1])] = depth
            self.dead_row[r * fab.O + fab.OE] = False

    def _kernel_cycle(self) -> None:
        """Feed + route phase in one C pass (same protocol, same arrays).

        The C side reports completions through the ``tail_pids`` ring
        buffer (grant order — the latency-recording order) and, in fault
        mode, drops through ``drop_tail_pids``/``fcnt`` (drop order:
        feed drops endpoint-ascending, then wire kills in grant order);
        the notification sequence below mirrors the numpy phases —
        flit/tail drops first, then workload completions, then damaged
        deliveries.
        """
        lib = self._kernel.lib
        ft = self._fault
        if ft is not None:
            self._fcnt[:] = 0
        if self._ltel_buf is not None:
            # Counters are live only inside the measure window; outside
            # it the kernel sees NULL and skips the increment branch.
            self._st.link_flits = (
                self._ltel_buf if self._measuring else self._kernel.ffi.NULL
            )
        if self._ltel_win_buf is not None:
            self._st.link_flits_win = (
                self._ltel_win_buf
                if self._measuring
                else self._kernel.ffi.NULL
            )
        lib.kfeed(self._st, self.now)
        n_tail = lib.kroute(self._st, self.now, self._n_ej)
        n_ej = self._n_ej[0]
        if ft is not None:
            dropped, tail_drops = int(self._fcnt[0]), int(self._fcnt[1])
            if dropped:
                ft.note_flit_drops(dropped)
            if tail_drops:
                ft.note_tail_drops(self.pkt_msg[self._drop_tails[:tail_drops]])
        if n_ej and self._measuring:
            self._stat.ejected_flits += n_ej
        if n_tail:
            done = self._tail_pids[:n_tail]
            measured = done[self.pkt_measured[done]]
            if measured.size:
                self._stat.latencies.extend(
                    (self.now - self.pkt_t_created[measured]).tolist()
                )
                self._stat.hop_counts.extend((self.pkt_len[measured] - 1).tolist())
            if self._wl is not None:
                self._wl.note_tails(
                    self.pkt_msg[done],
                    int((self.pkt_len[done] - 1).sum())
                    * self.config.packet_size,
                )
            if ft is not None:
                dmg = int(self.pkt_damaged[done].sum())
                if dmg:
                    ft.note_damaged_deliveries(dmg)

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        if self._fault is not None:
            delta = self._fault.advance(self.now)
            if delta is not None:
                self._apply_fault_delta(delta)
        if self._wl is not None:
            self._inject_workload()
        else:
            self._inject()
        if self._kernel is not None:
            self._kernel_cycle()
        else:
            self._feed()
            self._route_phase()
        if self._wl is not None:
            self._wl.commit(self.now)
        self.now += 1
