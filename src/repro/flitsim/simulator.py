"""Compatibility facade over the split simulator core.

The simulator now lives in three modules:

* :mod:`repro.flitsim.engine` — :class:`SimConfig`, :class:`SimResult`,
  the shared run loop, and :func:`make_simulator` engine selection;
* :mod:`repro.flitsim.reference` — the readable dict-of-deques
  :class:`NetworkSimulator` (the behavioural oracle);
* :mod:`repro.flitsim.flatcore` — :class:`FlatSimulator`, the
  struct-of-arrays production engine.

This module re-exports the historical names so existing imports keep
working; new code should import from the specific modules (or use
:func:`make_simulator`, which honours ``$REPRO_SIM_ENGINE``).
"""

from repro.flitsim.engine import (
    DEFAULT_ENGINE,
    EJECT,
    ENGINE_ENV,
    SimConfig,
    SimResult,
    available_engines,
    make_simulator,
)
from repro.flitsim.flatcore import FlatSimulator
from repro.flitsim.reference import NetworkSimulator

__all__ = [
    "SimConfig",
    "SimResult",
    "NetworkSimulator",
    "FlatSimulator",
    "make_simulator",
    "available_engines",
    "ENGINE_ENV",
    "DEFAULT_ENGINE",
    "EJECT",
]
