"""Cycle-accurate flit-level network simulator (BookSim substitute).

Microarchitectural model, matching the paper's Section VIII-A setup:

* **Input-queued routers**, with each input port organized as virtual
  output queues (VOQs) — the standard idealization of a VC-allocated
  input-queued router that avoids spurious head-of-line blocking across
  outputs.  Downstream buffer space remains partitioned per *hop class*
  (virtual channel) with credit-based flow control.
* **Virtual channels as hop classes**: a flit that has taken ``h`` hops
  occupies class ``min(h-1, V-1)`` downstream.  Class indices are
  non-decreasing along any route, so routing is deadlock-free for paths of
  up to ``V + 1`` routers — the paper's 4 VCs cover Valiant's 4-hop worst
  case.
* **Source routing**: the full path is chosen at injection by a
  :class:`~repro.routing.policies.RoutingPolicy`, which may inspect local
  output-buffer occupancy through credits — the UGAL-L information model.
* **Bernoulli injection** of fixed-size packets (4 flits by default), one
  injection FIFO per endpoint; ejection bandwidth is one flit per cycle
  per endpoint of the destination router.
* **Warmup + measurement window** methodology, with an optional drain so
  measured packets finishing late still contribute latency samples.

Per-cycle work is O(active queues): only routers and VOQs that hold flits
are visited (hpc guide: make the hot loop proportional to useful work).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.flitsim.packet import Packet
from repro.flitsim.traffic import TrafficPattern
from repro.routing.policies import RoutingPolicy
from repro.topologies.base import Topology
from repro.utils.rng import make_rng

__all__ = ["SimConfig", "SimResult", "NetworkSimulator"]

EJECT = -1  # sentinel output port


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs (defaults are the paper's, scaled where noted)."""

    #: flits per packet (paper: 4)
    packet_size: int = 4
    #: virtual channels (hop classes) per port (paper: 4)
    num_vcs: int = 4
    #: flit slots per (port, VC) buffer; the paper's 128-flit ports with 4
    #: VCs give 32 — the scaled default keeps queueing dynamics visible at
    #: reduced network sizes
    vc_depth: int = 8
    #: cycles a flit spends on a link
    link_latency: int = 1
    #: router pipeline latency applied on arrival before a flit may compete
    router_pipeline: int = 2

    @property
    def port_capacity(self) -> int:
        """Total flit capacity of one input port (all VCs)."""
        return self.num_vcs * self.vc_depth


@dataclass
class SimResult:
    """Steady-state measurements of one simulation run.

    ``latencies``/``hop_counts`` accumulate as plain lists during the
    run (appends are the hot path) and are packed into numpy arrays by
    :meth:`finalize` when the run ends, so every statistic below is a
    single vectorized reduction.
    """

    offered_load: float
    cycles: int
    num_endpoints: int
    injected_flits: int = 0
    ejected_flits: int = 0
    latencies: "list | np.ndarray" = field(default_factory=list)
    hop_counts: "list | np.ndarray" = field(default_factory=list)

    def finalize(self) -> "SimResult":
        """Pack sample lists into arrays (idempotent)."""
        self.latencies = np.asarray(self.latencies, dtype=np.float64)
        self.hop_counts = np.asarray(self.hop_counts, dtype=np.int64)
        return self

    @property
    def accepted_load(self) -> float:
        """Ejected flits per endpoint per cycle (throughput)."""
        return self.ejected_flits / (self.cycles * self.num_endpoints)

    @property
    def avg_latency(self) -> float:
        """Mean packet latency (cycles) over measured, delivered packets."""
        lat = self.latencies
        return float(np.mean(lat)) if len(lat) else float("nan")

    def latency_percentile(self, pct: float) -> float:
        """``pct``-th percentile packet latency (NaN with no samples)."""
        lat = self.latencies
        return float(np.percentile(lat, pct)) if len(lat) else float("nan")

    @property
    def p50_latency(self) -> float:
        """Median packet latency."""
        return self.latency_percentile(50)

    @property
    def p99_latency(self) -> float:
        """99th-percentile packet latency."""
        return self.latency_percentile(99)

    @property
    def avg_hops(self) -> float:
        """Mean route length of measured packets."""
        hops = self.hop_counts
        return float(np.mean(hops)) if len(hops) else float("nan")

    @property
    def saturated(self) -> bool:
        """Heuristic: accepted below 95% of offered indicates saturation."""
        return self.accepted_load < 0.95 * self.offered_load


class NetworkSimulator:
    """Cycle-accurate simulation of one (topology, routing, traffic) point.

    Also implements the :class:`~repro.routing.policies.CongestionView`
    protocol so adaptive policies can read local output occupancy.
    """

    def __init__(
        self,
        topo: Topology,
        policy: RoutingPolicy,
        traffic: TrafficPattern,
        load: float,
        config: SimConfig = SimConfig(),
        seed=0,
    ):
        if topo.num_endpoints == 0:
            raise ValueError("simulation requires endpoints (concentration > 0)")
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1] (fraction of injection bw)")
        if policy.max_hops > config.num_vcs + 1:
            raise ValueError(
                f"policy worst case {policy.max_hops} hops needs at least "
                f"{policy.max_hops - 1} VCs for deadlock freedom, have "
                f"{config.num_vcs}"
            )
        self.topo = topo
        self.policy = policy
        self.traffic = traffic
        self.load = float(load)
        self.config = config
        self.rng = make_rng(seed)

        graph = topo.graph
        n = graph.n
        self.now = 0
        self._pid = 0

        # Port maps: output i of router r leads to neighbor nbrs[r][i]; the
        # reverse (input port index at that neighbor) is precomputed.
        self.nbrs = [graph.neighbors(r) for r in range(n)]
        self.port_of = [
            {int(v): i for i, v in enumerate(self.nbrs[r])} for r in range(n)
        ]
        self.rev_port = [
            [self.port_of[int(v)][r] for v in self.nbrs[r]] for r in range(n)
        ]

        V = config.num_vcs
        # Virtual output queues: voq[r][(in_port, out_port)] -> deque of
        # flits (packet, seq, hop_idx, ready_cycle).  Input ports
        # 0..deg-1 are link inputs; ports deg..deg+p-1 are the endpoint
        # injection ports (each fed from its endpoint's source FIFO at one
        # flit per cycle, with its own finite buffer and credits).
        self.voq: list[dict] = [dict() for _ in range(n)]
        # by_out[r][out_port] -> set of voq keys with content for that out.
        self.by_out: list[dict] = [dict() for _ in range(n)]
        # credits[r][out_port][vc]: free downstream slots per hop class.
        self.credits = [
            [[config.vc_depth] * V for _ in self.nbrs[r]] for r in range(n)
        ]
        # Unbounded per-endpoint source FIFOs plus per-endpoint injection
        # port credits (free slots in the injection input buffer).
        self.src_q = [
            [deque() for _ in range(int(topo.concentration[r]))] for r in range(n)
        ]
        self.inj_credit = [
            [config.vc_depth] * int(topo.concentration[r]) for r in range(n)
        ]
        # Round-robin grant pointers per (router, out_port).
        self.rr: list[dict] = [dict() for _ in range(n)]
        # Routers that may have movable flits / non-empty source FIFOs.
        self.active: set[int] = set()
        self.src_active: set[int] = set()

        self.result: "SimResult | None" = None
        self._measuring = False
        self._stat = SimResult(load, 0, topo.num_endpoints)

    # ------------------------------------------------------------------
    # CongestionView protocol
    # ------------------------------------------------------------------
    def output_occupancy(self, router: int, next_hop: int) -> int:
        """Output-queue length estimate toward ``next_hop`` in flits.

        The UGAL-L signal: downstream first-hop-class occupancy (from
        credits) plus the flits queued in this router's own VOQs waiting
        for that output — together, the backlog a newly injected packet
        would sit behind.
        """
        port = self.port_of[router][next_hop]
        backlog = self.config.vc_depth - self.credits[router][port][0]
        keys = self.by_out[router].get(port)
        if keys:
            voq = self.voq[router]
            backlog += sum(len(voq[k]) for k in keys)
        return backlog

    def output_capacity(self) -> int:
        """Normalization for threshold-style adaptive decisions."""
        return self.config.vc_depth

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def _inject(self) -> None:
        cfg = self.config
        prob = self.load / cfg.packet_size
        if prob <= 0.0:
            return
        rng = self.rng
        for r in range(self.topo.num_routers):
            queues = self.src_q[r]
            if not queues:
                continue
            draws = rng.random(len(queues)) < prob
            if not draws.any():
                continue
            for e in np.flatnonzero(draws):
                dst = self.traffic.dest_router(r, rng)
                route = tuple(
                    self.policy.select_route(r, dst, rng, congestion=self)
                )
                pkt = Packet(self._pid, route, cfg.packet_size, self.now)
                self._pid += 1
                pkt.measured = self._measuring
                if pkt.measured:
                    self._stat.injected_flits += cfg.packet_size
                q = queues[int(e)]
                for seq in range(cfg.packet_size):
                    q.append((pkt, seq, 0, self.now))
                self.src_active.add(r)

    def _feed_injection_ports(self) -> None:
        """Move flits from source FIFOs into injection-port VOQs.

        One flit per endpoint per cycle (the injection channel rate),
        subject to injection-buffer credits.
        """
        deg_of = self.nbrs
        done: list[int] = []
        for r in self.src_active:
            any_left = False
            deg = len(deg_of[r])
            credits = self.inj_credit[r]
            for e, q in enumerate(self.src_q[r]):
                if not q:
                    continue
                if credits[e] > 0:
                    credits[e] -= 1
                    self._enqueue_voq(r, deg + e, q.popleft())
                if q:
                    any_left = True
            if not any_left:
                done.append(r)
        self.src_active.difference_update(done)

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def _desired_output(self, r: int, flit) -> tuple[int, int]:
        """(out_port, downstream hop class) for a flit at router ``r``."""
        pkt, _seq, hop_idx, _ready = flit
        if r == pkt.route[-1]:
            return EJECT, 0
        nxt = pkt.route[hop_idx + 1]
        out_port = self.port_of[r][nxt]
        vc = min(hop_idx, self.config.num_vcs - 1)
        return out_port, vc

    def _enqueue_voq(self, r: int, in_port: int, flit) -> None:
        out, _vc = self._desired_output(r, flit)
        key = (in_port, out)
        q = self.voq[r].get(key)
        if q is None:
            q = self.voq[r][key] = deque()
        q.append(flit)
        self.by_out[r].setdefault(out, set()).add(key)
        self.active.add(r)

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def _step_router(self, r: int) -> bool:
        now = self.now
        by_out = self.by_out[r]
        voq = self.voq[r]
        any_content = False

        # One grant per output per cycle (ejection gets one per endpoint).
        for out in list(by_out.keys()):
            keys = by_out[out]
            if not keys:
                del by_out[out]
                continue
            any_content = True
            grants = max(1, len(self.src_q[r])) if out == EJECT else 1
            key_list = sorted(keys)
            ptr = self.rr[r].get(out, 0) % len(key_list)
            key_list = key_list[ptr:] + key_list[:ptr]
            granted = 0
            for key in key_list:
                if granted >= grants:
                    break
                q = voq[key]
                flit = q[0]
                if flit[3] > now:
                    continue
                _out, dvc = self._desired_output(r, flit)
                if out != EJECT and self.credits[r][out][dvc] <= 0:
                    continue
                q.popleft()
                if not q:
                    keys.discard(key)
                    del voq[key]
                self._return_credit(r, key, flit)
                self._forward(r, flit, out, dvc)
                granted += 1
            self.rr[r][out] = self.rr[r].get(out, 0) + granted

        return any_content

    def _return_credit(self, r: int, key, flit) -> None:
        in_port, _out = key
        deg = len(self.nbrs[r])
        if in_port >= deg:
            # Injection-port buffer slot freed.
            self.inj_credit[r][in_port - deg] += 1
            if self.src_q[r][in_port - deg]:
                self.src_active.add(r)
            return
        pkt, _seq, hop_idx, _ready = flit
        upstream = pkt.route[hop_idx - 1]
        up_out_port = self.port_of[upstream][r]
        vc = min(hop_idx - 1, self.config.num_vcs - 1)
        self.credits[upstream][up_out_port][vc] += 1

    def _forward(self, r: int, flit, out: int, dvc: int) -> None:
        cfg = self.config
        pkt, seq, hop_idx, _ready = flit
        if out == EJECT:
            if seq == cfg.packet_size - 1:
                pkt.t_ejected = self.now
                if pkt.measured:
                    # Count even if completion lands in the drain phase —
                    # avoids survivor bias near saturation.
                    self._stat.latencies.append(pkt.latency)
                    self._stat.hop_counts.append(pkt.hops)
            if self._measuring:
                self._stat.ejected_flits += 1
            return
        nxt = int(self.nbrs[r][out])
        in_port = self.rev_port[r][out]
        ready = self.now + cfg.link_latency + cfg.router_pipeline
        self.credits[r][out][dvc] -= 1
        self._enqueue_voq(nxt, in_port, (pkt, seq, hop_idx + 1, ready))

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        self._inject()
        self._feed_injection_ports()
        # Swap in a fresh active set before processing: routers that
        # receive flits during this cycle (via _forward) are re-activated
        # into it, so nothing is lost when the snapshot is replaced.
        snapshot = self.active
        self.active = set()
        for r in snapshot:
            if self._step_router(r):
                self.active.add(r)
        self.now += 1

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run(self, warmup: int = 600, measure: int = 1200, drain: int = 300) -> SimResult:
        """Warm up, measure, optionally drain; returns the window's stats."""
        for _ in range(warmup):
            self.step()
        self._measuring = True
        start = self.now
        for _ in range(measure):
            self.step()
        self._stat.cycles = self.now - start
        self._measuring = False
        if drain:
            saved_load, self.load = self.load, 0.0
            for _ in range(drain):
                self.step()
            self.load = saved_load
        self.result = self._stat.finalize()
        return self._stat
