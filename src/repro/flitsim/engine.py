"""Shared simulator core: config, results, and the engine contract.

Two interchangeable engines implement the same cycle-level protocol:

* :class:`~repro.flitsim.reference.NetworkSimulator` — the readable
  dict-of-deques reference implementation;
* :class:`~repro.flitsim.flatcore.FlatSimulator` — the struct-of-arrays
  production engine (preallocated numpy flit pool, flat ring/linked VOQs,
  dense credit arrays, vectorized injection).

The protocol is defined precisely enough that both engines produce
**bit-identical** :class:`SimResult`\\ s for the same seed (the golden
equivalence tests pin this):

1. *Injection*: with ``prob = load / packet_size > 0``, one
   ``rng.random(num_endpoints)`` Bernoulli draw across all endpoints in
   router-major order; then one batched
   :meth:`~repro.flitsim.traffic.TrafficPattern.dest_routers` call for
   the winners, then one batched
   :meth:`~repro.routing.policies.RoutingPolicy.select_routes` call.
   Packets enter unbounded per-endpoint source FIFOs.
2. *Feed*: one flit per endpoint per cycle moves from its source FIFO
   into the router's injection-port VOQ, subject to injection credits.
3. *Router phase* (synchronous): all grants are decided from the state
   left by step 2, then applied together — credits freed and flits
   forwarded this cycle become visible next cycle.  Per (router, output)
   a single round-robin pointer scans input ports circularly; a grant
   advances the pointer just past the granted port.  Link outputs grant
   one flit; the ejection output grants up to ``max(1, concentration)``.
   Routers are processed in ascending index order, outputs in ascending
   port order with ejection last — the order latency samples are
   recorded in.
4. ``output_occupancy`` is an O(1) read of incrementally-maintained
   per-output backlog counters plus first-hop-class credit debt.

**Workload mode** (closed loop): constructing a simulator with a
:class:`~repro.workloads.Workload` replaces protocol step 1 — there is
no Bernoulli draw at all.  Instead the cycle starts by draining the
workload's ready queue (messages whose dependencies' tail flits have all
ejected) into fixed-size packets, with one batched ``select_routes``
call per cycle and per-router round-robin endpoint assignment; message
completions commit at the end of the cycle (see
:mod:`repro.workloads.state` for the precise eligibility semantics,
shared verbatim by both engines).  Steps 2-4 are unchanged, and the
golden rule still holds: flat and reference produce bit-identical
:class:`~repro.workloads.WorkloadResult`\\ s per seed.  Closed-loop runs
use :meth:`SimulatorCore.run_workload` instead of
:meth:`SimulatorCore.run`.

**Fault mode**: constructing a simulator with a
:class:`~repro.faults.FaultTimeline` prepends a *fault phase* to every
cycle, shared semantics living in :class:`~repro.faults.state.FaultState`:

0. *Events* (cycle start, before injection): on an event cycle the state
   returns the epoch delta and the engine applies it in canonical order —
   retable the policy to the epoch's repaired tables, record a
   latency-sample mark, then per newly dead link (sorted ``(u, v)``, the
   ``u`` end first): (rule 1) drop every flit queued for the dead output
   at either end, input ports ascending, each queue front to back,
   returning the input-side credit (upstream link or injection buffer);
   (rule 2) drop every flit at the dead link's input port — buffered or
   still on the wire — outputs ascending with ejection last, *without*
   credit return (the owning credits are the dead link's own, reset at
   revival).  Newly dead routers (sorted) then drop any remaining VOQ
   content (same canonical order) and their endpoints' source FIFOs
   (endpoint ascending), and their endpoints stop injecting/ejecting.
   Newly alive links/routers (sorted) restore credits to full depth —
   exact, because death emptied the downstream buffers.
1. *Injection*: the Bernoulli draw always covers all endpoints (the RNG
   stream is failure-independent); winners on dead routers are masked,
   and packets whose drawn destination router is dead are blackholed
   (counted, never routed).  Closed-loop: ready messages with a dead
   endpoint are blackholed whole; the retransmit queue drains *ahead of*
   new messages, in drop order.
2. *Feed*: an endpoint head flit whose desired output is dead is dropped
   (endpoint order) without consuming the injection credit.
3. *Router phase*: a granted flit whose desired output at the next
   router is dead evaporates on the wire — the upstream credit is never
   consumed — in grant order (routers ascending, outputs ascending with
   ejection last, round-robin rank).  A packet whose tail flit drops is
   lost (counted; in workload mode with ``retransmit`` it re-enters the
   source's queue next cycle with a freshly selected route).

The golden rule extends: flat and reference engines produce bit-identical
results per seed for every fault timeline, including drop counts,
retransmit order, and post-repair routes.

**C cycle kernel**: when cffi and a C compiler are available the flat
engine executes steps 2-3 — including fault-mode wire/feed drops and the
tail-completion reporting workload mode needs — in a compiled kernel for
*every* mode (open-loop, workload, fault, and combined), with Python
keeping only epoch deltas (step 0) and dependency/retransmit bookkeeping.
Results stay bit-identical either way; see :mod:`repro.flitsim._kernel`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SimConfig",
    "SimResult",
    "SimulatorCore",
    "make_fault_state",
    "EJECT",
    "ENGINE_ENV",
    "DEFAULT_ENGINE",
    "available_engines",
    "make_simulator",
]

EJECT = -1  # sentinel output port

#: environment override for the default simulation engine
ENGINE_ENV = "REPRO_SIM_ENGINE"

#: engine used when neither the caller nor the environment picks one
DEFAULT_ENGINE = "flat"


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs (defaults are the paper's, scaled where noted)."""

    #: flits per packet (paper: 4)
    packet_size: int = 4
    #: virtual channels (hop classes) per port (paper: 4)
    num_vcs: int = 4
    #: flit slots per (port, VC) buffer; the paper's 128-flit ports with 4
    #: VCs give 32 — the scaled default keeps queueing dynamics visible at
    #: reduced network sizes
    vc_depth: int = 8
    #: cycles a flit spends on a link
    link_latency: int = 1
    #: router pipeline latency applied on arrival before a flit may compete
    router_pipeline: int = 2

    @property
    def port_capacity(self) -> int:
        """Total flit capacity of one input port (all VCs)."""
        return self.num_vcs * self.vc_depth


@dataclass
class SimResult:
    """Steady-state measurements of one simulation run.

    ``latencies``/``hop_counts`` accumulate as plain lists during the
    run (appends are the hot path) and are packed into numpy arrays by
    :meth:`finalize` when the run ends, so every statistic below is a
    single vectorized reduction.
    """

    offered_load: float
    cycles: int
    num_endpoints: int
    injected_flits: int = 0
    ejected_flits: int = 0
    latencies: "list | np.ndarray" = field(default_factory=list)
    hop_counts: "list | np.ndarray" = field(default_factory=list)

    def finalize(self) -> "SimResult":
        """Pack sample lists into arrays (idempotent)."""
        self.latencies = np.asarray(self.latencies, dtype=np.float64)
        self.hop_counts = np.asarray(self.hop_counts, dtype=np.int64)
        return self

    @property
    def accepted_load(self) -> float:
        """Ejected flits per endpoint per cycle (throughput)."""
        return self.ejected_flits / (self.cycles * self.num_endpoints)

    @property
    def avg_latency(self) -> float:
        """Mean packet latency (cycles) over measured, delivered packets."""
        lat = self.latencies
        return float(np.mean(lat)) if len(lat) else float("nan")

    def latency_percentile(self, pct: float) -> float:
        """``pct``-th percentile packet latency (NaN with no samples)."""
        lat = self.latencies
        return float(np.percentile(lat, pct)) if len(lat) else float("nan")

    @property
    def p50_latency(self) -> float:
        """Median packet latency."""
        return self.latency_percentile(50)

    @property
    def p99_latency(self) -> float:
        """99th-percentile packet latency."""
        return self.latency_percentile(99)

    @property
    def avg_hops(self) -> float:
        """Mean route length of measured packets."""
        hops = self.hop_counts
        return float(np.mean(hops)) if len(hops) else float("nan")

    @property
    def saturated(self) -> bool:
        """Heuristic: accepted below 95% of offered indicates saturation."""
        return self.accepted_load < 0.95 * self.offered_load


def validate_sim_args(topo, policy, load: float, config: SimConfig) -> None:
    """Common constructor validation shared by both engines."""
    if topo.num_endpoints == 0:
        raise ValueError("simulation requires endpoints (concentration > 0)")
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1] (fraction of injection bw)")
    if policy.max_hops > config.num_vcs + 1:
        raise ValueError(
            f"policy worst case {policy.max_hops} hops needs at least "
            f"{policy.max_hops - 1} VCs for deadlock freedom, have "
            f"{config.num_vcs}"
        )


def make_workload_state(workload, config: SimConfig, topo):
    """Attach-time construction of the shared closed-loop bookkeeping.

    ``None`` passes through, so engine constructors can accept
    ``workload=None`` uniformly.  Imported lazily: the workloads package
    sits above the engine layer.
    """
    if workload is None:
        return None
    from repro.workloads.state import WorkloadState

    return WorkloadState(workload, config.packet_size, topo)


def make_fault_state(faults, topo, policy):
    """Attach-time construction of the shared fault bookkeeping.

    ``None`` passes through.  Construction compiles the timeline into
    epochs, builds every repaired routing table (raising immediately if
    survivors ever disconnect), and ratchets ``policy.max_hops`` to the
    across-epoch ceiling — so call this *before* validating VC counts or
    sizing route buffers.  Imported lazily: the faults package sits
    above the engine layer.
    """
    if faults is None:
        return None
    from repro.faults.state import FaultState

    return FaultState(faults, topo, policy)


class SimulatorCore:
    """Run-loop and congestion-view surface shared by both engines.

    Subclasses provide ``step()`` plus the state the protocol requires
    (``now``, ``load``, ``_measuring``, ``_stat``).
    """

    #: closed-loop workload state; engine constructors set per instance
    _wl = None
    #: dynamic fault state; engine constructors set per instance
    _fault = None
    #: fault accounting of the last run (None without a timeline)
    fault_result = None

    def output_capacity(self) -> int:
        """Normalization for threshold-style adaptive decisions."""
        return self.config.vc_depth

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, warmup: int = 600, measure: int = 1200, drain: int = 300) -> SimResult:
        """Warm up, measure, optionally drain; returns the window's stats."""
        if self._wl is not None:
            raise RuntimeError(
                "this simulator drives a workload; use run_workload()"
            )
        if self._fault is not None:
            self._fault.begin_run(self.policy)
        for _ in range(warmup):
            self.step()
        self._measuring = True
        start = self.now
        for _ in range(measure):
            self.step()
        self._stat.cycles = self.now - start
        self._measuring = False
        self._drain(drain)
        self.result = self._stat.finalize()
        if self._fault is not None:
            self.fault_result = self._fault.build_result(self._stat)
        return self._stat

    def _drain(self, drain: int) -> None:
        """Step ``drain`` cycles at zero offered load (post-measure).

        Measured packets still in flight keep recording latency samples
        while they eject — :meth:`run` and the windowed drivers in
        :mod:`repro.flitsim.telemetry` share this so their results stay
        bit-identical.
        """
        if drain:
            saved_load, self.load = self.load, 0.0
            for _ in range(drain):
                self.step()
            self.load = saved_load

    def run_workload(self, max_cycles: int = 200_000):
        """Run the attached workload to completion (or ``max_cycles``).

        Closed-loop counterpart of :meth:`run`: the whole run is
        measured (every packet contributes samples), and the loop exits
        the cycle after the last message's tail flit ejects — so
        ``cycles`` equals the collective's completion time when the run
        finishes.  Returns a
        :class:`~repro.workloads.WorkloadResult`.
        """
        if self._wl is None:
            raise RuntimeError(
                "no workload attached; pass workload= at construction"
            )
        from repro.workloads.result import build_workload_result

        if self._fault is not None:
            self._fault.begin_run(self.policy)
        self._measuring = True
        state = self._wl
        while not state.done and self.now < max_cycles:
            self.step()
        self._stat.cycles = self.now
        self._measuring = False
        self._stat.finalize()
        if self._fault is not None:
            self.fault_result = self._fault.build_result(self._stat)
        self.workload_result = build_workload_result(state, self._stat, self.topo)
        return self.workload_result


def _engine_classes() -> dict:
    # Imported lazily: the engine modules import this one.
    from repro.flitsim.flatcore import FlatSimulator
    from repro.flitsim.reference import NetworkSimulator

    return {"flat": FlatSimulator, "reference": NetworkSimulator}


def available_engines() -> tuple:
    """Names accepted by :func:`make_simulator` and ``$REPRO_SIM_ENGINE``."""
    return tuple(sorted(_engine_classes()))


def make_simulator(
    topo,
    policy,
    traffic,
    load: float,
    config: "SimConfig | None" = None,
    seed=0,
    engine: "str | None" = None,
    workload=None,
    faults=None,
):
    """Construct a simulator for one cell with the selected engine.

    ``engine`` of ``None`` reads ``$REPRO_SIM_ENGINE`` (default
    ``"flat"``); set ``REPRO_SIM_ENGINE=reference`` to fall back to the
    readable engine for debugging.  Passing a
    :class:`~repro.workloads.Workload` switches the simulator to the
    closed-loop protocol (``traffic`` may then be ``None`` and ``load``
    is ignored — drive it with :meth:`SimulatorCore.run_workload`).
    Passing a :class:`~repro.faults.FaultTimeline` as ``faults`` enables
    in-simulation failures with deterministic route repair (composes
    with either mode); VC counts must cover the *degraded* worst case —
    ``prepare_fault_policy`` + ``auto_sim_config`` handle the sizing.
    """
    name = engine or os.environ.get(ENGINE_ENV, DEFAULT_ENGINE)
    classes = _engine_classes()
    if name not in classes:
        raise ValueError(
            f"unknown simulation engine {name!r}; choose from "
            + ", ".join(sorted(classes))
        )
    if config is None:
        config = SimConfig()
    return classes[name](
        topo, policy, traffic, load, config=config, seed=seed,
        workload=workload, faults=faults,
    )
