"""Packet and flit representation for the cycle-accurate simulator.

A packet is source-routed: the full router path is decided at injection
(table lookup + adaptive policy, exactly as the paper's UGAL variants do)
and carried with the packet.  Flits are ``(packet, seq)`` pairs; keeping
them as tuples of a shared Packet object avoids per-flit allocation of
routing state.
"""

from __future__ import annotations

__all__ = ["Packet"]


class Packet:
    """One network packet.

    Attributes
    ----------
    pid:
        Unique id (monotone injection order).
    route:
        Tuple of router ids from source to destination inclusive.
    size:
        Number of flits.
    t_created:
        Cycle at which the packet entered its source queue.
    t_ejected:
        Cycle at which the tail flit left the network (-1 while in flight).
    """

    __slots__ = (
        "pid", "route", "size", "t_created", "t_ejected", "measured", "mid",
        "damaged",
    )

    def __init__(self, pid: int, route: tuple[int, ...], size: int, t_created: int):
        self.pid = pid
        self.route = route
        self.size = size
        self.t_created = t_created
        self.t_ejected = -1
        #: whether this packet was created inside the measurement window
        self.measured = False
        #: owning workload message id (-1 for open-loop traffic)
        self.mid = -1
        #: whether a fault dropped any flit of this packet (fault mode)
        self.damaged = False

    @property
    def src(self) -> int:
        """Source router."""
        return self.route[0]

    @property
    def dst(self) -> int:
        """Destination router."""
        return self.route[-1]

    @property
    def hops(self) -> int:
        """Router-to-router hops along the carried route."""
        return len(self.route) - 1

    @property
    def latency(self) -> int:
        """Creation-to-tail-ejection latency; -1 while in flight."""
        return self.t_ejected - self.t_created if self.t_ejected >= 0 else -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Packet({self.pid}, route={self.route}, t={self.t_created})"
