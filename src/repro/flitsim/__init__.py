"""Cycle-accurate flit-level network simulator (the BookSim substitute).

Input-queued VC routers with credit flow control, Bernoulli injection of
multi-flit packets, the paper's traffic patterns, and a load-sweep harness
producing the latency/throughput curves of Figures 8-11.

Two result-equivalent engines implement the cycle protocol (see
:mod:`repro.flitsim.engine`): the struct-of-arrays
:class:`~repro.flitsim.flatcore.FlatSimulator` production core (default;
optional C kernel) and the readable
:class:`~repro.flitsim.reference.NetworkSimulator` oracle
(``REPRO_SIM_ENGINE=reference``).
"""

from repro.flitsim.packet import Packet
from repro.flitsim.engine import (
    ENGINE_ENV,
    SimConfig,
    SimResult,
    available_engines,
    make_simulator,
)
from repro.flitsim.flatcore import FlatFabric, FlatSimulator
from repro.flitsim.reference import NetworkSimulator
from repro.flitsim.traffic import (
    TrafficPattern,
    UniformTraffic,
    PermutationTraffic,
    TornadoTraffic,
    RandomPermutationTraffic,
    OneHopPermutationTraffic,
    TwoHopPermutationTraffic,
    one_hop_permutation,
    two_hop_permutation,
)
from repro.flitsim.sweep import SweepPoint, LoadSweep, run_load_sweep, saturation_load
from repro.flitsim.patterns_extra import (
    BitComplementTraffic,
    ShiftTraffic,
    HotspotTraffic,
)
from repro.flitsim.telemetry import (
    LinkTelemetry,
    run_with_telemetry,
    run_with_timeseries,
    run_workload_with_timeseries,
)
from repro.flitsim.latency_model import LatencyModel

__all__ = [
    "ENGINE_ENV",
    "available_engines",
    "make_simulator",
    "FlatFabric",
    "FlatSimulator",
    "BitComplementTraffic",
    "ShiftTraffic",
    "HotspotTraffic",
    "LinkTelemetry",
    "run_with_telemetry",
    "run_with_timeseries",
    "run_workload_with_timeseries",
    "LatencyModel",
    "Packet",
    "NetworkSimulator",
    "SimConfig",
    "SimResult",
    "TrafficPattern",
    "UniformTraffic",
    "PermutationTraffic",
    "TornadoTraffic",
    "RandomPermutationTraffic",
    "OneHopPermutationTraffic",
    "TwoHopPermutationTraffic",
    "one_hop_permutation",
    "two_hop_permutation",
    "SweepPoint",
    "LoadSweep",
    "run_load_sweep",
    "saturation_load",
]
