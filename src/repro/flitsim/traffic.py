"""Traffic patterns (paper Section VIII-A).

All patterns operate at *router* granularity, mirroring the paper's
co-packaged setting: under permutation patterns every endpoint of a router
sends to endpoints of a single partner router ("permutations are computed
between routers, and not endpoints").

* :class:`UniformTraffic` — destination router uniform at random.
* :class:`TornadoTraffic` — router ``i`` sends to ``i + N/2 mod N``.
* :class:`RandomPermutationTraffic` — a fixed random router derangement.
* :func:`one_hop_permutation` / :func:`two_hop_permutation` — the paper's
  Perm1Hop / Perm2Hop adversarial patterns: permutations whose image is
  always at exactly 1 (resp. 2) hops, built with Kuhn's bipartite-matching
  algorithm so they exist whenever the topology admits them.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import TRAFFICS
from repro.topologies.base import Topology
from repro.utils.rng import make_rng

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "PermutationTraffic",
    "TornadoTraffic",
    "RandomPermutationTraffic",
    "one_hop_permutation",
    "two_hop_permutation",
    "OneHopPermutationTraffic",
    "TwoHopPermutationTraffic",
]


class TrafficPattern:
    """Maps a source router to a destination router per packet.

    Only *terminal* routers — those hosting at least one endpoint — send
    or receive traffic; on direct networks that is every router, while on
    a fat tree it is the edge switches.
    """

    name = "abstract"

    def __init__(self, topo: Topology):
        self.topo = topo
        terminals = np.flatnonzero(topo.concentration > 0)
        if terminals.size == 0:
            terminals = np.arange(topo.num_routers)
        self.terminals = terminals
        self._pos = {int(t): i for i, t in enumerate(terminals)}
        # Array form of _pos for the batched/vectorized path.
        self._pos_arr = np.full(topo.num_routers, -1, dtype=np.int64)
        self._pos_arr[terminals] = np.arange(terminals.size)

    def dest_router(self, src_router: int, rng) -> int:
        """Destination router for a packet injected at ``src_router``."""
        raise NotImplementedError

    def dest_routers(self, src_routers, rng) -> np.ndarray:
        """Destination routers for a batch of same-cycle injections.

        The simulator's injection entry point (both engines): one call
        per cycle with all Bernoulli winners, in endpoint order.  The
        base implementation draws per source in order; patterns override
        it with a single vectorized RNG draw where possible.  A pattern's
        RNG consumption is defined by *this* method — scalar
        :meth:`dest_router` need not consume the stream identically.
        """
        out = np.empty(len(src_routers), dtype=np.int64)
        for i, src in enumerate(src_routers):
            out[i] = self.dest_router(int(src), rng)
        return out


class UniformTraffic(TrafficPattern):
    """Uniform random destinations (excluding the source router)."""

    name = "uniform"

    def dest_router(self, src_router: int, rng) -> int:
        t = self.terminals
        d = int(rng.integers(t.size - 1))
        pos = self._pos[src_router]
        return int(t[d if d < pos else d + 1])

    def dest_routers(self, src_routers, rng) -> np.ndarray:
        t = self.terminals
        d = rng.integers(t.size - 1, size=len(src_routers))
        pos = self._pos_arr[np.asarray(src_routers, dtype=np.int64)]
        return t[np.where(d < pos, d, d + 1)]


class PermutationTraffic(TrafficPattern):
    """Fixed terminal-router to terminal-router permutation traffic."""

    name = "permutation"

    def __init__(self, topo: Topology, mapping: np.ndarray):
        super().__init__(topo)
        mapping = np.asarray(mapping, dtype=np.int64)
        t = self.terminals
        if mapping.shape != t.shape:
            raise ValueError("mapping must assign one destination per terminal")
        if np.any(np.sort(mapping) != np.sort(t)):
            raise ValueError("mapping must permute the terminal routers")
        self.mapping = mapping

    def dest_router(self, src_router: int, rng) -> int:
        return int(self.mapping[self._pos[src_router]])

    def dest_routers(self, src_routers, rng) -> np.ndarray:
        # Fixed mapping: no RNG draws in either scalar or batched form.
        return self.mapping[self._pos_arr[np.asarray(src_routers, dtype=np.int64)]]


class TornadoTraffic(PermutationTraffic):
    """Tornado: terminal ``i`` sends halfway across, to ``i + N/2 mod N``."""

    name = "tornado"

    def __init__(self, topo: Topology):
        terminals = np.flatnonzero(topo.concentration > 0)
        if terminals.size == 0:
            terminals = np.arange(topo.num_routers)
        n = terminals.size
        mapping = terminals[(np.arange(n) + n // 2) % n]
        super().__init__(topo, mapping)


class RandomPermutationTraffic(PermutationTraffic):
    """A uniformly random derangement of the terminal routers (seeded)."""

    name = "randperm"

    def __init__(self, topo: Topology, seed=0):
        rng = make_rng(seed)
        terminals = np.flatnonzero(topo.concentration > 0)
        if terminals.size == 0:
            terminals = np.arange(topo.num_routers)
        n = terminals.size
        while True:
            perm = rng.permutation(n)
            if not np.any(perm == np.arange(n)):
                break
        super().__init__(topo, terminals[perm])


# ----------------------------------------------------------------------
# Distance-constrained permutations (Perm1Hop / Perm2Hop)
# ----------------------------------------------------------------------
def _distance_permutation(topo: Topology, hops: int, seed=0) -> np.ndarray:
    """A permutation of the terminal routers with ``dist(i, pi(i)) == hops``.

    Kuhn's augmenting-path bipartite matching between terminals and their
    exact-``hops`` neighborhoods; candidate order is shuffled by ``seed``
    so different seeds give different adversarial instances.  Returns the
    image array aligned with the topology's terminal list.
    """
    rng = make_rng(seed)
    graph = topo.graph
    terminals = np.flatnonzero(topo.concentration > 0)
    if terminals.size == 0:
        terminals = np.arange(topo.num_routers)
    term_pos = {int(t): i for i, t in enumerate(terminals)}
    n = terminals.size
    candidates: list[list[int]] = []
    for v in terminals:
        dist = graph.bfs_distances(int(v))
        cand = [
            term_pos[int(u)]
            for u in np.flatnonzero(dist == hops)
            if int(u) in term_pos
        ]
        if not cand:
            raise ValueError(
                f"router {int(v)} has no terminal at exactly {hops} hops"
            )
        candidates.append([int(c) for c in rng.permutation(cand)])

    match_of_dst = np.full(n, -1, dtype=np.int64)

    def try_assign(src: int, visited: set) -> bool:
        for dst in candidates[src]:
            if dst in visited:
                continue
            visited.add(dst)
            if match_of_dst[dst] < 0 or try_assign(int(match_of_dst[dst]), visited):
                match_of_dst[dst] = src
                return True
        return False

    for src in rng.permutation(n):
        if not try_assign(int(src), set()):
            raise RuntimeError(
                f"no {hops}-hop permutation exists for {topo.name}"
            )
    mapping = np.empty(n, dtype=np.int64)
    for d in range(n):
        mapping[int(match_of_dst[d])] = terminals[d]
    return mapping


def one_hop_permutation(topo: Topology, seed=0) -> np.ndarray:
    """Permutation sending every router to one of its direct neighbors."""
    return _distance_permutation(topo, 1, seed)


def two_hop_permutation(topo: Topology, seed=0) -> np.ndarray:
    """Permutation sending every router exactly 2 hops away."""
    return _distance_permutation(topo, 2, seed)


class OneHopPermutationTraffic(PermutationTraffic):
    """Perm1Hop: min-paths are 1 hop; UGAL_PF detours are 4 hops."""

    name = "perm1hop"

    def __init__(self, topo: Topology, seed=0):
        super().__init__(topo, one_hop_permutation(topo, seed))


class TwoHopPermutationTraffic(PermutationTraffic):
    """Perm2Hop: min-paths are 2 hops; UGAL_PF detours are 3 hops."""

    name = "perm2hop"

    def __init__(self, topo: Topology, seed=0):
        super().__init__(topo, two_hop_permutation(topo, seed))


# ----------------------------------------------------------------------
# Spec registrations — factories take (topo, **spec kwargs)
# ----------------------------------------------------------------------
@TRAFFICS.register("uniform")
def _uniform_from_spec(topo) -> UniformTraffic:
    return UniformTraffic(topo)


@TRAFFICS.register("tornado")
def _tornado_from_spec(topo) -> TornadoTraffic:
    return TornadoTraffic(topo)


@TRAFFICS.register("randperm", example="randperm:seed=3")
def _randperm_from_spec(topo, seed: int = 0) -> RandomPermutationTraffic:
    return RandomPermutationTraffic(topo, seed=seed)


@TRAFFICS.register("perm1hop", example="perm1hop:seed=1")
def _perm1hop_from_spec(topo, seed: int = 0) -> OneHopPermutationTraffic:
    return OneHopPermutationTraffic(topo, seed=seed)


@TRAFFICS.register("perm2hop", example="perm2hop:seed=1")
def _perm2hop_from_spec(topo, seed: int = 0) -> TwoHopPermutationTraffic:
    return TwoHopPermutationTraffic(topo, seed=seed)
