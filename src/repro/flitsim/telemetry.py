"""Telemetry: per-link utilization and queue-depth sampling.

Wraps a :class:`~repro.flitsim.reference.NetworkSimulator` run with
counters a network operator would scrape: flits carried per directed
link, buffer occupancy samples, and derived hot-spot reports.  Used by
the adversarial-traffic analyses to show *where* min-path routing
concentrates load (the mechanistic story behind Figure 9).

Telemetry instruments *both* engines: the reference engine by hooking
its per-flit forward step, and the flat engine via vectorized counter
arrays (:meth:`~repro.flitsim.flatcore.FlatSimulator.attach_link_telemetry`,
with a counter-array hook inside the C kernel so kernel mode stays
instrumented).  Both count a link grant at the same accounting point —
before any fault doom filtering, during the measure window only — so
per-link flit counts agree bit-exactly across engines (pinned by
``tests/test_telemetry_flat.py``), which makes telemetry usable at
scales where the reference engine is too slow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flitsim.reference import NetworkSimulator

__all__ = ["LinkTelemetry", "run_with_telemetry"]


@dataclass
class LinkTelemetry:
    """Per-directed-link flit counts and occupancy statistics."""

    cycles: int
    #: total directed links in the topology (idle ones count in stats)
    num_directed_links: int = 0
    #: {(u, v): flits sent u->v}
    link_flits: dict = field(default_factory=dict)
    #: sampled mean occupancy per directed link
    mean_occupancy: dict = field(default_factory=dict)

    def utilization(self, u: int, v: int) -> float:
        """Fraction of cycles link ``u -> v`` carried a flit."""
        return self.link_flits.get((u, v), 0) / max(self.cycles, 1)

    def max_utilization(self) -> tuple[tuple[int, int], float]:
        """The hottest directed link and its utilization."""
        if not self.link_flits:
            return ((-1, -1), 0.0)
        link = max(self.link_flits, key=self.link_flits.get)
        return link, self.utilization(*link)

    def utilization_histogram(self, bins=10) -> tuple[np.ndarray, np.ndarray]:
        """Histogram over all directed links' utilizations.

        Covers *every* directed link of the topology — idle links land
        in the zero bin — so the counts sum to ``num_directed_links``
        (or to the number of observed links if that field was left 0).
        """
        n = max(self.num_directed_links, len(self.link_flits), 1)
        utils = np.zeros(n, dtype=float)
        vals = np.fromiter(self.link_flits.values(), dtype=float,
                           count=len(self.link_flits))
        utils[: vals.size] = vals / max(self.cycles, 1)
        return np.histogram(utils, bins=bins, range=(0, 1))

    def gini(self) -> float:
        """Gini coefficient of link load — 0 is perfectly balanced.

        Computed over *all* directed links of the topology, including the
        idle ones: adversarial patterns under minimal routing leave most
        links dark while saturating a few, which is exactly the imbalance
        this measures.
        """
        n = max(self.num_directed_links, len(self.link_flits))
        loads = np.zeros(n, dtype=float)
        vals = np.fromiter(self.link_flits.values(), dtype=float,
                           count=len(self.link_flits))
        loads[: vals.size] = vals
        loads.sort()
        if loads.sum() == 0:
            return 0.0
        cum = np.cumsum(loads)
        return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def run_with_telemetry(
    sim, warmup: int = 300, measure: int = 600, sample_every: int = 8
):
    """Run ``sim`` collecting link telemetry during the measurement window.

    Returns ``(SimResult, LinkTelemetry)``.  Accepts either engine: the
    reference engine derives link counts by intercepting its per-flit
    forward step, the flat engine by attaching its vectorized counter
    arrays (numpy or C-kernel route phase alike).  Occupancy is sampled
    every ``sample_every`` cycles from credit state in both.  The two
    engines' per-link flit counts are bit-identical for the same seed.
    """
    if isinstance(sim, NetworkSimulator):
        return _run_reference_telemetry(sim, warmup, measure, sample_every)
    from repro.flitsim.flatcore import FlatSimulator

    if isinstance(sim, FlatSimulator):
        return _run_flat_telemetry(sim, warmup, measure, sample_every)
    raise TypeError(
        "run_with_telemetry instruments the reference or flat engine; got "
        f"{type(sim).__name__}"
    )


def _run_reference_telemetry(
    sim: NetworkSimulator, warmup: int, measure: int, sample_every: int
):
    """The forward-hook path for the dict-of-deques reference engine."""
    telemetry = LinkTelemetry(
        cycles=measure, num_directed_links=2 * sim.topo.num_links
    )
    counting = False
    original_forward = sim._forward

    def counted_forward(r, flit, out, dvc):
        if counting and out != -1:  # EJECT is -1
            nxt = int(sim.nbrs[r][out])
            key = (r, nxt)
            telemetry.link_flits[key] = telemetry.link_flits.get(key, 0) + 1
        return original_forward(r, flit, out, dvc)

    sim._forward = counted_forward
    occupancy_sum: dict = {}
    samples = 0
    try:
        for _ in range(warmup):
            sim.step()
        counting = True
        sim._measuring = True
        start = sim.now
        for i in range(measure):
            sim.step()
            if i % sample_every == 0:
                samples += 1
                for r in range(sim.topo.num_routers):
                    for port, v in enumerate(sim.nbrs[r]):
                        occ = sim.config.port_capacity - sum(sim.credits[r][port])
                        if occ:
                            key = (r, int(v))
                            occupancy_sum[key] = occupancy_sum.get(key, 0) + occ
        sim._stat.cycles = sim.now - start
        sim._measuring = False
    finally:
        sim._forward = original_forward
    telemetry.mean_occupancy = {
        k: s / max(samples, 1) for k, s in occupancy_sum.items()
    }
    sim.result = sim._stat.finalize()
    return sim._stat, telemetry


def _run_flat_telemetry(sim, warmup: int, measure: int, sample_every: int):
    """The counter-array path for the struct-of-arrays flat engine.

    Mirrors the reference loop exactly (same warmup/measure windows,
    same post-step sampling cycles, no drain) so the collected counts
    are bit-comparable.  Works with both the numpy route phase and the
    C kernel — :meth:`attach_link_telemetry` instruments either.
    """
    fab = sim.fab
    telemetry = LinkTelemetry(
        cycles=measure, num_directed_links=2 * sim.topo.num_links
    )
    ltel = sim.attach_link_telemetry()
    base = ltel.copy()
    Dp = sim._ltel_dp
    cap = sim.config.port_capacity
    # Padding credit columns (port >= deg) hold 0 credits, which would
    # read as a full buffer; mask to real link ports, like the reference
    # loop's iteration over nbrs[r].
    port_mask = np.arange(Dp)[None, :] < fab.deg[:, None]
    occupancy_sum = np.zeros((fab.n, Dp), dtype=np.int64)
    samples = 0
    for _ in range(warmup):
        sim.step()
    sim._measuring = True
    start = sim.now
    for i in range(measure):
        sim.step()
        if i % sample_every == 0:
            samples += 1
            occupancy_sum += cap - sim.credits.sum(axis=2)
    sim._stat.cycles = sim.now - start
    sim._measuring = False
    delta = ltel - base
    for idx in np.flatnonzero(delta).tolist():
        r, out = divmod(idx, Dp)
        telemetry.link_flits[(r, int(fab.nbr_mat[r, out]))] = int(delta[idx])
    occupancy_sum[~port_mask] = 0
    rr, oo = np.nonzero(occupancy_sum)
    telemetry.mean_occupancy = {
        (int(r), int(fab.nbr_mat[r, o])): occupancy_sum[r, o] / max(samples, 1)
        for r, o in zip(rr.tolist(), oo.tolist())
    }
    sim.result = sim._stat.finalize()
    return sim._stat, telemetry
