"""Telemetry: per-link utilization and queue-depth sampling.

Wraps a :class:`~repro.flitsim.reference.NetworkSimulator` run with
counters a network operator would scrape: flits carried per directed
link, buffer occupancy samples, and derived hot-spot reports.  Used by
the adversarial-traffic analyses to show *where* min-path routing
concentrates load (the mechanistic story behind Figure 9).

Telemetry instruments the *reference* engine (it hooks the per-flit
forward step, which the flat engine deliberately doesn't have); the two
engines are result-equivalent, so what it observes holds for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flitsim.reference import NetworkSimulator

__all__ = ["LinkTelemetry", "run_with_telemetry"]


@dataclass
class LinkTelemetry:
    """Per-directed-link flit counts and occupancy statistics."""

    cycles: int
    #: total directed links in the topology (idle ones count in stats)
    num_directed_links: int = 0
    #: {(u, v): flits sent u->v}
    link_flits: dict = field(default_factory=dict)
    #: sampled mean occupancy per directed link
    mean_occupancy: dict = field(default_factory=dict)

    def utilization(self, u: int, v: int) -> float:
        """Fraction of cycles link ``u -> v`` carried a flit."""
        return self.link_flits.get((u, v), 0) / max(self.cycles, 1)

    def max_utilization(self) -> tuple[tuple[int, int], float]:
        """The hottest directed link and its utilization."""
        if not self.link_flits:
            return ((-1, -1), 0.0)
        link = max(self.link_flits, key=self.link_flits.get)
        return link, self.utilization(*link)

    def utilization_histogram(self, bins=10) -> tuple[np.ndarray, np.ndarray]:
        """Histogram over all directed links' utilizations."""
        utils = [self.utilization(u, v) for (u, v) in self.link_flits]
        return np.histogram(np.asarray(utils or [0.0]), bins=bins, range=(0, 1))

    def gini(self) -> float:
        """Gini coefficient of link load — 0 is perfectly balanced.

        Computed over *all* directed links of the topology, including the
        idle ones: adversarial patterns under minimal routing leave most
        links dark while saturating a few, which is exactly the imbalance
        this measures.
        """
        n = max(self.num_directed_links, len(self.link_flits))
        loads = np.zeros(n, dtype=float)
        vals = np.fromiter(self.link_flits.values(), dtype=float,
                           count=len(self.link_flits))
        loads[: vals.size] = vals
        loads.sort()
        if loads.sum() == 0:
            return 0.0
        cum = np.cumsum(loads)
        return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def run_with_telemetry(
    sim: NetworkSimulator, warmup: int = 300, measure: int = 600, sample_every: int = 8
):
    """Run ``sim`` collecting link telemetry during the measurement window.

    Returns ``(SimResult, LinkTelemetry)``.  Link counts are derived by
    intercepting the simulator's forward step; occupancy is sampled every
    ``sample_every`` cycles from credit state.
    """
    if not isinstance(sim, NetworkSimulator):
        raise TypeError(
            "run_with_telemetry instruments the reference engine; construct "
            "a repro.flitsim.reference.NetworkSimulator for telemetry runs"
        )
    telemetry = LinkTelemetry(
        cycles=measure, num_directed_links=2 * sim.topo.num_links
    )
    counting = False
    original_forward = sim._forward

    def counted_forward(r, flit, out, dvc):
        if counting and out != -1:  # EJECT is -1
            nxt = int(sim.nbrs[r][out])
            key = (r, nxt)
            telemetry.link_flits[key] = telemetry.link_flits.get(key, 0) + 1
        return original_forward(r, flit, out, dvc)

    sim._forward = counted_forward
    occupancy_sum: dict = {}
    samples = 0
    try:
        for _ in range(warmup):
            sim.step()
        counting = True
        sim._measuring = True
        start = sim.now
        for i in range(measure):
            sim.step()
            if i % sample_every == 0:
                samples += 1
                for r in range(sim.topo.num_routers):
                    for port, v in enumerate(sim.nbrs[r]):
                        occ = sim.config.port_capacity - sum(sim.credits[r][port])
                        if occ:
                            key = (r, int(v))
                            occupancy_sum[key] = occupancy_sum.get(key, 0) + occ
        sim._stat.cycles = sim.now - start
        sim._measuring = False
    finally:
        sim._forward = original_forward
    telemetry.mean_occupancy = {
        k: s / max(samples, 1) for k, s in occupancy_sum.items()
    }
    sim.result = sim._stat.finalize()
    return sim._stat, telemetry
