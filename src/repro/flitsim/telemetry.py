"""Telemetry: per-link utilization and queue-depth sampling.

Wraps a :class:`~repro.flitsim.reference.NetworkSimulator` run with
counters a network operator would scrape: flits carried per directed
link, buffer occupancy samples, and derived hot-spot reports.  Used by
the adversarial-traffic analyses to show *where* min-path routing
concentrates load (the mechanistic story behind Figure 9).

Telemetry instruments *both* engines: the reference engine by hooking
its per-flit forward step, and the flat engine via vectorized counter
arrays (:meth:`~repro.flitsim.flatcore.FlatSimulator.attach_link_telemetry`,
with a counter-array hook inside the C kernel so kernel mode stays
instrumented).  Both count a link grant at the same accounting point —
before any fault doom filtering, during the measure window only — so
per-link flit counts agree bit-exactly across engines (pinned by
``tests/test_telemetry_flat.py``), which makes telemetry usable at
scales where the reference engine is too slow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flitsim.reference import NetworkSimulator
from repro.obs.timeseries import TimeSeriesCollector, WindowSeries

__all__ = [
    "LinkTelemetry",
    "run_with_telemetry",
    "run_with_timeseries",
    "run_workload_with_timeseries",
]


@dataclass
class LinkTelemetry:
    """Per-directed-link flit counts and occupancy statistics."""

    cycles: int
    #: total directed links in the topology (idle ones count in stats)
    num_directed_links: int = 0
    #: {(u, v): flits sent u->v}
    link_flits: dict = field(default_factory=dict)
    #: sampled mean occupancy per directed link
    mean_occupancy: dict = field(default_factory=dict)

    def utilization(self, u: int, v: int) -> float:
        """Fraction of cycles link ``u -> v`` carried a flit."""
        return self.link_flits.get((u, v), 0) / max(self.cycles, 1)

    def max_utilization(self) -> tuple[tuple[int, int], float]:
        """The hottest directed link and its utilization."""
        if not self.link_flits:
            return ((-1, -1), 0.0)
        link = max(self.link_flits, key=self.link_flits.get)
        return link, self.utilization(*link)

    def _all_link_loads(self) -> np.ndarray:
        """Flit loads over the full directed-link universe (idle = 0).

        The single universe both :meth:`utilization_histogram` and
        :meth:`gini` compute over: every directed link of the topology
        when ``num_directed_links`` is set, falling back to the observed
        links (floor 1) when it was left 0.
        """
        n = max(self.num_directed_links, len(self.link_flits), 1)
        loads = np.zeros(n, dtype=float)
        vals = np.fromiter(self.link_flits.values(), dtype=float,
                           count=len(self.link_flits))
        loads[: vals.size] = vals
        return loads

    def utilization_histogram(self, bins=10) -> tuple[np.ndarray, np.ndarray]:
        """Histogram over all directed links' utilizations.

        Covers *every* directed link of the topology — idle links land
        in the zero bin — so the counts sum to ``num_directed_links``
        (or to the number of observed links if that field was left 0).
        """
        utils = self._all_link_loads() / max(self.cycles, 1)
        return np.histogram(utils, bins=bins, range=(0, 1))

    def gini(self) -> float:
        """Gini coefficient of link load — 0 is perfectly balanced.

        Computed over *all* directed links of the topology, including the
        idle ones (the same universe as :meth:`utilization_histogram`):
        adversarial patterns under minimal routing leave most links dark
        while saturating a few, which is exactly the imbalance this
        measures — scoring only the observed links would miss it.
        """
        loads = self._all_link_loads()
        loads.sort()
        if loads.sum() == 0:
            return 0.0
        n = loads.size
        cum = np.cumsum(loads)
        return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def run_with_telemetry(
    sim, warmup: int = 300, measure: int = 600, sample_every: int = 8
):
    """Run ``sim`` collecting link telemetry during the measurement window.

    Returns ``(SimResult, LinkTelemetry)``.  Accepts either engine: the
    reference engine derives link counts by intercepting its per-flit
    forward step, the flat engine by attaching its vectorized counter
    arrays (numpy or C-kernel route phase alike).  Occupancy is sampled
    every ``sample_every`` cycles from credit state in both.  The two
    engines' per-link flit counts are bit-identical for the same seed.
    """
    if isinstance(sim, NetworkSimulator):
        return _run_reference_telemetry(sim, warmup, measure, sample_every)
    from repro.flitsim.flatcore import FlatSimulator

    if isinstance(sim, FlatSimulator):
        return _run_flat_telemetry(sim, warmup, measure, sample_every)
    raise TypeError(
        "run_with_telemetry instruments the reference or flat engine; got "
        f"{type(sim).__name__}"
    )


def _run_reference_telemetry(
    sim: NetworkSimulator, warmup: int, measure: int, sample_every: int
):
    """The forward-hook path for the dict-of-deques reference engine."""
    telemetry = LinkTelemetry(
        cycles=measure, num_directed_links=2 * sim.topo.num_links
    )
    counting = False
    original_forward = sim._forward

    def counted_forward(r, flit, out, dvc):
        if counting and out != -1:  # EJECT is -1
            nxt = int(sim.nbrs[r][out])
            key = (r, nxt)
            telemetry.link_flits[key] = telemetry.link_flits.get(key, 0) + 1
        return original_forward(r, flit, out, dvc)

    sim._forward = counted_forward
    occupancy_sum: dict = {}
    samples = 0
    try:
        for _ in range(warmup):
            sim.step()
        counting = True
        sim._measuring = True
        start = sim.now
        for i in range(measure):
            sim.step()
            if i % sample_every == 0:
                samples += 1
                for r in range(sim.topo.num_routers):
                    for port, v in enumerate(sim.nbrs[r]):
                        occ = sim.config.port_capacity - sum(sim.credits[r][port])
                        if occ:
                            key = (r, int(v))
                            occupancy_sum[key] = occupancy_sum.get(key, 0) + occ
        sim._stat.cycles = sim.now - start
        sim._measuring = False
    finally:
        sim._forward = original_forward
    telemetry.mean_occupancy = {
        k: s / max(samples, 1) for k, s in occupancy_sum.items()
    }
    sim.result = sim._stat.finalize()
    return sim._stat, telemetry


def _run_flat_telemetry(sim, warmup: int, measure: int, sample_every: int):
    """The counter-array path for the struct-of-arrays flat engine.

    Mirrors the reference loop exactly (same warmup/measure windows,
    same post-step sampling cycles, no drain) so the collected counts
    are bit-comparable.  Works with both the numpy route phase and the
    C kernel — :meth:`attach_link_telemetry` instruments either.
    """
    fab = sim.fab
    telemetry = LinkTelemetry(
        cycles=measure, num_directed_links=2 * sim.topo.num_links
    )
    ltel = sim.attach_link_telemetry()
    base = ltel.copy()
    Dp = sim._ltel_dp
    cap = sim.config.port_capacity
    # Padding credit columns (port >= deg) hold 0 credits, which would
    # read as a full buffer; mask to real link ports, like the reference
    # loop's iteration over nbrs[r].
    port_mask = np.arange(Dp)[None, :] < fab.deg[:, None]
    occupancy_sum = np.zeros((fab.n, Dp), dtype=np.int64)
    samples = 0
    for _ in range(warmup):
        sim.step()
    sim._measuring = True
    start = sim.now
    for i in range(measure):
        sim.step()
        if i % sample_every == 0:
            samples += 1
            occupancy_sum += cap - sim.credits.sum(axis=2)
    sim._stat.cycles = sim.now - start
    sim._measuring = False
    delta = ltel - base
    for idx in np.flatnonzero(delta).tolist():
        r, out = divmod(idx, Dp)
        telemetry.link_flits[(r, int(fab.nbr_mat[r, out]))] = int(delta[idx])
    occupancy_sum[~port_mask] = 0
    rr, oo = np.nonzero(occupancy_sum)
    telemetry.mean_occupancy = {
        (int(r), int(fab.nbr_mat[r, o])): occupancy_sum[r, o] / max(samples, 1)
        for r, o in zip(rr.tolist(), oo.tolist())
    }
    sim.result = sim._stat.finalize()
    return sim._stat, telemetry


# ---------------------------------------------------------------------------
# Windowed time series (repro.obs.timeseries drivers)


class _RefProbe:
    """Windowed link counting + occupancy reads for the reference engine.

    Counts link grants in a ``_forward`` wrapper at the same accounting
    point as ``run_with_telemetry`` (grant time, before fault doom
    filtering, EJECT excluded); the window dict is copied and cleared at
    each flush.
    """

    def __init__(self, sim: NetworkSimulator):
        self.sim = sim
        self.counts: dict = {}
        self._counting = False
        self._orig = sim._forward

        def counted(r, flit, out, dvc):
            if self._counting and out != -1:  # EJECT is -1
                key = (r, int(sim.nbrs[r][out]))
                self.counts[key] = self.counts.get(key, 0) + 1
            return self._orig(r, flit, out, dvc)

        sim._forward = counted

    def begin(self) -> None:
        self._counting = True

    def occupancy_total(self) -> int:
        return self.sim.sampled_occupancy_total()

    def flush_links(self) -> dict:
        counts, self.counts = self.counts, {}
        return counts

    def end(self) -> None:
        self._counting = False
        self.sim._forward = self._orig


class _FlatProbe:
    """Windowed counter arrays + occupancy reads for the flat engine.

    ``attach_link_telemetry(windowed=True)`` instruments both the numpy
    route phase and the C kernel (the ``link_flits_win`` struct field);
    the counters tick only while the measure window is open, so no
    explicit begin/end gating is needed here.
    """

    def __init__(self, sim):
        self.sim = sim
        sim.attach_link_telemetry(windowed=True)

    def begin(self) -> None:
        pass

    def occupancy_total(self) -> int:
        return self.sim.sampled_occupancy_total()

    def flush_links(self) -> dict:
        return self.sim.flush_window_link_counts()

    def end(self) -> None:
        pass


def _make_probe(sim):
    if isinstance(sim, NetworkSimulator):
        return _RefProbe(sim)
    from repro.flitsim.flatcore import FlatSimulator

    if isinstance(sim, FlatSimulator):
        return _FlatProbe(sim)
    raise TypeError(
        "time-series collection instruments the reference or flat engine; "
        f"got {type(sim).__name__}"
    )


def _dropped(sim) -> int:
    return sim._fault.dropped_flits if sim._fault is not None else 0


def _close_window(sim, col, probe, end, start, marks_seen):
    """Close one window at measure-relative ``end``; new marks cursor."""
    faults = []
    if sim._fault is not None:
        new = sim._fault.marks[marks_seen:]
        marks_seen = len(sim._fault.marks)
        faults = [c - start for c, _ in new]
    col.close_window(
        end,
        sim._stat.injected_flits,
        sim._stat.ejected_flits,
        _dropped(sim),
        sim._stat.latencies,
        probe.flush_links(),
        faults,
    )
    return marks_seen


def run_with_timeseries(
    sim,
    warmup: int = 300,
    measure: int = 600,
    window: int = 64,
    sample_every: int = 8,
    top_links: int = 8,
    drain: int = 300,
):
    """Run ``sim`` open-loop, collecting a windowed time series.

    Returns ``(SimResult, WindowSeries)``.  The run protocol is
    :meth:`~repro.flitsim.engine.SimulatorCore.run` exactly — fault
    ``begin_run``, warmup, measure, zero-load drain, finalize — so the
    returned :class:`SimResult` is bit-identical to an uninstrumented
    ``run()`` with the same phases.  On top, the measure phase is split
    into ``window``-cycle windows (the last may be shorter): per-window
    injected/ejected/dropped deltas, latency percentiles, occupancy
    samples every ``sample_every`` cycles, per-link flit counts (top
    ``top_links`` by heat plus the total), and fault-event markers.
    Window records are bit-identical across the reference engine, the
    numpy flat path, and the C kernel.  Latencies recorded during the
    drain (measured packets still in flight) intentionally fall outside
    all windows.  When faults are attached, the simulator's
    ``fault_result`` gains series-derived recovery analytics.
    """
    probe = _make_probe(sim)
    if sim._wl is not None:
        raise RuntimeError("this simulator drives a workload; "
                           "use run_workload_with_timeseries()")
    if sim._fault is not None:
        sim._fault.begin_run(sim.policy)
    for _ in range(warmup):
        sim.step()
    probe.begin()
    sim._measuring = True
    start = sim.now
    col = TimeSeriesCollector(window, top_links=top_links, start_cycle=start)
    col.prime(
        sim._stat.injected_flits,
        sim._stat.ejected_flits,
        _dropped(sim),
        len(sim._stat.latencies),
    )
    marks_seen = len(sim._fault.marks) if sim._fault is not None else 0
    for i in range(measure):
        sim.step()
        if i % sample_every == 0:
            col.occupancy_sample(probe.occupancy_total())
        if (i + 1) % window == 0 or (i + 1) == measure:
            marks_seen = _close_window(
                sim, col, probe, i + 1, start, marks_seen
            )
    sim._stat.cycles = sim.now - start
    sim._measuring = False
    probe.end()
    sim._drain(drain)
    sim.result = sim._stat.finalize()
    if sim._fault is not None:
        sim.fault_result = sim._fault.build_result(
            sim._stat, series=col.series
        )
    return sim._stat, col.series


def run_workload_with_timeseries(
    sim,
    window: int = 64,
    sample_every: int = 8,
    top_links: int = 8,
    max_cycles: int = 200_000,
):
    """Run the attached workload, collecting a windowed time series.

    Returns ``(WorkloadResult, WindowSeries)``.  Mirrors
    :meth:`~repro.flitsim.engine.SimulatorCore.run_workload` (measured
    from cycle 0, exits when the collective completes or at
    ``max_cycles``) while closing a window every ``window`` cycles plus
    a final partial window at completion.
    """
    if sim._wl is None:
        raise RuntimeError(
            "no workload attached; pass workload= at construction"
        )
    from repro.workloads.result import build_workload_result

    probe = _make_probe(sim)
    if sim._fault is not None:
        sim._fault.begin_run(sim.policy)
    probe.begin()
    sim._measuring = True
    state = sim._wl
    start = sim.now
    col = TimeSeriesCollector(window, top_links=top_links, start_cycle=start)
    col.prime(
        sim._stat.injected_flits,
        sim._stat.ejected_flits,
        _dropped(sim),
        len(sim._stat.latencies),
    )
    marks_seen = len(sim._fault.marks) if sim._fault is not None else 0
    i = 0
    while not state.done and sim.now < max_cycles:
        sim.step()
        if i % sample_every == 0:
            col.occupancy_sample(probe.occupancy_total())
        i += 1
        if i % window == 0:
            marks_seen = _close_window(sim, col, probe, i, start, marks_seen)
    if i % window != 0 and i > 0:
        marks_seen = _close_window(sim, col, probe, i, start, marks_seen)
    sim._stat.cycles = sim.now
    sim._measuring = False
    probe.end()
    sim._stat.finalize()
    if sim._fault is not None:
        sim.fault_result = sim._fault.build_result(
            sim._stat, series=col.series
        )
    sim.workload_result = build_workload_result(state, sim._stat, sim.topo)
    return sim.workload_result, col.series
