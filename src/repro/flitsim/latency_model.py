"""Analytic latency model for cross-validating the flit simulator.

A first-order M/D/1-style queueing estimate of the latency-vs-load curve:

* zero-load latency = per-hop pipeline + link delay times average hops,
  plus packet serialization;
* channel load rho = p * load * avg_hops / k (uniform traffic on a
  k-radix direct network with p endpoints per router);
* queueing term = rho / (2 (1 - rho)) service times per traversed hop.

This is deliberately simple — its job is to sanity-check the simulator's
low/mid-load behaviour and saturation point, not replace it.  The test
suite asserts simulator and model agree at low load and that the model's
predicted saturation load brackets the simulator's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flitsim.simulator import SimConfig
from repro.topologies.base import Topology

__all__ = ["LatencyModel"]


@dataclass
class LatencyModel:
    """Analytic latency/saturation estimates for uniform traffic.

    Parameters
    ----------
    topo:
        Direct network with uniform concentration ``p``.
    avg_hops:
        Mean minimal-path hop count (e.g. from RoutingTables or ASPL).
    config:
        Simulator config (packet size and pipeline latencies).
    """

    topo: Topology
    avg_hops: float
    config: SimConfig = SimConfig()

    @property
    def saturation_load(self) -> float:
        """Load where mean channel utilization reaches 1."""
        p = float(self.topo.concentration.mean())
        k = float(self.topo.graph.degree().mean())
        if p == 0:
            raise ValueError("latency model needs endpoints")
        return min(1.0, k / (p * self.avg_hops))

    def channel_load(self, load: float) -> float:
        """Mean channel utilization rho at offered ``load``."""
        return load / self.saturation_load if self.saturation_load else 1.0

    def zero_load_latency(self) -> float:
        """Hops x (pipeline + link) + serialization of the packet."""
        cfg = self.config
        per_hop = cfg.link_latency + cfg.router_pipeline
        return self.avg_hops * per_hop + cfg.packet_size - 1

    def latency(self, load: float) -> float:
        """Estimated mean packet latency at offered ``load`` (cycles).

        Returns ``inf`` at or past the saturation load.
        """
        rho = self.channel_load(load)
        if rho >= 1.0:
            return float("inf")
        # M/D/1 waiting time in units of flit service, applied per hop.
        queueing = rho / (2.0 * (1.0 - rho)) * self.config.packet_size
        return self.zero_load_latency() + self.avg_hops * queueing
