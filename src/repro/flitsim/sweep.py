"""Load sweeps and latency/throughput curves (Figures 8-11 harness).

Runs the simulator across a list of offered loads and collects the points
the paper plots: average latency vs offered load, plus accepted throughput
(whose plateau is the saturation point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flitsim.simulator import SimConfig, SimResult
from repro.flitsim.traffic import TrafficPattern
from repro.routing.policies import RoutingPolicy
from repro.topologies.base import Topology

__all__ = ["SweepPoint", "LoadSweep", "run_load_sweep", "saturation_load"]


@dataclass
class SweepPoint:
    """One (offered load, latency, throughput) sample."""

    offered_load: float
    avg_latency: float
    p99_latency: float
    accepted_load: float
    avg_hops: float
    p50_latency: float = float("nan")

    @classmethod
    def from_result(cls, res: SimResult) -> "SweepPoint":
        return cls(
            offered_load=res.offered_load,
            avg_latency=res.avg_latency,
            p99_latency=res.p99_latency,
            accepted_load=res.accepted_load,
            avg_hops=res.avg_hops,
            p50_latency=res.p50_latency,
        )


@dataclass
class LoadSweep:
    """A labelled latency-vs-load curve."""

    label: str
    points: list

    @property
    def loads(self) -> np.ndarray:
        return np.array([p.offered_load for p in self.points])

    @property
    def latencies(self) -> np.ndarray:
        return np.array([p.avg_latency for p in self.points])

    @property
    def throughputs(self) -> np.ndarray:
        return np.array([p.accepted_load for p in self.points])

    def saturation_load(self, efficiency: float = 0.95) -> float:
        """The curve's saturation throughput (see :func:`saturation_load`)."""
        return saturation_load(self.points, efficiency)

    def rows(self) -> list[dict]:
        """Table rows (one per load point) for report printing."""
        return [
            {
                "label": self.label,
                "offered": round(p.offered_load, 3),
                "latency": round(p.avg_latency, 1),
                "accepted": round(p.accepted_load, 3),
            }
            for p in self.points
        ]


def saturation_load(points, efficiency: float = 0.95) -> float:
    """The plateau (maximum) of accepted load over the sweep.

    This is the paper's saturation-throughput metric: below saturation
    accepted tracks offered, past it accepted flattens at the plateau,
    so the maximum accepted load IS the saturation throughput.
    ``efficiency`` is retained for backward compatibility but does not
    affect the result (historically it never did — the pre/post
    saturation branches computed the same maximum).
    """
    return max((p.accepted_load for p in points), default=0.0)


def run_load_sweep(
    topo: Topology,
    policy: RoutingPolicy,
    traffic: TrafficPattern,
    loads,
    label: str = "",
    config: SimConfig = SimConfig(),
    warmup: int = 600,
    measure: int = 1200,
    drain: int = 300,
    seed=0,
) -> LoadSweep:
    """Simulate every load in ``loads`` and return the resulting curve.

    Compatibility wrapper over the shared sweep engine
    (:class:`repro.experiments.runner.SweepRunner`), for callers holding
    already-built objects.  Spec-string callers should build an
    :class:`~repro.experiments.spec.ExperimentSpec` instead and gain
    caching and process-parallel execution.
    """
    # Imported lazily: experiments sits above flitsim in the layering.
    from repro.experiments.runner import SweepRunner

    return SweepRunner().run_objects(
        topo, policy, traffic, loads, label=label, config=config,
        warmup=warmup, measure=measure, drain=drain, seed=seed,
    )
