"""Load sweeps and latency/throughput curves (Figures 8-11 harness).

Runs the simulator across a list of offered loads and collects the points
the paper plots: average latency vs offered load, plus accepted throughput
(whose plateau is the saturation point).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.flitsim.simulator import SimConfig, SimResult
from repro.flitsim.traffic import TrafficPattern
from repro.routing.policies import RoutingPolicy
from repro.topologies.base import Topology

__all__ = ["SweepPoint", "LoadSweep", "run_load_sweep", "saturation_load"]


@dataclass
class SweepPoint:
    """One (offered load, latency, throughput) sample."""

    offered_load: float
    avg_latency: float
    p99_latency: float
    accepted_load: float
    avg_hops: float
    p50_latency: float = float("nan")

    @classmethod
    def from_result(cls, res: SimResult) -> "SweepPoint":
        return cls(
            offered_load=res.offered_load,
            avg_latency=res.avg_latency,
            p99_latency=res.p99_latency,
            accepted_load=res.accepted_load,
            avg_hops=res.avg_hops,
            p50_latency=res.p50_latency,
        )


@dataclass
class LoadSweep:
    """A labelled latency-vs-load curve."""

    label: str
    points: list

    @property
    def loads(self) -> np.ndarray:
        return np.array([p.offered_load for p in self.points])

    @property
    def latencies(self) -> np.ndarray:
        return np.array([p.avg_latency for p in self.points])

    @property
    def throughputs(self) -> np.ndarray:
        return np.array([p.accepted_load for p in self.points])

    def saturation_load(self, efficiency=None) -> float:
        """The curve's saturation throughput (see :func:`saturation_load`)."""
        return saturation_load(self.points, efficiency)

    def rows(self) -> list[dict]:
        """Table rows (one per load point) for report printing."""
        return [
            {
                "label": self.label,
                "offered": round(p.offered_load, 3),
                "latency": round(p.avg_latency, 1),
                "accepted": round(p.accepted_load, 3),
            }
            for p in self.points
        ]


def saturation_load(points, efficiency=None) -> float:
    """The plateau (maximum) of accepted load over the sweep.

    This is the paper's saturation-throughput metric: below saturation
    accepted tracks offered, past it accepted flattens at the plateau,
    so the maximum accepted load IS the saturation throughput.

    .. deprecated::
        ``efficiency`` never affected the result (the historical pre/post
        saturation branches computed the same maximum); passing it warns
        and the parameter will be removed.
    """
    if efficiency is not None:
        warnings.warn(
            "saturation_load(efficiency=...) is deprecated: the parameter "
            "has never affected the result and will be removed",
            DeprecationWarning,
            stacklevel=2,
        )
    return max((p.accepted_load for p in points), default=0.0)


def run_load_sweep(
    topo: Topology,
    policy: RoutingPolicy,
    traffic: TrafficPattern,
    loads,
    label: str = "",
    config: SimConfig = SimConfig(),
    warmup: int = 600,
    measure: int = 1200,
    drain: int = 300,
    seed=0,
    engine: str | None = None,
) -> LoadSweep:
    """Simulate every load in ``loads`` and return the resulting curve.

    Compatibility wrapper over the shared sweep engine
    (:class:`repro.experiments.runner.SweepRunner`), for callers holding
    already-built objects.  Spec-string callers should build an
    :class:`~repro.experiments.spec.ExperimentSpec` instead and gain
    caching and process-parallel execution.  ``engine`` pins a simulator
    engine (``"flat"``/``"reference"``) without mutating the
    ``$REPRO_SIM_ENGINE`` environment.
    """
    # Imported lazily: experiments sits above flitsim in the layering.
    from repro.experiments.runner import SweepRunner

    return SweepRunner().run_objects(
        topo, policy, traffic, loads, label=label, config=config,
        warmup=warmup, measure=measure, drain=drain, seed=seed,
        engine=engine,
    )
