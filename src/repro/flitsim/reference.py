"""Reference engine: the readable dict-of-deques simulator.

Microarchitectural model, matching the paper's Section VIII-A setup:

* **Input-queued routers**, with each input port organized as virtual
  output queues (VOQs) — the standard idealization of a VC-allocated
  input-queued router that avoids spurious head-of-line blocking across
  outputs.  Downstream buffer space remains partitioned per *hop class*
  (virtual channel) with credit-based flow control.
* **Virtual channels as hop classes**: a flit that has taken ``h`` hops
  occupies class ``min(h-1, V-1)`` downstream.  Class indices are
  non-decreasing along any route, so routing is deadlock-free for paths of
  up to ``V + 1`` routers — the paper's 4 VCs cover Valiant's 4-hop worst
  case.
* **Source routing**: the full path is chosen at injection by a
  :class:`~repro.routing.policies.RoutingPolicy`, which may inspect local
  output-buffer occupancy through credits — the UGAL-L information model.
* **Bernoulli injection** of fixed-size packets (4 flits by default), one
  injection FIFO per endpoint; ejection bandwidth is one flit per cycle
  per endpoint of the destination router.
* **Warmup + measurement window** methodology, with an optional drain so
  measured packets finishing late still contribute latency samples.

This implementation follows the shared cycle protocol documented in
:mod:`repro.flitsim.engine` and is kept deliberately simple: it is the
behavioural oracle the struct-of-arrays engine
(:class:`~repro.flitsim.flatcore.FlatSimulator`) is pinned against, and
the engine of choice when single-stepping a credit or arbitration bug.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.flitsim.engine import (
    EJECT,
    SimConfig,
    SimResult,
    SimulatorCore,
    make_fault_state,
    make_workload_state,
    validate_sim_args,
)
from repro.flitsim.packet import Packet
from repro.flitsim.traffic import TrafficPattern
from repro.routing.policies import RoutingPolicy, iter_routes
from repro.topologies.base import Topology
from repro.utils.rng import make_rng

__all__ = ["NetworkSimulator"]


class NetworkSimulator(SimulatorCore):
    """Cycle-accurate simulation of one (topology, routing, traffic) point.

    Also implements the :class:`~repro.routing.policies.CongestionView`
    protocol so adaptive policies can read local output occupancy.
    """

    def __init__(
        self,
        topo: Topology,
        policy: RoutingPolicy,
        traffic: "TrafficPattern | None",
        load: float,
        config: SimConfig = SimConfig(),
        seed=0,
        workload=None,
        faults=None,
    ):
        self.topo = topo
        self.policy = policy
        self.traffic = traffic
        self.load = float(load)
        self.config = config
        self.rng = make_rng(seed)
        # Fault bookkeeping first: it ratchets policy.max_hops to the
        # degraded ceiling, which the VC validation below checks against.
        self._fault = make_fault_state(faults, topo, policy)
        validate_sim_args(topo, policy, load, config)
        # Closed-loop bookkeeping (None in open-loop Bernoulli mode);
        # this cycle's ejected-tail message ids and their flit-hops.
        self._wl = make_workload_state(workload, config, topo)
        self._wl_tails: list = []
        self._wl_hops = 0

        graph = topo.graph
        n = graph.n
        self.now = 0
        self._pid = 0

        # Port maps: output i of router r leads to neighbor nbrs[r][i]; the
        # reverse (input port index at that neighbor) is precomputed.
        self.nbrs = [graph.neighbors(r) for r in range(n)]
        self.port_of = [
            {int(v): i for i, v in enumerate(self.nbrs[r])} for r in range(n)
        ]
        self.rev_port = [
            [self.port_of[int(v)][r] for v in self.nbrs[r]] for r in range(n)
        ]
        # Input ports 0..deg-1 are link inputs; deg..deg+p-1 injection ports.
        self.num_in_ports = [
            len(self.nbrs[r]) + int(topo.concentration[r]) for r in range(n)
        ]

        V = config.num_vcs
        # Virtual output queues: voq[r][(in_port, out_port)] -> deque of
        # flits (packet, seq, hop_idx, ready_cycle).
        self.voq: list[dict] = [dict() for _ in range(n)]
        # by_out[r][out_port] -> set of voq keys with content for that out.
        self.by_out: list[dict] = [dict() for _ in range(n)]
        # credits[r][out_port][vc]: free downstream slots per hop class.
        self.credits = [
            [[config.vc_depth] * V for _ in self.nbrs[r]] for r in range(n)
        ]
        # Incrementally-maintained flit backlog per link output: the
        # number of flits queued in this router's VOQs for that output.
        # Makes output_occupancy an O(1) read instead of a per-decision
        # re-sum over the by_out key sets.
        self.out_backlog = [[0] * len(self.nbrs[r]) for r in range(n)]
        # Unbounded per-endpoint source FIFOs plus per-endpoint injection
        # port credits (free slots in the injection input buffer).
        self.src_q = [
            [deque() for _ in range(int(topo.concentration[r]))] for r in range(n)
        ]
        self.inj_credit = [
            [config.vc_depth] * int(topo.concentration[r]) for r in range(n)
        ]
        # Round-robin pointers per (router, out_port): the input port the
        # next scan starts from.
        self.rr: list[dict] = [dict() for _ in range(n)]
        # Dead output ports per router (EJECT joins when the router is
        # down); maintained by _apply_fault_delta, empty without faults.
        self.dead_out: list[set] = [set() for _ in range(n)]
        # Routers that may have movable flits / non-empty source FIFOs.
        self.active: set[int] = set()
        self.src_active: set[int] = set()

        self.result: "SimResult | None" = None
        self._measuring = False
        self._stat = SimResult(load, 0, topo.num_endpoints)

    # ------------------------------------------------------------------
    # CongestionView protocol
    # ------------------------------------------------------------------
    def output_occupancy(self, router: int, next_hop: int) -> int:
        """Output-queue length estimate toward ``next_hop`` in flits.

        The UGAL-L signal: downstream first-hop-class occupancy (from
        credits) plus the flits queued in this router's own VOQs waiting
        for that output — together, the backlog a newly injected packet
        would sit behind.  O(1): the VOQ share is the incrementally
        maintained ``out_backlog`` counter.
        """
        port = self.port_of[router][next_hop]
        return (
            self.config.vc_depth
            - self.credits[router][port][0]
            + self.out_backlog[router][port]
        )

    def output_occupancies(self, routers, next_hops) -> np.ndarray:
        """Batched occupancy reads (sequential — this is the oracle)."""
        return np.fromiter(
            (
                self.output_occupancy(int(r), int(v))
                for r, v in zip(routers, next_hops)
            ),
            count=len(routers),
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def _inject(self) -> None:
        cfg = self.config
        prob = self.load / cfg.packet_size
        if prob <= 0.0:
            return
        rng = self.rng
        topo = self.topo
        # Protocol step 1: one Bernoulli draw across all endpoints, then
        # batched destination and route selection for the winners.
        winners = np.flatnonzero(rng.random(topo.num_endpoints) < prob)
        if winners.size == 0:
            return
        ft = self._fault
        if ft is not None and ft.any_dead_router:
            # The Bernoulli draw above always covers every endpoint (the
            # stream is failure-independent); dead ones just can't win.
            winners = winners[ft.ep_alive[winners]]
            if winners.size == 0:
                return
        srcs = topo.endpoint_routers[winners]
        dsts = self.traffic.dest_routers(srcs, rng)
        if ft is not None and ft.any_dead_router:
            keep = ft.router_alive[dsts]
            if not keep.all():
                ft.note_blackholed(int((~keep).sum()))
                winners, srcs, dsts = winners[keep], srcs[keep], dsts[keep]
                if winners.size == 0:
                    return
        routes = self.policy.select_routes(srcs, dsts, rng, congestion=self)
        offsets = topo.endpoint_offsets
        for endpoint, src, route in zip(winners, srcs, iter_routes(routes)):
            src = int(src)
            pkt = Packet(self._pid, route, cfg.packet_size, self.now)
            self._pid += 1
            pkt.measured = self._measuring
            if pkt.measured:
                self._stat.injected_flits += cfg.packet_size
            q = self.src_q[src][int(endpoint) - int(offsets[src])]
            for seq in range(cfg.packet_size):
                q.append((pkt, seq, 0, self.now))
            self.src_active.add(src)

    def _inject_workload(self) -> None:
        """Closed-loop protocol step 1: drain the ready queue.

        Every eligible message expands into fixed-size packets; one
        batched route selection covers the whole cycle (message-major,
        packet-minor — the RNG-consumption order both engines share),
        and each packet enters the source FIFO of a round-robin-chosen
        endpoint at the message's source router.
        """
        st = self._wl
        ft = self._fault
        mids = st.pop_ready()
        if ft is not None:
            if ft.any_dead_router and mids.size:
                mids = ft.filter_messages(
                    mids, st.workload.src[mids], st.workload.dst[mids],
                    st.msg_pkts[mids],
                )
            # Lost packets re-enter ahead of new messages, in drop order.
            rt = ft.pop_retransmits(st.workload)
            pkt_mid = np.concatenate([rt, np.repeat(mids, st.msg_pkts[mids])])
        else:
            pkt_mid = np.repeat(mids, st.msg_pkts[mids])
        if pkt_mid.size == 0:
            return
        cfg = self.config
        ps = cfg.packet_size
        srcs = st.workload.src[pkt_mid]
        dsts = st.workload.dst[pkt_mid]
        routes = self.policy.select_routes(srcs, dsts, self.rng, congestion=self)
        for mid, src, route in zip(pkt_mid, srcs, iter_routes(routes)):
            src = int(src)
            pkt = Packet(self._pid, route, ps, self.now)
            self._pid += 1
            pkt.mid = int(mid)
            pkt.measured = self._measuring
            if pkt.measured:
                self._stat.injected_flits += ps
            q = self.src_q[src][st.next_endpoint(src)]
            for seq in range(ps):
                q.append((pkt, seq, 0, self.now))
            self.src_active.add(src)

    def _feed_injection_ports(self) -> None:
        """Move flits from source FIFOs into injection-port VOQs.

        One flit per endpoint per cycle (the injection channel rate),
        subject to injection-buffer credits.
        """
        done: list[int] = []
        fault = self._fault is not None
        for r in sorted(self.src_active):
            any_left = False
            deg = len(self.nbrs[r])
            credits = self.inj_credit[r]
            for e, q in enumerate(self.src_q[r]):
                if not q:
                    continue
                if fault:
                    out, _vc = self._desired_output(r, q[0])
                    if out in self.dead_out[r]:
                        # Dead first hop: the flit drops before entering
                        # the injection buffer — no credit is consumed,
                        # and the endpoint's feed slot is spent.
                        self._record_drop(q.popleft())
                        if q:
                            any_left = True
                        continue
                if credits[e] > 0:
                    credits[e] -= 1
                    self._enqueue_voq(r, deg + e, q.popleft())
                if q:
                    any_left = True
            if not any_left:
                done.append(r)
        self.src_active.difference_update(done)

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def _desired_output(self, r: int, flit) -> tuple[int, int]:
        """(out_port, downstream hop class) for a flit at router ``r``."""
        pkt, _seq, hop_idx, _ready = flit
        if r == pkt.route[-1]:
            return EJECT, 0
        nxt = pkt.route[hop_idx + 1]
        out_port = self.port_of[r][nxt]
        vc = min(hop_idx, self.config.num_vcs - 1)
        return out_port, vc

    def _enqueue_voq(self, r: int, in_port: int, flit) -> None:
        out, _vc = self._desired_output(r, flit)
        key = (in_port, out)
        q = self.voq[r].get(key)
        if q is None:
            q = self.voq[r][key] = deque()
        q.append(flit)
        self.by_out[r].setdefault(out, set()).add(key)
        if out != EJECT:
            self.out_backlog[r][out] += 1
        self.active.add(r)

    # ------------------------------------------------------------------
    # Fault phase (protocol step 0): masks, drops, and route repair
    # ------------------------------------------------------------------
    def _record_drop(self, flit) -> None:
        """Account one dropped flit (tail flits lose their packet)."""
        pkt, seq, _hop, _ready = flit
        pkt.damaged = True
        self._fault.note_flit_drops(1)
        if seq == self.config.packet_size - 1:
            self._fault.note_tail_drop(pkt.mid)

    def _drop_queue(self, r: int, in_port: int, out: int, return_credit: bool) -> None:
        """Drop one VOQ wholesale, front to back (event-time drops).

        ``return_credit`` distinguishes rule 1 (flits queued *for* a dead
        output: their input-side slot credit goes back upstream) from
        rule 2 (flits *at* a dead link's input: the owning credits are
        the dead link's own and reset at revival).
        """
        key = (in_port, out)
        q = self.voq[r].pop(key, None)
        if not q:
            if q is not None:  # pragma: no cover - defensive
                self.voq[r][key] = q
            return
        for flit in q:
            if return_credit:
                self._return_credit(r, key, flit)
            self._record_drop(flit)
        if out != EJECT:
            self.out_backlog[r][out] -= len(q)
        keys = self.by_out[r].get(out)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self.by_out[r][out]

    def _apply_fault_delta(self, delta) -> None:
        """Apply one epoch transition in the canonical order."""
        cfg = self.config
        self.policy.retable(delta.tables)
        self._fault.note_mark(self.now, len(self._stat.latencies))
        for u, v in delta.down_links:
            for r, nbr in ((u, v), (v, u)):
                p = self.port_of[r][nbr]
                # Rule 1: nothing may travel toward the dead link.
                for in_port in range(self.num_in_ports[r]):
                    self._drop_queue(r, in_port, p, return_credit=True)
                # Rule 2: the link's wire and input buffer are lost.
                for out in list(range(len(self.nbrs[r]))) + [EJECT]:
                    self._drop_queue(r, p, out, return_credit=False)
                self.dead_out[r].add(p)
        for r in delta.down_routers:
            # Incident links died above; drop the residue (injection
            # inputs) and the endpoints' source FIFOs.
            for in_port in range(self.num_in_ports[r]):
                for out in list(range(len(self.nbrs[r]))) + [EJECT]:
                    self._drop_queue(r, in_port, out, return_credit=False)
            for q in self.src_q[r]:
                while q:
                    self._record_drop(q.popleft())
            self.src_active.discard(r)
            self.dead_out[r].add(EJECT)
        for u, v in delta.up_links:
            for r, nbr in ((u, v), (v, u)):
                p = self.port_of[r][nbr]
                # Death emptied the downstream input buffer, so full
                # depth is exact — credit conservation holds.
                self.credits[r][p] = [cfg.vc_depth] * cfg.num_vcs
                self.dead_out[r].discard(p)
        for r in delta.up_routers:
            self.inj_credit[r] = [cfg.vc_depth] * len(self.inj_credit[r])
            self.dead_out[r].discard(EJECT)

    # ------------------------------------------------------------------
    # Router phase: decide every grant from cycle-start state, then apply
    # ------------------------------------------------------------------
    def _decide_router(self, r: int, grants: list) -> None:
        """Append this router's grants (chosen from current state)."""
        now = self.now
        voq = self.voq[r]
        by_out = self.by_out[r]
        deg = len(self.nbrs[r])
        num_in = self.num_in_ports[r]
        V = self.config.num_vcs
        # Link outputs in ascending port order, ejection last (the order
        # latency samples are recorded in).
        outs = [out for out in range(deg) if by_out.get(out)]
        if by_out.get(EJECT):
            outs.append(EJECT)
        for out in outs:
            max_grants = max(1, len(self.src_q[r])) if out == EJECT else 1
            ptr = self.rr[r].get(out, 0)
            last_granted = -1
            granted = 0
            for offset in range(num_in):
                in_port = (ptr + offset) % num_in
                q = voq.get((in_port, out))
                if not q:
                    continue
                flit = q[0]
                if flit[3] > now:
                    continue
                if out == EJECT:
                    dvc = 0
                else:
                    dvc = min(flit[2], V - 1)
                    if self.credits[r][out][dvc] <= 0:
                        continue
                grants.append((r, (in_port, out), out, dvc, flit))
                last_granted = in_port
                granted += 1
                if granted >= max_grants:
                    break
            if last_granted >= 0:
                self.rr[r][out] = (last_granted + 1) % num_in

    def _apply_grants(self, grants: list) -> None:
        for r, key, out, dvc, flit in grants:
            q = self.voq[r][key]
            q.popleft()
            if out != EJECT:
                self.out_backlog[r][out] -= 1
            if not q:
                keys = self.by_out[r][out]
                keys.discard(key)
                del self.voq[r][key]
                if not keys:
                    del self.by_out[r][out]
            self._return_credit(r, key, flit)
            self._forward(r, flit, out, dvc)

    def _return_credit(self, r: int, key, flit) -> None:
        in_port, _out = key
        deg = len(self.nbrs[r])
        if in_port >= deg:
            # Injection-port buffer slot freed.
            self.inj_credit[r][in_port - deg] += 1
            if self.src_q[r][in_port - deg]:
                self.src_active.add(r)
            return
        pkt, _seq, hop_idx, _ready = flit
        upstream = pkt.route[hop_idx - 1]
        up_out_port = self.port_of[upstream][r]
        vc = min(hop_idx - 1, self.config.num_vcs - 1)
        self.credits[upstream][up_out_port][vc] += 1

    def _forward(self, r: int, flit, out: int, dvc: int) -> None:
        cfg = self.config
        pkt, seq, hop_idx, _ready = flit
        if out == EJECT:
            if seq == cfg.packet_size - 1:
                pkt.t_ejected = self.now
                if pkt.damaged:
                    # A mid-packet link revival let the tail through
                    # after body flits were lost: delivered, incomplete.
                    self._fault.note_damaged_deliveries(1)
                if pkt.measured:
                    # Count even if completion lands in the drain phase —
                    # avoids survivor bias near saturation.
                    self._stat.latencies.append(pkt.latency)
                    self._stat.hop_counts.append(pkt.hops)
                if pkt.mid >= 0:
                    self._wl_tails.append(pkt.mid)
                    self._wl_hops += pkt.hops * cfg.packet_size
            if self._measuring:
                self._stat.ejected_flits += 1
            return
        nxt = int(self.nbrs[r][out])
        in_port = self.rev_port[r][out]
        ready = self.now + cfg.link_latency + cfg.router_pipeline
        nxt_flit = (pkt, seq, hop_idx + 1, ready)
        if self._fault is not None:
            nxt_out, _vc = self._desired_output(nxt, nxt_flit)
            if nxt_out in self.dead_out[nxt]:
                # Dead output at the next router: the flit evaporates on
                # the wire — the credit toward nxt is never consumed.
                self._record_drop(nxt_flit)
                return
        self.credits[r][out][dvc] -= 1
        self._enqueue_voq(nxt, in_port, nxt_flit)

    def sampled_occupancy_total(self) -> int:
        """Total buffered flits across all real ports, as one int.

        Sums the same credit-derived per-port occupancy that
        ``run_with_telemetry`` samples; the flat engine's
        ``sampled_occupancy_total`` computes the identical quantity
        vectorized, so a windowed collector fed by either engine sees
        bit-equal samples.
        """
        cap = self.config.port_capacity
        total = 0
        for r in range(self.topo.num_routers):
            for port in range(len(self.nbrs[r])):
                total += cap - sum(self.credits[r][port])
        return int(total)

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        if self._fault is not None:
            delta = self._fault.advance(self.now)
            if delta is not None:
                self._apply_fault_delta(delta)
        if self._wl is not None:
            self._inject_workload()
        else:
            self._inject()
        self._feed_injection_ports()
        grants: list = []
        for r in sorted(self.active):
            self._decide_router(r, grants)
        self._apply_grants(grants)
        self.active = {r for r in self.active if self.voq[r]}
        if self._wl is not None and self._wl_tails:
            self._wl.note_tails(
                np.asarray(self._wl_tails, dtype=np.int64), self._wl_hops
            )
            self._wl_tails = []
            self._wl_hops = 0
            self._wl.commit(self.now)
        self.now += 1
