"""Figure 12 — bisection bandwidth vs network radix.

Fraction of links crossing the best balanced bisection (spectral + KL, the
METIS substitute), per topology family across sizes.  Paper shape: fat
tree at the optimal 0.5; PolarFly climbing above 0.4 and beating Slim Fly
and Dragonfly; Dragonfly lowest.
"""

import pytest
from common import SCALE, print_table

from repro import Dragonfly, FatTree, Jellyfish, PolarFly, SlimFly
from repro.analysis import bisection_fraction

if SCALE == "small":
    INSTANCES = [
        ("PolarFly", [PolarFly(5), PolarFly(7), PolarFly(9), PolarFly(13)]),
        ("SlimFly", [SlimFly(5), SlimFly(7), SlimFly(9)]),
        ("Dragonfly", [Dragonfly(a=4, h=2), Dragonfly(a=6, h=3), Dragonfly(a=12, h=1)]),
        ("Jellyfish", [Jellyfish(n=57, r=8, seed=1), Jellyfish(n=183, r=14, seed=1)]),
        ("FatTree", [FatTree(k=4, n=3), FatTree(k=6, n=3)]),
    ]
else:
    INSTANCES = [
        ("PolarFly", [PolarFly(q) for q in (7, 13, 17, 19)]),
        ("SlimFly", [SlimFly(q) for q in (7, 11, 13)]),
        ("Dragonfly", [Dragonfly(a=8, h=4), Dragonfly(a=12, h=6)]),
        ("Jellyfish", [Jellyfish(n=307, r=18, seed=1)]),
        ("FatTree", [FatTree(k=8, n=3)]),
    ]


def test_fig12_bisection(benchmark):
    def run():
        out = {}
        for family, topos in INSTANCES:
            out[family] = [
                (topo.network_radix, topo.num_routers, bisection_fraction(topo))
                for topo in topos
            ]
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [family, k, n, f"{frac:.3f}"]
        for family, pts in results.items()
        for (k, n, frac) in pts
    ]
    print_table(
        "Figure 12: fraction of links in the bisection cut",
        ["family", "radix", "routers", "cut fraction"],
        rows,
    )

    largest = {f: pts[-1][2] for f, pts in results.items()}
    # Shape checks at the largest instance of each family.
    assert largest["PolarFly"] > largest["SlimFly"]
    assert largest["PolarFly"] > largest["Dragonfly"]
    assert largest["Dragonfly"] < 0.3
    # The k-ary n-tree's endpoint-balanced min cut is exactly k^n/2 links
    # = 1/4 of its links — full (non-blocking) bisection *bandwidth*, but
    # the link-fraction metric charges it for having twice the links of a
    # direct network per unit bandwidth (see EXPERIMENTS.md).
    assert largest["FatTree"] == pytest.approx(0.25, abs=0.03)
    # PolarFly trend: larger instances approach the optimal 0.5.
    pf = [frac for (_k, _n, frac) in results["PolarFly"]]
    assert pf[-1] >= pf[0] - 0.02
    assert pf[-1] > 0.37
