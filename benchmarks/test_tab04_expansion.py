"""Table IV — characteristics of the two expansion methods.

Columns: scalability (nodes per unit radix increase), degree spread,
diameter, average shortest path length, rewiring (always none —
verified structurally: all original edges survive).
"""

from common import SCALE, print_table

from repro.core import PolarFly, replicate_nonquadric_clusters, replicate_quadrics

Q = 7 if SCALE == "small" else 13
TIMES = 3


def test_tab04_expansion(benchmark):
    def measure():
        pf = PolarFly(Q)
        base_max = int(pf.graph.degree().max())
        original = {tuple(e) for e in pf.graph.edges().tolist()}
        out = {}
        for name, fn in (
            ("Replicate Quadrics", replicate_quadrics),
            ("Replicate Non-Quadrics", replicate_nonquadric_clusters),
        ):
            ex = fn(pf, TIMES)
            deg = ex.graph.degree()
            expanded = {tuple(e) for e in ex.graph.edges().tolist()}
            out[name] = dict(
                scalability=(ex.num_routers - pf.num_routers)
                / (int(deg.max()) - base_max),
                spread=int(deg.max() - deg.min()),
                diameter=ex.diameter(),
                aspl=ex.average_shortest_path_length(),
                rewired=not (original <= expanded),
            )
        return out

    res = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{m['scalability']:.1f}",
            m["spread"],
            m["diameter"],
            f"{m['aspl']:.3f}",
            "None" if not m["rewired"] else "REWIRED!",
        ]
        for name, m in res.items()
    ]
    rows.append(["(paper: quadric)", f"{(Q + 1) / 2:.1f}", "non-uniform", 2, "<2", "None"])
    rows.append(["(paper: non-quadric)", f"~{Q}", "uniform", 3, "<2", "None"])
    print_table(
        f"Table IV: expansion methods on PF(q={Q}), {TIMES} steps",
        ["method", "nodes/radix", "deg spread", "D", "ASPL", "rewiring"],
        rows,
    )
    quad = res["Replicate Quadrics"]
    nonq = res["Replicate Non-Quadrics"]
    assert quad["diameter"] == 2 and nonq["diameter"] == 3
    assert quad["scalability"] == (Q + 1) / 2
    assert nonq["scalability"] > quad["scalability"]
    assert nonq["aspl"] < 2.0
    assert not quad["rewired"] and not nonq["rewired"]
    assert nonq["spread"] < quad["spread"]  # near-uniform degrees
