"""Table VI — path diversity in ER_q by structural case.

For every pair case the paper lists the number of length-1..4 paths.  The
bench enumerates simple paths exhaustively on PF(q) and prints them next
to the closed forms (ours, exact) and the paper's entries (whose length-3
row counts midpoint-avoiding paths; see repro.analysis.path_diversity).
"""

from common import SCALE, print_table

from repro.analysis import (
    classify_pair,
    exact_path_counts,
    observed_path_counts,
    paper_path_counts,
)
from repro.core import PolarFly
from repro.utils.rng import make_rng

Q = 7 if SCALE == "small" else 11


def representative_pairs(pf, seed=0):
    """One vertex pair per Table VI case, found by sampling."""
    rng = make_rng(seed)
    found = {}
    for _ in range(4000):
        v, w = map(int, rng.integers(0, pf.num_routers, 2))
        if v == w:
            continue
        case = classify_pair(pf, v, w)
        key = (case.adjacent, case.class_v, case.class_w, case.intermediate_is_quadric)
        found.setdefault(key, (case, v, w))
    return found


def test_tab06_path_diversity(benchmark):
    def run():
        pf = PolarFly(Q)
        pairs = representative_pairs(pf)
        rows = []
        for key in sorted(pairs, key=str):
            case, v, w = pairs[key]
            obs = observed_path_counts(pf, v, w)
            exact = exact_path_counts(Q, case)
            paper = paper_path_counts(Q, case)
            rows.append((case, obs, exact, paper))
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for case, obs, exact, paper in results:
        desc = (
            f"{'adj' if case.adjacent else 'nonadj'} "
            f"{case.class_v}/{case.class_w}"
            + (
                f" x={'W' if case.intermediate_is_quadric else 'nonW'}"
                if case.intermediate_is_quadric is not None
                else ""
            )
        )
        table_rows.append(
            [
                desc,
                f"{obs[1]}/{obs[2]}/{obs[3]}/{obs[4]}",
                f"{exact[1]}/{exact[2]}/{exact[3]}/{exact[4]}",
                f"{paper[1]}/{paper[2]}/{paper[3]}/{paper[4]}",
            ]
        )
    print_table(
        f"Table VI on PF(q={Q}): paths of length 1/2/3/4 per pair case",
        ["case", "enumerated", "closed form", "paper"],
        table_rows,
    )

    for case, obs, exact, paper in results:
        # Our closed forms are exact.
        assert obs == exact, case
        # All length-4 entries are Theta(q^2) — the fault-tolerance core.
        assert (Q - 2) ** 2 <= obs[4] <= Q * Q
        # The paper's lengths 1-2 always agree.
        assert paper[1] == obs[1] and paper[2] == obs[2]
