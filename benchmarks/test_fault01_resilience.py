"""Fault benchmark 1 — throughput under failure at equal radix.

The dynamic counterpart of Figure 14: instead of removing links from a
static graph and replotting diameter/ASPL, the same progressive link
removal happens *inside the simulator* while uniform traffic flows, on
PolarFly, Slim Fly, Dragonfly, and Jellyfish at comparable scale/radix
(the scaled Table V set).  Every topology gets a fault-free control
curve and a faulted curve from one sweep; the headline comparison is the
degraded accepted throughput at high load — the number Slim Fly's and
Jellyfish's resilience arguments are actually about — plus the drop
accounting and the post-event latency transient.
"""

import pytest
from common import TABLE_V_SPECS, print_table, run_grid

from repro.experiments import Combo

#: the same failure schedule on every topology (seeded per graph):
#: 10% of links gone in two batches inside the measurement window
FAULTS = "progressive:frac=0.1,steps=2,period=150,start=150,seed=3"

#: direct networks of the scaled Table V set (FT-NCA has no repair path)
DIRECT = ("PF", "SF", "DF1", "JF")

LOADS = (0.4, 0.8)


def test_fault01_resilience_under_load(benchmark):
    combos = []
    for name in DIRECT:
        combos.append(
            Combo(TABLE_V_SPECS[name], "ugal", "uniform", label=f"{name}-ctl")
        )
        combos.append(
            Combo(
                TABLE_V_SPECS[name], "ugal", "uniform",
                faults=FAULTS, label=f"{name}-deg",
            )
        )
    combos.append(
        Combo(
            TABLE_V_SPECS["PF"], "ugal-pf", "uniform",
            faults=FAULTS, label="PF-UGALPF-deg",
        )
    )

    result = benchmark.pedantic(
        lambda: run_grid(combos, loads=LOADS), rounds=1, iterations=1
    )

    rows = []
    for combo in combos:
        cells = [
            result.cells[result.spec.cell(combo, load)["key"]] for load in LOADS
        ]
        high = cells[-1]
        rows.append(
            [
                combo.label,
                f"{high['accepted_load']:.3f}",
                f"{high['avg_latency']:.1f}",
                high.get("dropped_flits", "-"),
                (
                    f"{high['post_fault_avg_latency']:.1f}"
                    if "post_fault_avg_latency" in high
                    else "-"
                ),
            ]
        )
    print_table(
        "Fault 1: accepted throughput under 10% progressive link failure "
        f"(offered {LOADS[-1]})",
        ["config", "accepted", "avg lat", "dropped flits", "post-fault lat"],
        rows,
    )

    by_label = {
        combo.label: result.cells[result.spec.cell(combo, LOADS[0])["key"]]
        for combo in combos
    }
    for name in DIRECT:
        ctl = by_label[f"{name}-ctl"]
        deg = by_label[f"{name}-deg"]
        # The degraded fabric still carries the low-load traffic.
        assert deg["accepted_load"] > 0.5 * LOADS[0], (name, deg)
        # Failures never *help* accepted throughput (small tolerance:
        # these are finite-window measurements).
        assert deg["accepted_load"] <= ctl["accepted_load"] * 1.05, (name,)
        assert deg["fault_applied_events"] >= 1
        assert deg["dropped_flits"] >= 0
