"""Table V — simulated configurations (scaled analogues).

The paper's table pins every topology near PF(31)'s 993 routers; the
scaled harness pins everything near PF(7)'s 57 routers with the same
iso-scale intent.  This bench prints both and checks the full-size
constructions' numbers match the paper exactly.
"""

from common import print_table

from repro import Dragonfly, FatTree, PolarFly, SlimFly

PAPER_ROWS = [
    ("PolarFly (PF)", "q=31, p=16", 993, 32),
    ("Slim Fly (SF)", "q=23, p=18", 1058, 35),
    ("Balanced Dragonfly (DF1)", "a=12, h=6, p=6", 876, 17),
    ("Equivalent Dragonfly (DF2)", "a=6, h=27, p=10", 978, 32),
    ("Jellyfish (JF)", "-", 993, 32),
    ("Fat Tree (FT)", "n=3, k=18", 972, 36),
]


def test_tab05_full_size_configs_match_paper(benchmark):
    """Construct the paper's exact (full-size) topologies and verify."""

    def build():
        pf = PolarFly(31)
        sf = SlimFly(23)
        df1 = Dragonfly(a=12, h=6, p=6)
        df2 = Dragonfly(a=6, h=27, p=10)
        ft = FatTree(k=18, n=3)
        return pf, sf, df1, df2, ft

    pf, sf, df1, df2, ft = benchmark.pedantic(build, rounds=1, iterations=1)
    ours = [
        ("PolarFly (PF)", pf.num_routers, pf.network_radix),
        ("Slim Fly (SF)", sf.num_routers, sf.network_radix),
        ("Balanced Dragonfly (DF1)", df1.num_routers, df1.network_radix),
        ("Equivalent Dragonfly (DF2)", df2.num_routers, df2.network_radix),
        ("Fat Tree (FT)", ft.num_routers, ft.total_radix),
    ]
    rows = [
        [name, params, routers, radix] for name, params, routers, radix in PAPER_ROWS
    ]
    print_table(
        "Table V (paper configurations)",
        ["network", "parameters", "routers", "radix"],
        rows,
    )
    expected = {name: (n, k) for name, _p, n, k in PAPER_ROWS}
    for name, n, k in ours:
        assert (n, k) == expected[name], name
    # Diameters as designed.
    assert pf.diameter() == 2
    assert df1.diameter() == 3


def test_tab05_scaled_configs(benchmark, configs):
    def summarize():
        return [
            [
                name,
                topo.num_routers,
                topo.network_radix,
                topo.num_endpoints,
                topo.diameter(),
            ]
            for name, topo in configs.items()
        ]

    rows = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print_table(
        "Table V (scaled harness analogues)",
        ["network", "routers", "radix", "endpoints", "diameter"],
        rows,
    )
