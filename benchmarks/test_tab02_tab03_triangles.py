"""Tables II & III — triangle distribution and intermediate-vertex types.

Table II: counts of inter-cluster triangles by vertex-type signature for
q = 1 mod 4 and q = 3 mod 4 (closed forms vs full graph census).
Table III: type of the alternative-path midpoint for adjacent non-quadric
pairs.
"""

from common import SCALE, print_table

from repro.core import PolarFly
from repro.core.triangles import (
    expected_inter_cluster_distribution,
    expected_intermediate_type,
    intermediate_type_census,
    triangle_type_distribution,
)

QS = (5, 7, 9, 11) if SCALE == "small" else (5, 7, 9, 11, 13, 17, 19)


def test_tab02_triangle_distribution(benchmark):
    def census():
        out = {}
        for q in QS:
            pf = PolarFly(q)
            out[q] = triangle_type_distribution(pf)["inter"]
        return out

    observed = benchmark.pedantic(census, rounds=1, iterations=1)
    sigs = ["v1v1v1", "v1v1v2", "v1v2v2", "v2v2v2"]
    rows = []
    for q in QS:
        expected = expected_inter_cluster_distribution(q)
        rows.append(
            [f"q={q} (q%4={q % 4})", *(observed[q].get(s, 0) for s in sigs)]
        )
        rows.append(["  (closed form)", *(expected[s] for s in sigs)])
        for s in sigs:
            assert observed[q].get(s, 0) == expected[s], (q, s)
    print_table("Table II: inter-cluster triangles by type", ["q", *sigs], rows)


def test_tab03_intermediate_types(benchmark):
    def census():
        out = {}
        for q in QS:
            out[q] = intermediate_type_census(PolarFly(q))
        return out

    observed = benchmark.pedantic(census, rounds=1, iterations=1)
    rows = []
    for q in QS:
        for (a, b), counter in sorted(observed[q].items()):
            want = expected_intermediate_type(q, a, b)
            got = "/".join(sorted(counter))
            rows.append([f"q={q}", f"({a},{b})", got, want])
            assert set(counter) == {want}, (q, a, b)
    print_table(
        "Table III: midpoint type for adjacent non-quadric pairs",
        ["q", "endpoint types", "observed", "paper"],
        rows,
    )
