"""Benchmark fixtures: share expensive topology construction."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import table_v_configs  # noqa: E402


@pytest.fixture(scope="session")
def configs():
    """The scaled Table V topologies (built from their registry specs)."""
    return table_v_configs()
