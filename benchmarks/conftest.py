"""Benchmark fixtures: share expensive topology/table construction."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import table_v_configs  # noqa: E402

from repro.routing import RoutingTables  # noqa: E402


@pytest.fixture(scope="session")
def configs():
    """The scaled Table V topologies."""
    return table_v_configs()


@pytest.fixture(scope="session")
def routing_tables(configs):
    """Routing tables per topology (built once per session)."""
    return {name: RoutingTables(topo) for name, topo in configs.items()}
