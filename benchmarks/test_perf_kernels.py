"""Performance microbenchmarks of the computational kernels.

Unlike the figure/table regenerators (single-shot experiment drivers),
these use pytest-benchmark's statistical timing to track the hot kernels
the hpc guides say to watch: field-table construction, the vectorized
ER_q adjacency build, all-pairs BFS, and simulator cycle throughput.
"""

from common import SCALE

from repro.core import PolarFly
from repro.fields.galois import FiniteField
from repro.flitsim import NetworkSimulator, UniformTraffic
from repro.routing import MinimalRouting, RoutingTables

Q_BUILD = 31 if SCALE == "small" else 61


def test_perf_field_tables(benchmark):
    """GF(q) table construction (add/mul/inv via discrete logs)."""
    benchmark.pedantic(
        FiniteField, args=(Q_BUILD,), rounds=3, iterations=1
    )


def test_perf_polarfly_construction(benchmark):
    """Full PolarFly(31) build: 993 routers via broadcast dot products."""
    pf = benchmark.pedantic(PolarFly, args=(Q_BUILD,), rounds=3, iterations=1)
    assert pf.num_routers == Q_BUILD * Q_BUILD + Q_BUILD + 1


def test_perf_all_pairs_bfs(benchmark):
    """Routing-table build = N frontier BFS passes on PF(13)."""
    pf = PolarFly(13, concentration=1)
    tables = benchmark.pedantic(RoutingTables, args=(pf,), rounds=3, iterations=1)
    assert int(tables.dist.max()) == 2


def test_perf_simulator_cycles(benchmark):
    """Simulator cycle rate: 200 cycles of PF(7) p=2 at moderate load."""
    pf = PolarFly(7, concentration=2)
    tables = RoutingTables(pf)
    policy = MinimalRouting(tables)

    def run_200():
        sim = NetworkSimulator(pf, policy, UniformTraffic(pf), 0.5, seed=0)
        for _ in range(200):
            sim.step()
        return sim

    sim = benchmark.pedantic(run_200, rounds=3, iterations=1)
    assert sim.now == 200


def test_perf_triangle_enumeration(benchmark):
    """Triangle census on PF(13) (used by the structure theorems)."""
    pf = PolarFly(13)
    tris = benchmark.pedantic(pf.graph.triangles, rounds=3, iterations=1)
    assert len(tris) == 14 * 13 * 12 // 6
