"""Shared infrastructure for the per-figure/table benchmark harness.

Every benchmark regenerates one table or figure from the paper at a scale
controlled by ``REPRO_BENCH_SCALE``:

* ``small`` (default) — topologies of ~30-90 routers, enough cycles for
  the qualitative curves; the full harness runs in minutes on a laptop.
* ``medium`` — ~180-340 routers, longer runs.

Simulation-based benches print the same rows/series the paper plots; the
shapes (who wins, roughly by what factor, where crossovers fall) are the
reproduction target — absolute cycle counts differ from BookSim's.
"""

from __future__ import annotations

import os

from repro import (
    Dragonfly,
    FatTree,
    Jellyfish,
    PolarFly,
    SlimFly,
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: simulation windows per scale
SIM_PARAMS = {
    "small": dict(warmup=250, measure=500, drain=200),
    "medium": dict(warmup=400, measure=800, drain=300),
}[SCALE]

#: offered loads swept in latency-vs-load figures
LOADS = (0.2, 0.5, 0.8, 0.95)


def table_v_configs():
    """Scaled analogues of the paper's Table V configurations.

    Scale "small" pins every direct network near PF(7)'s 57 routers with
    p=2 endpoints, mirroring the paper's iso-scale comparison (Table V
    pins everything near PF(31)'s 993 routers):

    * PF   q=7  -> 57 routers, radix 8
    * SF   q=5  -> 50 routers, radix 7
    * DF1  balanced a=4,h=2,p=2 -> 36 routers, radix 5
    * DF2  radix-equivalent a=3,h=6 -> 57 routers, radix 8
    * JF   57 routers, radix 8
    * FT   3-level 4-ary -> 48 switches, 64 endpoints
    """
    if SCALE == "small":
        return {
            "PF": PolarFly(7, concentration=2),
            "SF": SlimFly(5, concentration=2),
            "DF1": Dragonfly(a=4, h=2, p=2),
            "DF2": Dragonfly(a=3, h=6, p=2),
            "JF": Jellyfish(n=57, r=8, p=2, seed=7),
            "FT": FatTree(k=4, n=3),
        }
    return {
        "PF": PolarFly(13, concentration=4),
        "SF": SlimFly(9, concentration=4),
        "DF1": Dragonfly(a=6, h=3, p=3),
        "DF2": Dragonfly(a=4, h=11, p=4),
        "JF": Jellyfish(n=183, r=14, p=4, seed=7),
        "FT": FatTree(k=6, n=3),
    }


def make_config(policy, port_budget: int = 32):
    """SimConfig with enough VCs for ``policy`` and a fixed port buffer.

    Mirrors the paper's methodology: the total buffer per port stays
    constant (their 128 flits; 32 at bench scale) while the VC count
    covers the policy's worst-case hop count (Valiant on a diameter-3
    baseline needs 6 hops -> 5 VCs).
    """
    from repro.flitsim import SimConfig

    vcs = max(4, policy.max_hops - 1)
    return SimConfig(num_vcs=vcs, vc_depth=max(2, port_budget // vcs))


def print_table(title: str, headers, rows) -> None:
    """Print an aligned text table (the bench 'figure')."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def print_series(title: str, series: dict) -> None:
    """Print labelled (x, y) series, one per curve of a figure."""
    print(f"\n=== {title} ===")
    for label, points in series.items():
        txt = "  ".join(f"({x:g},{y:.3g})" for x, y in points)
        print(f"  {label:<16} {txt}")
