"""Shared infrastructure for the per-figure/table benchmark harness.

Every benchmark regenerates one table or figure from the paper at a scale
controlled by ``REPRO_BENCH_SCALE``:

* ``small`` (default) — topologies of ~30-90 routers, enough cycles for
  the qualitative curves; the full harness runs in minutes on a laptop.
* ``medium`` — ~180-340 routers, longer runs.

All simulation-based benches go through one shared
:class:`~repro.experiments.runner.SweepRunner` (the unified experiment
engine): sweeps are declared as :class:`~repro.experiments.spec.Combo`
grids of registry spec strings, results land in the on-disk result cache
(``$REPRO_CACHE_DIR``, off unless set), and re-running a figure only
simulates missing cells.  Set ``REPRO_SWEEP_WORKERS=N`` to fan cells out
over N processes — results are bit-identical at any worker count.

Simulation-based benches print the same rows/series the paper plots; the
shapes (who wins, roughly by what factor, where crossovers fall) are the
reproduction target — absolute cycle counts differ from BookSim's.
"""

from __future__ import annotations

import os

from repro.experiments import (
    Combo,
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    TOPOLOGIES,
)
from repro.experiments.runner import auto_sim_config

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: simulation windows per scale
SIM_PARAMS = {
    "small": dict(warmup=250, measure=500, drain=200),
    "medium": dict(warmup=400, measure=800, drain=300),
}[SCALE]

#: offered loads swept in latency-vs-load figures
LOADS = (0.2, 0.5, 0.8, 0.95)

#: root seed shared by all benchmark sweeps (per-cell seeds derive from it)
ROOT_SEED = 11

#: Table V topologies as registry specs — the scaled analogues of the
#: paper's configurations.  Scale "small" pins every direct network near
#: PF(7)'s 57 routers with p=2 endpoints, mirroring the paper's iso-scale
#: comparison (Table V pins everything near PF(31)'s 993 routers).
TABLE_V_SPECS = {
    "small": {
        "PF": "polarfly:conc=2,q=7",
        "SF": "slimfly:conc=2,q=5",
        "DF1": "dragonfly:a=4,h=2,p=2",
        "DF2": "dragonfly:a=3,h=6,p=2",
        "JF": "jellyfish:n=57,p=2,r=8,seed=7",
        "FT": "fattree:k=4,n=3",
    },
    "medium": {
        "PF": "polarfly:conc=4,q=13",
        "SF": "slimfly:conc=4,q=9",
        "DF1": "dragonfly:a=6,h=3,p=3",
        "DF2": "dragonfly:a=4,h=11,p=4",
        "JF": "jellyfish:n=183,p=4,r=14,seed=7",
        "FT": "fattree:k=6,n=3",
    },
}[SCALE]


def table_v_configs():
    """The scaled Table V topologies, built from their registry specs."""
    return {name: TOPOLOGIES.create(spec) for name, spec in TABLE_V_SPECS.items()}


#: the one engine instance every benchmark shares; caching is opt-in
#: (only when the operator sets REPRO_CACHE_DIR)
ENGINE = SweepRunner(cache=ResultCache.from_env())


def run_grid(combos, loads=LOADS, root_seed: int = ROOT_SEED, **overrides):
    """Run a combo grid through the shared engine at benchmark scale.

    ``overrides`` may replace any :class:`ExperimentSpec` field
    (``warmup``, ``num_vcs``, ...); the scale's windows are the default.
    """
    params = dict(SIM_PARAMS)
    params.update(overrides)
    spec = ExperimentSpec(
        combos=tuple(combos), loads=tuple(loads), root_seed=root_seed, **params
    )
    return ENGINE.run(spec)


def make_config(policy, port_budget: int = 32):
    """SimConfig with enough VCs for ``policy`` and a fixed port buffer.

    Delegates to the engine's :func:`auto_sim_config` — the same
    derivation sweep workers apply to spec-built policies.
    """
    return auto_sim_config(policy, port_budget=port_budget)


def adaptive_combos(name: str, traffic: str):
    """The adaptive-routing curves benchmarked for Table V entry ``name``.

    FT routes NCA (its only sensible policy); every direct network gets
    UGAL; PolarFly additionally gets the paper's UGAL_PF.
    """
    topo = TABLE_V_SPECS[name]
    if name == "FT":
        return [Combo(topo, "ftnca", traffic, label="FT-NCA")]
    out = [Combo(topo, "ugal", traffic, label=f"{name}-UGAL")]
    if name == "PF":
        out.append(Combo(topo, "ugal-pf", traffic, label="PF-UGALPF"))
    return out


def minimal_combo(name: str, traffic: str) -> Combo:
    """The min-path curve for Table V entry ``name`` (NCA on the FT)."""
    topo = TABLE_V_SPECS[name]
    if name == "FT":
        return Combo(topo, "ftnca", traffic, label="FT-NCA")
    return Combo(topo, "min", traffic, label=f"{name}-MIN")


def sweep_rows(sweeps):
    """Standard (config, offered, latency, accepted) table rows."""
    return [
        [s.label, p.offered_load, f"{p.avg_latency:.1f}", f"{p.accepted_load:.3f}"]
        for s in sweeps
        for p in s.points
    ]


def print_table(title: str, headers, rows) -> None:
    """Print an aligned text table (the bench 'figure')."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def print_series(title: str, series: dict) -> None:
    """Print labelled (x, y) series, one per curve of a figure."""
    print(f"\n=== {title} ===")
    for label, points in series.items():
        txt = "  ".join(f"({x:g},{y:.3g})" for x, y in points)
        print(f"  {label:<16} {txt}")
