"""Figure 8 — latency vs offered load across topologies and routings.

Four sub-figures, each a latency-vs-load sweep on the (scaled) Table V
configurations:

  (a) uniform traffic, minimal routing (+ FT-NCA);
  (b) uniform traffic, adaptive routing (UGAL / UGAL_PF);
  (c) random permutation traffic, adaptive routing;
  (d) tornado traffic, adaptive routing.

Reproduction target (shapes, not cycle counts): PolarFly saturates at or
above every direct baseline, with latency advantages over the diameter-3
Dragonfly and Jellyfish; under permutations adaptive PF sustains ~50-66%
while min-path would cap at 1/p.
"""

import pytest
from common import LOADS, SIM_PARAMS, make_config, print_table

from repro.flitsim import (
    RandomPermutationTraffic,
    TornadoTraffic,
    UniformTraffic,
    run_load_sweep,
)
from repro.routing import (
    FatTreeNCARouting,
    MinimalRouting,
    UGALPFRouting,
    UGALRouting,
)


def sweep(topo, policy, traffic, label):
    return run_load_sweep(
        topo,
        policy,
        traffic,
        loads=LOADS,
        label=label,
        config=make_config(policy),
        seed=11,
        **SIM_PARAMS,
    )


def show(title, sweeps):
    rows = []
    for s in sweeps:
        for p in s.points:
            rows.append(
                [s.label, p.offered_load, f"{p.avg_latency:.1f}",
                 f"{p.accepted_load:.3f}"]
            )
    print_table(title, ["config", "offered", "latency", "accepted"], rows)


def _min_policy(name, tables):
    if name == "FT":
        return FatTreeNCARouting(tables), "FT-NCA"
    return MinimalRouting(tables), f"{name}-MIN"


def _adaptive_policies(name, tables):
    if name == "FT":
        return [(FatTreeNCARouting(tables), "FT-NCA")]
    out = [(UGALRouting(tables), f"{name}-UGAL")]
    if name == "PF":
        out.append((UGALPFRouting(tables), "PF-UGALPF"))
    return out


def test_fig08a_uniform_min(benchmark, configs, routing_tables):
    def run():
        sweeps = []
        for name, topo in configs.items():
            policy, label = _min_policy(name, routing_tables[name])
            sweeps.append(sweep(topo, policy, UniformTraffic(topo), label))
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    show("Figure 8a: uniform traffic, min-path routing", sweeps)
    sat = {s.label: s.saturation_load() for s in sweeps}
    # PolarFly saturates at or above the other direct min-routed networks.
    assert sat["PF-MIN"] >= sat["DF1-MIN"] - 0.05
    assert sat["PF-MIN"] >= sat["DF2-MIN"] - 0.05
    # Low-load latency: diameter 2 beats the diameter-3 Dragonfly.
    lat = {s.label: s.points[0].avg_latency for s in sweeps}
    assert lat["PF-MIN"] < lat["DF1-MIN"]


def test_fig08b_uniform_adaptive(benchmark, configs, routing_tables):
    def run():
        sweeps = []
        for name, topo in configs.items():
            for policy, label in _adaptive_policies(name, routing_tables[name]):
                sweeps.append(sweep(topo, policy, UniformTraffic(topo), label))
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    show("Figure 8b: uniform traffic, adaptive routing", sweeps)
    sat = {s.label: s.saturation_load() for s in sweeps}
    # UGAL_PF tracks near-minimal behaviour under uniform traffic and
    # stays competitive with the fat tree.
    assert sat["PF-UGALPF"] >= 0.9 * sat["PF-UGAL"]
    lat = {s.label: s.points[0].avg_latency for s in sweeps}
    assert lat["PF-UGALPF"] < lat["FT-NCA"] * 1.5


@pytest.mark.parametrize(
    "fig,traffic_cls",
    [("8c: random permutation", RandomPermutationTraffic), ("8d: tornado", TornadoTraffic)],
    ids=["randperm", "tornado"],
)
def test_fig08cd_permutations_adaptive(benchmark, configs, routing_tables, fig, traffic_cls):
    def run():
        sweeps = []
        for name, topo in configs.items():
            kwargs = {"seed": 3} if traffic_cls is RandomPermutationTraffic else {}
            traffic = traffic_cls(topo, **kwargs)
            for policy, label in _adaptive_policies(name, routing_tables[name]):
                sweeps.append(sweep(topo, policy, traffic, label))
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    show(f"Figure {fig} traffic, adaptive routing", sweeps)
    sat = {s.label: s.saturation_load() for s in sweeps}
    # Paper: PolarFly sustains 50-66% of injection bandwidth under
    # adversarial permutations, outperforming SF and DF.
    assert sat["PF-UGALPF"] >= 0.45
    assert sat["PF-UGALPF"] >= sat["DF1-UGAL"] - 0.05
    assert sat["PF-UGALPF"] >= sat["DF2-UGAL"] - 0.05
