"""Figure 8 — latency vs offered load across topologies and routings.

Four sub-figures, each a latency-vs-load sweep on the (scaled) Table V
configurations, all executed by the shared experiment engine:

  (a) uniform traffic, minimal routing (+ FT-NCA);
  (b) uniform traffic, adaptive routing (UGAL / UGAL_PF);
  (c) random permutation traffic, adaptive routing;
  (d) tornado traffic, adaptive routing.

Reproduction target (shapes, not cycle counts): PolarFly saturates at or
above every direct baseline, with latency advantages over the diameter-3
Dragonfly and Jellyfish; under permutations adaptive PF sustains ~50-66%
while min-path would cap at 1/p.
"""

import pytest
from common import (
    TABLE_V_SPECS,
    adaptive_combos,
    minimal_combo,
    print_table,
    run_grid,
    sweep_rows,
)


def show(title, sweeps):
    print_table(title, ["config", "offered", "latency", "accepted"], sweep_rows(sweeps))


def test_fig08a_uniform_min(benchmark):
    combos = [minimal_combo(name, "uniform") for name in TABLE_V_SPECS]

    result = benchmark.pedantic(lambda: run_grid(combos), rounds=1, iterations=1)
    show("Figure 8a: uniform traffic, min-path routing", result.sweeps)
    sat = result.saturation_table()
    # PolarFly saturates at or above the other direct min-routed networks.
    assert sat["PF-MIN"] >= sat["DF1-MIN"] - 0.05
    assert sat["PF-MIN"] >= sat["DF2-MIN"] - 0.05
    # Low-load latency: diameter 2 beats the diameter-3 Dragonfly.
    lat = {s.label: s.points[0].avg_latency for s in result.sweeps}
    assert lat["PF-MIN"] < lat["DF1-MIN"]


def test_fig08b_uniform_adaptive(benchmark):
    combos = [c for name in TABLE_V_SPECS for c in adaptive_combos(name, "uniform")]

    result = benchmark.pedantic(lambda: run_grid(combos), rounds=1, iterations=1)
    show("Figure 8b: uniform traffic, adaptive routing", result.sweeps)
    sat = result.saturation_table()
    # UGAL_PF tracks near-minimal behaviour under uniform traffic and
    # stays competitive with the fat tree.
    assert sat["PF-UGALPF"] >= 0.9 * sat["PF-UGAL"]
    lat = {s.label: s.points[0].avg_latency for s in result.sweeps}
    assert lat["PF-UGALPF"] < lat["FT-NCA"] * 1.5


@pytest.mark.parametrize(
    "fig,traffic",
    [("8c: random permutation", "randperm:seed=3"), ("8d: tornado", "tornado")],
    ids=["randperm", "tornado"],
)
def test_fig08cd_permutations_adaptive(benchmark, fig, traffic):
    combos = [c for name in TABLE_V_SPECS for c in adaptive_combos(name, traffic)]

    result = benchmark.pedantic(lambda: run_grid(combos), rounds=1, iterations=1)
    show(f"Figure {fig} traffic, adaptive routing", result.sweeps)
    sat = result.saturation_table()
    # Paper: PolarFly sustains 50-66% of injection bandwidth under
    # adversarial permutations, outperforming SF and DF.
    assert sat["PF-UGALPF"] >= 0.45
    assert sat["PF-UGALPF"] >= sat["DF1-UGAL"] - 0.05
    assert sat["PF-UGALPF"] >= sat["DF2-UGAL"] - 0.05
