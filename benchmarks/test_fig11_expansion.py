"""Figure 11 — throughput of incrementally expanded PolarFly.

The paper grows PF(31) by 3/6/9/12 racks (~10-39%) with each scheme and
measures UGAL_PF throughput under uniform traffic: quadric replication
costs ~31% of peak at +39% size, non-quadric replication only ~19%, and
successive non-quadric steps flatten out.  Scaled here to PF(7) grown by
1-3 racks.
"""

from common import ENGINE, SCALE, SIM_PARAMS, print_table

from repro import PolarFly
from repro.core import replicate_nonquadric_clusters, replicate_quadrics
from repro.flitsim import UniformTraffic
from repro.routing import RoutingTables, UGALPFRouting

Q = 7 if SCALE == "small" else 13
P = (Q + 1) // 2
LOAD = 0.85


def throughput(topo):
    # Expanded fabrics are in-memory objects without registry specs, so
    # they run through the shared engine's object path.
    policy = UGALPFRouting(RoutingTables(topo))
    sweep = ENGINE.run_objects(
        topo, policy, UniformTraffic(topo), loads=(LOAD,), seed=13, **SIM_PARAMS
    )
    return sweep.points[0].accepted_load


def test_fig11_expansion(benchmark):
    def run():
        base = PolarFly(Q, concentration=P)
        results = {"PF (base)": (base.num_routers, throughput(base))}
        for t in (1, 2, 3):
            exq = replicate_quadrics(base, t, concentration=P)
            results[f"+{t} quadric"] = (exq.num_routers, throughput(exq))
            exn = replicate_nonquadric_clusters(base, t, concentration=P)
            results[f"+{t} nonquadric"] = (exn.num_routers, throughput(exn))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base_n, base_thru = results["PF (base)"]
    rows = [
        [name, n, f"{n / base_n - 1:+.0%}", f"{thru:.3f}", f"{thru / base_thru:.0%}"]
        for name, (n, thru) in results.items()
    ]
    print_table(
        f"Figure 11: expanded PF(q={Q}) UGAL_PF throughput @ load {LOAD}",
        ["network", "routers", "growth", "accepted", "vs base"],
        rows,
    )

    # Shape: non-quadric replication retains at least as much throughput
    # as quadric replication at equal step count, and neither collapses.
    for t in (2, 3):
        nq = results[f"+{t} nonquadric"][1]
        qd = results[f"+{t} quadric"][1]
        assert nq >= qd - 0.05, (t, nq, qd)
    assert results["+3 nonquadric"][1] > 0.5 * base_thru
    # Successive non-quadric steps flatten: step 2->3 loses little.
    n2 = results["+2 nonquadric"][1]
    n3 = results["+3 nonquadric"][1]
    assert n3 > 0.85 * n2
