"""Figure 15 — network cost per node, normalized to PolarFly.

Iso-injection-bandwidth OIO cost model at ~1,024 nodes, for uniform and
permutation traffic.  Paper bars: uniform 1 / 1.24 / 1.81 / 5.19 and
permutation 1 / 1.21 / 2.25 / 2.68 (PF / SF / DF / FT); the model
reproduces them within ~10%.
"""

from common import print_table

from repro.analysis import NORMALIZED_COSTS, cost_comparison


def test_fig15_cost(benchmark):
    ours = benchmark.pedantic(cost_comparison, rounds=1, iterations=1)
    rows = []
    for scenario in ("uniform", "permutation"):
        for name in NORMALIZED_COSTS[scenario]:
            rows.append(
                [scenario, name,
                 f"{ours[scenario][name]:.2f}",
                 f"{NORMALIZED_COSTS[scenario][name]:.2f}"]
            )
    print_table(
        "Figure 15: normalized network cost (iso injection bandwidth)",
        ["scenario", "topology", "model", "paper"],
        rows,
    )
    for scenario in ("uniform", "permutation"):
        costs = ours[scenario]
        assert costs["PolarFly"] == 1.0
        assert costs["PolarFly"] < costs["Slim Fly"] < costs["Dragonfly"]
        assert costs["Fat-tree"] == max(costs.values())
        for name, paper in NORMALIZED_COSTS[scenario].items():
            assert abs(costs[name] - paper) / paper < 0.12, (scenario, name)
    # Headline: 5.19x vs fat tree under uniform, 2.68x under permutation.
    assert ours["uniform"]["Fat-tree"] > 4.5
    assert 2.3 < ours["permutation"]["Fat-tree"] < 3.1
