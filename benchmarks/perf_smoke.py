"""Perf smoke: time both engines on the canonical cells, write the baseline.

Not a pytest module (no ``test_`` prefix) — run it directly:

    PYTHONPATH=src python benchmarks/perf_smoke.py

Times the struct-of-arrays flat engine against the reference engine on
the canonical cells (Figure-9 PolarFly q=7 UGAL_PF, Dragonfly minimal
adversarial), the closed-loop workload cells (ring all-reduce and
all-to-all on PolarFly q=7, completion time per engine), plus the
construction path (topology, routing tables, candidate CSR, flat
fabric) at q ∈ {7, 19, 31}, and writes ``BENCH_flitsim.json``.  ``tools/bench.py`` is the CLI wrapper with
knobs and the CI ``--check`` / ``--check-construction`` gates.
"""

from repro.experiments.perfbench import run_benchmarks, write_bench_json


def main() -> dict:
    doc = run_benchmarks()
    path = write_bench_json(doc)
    for name, cell in doc["cells"].items():
        ref = cell["engines"]["reference"]["cycles_per_sec"]
        flat = cell["engines"]["flat"]["cycles_per_sec"]
        print(
            f"{name:28s} reference {ref:9.0f} c/s   flat {flat:9.0f} c/s   "
            f"speedup {cell['speedup_flat_over_reference']:.2f}x"
        )
    for name, entry in doc.get("workloads", {}).items():
        speedup = entry.get("speedup_flat_over_reference")
        kernel = entry.get("speedup_kernel_over_numpy")
        print(
            f"{name:28s} completion {entry['completion_cycles']:6d} cyc"
            + (f"   speedup {speedup:.2f}x" if speedup else "")
            + (f"   kernel {kernel:.2f}x" if kernel else "")
        )
    for name, entry in doc.get("construction", {}).items():
        rt = entry["routing_tables"]
        speedup = rt.get("speedup_batched_over_per_source")
        print(
            f"{name:28s} N={entry['num_routers']:<5d} tables "
            f"{rt['batched_s'] * 1e3:7.1f} ms"
            + (f"   speedup {speedup:.1f}x" if speedup else "")
        )
    print(f"wrote {path}")
    return doc


if __name__ == "__main__":
    main()
