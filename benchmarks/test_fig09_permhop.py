"""Figure 9 — adaptive routing on PolarFly under Perm1Hop / Perm2Hop.

Perm1Hop: every router talks to a 1-hop neighbor (min paths 1 hop, the
UGAL_PF detour is 4 hops).  Perm2Hop: 2-hop partners (detour 3 hops).
The paper's headline: min-path withstands only ~1/p of injection
bandwidth, adaptive routing reaches ~50%+.
"""

import pytest
from common import TABLE_V_SPECS, print_table, run_grid, sweep_rows

from repro.experiments import Combo

LOADS9 = (0.2, 0.4, 0.6)


@pytest.mark.parametrize(
    "name,traffic",
    [("Perm2Hop", "perm2hop:seed=1"), ("Perm1Hop", "perm1hop:seed=1")],
    ids=["perm2hop", "perm1hop"],
)
def test_fig09_permhop(benchmark, configs, name, traffic):
    pf_spec = TABLE_V_SPECS["PF"]
    combos = [
        Combo(pf_spec, "min", traffic, label="PF-MIN"),
        Combo(pf_spec, "ugal", traffic, label="PF-UGAL"),
        Combo(pf_spec, "ugal-pf", traffic, label="PF-UGALPF"),
    ]

    result = benchmark.pedantic(
        lambda: run_grid(combos, loads=LOADS9), rounds=1, iterations=1
    )
    print_table(
        f"Figure 9: {name} on PolarFly",
        ["config", "offered", "latency", "accepted"],
        sweep_rows(result.sweeps),
    )

    sat = result.saturation_table()
    p = int(configs["PF"].concentration[0])
    # Min-path permutations cap at ~1/p of injection bandwidth.
    assert sat["PF-MIN"] <= 1 / p + 0.08
    # Adaptive routing sustains far more.
    assert sat["PF-UGAL"] > sat["PF-MIN"] * 1.1
    assert sat["PF-UGALPF"] > sat["PF-MIN"] * 1.1
