"""Figure 9 — adaptive routing on PolarFly under Perm1Hop / Perm2Hop.

Perm1Hop: every router talks to a 1-hop neighbor (min paths 1 hop, the
UGAL_PF detour is 4 hops).  Perm2Hop: 2-hop partners (detour 3 hops).
The paper's headline: min-path withstands only ~1/p of injection
bandwidth, adaptive routing reaches ~50%+.
"""

import pytest
from common import SIM_PARAMS, make_config, print_table

from repro.flitsim import (
    OneHopPermutationTraffic,
    TwoHopPermutationTraffic,
    run_load_sweep,
)
from repro.routing import MinimalRouting, UGALPFRouting, UGALRouting

LOADS9 = (0.2, 0.4, 0.6)


@pytest.mark.parametrize(
    "name,traffic_cls",
    [("Perm2Hop", TwoHopPermutationTraffic), ("Perm1Hop", OneHopPermutationTraffic)],
    ids=["perm2hop", "perm1hop"],
)
def test_fig09_permhop(benchmark, configs, routing_tables, name, traffic_cls):
    pf = configs["PF"]
    tables = routing_tables["PF"]
    policies = [
        ("PF-MIN", MinimalRouting(tables)),
        ("PF-UGAL", UGALRouting(tables)),
        ("PF-UGALPF", UGALPFRouting(tables)),
    ]

    def run():
        traffic = traffic_cls(pf, seed=1)
        return [
            run_load_sweep(
                pf, policy, traffic, loads=LOADS9, label=label,
                config=make_config(policy), seed=21, **SIM_PARAMS,
            )
            for label, policy in policies
        ]

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [s.label, p.offered_load, f"{p.avg_latency:.1f}", f"{p.accepted_load:.3f}"]
        for s in sweeps
        for p in s.points
    ]
    print_table(f"Figure 9: {name} on PolarFly", ["config", "offered", "latency", "accepted"], rows)

    sat = {s.label: s.saturation_load() for s in sweeps}
    p = int(pf.concentration[0])
    # Min-path permutations cap at ~1/p of injection bandwidth.
    assert sat["PF-MIN"] <= 1 / p + 0.08
    # Adaptive routing sustains far more.
    assert sat["PF-UGAL"] > sat["PF-MIN"] * 1.1
    assert sat["PF-UGALPF"] > sat["PF-MIN"] * 1.1
