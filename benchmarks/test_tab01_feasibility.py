"""Table I — feasibility criteria matrix for candidate topologies."""

from common import print_table

from repro.analysis import FEASIBILITY_TABLE

MARK = {"full": "Y", "partial": "~", "no": "x"}


def test_tab01_feasibility(benchmark):
    def build():
        return FEASIBILITY_TABLE

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    criteria = ["direct", "modular", "expandable", "flexible", "diameter2"]
    rows = [
        [name, *(MARK[table[name][c]] for c in criteria)] for name in table
    ]
    print_table("Table I: feasibility", ["topology", *criteria], rows)
    # PolarFly is the uniquely best row (most 'full' marks).
    fulls = {n: sum(v == "full" for v in r.values()) for n, r in table.items()}
    assert max(fulls, key=fulls.get) == "PolarFly"
