"""Figure 14 — diameter and ASPL vs link-failure ratio.

Random link-failure sweeps (median-disconnection run, per the paper's
methodology) across the Table V configurations.  Shape targets: PolarFly's
diameter jumps to 3-4 with the first failures and then *stays* at ~4 deep
into the sweep (Theta(q^2) 4-hop diversity); PF/SF disconnect earlier than
Jellyfish-like expanders only marginally; ASPL degrades gracefully.
"""

from common import SCALE, print_table

from repro.analysis import median_disconnection_sweep

STEPS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.55, 0.7, 0.85]
RUNS = 3 if SCALE == "small" else 7


def test_fig14_resilience(benchmark, configs):
    def run():
        out = {}
        for name, topo in configs.items():
            out[name] = median_disconnection_sweep(
                topo.graph, runs=RUNS, steps=STEPS, seed=17
            )
        return out

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, sweep in sweeps.items():
        for ratio, diam, aspl in zip(sweep.ratios, sweep.diameters, sweep.aspl):
            rows.append(
                [name, f"{ratio:.2f}",
                 diam if diam >= 0 else "disc",
                 f"{aspl:.2f}" if aspl != float("inf") else "inf"]
            )
    print_table(
        "Figure 14: diameter / ASPL vs link failure ratio (median run)",
        ["network", "failed", "diameter", "ASPL"],
        rows,
    )

    pf = sweeps["PF"]
    # Intact network: diameter 2.
    assert pf.diameters[0] == 2
    # Early failures push PolarFly to diameter 3-4 (quadric links have no
    # 2/3-hop alternatives) ...
    if len(pf.diameters) > 2 and pf.diameters[2] >= 0:
        assert 3 <= pf.diameters[2] <= 5
    # ... and it survives deep into the sweep.
    assert pf.disconnection_ratio >= 0.4
    # ASPL stays graceful while connected.
    for diam, aspl in zip(pf.diameters, pf.aspl):
        if diam >= 0:
            assert aspl < 4.0
