"""Figure 10 — PolarFly performance across network sizes.

The paper sweeps q in {13, 19, 25, 31} (183-993 routers) at a balanced
endpoint ratio p = (q+1)/2 and shows latency/saturation are stable with
size, for both min-path and UGAL_PF routing.  The scaled harness sweeps
q in {5, 7, 9} (31-91 routers) with the same balance.
"""

from common import SCALE, SIM_PARAMS, make_config, print_table

from repro import PolarFly
from repro.flitsim import UniformTraffic, run_load_sweep
from repro.routing import MinimalRouting, RoutingTables, UGALPFRouting

QS = (5, 7, 9) if SCALE == "small" else (7, 9, 13)
LOADS10 = (0.2, 0.5, 0.8)


def test_fig10_size_sweep(benchmark):
    def run():
        sweeps = []
        for q in QS:
            pf = PolarFly(q, concentration=(q + 1) // 2)
            tables = RoutingTables(pf)
            for policy, label in (
                (MinimalRouting(tables), f"PF{q}-MIN"),
                (UGALPFRouting(tables), f"PF{q}-UGALPF"),
            ):
                sweeps.append(
                    run_load_sweep(
                        pf, policy, UniformTraffic(pf), loads=LOADS10,
                        label=label, config=make_config(policy), seed=5,
                        **SIM_PARAMS,
                    )
                )
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [s.label, p.offered_load, f"{p.avg_latency:.1f}", f"{p.accepted_load:.3f}"]
        for s in sweeps
        for p in s.points
    ]
    print_table("Figure 10: PolarFly size sweep (uniform)", ["config", "offered", "latency", "accepted"], rows)

    # Stability claim: saturation within a modest band across sizes for
    # each routing policy.
    for suffix in ("MIN", "UGALPF"):
        sats = [
            s.saturation_load() for s in sweeps if s.label.endswith(suffix)
        ]
        assert max(sats) - min(sats) < 0.25, (suffix, sats)
    # Low-load latency also stable (diameter stays 2).
    for suffix in ("MIN", "UGALPF"):
        lats = [
            s.points[0].avg_latency for s in sweeps if s.label.endswith(suffix)
        ]
        assert max(lats) / min(lats) < 1.6, (suffix, lats)
