"""Figure 10 — PolarFly performance across network sizes.

The paper sweeps q in {13, 19, 25, 31} (183-993 routers) at a balanced
endpoint ratio p = (q+1)/2 and shows latency/saturation are stable with
size, for both min-path and UGAL_PF routing.  The scaled harness sweeps
q in {5, 7, 9} (31-91 routers) with the same balance.
"""

from common import SCALE, print_table, run_grid, sweep_rows

from repro.experiments import Combo

QS = (5, 7, 9) if SCALE == "small" else (7, 9, 13)
LOADS10 = (0.2, 0.5, 0.8)


def test_fig10_size_sweep(benchmark):
    combos = [
        Combo(f"polarfly:conc={(q + 1) // 2},q={q}", policy, "uniform", label=label)
        for q in QS
        for policy, label in (("min", f"PF{q}-MIN"), ("ugal-pf", f"PF{q}-UGALPF"))
    ]

    result = benchmark.pedantic(
        lambda: run_grid(combos, loads=LOADS10, root_seed=5), rounds=1, iterations=1
    )
    print_table(
        "Figure 10: PolarFly size sweep (uniform)",
        ["config", "offered", "latency", "accepted"],
        sweep_rows(result.sweeps),
    )

    # Stability claim: saturation within a modest band across sizes for
    # each routing policy.
    for suffix in ("MIN", "UGALPF"):
        sats = [
            s.saturation_load() for s in result.sweeps if s.label.endswith(suffix)
        ]
        assert max(sats) - min(sats) < 0.25, (suffix, sats)
    # Low-load latency also stable (diameter stays 2).
    for suffix in ("MIN", "UGALPF"):
        lats = [
            s.points[0].avg_latency for s in result.sweeps if s.label.endswith(suffix)
        ]
        assert max(lats) / min(lats) < 1.6, (suffix, lats)
