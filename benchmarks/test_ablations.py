"""Ablations of the design choices DESIGN.md calls out.

* UGAL_PF adaptation threshold (0 -> always compare, 1 -> never divert);
* Compact Valiant vs general Valiant intermediates;
* router buffer depth sensitivity;
* spectral-only vs KL-refined bisection quality.
"""

import numpy as np
from common import SIM_PARAMS, make_config, print_table

from repro import PolarFly, SlimFly
from repro.analysis.bisection import bisection_cut
from repro.flitsim import (
    NetworkSimulator,
    RandomPermutationTraffic,
    SimConfig,
    TornadoTraffic,
    UniformTraffic,
)
from repro.routing import (
    CompactValiantRouting,
    MinimalRouting,
    RoutingTables,
    UGALPFRouting,
    ValiantRouting,
)


def test_abl_ugalpf_threshold(benchmark, configs, routing_tables):
    """Threshold sweep: 0 behaves like UGAL, 1 like MIN; 2/3 is the knee."""
    pf, tables = configs["PF"], routing_tables["PF"]

    # Note: the occupancy estimate includes local VOQ backlog, so it can
    # exceed the buffer capacity — "off" therefore needs a huge threshold,
    # not 1.0.
    OFF = 1e9

    def run():
        out = {}
        for thr in (0.0, 1 / 3, 2 / 3, OFF):
            policy = UGALPFRouting(tables, threshold=thr)
            sim = NetworkSimulator(
                pf, policy, TornadoTraffic(pf), 0.7,
                config=make_config(policy), seed=31,
            )
            res = sim.run(**SIM_PARAMS)
            out[thr] = (res.accepted_load, res.avg_latency, res.avg_hops)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["off" if thr == OFF else f"{thr:.2f}", f"{acc:.3f}", f"{lat:.1f}", f"{hops:.2f}"]
        for thr, (acc, lat, hops) in res.items()
    ]
    print_table(
        "Ablation: UGAL_PF threshold under tornado @ 0.7",
        ["threshold", "accepted", "latency", "avg hops"],
        rows,
    )
    p = int(pf.concentration[0])
    # Adaptation off -> min-path cap ~1/p of injection bandwidth.
    assert res[OFF][0] <= 1 / p + 0.08
    # the paper's 2/3 must clearly beat no adaptation.
    assert res[2 / 3][0] > res[OFF][0] * 1.2
    # lower thresholds divert more -> more average hops.
    assert res[0.0][2] >= res[2 / 3][2] - 0.05


def test_abl_compact_vs_general_valiant(benchmark, configs, routing_tables):
    """Compact Valiant buys shorter detours at equal-or-better throughput."""
    pf, tables = configs["PF"], routing_tables["PF"]

    def run():
        out = {}
        for name, policy in (
            ("general", ValiantRouting(tables)),
            ("compact", CompactValiantRouting(tables)),
        ):
            sim = NetworkSimulator(
                pf, policy, RandomPermutationTraffic(pf, seed=2), 0.5,
                config=make_config(policy), seed=33,
            )
            res = sim.run(**SIM_PARAMS)
            out[name] = (res.accepted_load, res.avg_latency, res.avg_hops)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{acc:.3f}", f"{lat:.1f}", f"{hops:.2f}"]
        for name, (acc, lat, hops) in res.items()
    ]
    print_table(
        "Ablation: Valiant intermediates (randperm @ 0.5)",
        ["variant", "accepted", "latency", "avg hops"],
        rows,
    )
    # Compact detours are strictly shorter on average (<= 3 vs <= 4 hops).
    assert res["compact"][2] < res["general"][2]


def test_abl_buffer_depth(benchmark, configs, routing_tables):
    """Deeper buffers absorb burstiness; tiny ones throttle throughput."""
    pf, tables = configs["PF"], routing_tables["PF"]
    policy = MinimalRouting(tables)

    def run():
        out = {}
        for depth in (2, 8, 32):
            cfg = SimConfig(num_vcs=4, vc_depth=depth)
            sim = NetworkSimulator(
                pf, policy, UniformTraffic(pf), 0.8, config=cfg, seed=35
            )
            res = sim.run(**SIM_PARAMS)
            out[depth] = (res.accepted_load, res.avg_latency)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [d, f"{acc:.3f}", f"{lat:.1f}"] for d, (acc, lat) in res.items()
    ]
    print_table(
        "Ablation: VC buffer depth (uniform @ 0.8, MIN)",
        ["vc_depth", "accepted", "latency"],
        rows,
    )
    assert res[8][0] >= res[2][0]
    assert res[32][0] >= res[2][0]


def test_abl_bisection_refinement(benchmark):
    """KL refinement must not worsen, and usually improves, the cut."""

    def run():
        out = {}
        for topo in (PolarFly(9), SlimFly(7)):
            _, cut_spec = bisection_cut(topo.graph, refine=False)
            _, cut_kl = bisection_cut(topo.graph, refine=True)
            out[topo.name] = (cut_spec, cut_kl, topo.num_links)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, spec, kl, m, f"{kl / m:.3f}"]
        for name, (spec, kl, m) in res.items()
    ]
    print_table(
        "Ablation: spectral vs spectral+KL bisection",
        ["topology", "spectral cut", "+KL cut", "links", "final fraction"],
        rows,
    )
    for name, (spec, kl, _m) in res.items():
        assert kl <= spec, name
