"""Ablations of the design choices DESIGN.md calls out.

* UGAL_PF adaptation threshold (0 -> always compare, 1 -> never divert);
* Compact Valiant vs general Valiant intermediates;
* router buffer depth sensitivity;
* spectral-only vs KL-refined bisection quality.

The simulation ablations run through the shared experiment engine; the
knob under study is just a field of the policy spec string or the
experiment spec, so every variant is cacheable and parallelizable like
any other cell.
"""

from common import TABLE_V_SPECS, print_table, run_grid

from repro import PolarFly, SlimFly
from repro.analysis.bisection import bisection_cut
from repro.experiments import Combo


def test_abl_ugalpf_threshold(benchmark, configs):
    """Threshold sweep: 0 behaves like UGAL, 1 like MIN; 2/3 is the knee."""
    pf_spec = TABLE_V_SPECS["PF"]

    # Note: the occupancy estimate includes local VOQ backlog, so it can
    # exceed the buffer capacity — "off" therefore needs a huge threshold,
    # not 1.0.
    OFF = 1e9
    thresholds = (0.0, 1 / 3, 2 / 3, OFF)
    combos = [
        Combo(pf_spec, f"ugal-pf:threshold={thr!r}", "tornado", label=f"thr={thr:g}")
        for thr in thresholds
    ]

    result = benchmark.pedantic(
        lambda: run_grid(combos, loads=(0.7,), root_seed=31), rounds=1, iterations=1
    )
    res = {
        thr: (s.points[0].accepted_load, s.points[0].avg_latency, s.points[0].avg_hops)
        for thr, s in zip(thresholds, result.sweeps)
    }
    rows = [
        ["off" if thr == OFF else f"{thr:.2f}", f"{acc:.3f}", f"{lat:.1f}", f"{hops:.2f}"]
        for thr, (acc, lat, hops) in res.items()
    ]
    print_table(
        "Ablation: UGAL_PF threshold under tornado @ 0.7",
        ["threshold", "accepted", "latency", "avg hops"],
        rows,
    )
    p = int(configs["PF"].concentration[0])
    # Adaptation off -> min-path cap ~1/p of injection bandwidth.
    assert res[OFF][0] <= 1 / p + 0.08
    # the paper's 2/3 must clearly beat no adaptation.
    assert res[2 / 3][0] > res[OFF][0] * 1.2
    # lower thresholds divert more -> more average hops.
    assert res[0.0][2] >= res[2 / 3][2] - 0.05


def test_abl_compact_vs_general_valiant(benchmark):
    """Compact Valiant buys shorter detours at equal-or-better throughput."""
    pf_spec = TABLE_V_SPECS["PF"]
    combos = [
        Combo(pf_spec, "valiant", "randperm:seed=2", label="general"),
        Combo(pf_spec, "compact-valiant", "randperm:seed=2", label="compact"),
    ]

    result = benchmark.pedantic(
        lambda: run_grid(combos, loads=(0.5,), root_seed=33), rounds=1, iterations=1
    )
    res = {
        s.label: (s.points[0].accepted_load, s.points[0].avg_latency, s.points[0].avg_hops)
        for s in result.sweeps
    }
    rows = [
        [name, f"{acc:.3f}", f"{lat:.1f}", f"{hops:.2f}"]
        for name, (acc, lat, hops) in res.items()
    ]
    print_table(
        "Ablation: Valiant intermediates (randperm @ 0.5)",
        ["variant", "accepted", "latency", "avg hops"],
        rows,
    )
    # Compact detours are strictly shorter on average (<= 3 vs <= 4 hops).
    assert res["compact"][2] < res["general"][2]


def test_abl_buffer_depth(benchmark):
    """Deeper buffers absorb burstiness; tiny ones throttle throughput."""
    pf_spec = TABLE_V_SPECS["PF"]
    combo = Combo(pf_spec, "min", "uniform")
    depths = (2, 8, 32)

    def run():
        out = {}
        for depth in depths:
            result = run_grid(
                [combo], loads=(0.8,), root_seed=35, num_vcs=4, vc_depth=depth
            )
            pt = result.sweeps[0].points[0]
            out[depth] = (pt.accepted_load, pt.avg_latency)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [d, f"{acc:.3f}", f"{lat:.1f}"] for d, (acc, lat) in res.items()
    ]
    print_table(
        "Ablation: VC buffer depth (uniform @ 0.8, MIN)",
        ["vc_depth", "accepted", "latency"],
        rows,
    )
    assert res[8][0] >= res[2][0]
    assert res[32][0] >= res[2][0]


def test_abl_bisection_refinement(benchmark):
    """KL refinement must not worsen, and usually improves, the cut."""

    def run():
        out = {}
        for topo in (PolarFly(9), SlimFly(7)):
            _, cut_spec = bisection_cut(topo.graph, refine=False)
            _, cut_kl = bisection_cut(topo.graph, refine=True)
            out[topo.name] = (cut_spec, cut_kl, topo.num_links)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, spec, kl, m, f"{kl / m:.3f}"]
        for name, (spec, kl, m) in res.items()
    ]
    print_table(
        "Ablation: spectral vs spectral+KL bisection",
        ["topology", "spectral cut", "+KL cut", "links", "final fraction"],
        rows,
    )
    for name, (spec, kl, _m) in res.items():
        assert kl <= spec, name
