"""Figure 13 — layout structure of ER_17 vs ER_19.

The figure renders the cluster fans of two adjacent prime cases:
q = 17 = 1 (mod 4) pairs fan wings within a layer (V1 with V1, V2 with
V2 — no vertical edges inside a cluster), while q = 19 = 3 (mod 4) pairs
across layers (every fan triangle joins a V1 wing to a V2 wing).

The bench regenerates the figure's data: per-cluster triangle wing types
plus layered coordinates (cluster angle, layer, within-layer slot) that a
plotting tool could render directly.
"""

from collections import Counter

import numpy as np
from common import print_table

from repro.core import ClusterLayout, PolarFly


def layout_render_data(q):
    """Wing-type census and (cluster, layer, slot) coordinates for ER_q."""
    pf = PolarFly(q)
    lay = ClusterLayout(pf)
    wing_pairs = Counter()
    for i in range(1, q + 1):
        for tri in lay.fan_triangles(i):
            wings = tuple(
                sorted(pf.vertex_class(v) for v in tri if v != lay.center(i))
            )
            wing_pairs[wings] += 1
    # Coordinates: angle per cluster, layer 0=W, 1=V1, 2=V2.
    layer = np.where(pf.quadric_mask, 0, np.where(pf.v1_mask, 1, 2))
    coords = np.column_stack([lay.cluster_of, layer])
    return pf, lay, wing_pairs, coords


def test_fig13_layout(benchmark):
    def run():
        return {q: layout_render_data(q) for q in (17, 19)}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for q, (pf, lay, wings, coords) in data.items():
        for pair, count in sorted(wings.items()):
            rows.append([f"q={q} ({q % 4} mod 4)", "+".join(pair), count])
    print_table(
        "Figure 13: fan-wing type pairing per cluster triangle",
        ["graph", "wing types", "triangles"],
        rows,
    )

    # q=17: wings pair within a layer -> only (V1,V1) and (V2,V2).
    _, _, wings17, coords17 = data[17]
    assert set(wings17) <= {("V1", "V1"), ("V2", "V2")}
    assert sum(wings17.values()) == 17 * (17 - 1) // 2

    # q=19: wings pair across layers -> only (V1,V2).
    _, _, wings19, _ = data[19]
    assert set(wings19) == {("V1", "V2")}
    assert sum(wings19.values()) == 19 * (19 - 1) // 2

    # Coordinates cover every vertex exactly once per cluster assignment.
    pf17 = data[17][0]
    assert coords17.shape == (pf17.num_routers, 2)
    assert set(np.unique(coords17[:, 1]).tolist()) == {0, 1, 2}
