"""Figure 1 — design space of feasible network radixes (SF vs PF vs PF+).

Paper bars: SlimFly [6, 11, 17, 19, 26, 32], PolarFly [9, 17, 22, 26, 34,
43], PolarFly+ [12, 23, 33, 39, 53, 68] at ceilings 16..128.  Our SF/PF
counts match exactly; PF+ (whose counting rule the paper leaves implicit)
matches at <=16 and stays within 3 elsewhere.
"""

from common import print_table

from repro.analysis import feasible_radix_counts

PAPER = {
    "SlimFly": [6, 11, 17, 19, 26, 32],
    "PolarFly": [9, 17, 22, 26, 34, 43],
    "PolarFly+": [12, 23, 33, 39, 53, 68],
}


def test_fig01_feasible_radixes(benchmark):
    counts = benchmark.pedantic(feasible_radix_counts, rounds=1, iterations=1)
    rows = []
    for name in ("SlimFly", "PolarFly", "PolarFly+"):
        rows.append([name, *counts[name]])
        rows.append([f"  (paper)", *PAPER[name]])
    print_table(
        "Figure 1: feasible radix counts per ceiling",
        ["family", *[f"<= {c}" for c in counts["ceilings"]]],
        rows,
    )
    assert counts["SlimFly"] == PAPER["SlimFly"]
    assert counts["PolarFly"] == PAPER["PolarFly"]
    # PolarFly offers ~50% more designs than Slim Fly asymptotically.
    assert counts["PolarFly"][-1] / counts["SlimFly"][-1] > 1.3
