"""Workload benchmark 1 — all-reduce completion time across topologies.

The closed-loop analogue of the Table V iso-scale comparison: a ring
all-reduce over every terminal router, run to completion on PolarFly,
Slim Fly, Dragonfly, and Jellyfish at comparable scale/radix (the same
scaled Table V configurations the open-loop figures use), with minimal
and adaptive routing on PolarFly.  The headline metric is the
collective's completion time in cycles — the number a real training or
HPC job experiences — plus the achieved bisection utilization.
"""

import pytest
from common import TABLE_V_SPECS, print_table, run_grid

from repro.experiments import Combo

ALLREDUCE = "allreduce:algo=ring,size=64"

#: direct networks of the scaled Table V set (the FT's workload story is
#: told by the terminal-injection tests; its radix isn't iso anyway)
DIRECT = ("PF", "SF", "DF1", "JF")


def test_wk01_allreduce_completion(benchmark):
    combos = [
        Combo(TABLE_V_SPECS[name], "min", workload=ALLREDUCE, label=f"{name}-MIN")
        for name in DIRECT
    ]
    combos.append(
        Combo(
            TABLE_V_SPECS["PF"], "ugal-pf", workload=ALLREDUCE,
            label="PF-UGALPF",
        )
    )

    result = benchmark.pedantic(
        lambda: run_grid(combos, loads=(0.0,), max_cycles=100_000),
        rounds=1, iterations=1,
    )

    cells = {}
    for combo in combos:
        cell = result.cells[result.spec.cell(combo, 0.0)["key"]]
        cells[combo.label] = cell
    print_table(
        "Workload 1: ring all-reduce completion time",
        ["config", "cycles", "messages", "p99 msg lat", "bisect util"],
        [
            [
                label,
                c["completion_cycles"],
                c["num_messages"],
                f"{c['p99_msg_latency']:.0f}",
                f"{c['bisection_utilization']:.3f}",
            ]
            for label, c in cells.items()
        ],
    )

    for label, c in cells.items():
        assert c["finished"], f"{label} did not complete"
        assert c["completion_cycles"] > 0
        assert c["completed_messages"] == c["num_messages"]
    # Low-diameter direct networks finish the chain-bound collective in
    # the same ballpark; nobody should be an order of magnitude off.
    times = {label: c["completion_cycles"] for label, c in cells.items()}
    best = min(times.values())
    assert max(times.values()) < 10 * best, times
