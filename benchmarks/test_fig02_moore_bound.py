"""Figure 2 — scalability of diameter-2 topologies vs the Moore bound.

Series: percentage of the diameter-2 Moore bound (k^2 + 1) achieved by
PolarFly, Slim Fly, HyperX and the two known Moore graphs, as a function
of network degree up to 128.
"""

from common import print_series

from repro.analysis import moore_efficiency_curve


def test_fig02_moore_bound(benchmark):
    curves = benchmark.pedantic(
        moore_efficiency_curve, args=(128,), rounds=1, iterations=1
    )
    print_series(
        "Figure 2: % of Moore bound vs degree",
        {
            name: [(k, 100 * v) for k, v in pts]
            for name, pts in curves.items()
        },
    )
    pf = dict(curves["PolarFly"])
    sf = dict(curves["SlimFly"])
    hx = dict(curves["HyperX"])
    # PolarFly reaches >96% for moderate radixes and dominates at k >= 10.
    assert pf[32] > 0.96 and pf[48] > 0.96 and pf[128] > 0.96
    for k in set(pf) & set(sf):
        if k >= 10:
            assert pf[k] > sf[k]
    for k in set(pf) & set(hx):
        if k >= 10:
            assert pf[k] > hx[k]
    # Moore graphs are the 100% reference points.
    assert dict(curves["Moore graphs"]) == {3: 1.0, 7: 1.0}
