#!/usr/bin/env python
"""CLI for the perf harness — writes BENCH_flitsim.json.

    PYTHONPATH=src python tools/bench.py [--out PATH] [--measure N]
        [--warmup N] [--cells name,name] [--check RATIO]
        [--no-construction] [--check-construction SLACK]
        [--no-sweep-resilience] [--no-obs-overhead] [--no-ts-overhead]

``--check RATIO`` exits nonzero when any benchmarked cell's
flat-over-reference speedup falls below RATIO — the CI perf job runs
with ``--check 1.0`` so a regression that makes the flat engine slower
than the reference fails the build.  Workload and fault cells also
record a kernel-over-numpy speedup (the flat engine timed with and
without the C cycle kernel); the same RATIO gates it, so losing the
kernel path's advantage on closed-loop/fault cells fails too.  When no
compiler is present the kernel cells are skipped with a visible notice
instead of gating a meaningless 1x ratio.  The ``sweep_resilience``
section times the crash-resilient sweep scheduler against a bare
``pool.map`` of the same grid; ``--check`` fails the run when the
scheduler's clean-path overhead exceeds its committed gate.  The
``obs_overhead`` section likewise times the fully instrumented serial
sweep path with ``$REPRO_OBS`` unset against a bare ``run_cell`` loop;
``--check`` fails the run when disabled observability costs more than
its committed gate (1.03x).  The ``ts_overhead`` section times the
windows-off ``run_cell`` path against the seed execution spine (a
direct ``make_simulator(...).run(...)`` loop); ``--check`` fails the
run when dormant time-series collection costs more than its committed
gate (1.05x).

``--check-construction SLACK`` guards the construction trajectory: the
previously committed ``--out`` file is read *before* it is overwritten,
and the run fails when the batched q=19 ``RoutingTables`` build loses
its speedup over the seed per-source path, or when that speedup falls
below the committed baseline's by more than SLACK x.  Both signals are
same-machine ratios, so the gate is robust to CI runners being slower
or faster than the machine that committed the baseline.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.experiments.perfbench import (  # noqa: E402
    CANONICAL_CELLS,
    CONSTRUCTION_GATE,
    run_benchmarks,
    write_bench_json,
)


def _load_committed_construction(path: str) -> dict:
    """The ``construction`` section of the committed baseline, or {}."""
    try:
        with open(path) as fh:
            return json.load(fh).get("construction", {})
    except (OSError, ValueError):
        return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_flitsim.json")
    parser.add_argument("--warmup", type=int, default=150)
    parser.add_argument("--measure", type=int, default=400)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--cells",
        default=None,
        help="comma-separated cell names (default: all canonical cells)",
    )
    parser.add_argument(
        "--check",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail (exit 1) if any cell's flat/reference speedup < RATIO",
    )
    parser.add_argument(
        "--no-construction",
        action="store_true",
        help="skip the construction benchmark section",
    )
    parser.add_argument(
        "--no-workloads",
        action="store_true",
        help="skip the closed-loop workload benchmark section",
    )
    parser.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the resilience-under-load (fault timeline) section",
    )
    parser.add_argument(
        "--no-scale",
        action="store_true",
        help="skip the sparse-tier (flat-engine-only) scale cells",
    )
    parser.add_argument(
        "--no-sweep-resilience",
        action="store_true",
        help="skip the sweep-scheduler overhead cell",
    )
    parser.add_argument(
        "--no-obs-overhead",
        action="store_true",
        help="skip the observability-overhead cell",
    )
    parser.add_argument(
        "--no-ts-overhead",
        action="store_true",
        help="skip the time-series (windows-off) overhead cell",
    )
    parser.add_argument(
        "--check-construction",
        type=float,
        default=None,
        metavar="SLACK",
        help=(
            "fail (exit 1) if the q=19 RoutingTables batched-over-per-source "
            "speedup drops below 1.0, or below the committed baseline's "
            "speedup by more than SLACK x"
        ),
    )
    args = parser.parse_args(argv)
    if args.check_construction is not None and args.no_construction:
        parser.error(
            "--check-construction requires the construction benchmark; "
            "drop --no-construction"
        )

    cells = CANONICAL_CELLS
    if args.cells:
        names = [c.strip() for c in args.cells.split(",") if c.strip()]
        unknown = sorted(set(names) - set(CANONICAL_CELLS))
        if unknown:
            parser.error(
                f"unknown cells {unknown}; have {sorted(CANONICAL_CELLS)}"
            )
        cells = {name: CANONICAL_CELLS[name] for name in names}

    committed = _load_committed_construction(args.out)
    doc = run_benchmarks(
        cells=cells,
        warmup=args.warmup,
        measure=args.measure,
        seed=args.seed,
        construction=not args.no_construction,
        workloads=not args.no_workloads,
        faults=not args.no_faults,
        scale=not args.no_scale,
        sweep_resilience=not args.no_sweep_resilience,
        obs_overhead=not args.no_obs_overhead,
        ts_overhead=not args.no_ts_overhead,
    )
    path = write_bench_json(doc, args.out)

    failed = []
    if not doc["machine"]["flat_kernel"]:
        print(
            "NOTICE: C cycle kernel unavailable (no compiler/cffi or "
            "REPRO_FLAT_KERNEL=0) — kernel-vs-numpy cells skipped; 'flat' "
            "numbers reflect the numpy cycle path"
        )
    for name, cell in doc["cells"].items():
        ref = cell["engines"]["reference"]["cycles_per_sec"]
        flat = cell["engines"]["flat"]["cycles_per_sec"]
        speedup = cell["speedup_flat_over_reference"]
        print(
            f"{name:28s} reference {ref:9.0f} c/s   flat {flat:9.0f} c/s   "
            f"speedup {speedup:.2f}x"
        )
        if args.check is not None and speedup < args.check:
            failed.append(
                f"{name} speedup {speedup:.2f}x < required {args.check:.2f}x"
            )

    for name, entry in doc.get("workloads", {}).items():
        line = (
            f"{name:28s} completion {entry['completion_cycles']:6d} cyc   "
            f"msgs {entry['num_messages']:5d}   bisect "
            f"{entry['bisection_utilization']:.3f}"
        )
        if "speedup_flat_over_reference" in entry:
            line += f"   speedup {entry['speedup_flat_over_reference']:.2f}x"
        if "speedup_kernel_over_numpy" in entry:
            line += f"   kernel {entry['speedup_kernel_over_numpy']:.2f}x"
        print(line)
        if args.check is not None:
            speedup = entry.get("speedup_flat_over_reference")
            if speedup is not None and speedup < args.check:
                failed.append(
                    f"workload {name} speedup {speedup:.2f}x < required "
                    f"{args.check:.2f}x"
                )
            kernel = entry.get("speedup_kernel_over_numpy")
            if kernel is not None and kernel < args.check:
                failed.append(
                    f"workload {name} kernel-over-numpy {kernel:.2f}x < "
                    f"required {args.check:.2f}x"
                )

    for name, entry in doc.get("faults", {}).items():
        eng = entry["engines"]
        line = (
            f"{name:28s} reference {eng['reference']['cycles_per_sec']:9.0f} "
            f"c/s   flat {eng['flat']['cycles_per_sec']:9.0f} c/s   "
            f"drops {entry['dropped_flits']:4d}"
        )
        if "speedup_flat_over_reference" in entry:
            speedup = entry["speedup_flat_over_reference"]
            line += f"   speedup {speedup:.2f}x"
            if args.check is not None and speedup < args.check:
                failed.append(
                    f"fault cell {name} speedup {speedup:.2f}x < required "
                    f"{args.check:.2f}x"
                )
        if "speedup_kernel_over_numpy" in entry:
            kernel = entry["speedup_kernel_over_numpy"]
            line += f"   kernel {kernel:.2f}x"
            if args.check is not None and kernel < args.check:
                failed.append(
                    f"fault cell {name} kernel-over-numpy {kernel:.2f}x < "
                    f"required {args.check:.2f}x"
                )
        print(line)

    for name, entry in doc.get("construction", {}).items():
        rt = entry["routing_tables"]
        line = (
            f"{name:28s} N={entry['num_routers']:<5d} topo "
            f"{entry['topology_s'] * 1e3:7.1f} ms   tables "
            f"{rt['batched_s'] * 1e3:7.1f} ms   cand "
            f"{entry['candidate_table']['batched_s'] * 1e3:7.1f} ms"
        )
        if "speedup_batched_over_per_source" in rt:
            line += f"   tables speedup {rt['speedup_batched_over_per_source']:.1f}x"
        mem = entry.get("memory", {})
        if "peak_rss_kb" in mem:
            line += f"   peakRSS {mem['peak_rss_kb'] / 1024:.0f} MB"
        elif "traced_peak_bytes" in mem:
            line += f"   traced {mem['traced_peak_bytes'] / 2**20:.0f} MB"
        print(line)

    for name, entry in doc.get("scale", {}).items():
        parts = [
            f"{eng} {val['cycles_per_sec']:8.0f} c/s"
            for eng, val in entry["engines"].items()
        ]
        line = f"{name:28s} " + "   ".join(parts)
        if "speedup_kernel_over_numpy" in entry:
            line += f"   kernel {entry['speedup_kernel_over_numpy']:.2f}x"
        print(line)

    sr = doc.get("sweep_resilience")
    if sr:
        overhead = sr["overhead_vs_pool_map"]
        print(
            f"{'sweep_resilience':28s} scheduler {sr['scheduler_s']:.2f} s   "
            f"pool.map {sr['pool_map_s']:.2f} s   overhead {overhead:.2f}x "
            f"(gate {sr['max_overhead']:.2f}x)"
        )
        if args.check is not None and overhead > sr["max_overhead"]:
            failed.append(
                f"sweep_resilience: scheduler overhead {overhead:.2f}x > "
                f"allowed {sr['max_overhead']:.2f}x over pool.map"
            )

    ob = doc.get("obs_overhead")
    if ob:
        overhead = ob["overhead_disabled_vs_seed"]
        print(
            f"{'obs_overhead':28s} disabled {ob['disabled_s']:.2f} s   "
            f"seed {ob['bare_s']:.2f} s   overhead {overhead:.2f}x "
            f"(gate {ob['max_overhead']:.2f}x)   enabled "
            f"{ob['overhead_enabled_vs_disabled']:.2f}x (informational)"
        )
        if args.check is not None and overhead > ob["max_overhead"]:
            failed.append(
                f"obs_overhead: disabled-path observability overhead "
                f"{overhead:.2f}x > allowed {ob['max_overhead']:.2f}x"
            )

    ts = doc.get("ts_overhead")
    if ts:
        overhead = ts["overhead_off_vs_seed"]
        print(
            f"{'ts_overhead':28s} windows-off {ts['windows_off_s']:.2f} s   "
            f"seed {ts['bare_s']:.2f} s   overhead {overhead:.2f}x "
            f"(gate {ts['max_overhead']:.2f}x)   windowed "
            f"{ts['overhead_on_vs_off']:.2f}x (informational)"
        )
        if args.check is not None and overhead > ts["max_overhead"]:
            failed.append(
                f"ts_overhead: windows-off time-series overhead "
                f"{overhead:.2f}x > allowed {ts['max_overhead']:.2f}x"
            )

    if args.check_construction is not None and not args.no_construction:
        gate = doc["construction"][CONSTRUCTION_GATE]["routing_tables"]
        speedup = gate.get("speedup_batched_over_per_source")
        if speedup is not None and speedup < 1.0:
            failed.append(
                f"construction {CONSTRUCTION_GATE}: batched RoutingTables "
                f"build only {speedup:.2f}x the per-source path"
            )
        old = committed.get(CONSTRUCTION_GATE, {}).get("routing_tables", {})
        old_speedup = old.get("speedup_batched_over_per_source")
        if old_speedup is None or speedup is None:
            print(
                f"note: no committed construction baseline for "
                f"{CONSTRUCTION_GATE}; baseline comparison skipped "
                f"(absolute speedup check still applies)"
            )
        elif speedup * args.check_construction < old_speedup:
            # Both speedups are same-machine ratios, so this comparison
            # survives CI runners slower/faster than the baseline box.
            failed.append(
                f"construction {CONSTRUCTION_GATE}: RoutingTables speedup "
                f"{speedup:.1f}x < committed {old_speedup:.1f}x / "
                f"{args.check_construction:.1f} slack"
            )

    print(f"wrote {path}")
    if failed:
        for msg in failed:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
