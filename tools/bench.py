#!/usr/bin/env python
"""CLI for the engine perf harness — writes BENCH_flitsim.json.

    PYTHONPATH=src python tools/bench.py [--out PATH] [--measure N]
        [--warmup N] [--cells name,name] [--check RATIO]

``--check RATIO`` exits nonzero when any benchmarked cell's
flat-over-reference speedup falls below RATIO — the CI perf job runs
with ``--check 1.0`` so a regression that makes the flat engine slower
than the reference fails the build.
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.experiments.perfbench import (  # noqa: E402
    CANONICAL_CELLS,
    run_benchmarks,
    write_bench_json,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_flitsim.json")
    parser.add_argument("--warmup", type=int, default=150)
    parser.add_argument("--measure", type=int, default=400)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--cells",
        default=None,
        help="comma-separated cell names (default: all canonical cells)",
    )
    parser.add_argument(
        "--check",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail (exit 1) if any cell's flat/reference speedup < RATIO",
    )
    args = parser.parse_args(argv)

    cells = CANONICAL_CELLS
    if args.cells:
        names = [c.strip() for c in args.cells.split(",") if c.strip()]
        unknown = sorted(set(names) - set(CANONICAL_CELLS))
        if unknown:
            parser.error(
                f"unknown cells {unknown}; have {sorted(CANONICAL_CELLS)}"
            )
        cells = {name: CANONICAL_CELLS[name] for name in names}

    doc = run_benchmarks(
        cells=cells, warmup=args.warmup, measure=args.measure, seed=args.seed
    )
    path = write_bench_json(doc, args.out)

    failed = []
    for name, cell in doc["cells"].items():
        ref = cell["engines"]["reference"]["cycles_per_sec"]
        flat = cell["engines"]["flat"]["cycles_per_sec"]
        speedup = cell["speedup_flat_over_reference"]
        print(
            f"{name:28s} reference {ref:9.0f} c/s   flat {flat:9.0f} c/s   "
            f"speedup {speedup:.2f}x"
        )
        if args.check is not None and speedup < args.check:
            failed.append((name, speedup))
    print(f"wrote {path}")
    if failed:
        for name, speedup in failed:
            print(
                f"FAIL: {name} speedup {speedup:.2f}x < required {args.check:.2f}x",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
