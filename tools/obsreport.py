#!/usr/bin/env python
"""Render a run report from ``repro.obs`` JSONL event shards.

    PYTHONPATH=src python tools/obsreport.py DIR [--top N] [--json]
        [--trace out.json]

Reads every ``events-*.jsonl`` shard under DIR (one per process, merged
and time-ordered by :func:`repro.obs.read_events`) and prints:

* a header — time range, participating pids, event count;
* a span waterfall — per span name: count, total, mean, max seconds
  (``sweep.chunk`` rows are the scheduler's per-chunk walls,
  ``sweep.cell`` the sampled worker-side cells);
* the retry/fault table — chunk retries, timeouts, bisections, pool
  restarts, serial cell retries, quarantined cells (with keys);
* sweep progress — the last heartbeat's done/total/ETA and the final
  cache hit ratio;
* the hottest links — per-link flit counts aggregated (max across
  events) from worker ``cell.telemetry`` records;
* per-cell timelines — sparkline terminal views of the windowed
  ``ts.window`` series (ejected flits per window, with fault markers),
  when windowed cells ran;
* the final ``counters`` registry snapshot, when one was emitted.

``--json`` emits the same report as one JSON document for tooling.
``--trace out.json`` additionally exports every ``ts.window`` series as
one Chrome-trace/Perfetto JSON file (load it in ``chrome://tracing`` or
https://ui.perfetto.dev).
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.obs import read_events  # noqa: E402


def summarize(events: list, top: int = 5) -> dict:
    """Aggregate merged event records into the report document."""
    report: dict = {
        "events": len(events),
        "pids": sorted({e.get("pid") for e in events if "pid" in e}),
    }
    if events:
        ts = [e["ts"] for e in events if "ts" in e]
        if ts:
            report["t_start"] = min(ts)
            report["t_end"] = max(ts)
            report["duration_s"] = max(ts) - min(ts)

    spans: dict = {}
    retries = {"chunk.retry": 0, "chunk.timeout": 0, "chunk.bisect": 0,
               "pool.restart": 0, "cell.retry": 0}
    quarantined: list = []
    progress = None
    start = end = None
    counters = None
    links: dict = {}
    timelines: dict = {}
    corrupt = 0

    for ev in events:
        name = ev.get("ev")
        if name == "span":
            s = spans.setdefault(
                ev.get("name", "?"),
                {"count": 0, "total_s": 0.0, "max_s": 0.0, "failed": 0},
            )
            secs = float(ev.get("secs", 0.0))
            s["count"] += 1
            s["total_s"] += secs
            s["max_s"] = max(s["max_s"], secs)
            if not ev.get("ok", True):
                s["failed"] += 1
        elif name in retries:
            retries[name] += 1
        elif name == "cell.quarantine":
            quarantined.append({"key": ev.get("key"), "error": ev.get("error")})
        elif name == "sweep.progress":
            progress = ev
        elif name == "sweep.start":
            start = ev
        elif name == "sweep.end":
            end = ev
        elif name == "counters":
            counters = ev
        elif name == "cache.corrupt":
            corrupt += 1
        elif name == "cell.telemetry":
            # Per-link loads vary per cell (load sweeps); the hottest-
            # link report takes the max observed count per link so one
            # saturated cell is enough to surface a bottleneck.
            for u, v, c in ev.get("top_links", []):
                key = (int(u), int(v))
                links[key] = max(links.get(key, 0), int(c))
        elif name == "ts.window":
            timelines.setdefault(ev.get("key") or "-", []).append(ev)

    for s in spans.values():
        s["mean_s"] = s["total_s"] / s["count"] if s["count"] else 0.0
    report["spans"] = {
        k: spans[k] for k in sorted(spans, key=lambda k: -spans[k]["total_s"])
    }
    report["retries"] = retries
    report["quarantined"] = quarantined
    report["cache_corrupt_events"] = corrupt
    if start:
        report["sweep_start"] = {
            k: start[k] for k in ("cells", "cached", "missing", "workers")
            if k in start
        }
    if end:
        report["sweep_end"] = {
            k: end[k]
            for k in ("done", "total", "retries", "pool_restarts", "failed")
            if k in end
        }
    if progress:
        report["last_progress"] = {
            k: progress[k]
            for k in (
                "done", "total", "eta_s", "cache_hits", "cache_misses",
                "hit_ratio", "retries", "pool_restarts",
            )
            if k in progress
        }
    report["hottest_links"] = [
        {"u": u, "v": v, "flits": c}
        for (u, v), c in sorted(links.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    ]
    report["timelines"] = {
        key: sorted(recs, key=lambda r: r.get("index", 0))
        for key, recs in sorted(timelines.items())
    }
    if counters:
        report["counters"] = {
            k: counters[k]
            for k in ("counters", "gauges", "histograms")
            if k in counters
        }
    return report


def _fmt_ts(ts: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list) -> str:
    """Unicode block sparkline of a numeric series (empty-safe)."""
    vals = [0.0 if v is None else float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(vals)
    top = len(_SPARK) - 1
    return "".join(_SPARK[round((v - lo) / span * top)] for v in vals)


def render_timeline(key: str, recs: list) -> list:
    """Sparkline lines for one cell's ``ts.window`` records.

    One line per signal (ejected flits, p99 latency, mean occupancy),
    with window extent and fault markers (``!`` column under windows
    that carried a fault event) summarized alongside.
    """
    out = [
        f"{key}: {len(recs)} windows x {recs[0].get('window', '?')} cycles"
    ]
    rows = [
        ("ejected", [r.get("ejected") for r in recs]),
        ("lat p99", [r.get("lat_p99") for r in recs]),
        ("occupancy", [r.get("occ_mean") for r in recs]),
    ]
    for label, vals in rows:
        known = [v for v in vals if v is not None]
        hi = max(known) if known else 0
        out.append(f"  {label:<10s} {sparkline(vals)}  max {hi:g}")
    marks = "".join("!" if r.get("faults") else "." for r in recs)
    if "!" in marks:
        out.append(f"  {'faults':<10s} {marks}")
    return out


def render(report: dict) -> str:
    """The human-readable report text."""
    out = []
    out.append("== obs report ==")
    out.append(
        f"events {report['events']}   pids {len(report['pids'])} "
        f"{report['pids']}"
    )
    if "t_start" in report:
        out.append(
            f"window {_fmt_ts(report['t_start'])} .. "
            f"{_fmt_ts(report['t_end'])}  ({report['duration_s']:.2f} s)"
        )
    if "sweep_start" in report:
        s = report["sweep_start"]
        out.append(
            f"sweep: {s.get('cells', '?')} cells "
            f"({s.get('cached', 0)} cached, {s.get('missing', 0)} missing) "
            f"on {s.get('workers', '?')} workers"
        )

    out.append("")
    out.append("-- span waterfall --")
    if report["spans"]:
        out.append(
            f"{'span':<16s} {'count':>6s} {'total s':>9s} {'mean s':>9s} "
            f"{'max s':>9s} {'failed':>6s}"
        )
        for name, s in report["spans"].items():
            out.append(
                f"{name:<16s} {s['count']:>6d} {s['total_s']:>9.3f} "
                f"{s['mean_s']:>9.4f} {s['max_s']:>9.4f} {s['failed']:>6d}"
            )
    else:
        out.append("(no spans recorded)")

    out.append("")
    out.append("-- retries / faults --")
    r = report["retries"]
    out.append(
        f"chunk retries {r['chunk.retry']}   timeouts {r['chunk.timeout']}   "
        f"bisections {r['chunk.bisect']}   pool restarts {r['pool.restart']}   "
        f"cell retries {r['cell.retry']}   corrupt artifacts "
        f"{report['cache_corrupt_events']}"
    )
    for q in report["quarantined"]:
        out.append(f"quarantined {q['key']}: {q['error']}")

    if "last_progress" in report:
        p = report["last_progress"]
        out.append("")
        out.append("-- progress --")
        hits = p.get("cache_hits", 0)
        out.append(
            f"done {p.get('done', '?')}/{p.get('total', '?')}   "
            f"eta {p.get('eta_s', 0):.1f} s   cache hits {hits} "
            f"(ratio {p.get('hit_ratio', 0.0):.2f})   "
            f"retries {p.get('retries', 0)}   "
            f"restarts {p.get('pool_restarts', 0)}"
        )
    if "sweep_end" in report:
        e = report["sweep_end"]
        out.append(
            f"final: {e.get('done', '?')}/{e.get('total', '?')} cells, "
            f"{e.get('retries', 0)} retries, "
            f"{e.get('pool_restarts', 0)} pool restarts, "
            f"{e.get('failed', 0)} failed"
        )

    out.append("")
    out.append("-- hottest links --")
    if report["hottest_links"]:
        for h in report["hottest_links"]:
            out.append(f"{h['u']:>5d} -> {h['v']:<5d} {h['flits']:>8d} flits")
    else:
        out.append("(no cell.telemetry events)")

    if report.get("timelines"):
        out.append("")
        out.append("-- timeline --")
        for key, recs in report["timelines"].items():
            out.extend(render_timeline(key, recs))

    if "counters" in report:
        out.append("")
        out.append("-- counters --")
        for k, v in report["counters"].get("counters", {}).items():
            out.append(f"{k:<24s} {v}")
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dir", help="REPRO_OBS event directory")
    parser.add_argument("--top", type=int, default=5,
                        help="hottest links to show (default 5)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--trace", default=None, metavar="OUT",
                        help="write ts.window series as Chrome-trace JSON")
    args = parser.parse_args(argv)

    events = read_events(args.dir)
    if not events:
        print(f"no events found under {args.dir}", file=sys.stderr)
        return 1
    report = summarize(events, top=args.top)
    if args.trace:
        from repro.obs.timeseries import (
            chrome_trace_from_events,
            write_chrome_trace,
        )

        path = write_chrome_trace(chrome_trace_from_events(events), args.trace)
        print(f"wrote trace {path}", file=sys.stderr)
    if args.json:
        json.dump(report, sys.stdout, indent=2, default=str)
        print()
    else:
        print(render(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
