"""Golden equivalence: the flat engine reproduces the reference engine.

The struct-of-arrays engine (numpy path *and* optional C kernel) must
produce bit-identical :class:`~repro.flitsim.engine.SimResult`\\ s to the
readable reference engine for the same seed — same injected/ejected flit
counts and identical latency/hop sample arrays in identical order —
across a grid of cells covering every registered routing policy, the
drain phase, and credit flow.  This is the contract that lets every
benchmark and sweep run on the fast engine while the reference remains
the auditable oracle.
"""

import numpy as np
import pytest

from repro.experiments.registry import POLICIES, TOPOLOGIES, TRAFFICS
from repro.experiments.runner import auto_sim_config
from repro.flitsim import FlatSimulator, NetworkSimulator
from repro.flitsim._kernel import load_kernel
from repro.routing.tables import RoutingTables

# One small topology per family; PolarFly covers the paper's policies,
# the fat tree covers NCA routing.
PF_SPEC = "polarfly:conc=2,q=5"
FT_SPEC = "fattree:k=4,n=2"

#: (topology, policy, traffic, load) — ≥ 8 cells, all 7 registered
#: policies, loads from light to saturating.
CELLS = [
    (PF_SPEC, "min", "uniform", 0.3),
    (PF_SPEC, "min", "tornado", 1.0),
    (PF_SPEC, "valiant", "uniform", 0.4),
    (PF_SPEC, "compact-valiant", "tornado", 0.5),
    (PF_SPEC, "ugal", "uniform", 0.6),
    (PF_SPEC, "ugal-g", "uniform", 0.5),
    (PF_SPEC, "ugal-pf", "tornado", 0.7),
    (PF_SPEC, "ugal-pf", "perm1hop:seed=1", 0.8),
    (PF_SPEC, "ugal-pf", "hotspot:fraction=0.3", 0.4),
    (FT_SPEC, "ftnca", "uniform", 0.5),
]

_topo_cache: dict = {}


def _objects(topo_spec, policy_spec, traffic_spec):
    memo = _topo_cache.get(topo_spec)
    if memo is None:
        topo = TOPOLOGIES.create(topo_spec)
        memo = _topo_cache[topo_spec] = (topo, RoutingTables(topo))
    topo, tables = memo
    return topo, POLICIES.create(policy_spec, tables), TRAFFICS.create(
        traffic_spec, topo
    )


def _run(cls, topo, policy, traffic, load, seed, drain=80):
    cfg = auto_sim_config(policy)
    sim = cls(topo, policy, traffic, load, config=cfg, seed=seed)
    res = sim.run(warmup=60, measure=150, drain=drain)
    return res, sim


def assert_identical(a, b):
    assert a.injected_flits == b.injected_flits
    assert a.ejected_flits == b.ejected_flits
    assert a.cycles == b.cycles
    assert np.array_equal(a.latencies, b.latencies)
    assert np.array_equal(a.hop_counts, b.hop_counts)


@pytest.mark.parametrize(
    "topo_spec,policy_spec,traffic_spec,load",
    CELLS,
    ids=[f"{p}-{t.split(':')[0]}-{ld}" for _, p, t, ld in CELLS],
)
def test_flat_matches_reference(topo_spec, policy_spec, traffic_spec, load):
    topo, policy, traffic = _objects(topo_spec, policy_spec, traffic_spec)
    ref, _ = _run(NetworkSimulator, topo, policy, traffic, load, seed=7)
    flat, _ = _run(FlatSimulator, topo, policy, traffic, load, seed=7)
    assert_identical(ref, flat)


def test_covers_every_registered_policy():
    tested = {p for _, p, _, _ in CELLS}
    assert tested == set(POLICIES.names()), (
        "equivalence grid must cover every registered policy"
    )


def test_flat_matches_reference_without_drain():
    # drain=0: in-flight measured packets never complete — the partial
    # sample arrays must still agree element for element.
    topo, policy, traffic = _objects(PF_SPEC, "ugal-pf", "uniform")
    ref, _ = _run(NetworkSimulator, topo, policy, traffic, 0.6, seed=3, drain=0)
    flat, _ = _run(FlatSimulator, topo, policy, traffic, 0.6, seed=3, drain=0)
    assert_identical(ref, flat)


def test_numpy_path_matches_reference(monkeypatch):
    # Force the pure-numpy flat path even where the C kernel compiled.
    monkeypatch.setenv("REPRO_FLAT_KERNEL", "0")
    import repro.flitsim._kernel as kmod

    monkeypatch.setattr(kmod, "_cached", False)
    monkeypatch.setattr(kmod, "_module", None)
    topo, policy, traffic = _objects(PF_SPEC, "ugal-pf", "tornado")
    ref, _ = _run(NetworkSimulator, topo, policy, traffic, 0.7, seed=11)
    flat, fsim = _run(FlatSimulator, topo, policy, traffic, 0.7, seed=11)
    assert fsim._kernel is None
    assert_identical(ref, flat)


@pytest.mark.skipif(load_kernel() is None, reason="C kernel unavailable")
def test_kernel_path_matches_numpy_path(monkeypatch):
    # The two flat implementations must agree with each other too.
    topo, policy, traffic = _objects(PF_SPEC, "ugal", "uniform")
    kern, ksim = _run(FlatSimulator, topo, policy, traffic, 0.6, seed=5)
    assert ksim._kernel is not None

    monkeypatch.setenv("REPRO_FLAT_KERNEL", "0")
    import repro.flitsim._kernel as kmod

    monkeypatch.setattr(kmod, "_cached", False)
    monkeypatch.setattr(kmod, "_module", None)
    plain, psim = _run(FlatSimulator, topo, policy, traffic, 0.6, seed=5)
    assert psim._kernel is None
    assert_identical(kern, plain)


def test_congestion_views_agree_under_load():
    # The O(1) occupancy counters must report the same backlog in both
    # engines at every step of a congested run.
    topo, policy, traffic = _objects(PF_SPEC, "min", "tornado")
    cfg = auto_sim_config(policy)
    ref = NetworkSimulator(topo, policy, traffic, 0.9, config=cfg, seed=2)
    flat = FlatSimulator(topo, policy, traffic, 0.9, config=cfg, seed=2)
    pairs = [
        (r, int(v))
        for r in range(topo.num_routers)
        for v in topo.graph.neighbors(r)
    ]
    routers = np.array([p[0] for p in pairs])
    hops = np.array([p[1] for p in pairs])
    for step in range(120):
        ref.step()
        flat.step()
        if step % 30 == 29:
            assert np.array_equal(
                ref.output_occupancies(routers, hops),
                flat.output_occupancies(routers, hops),
            )
