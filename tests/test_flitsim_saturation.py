"""Saturation and backpressure edge cases, engine-equivalent.

The nastiest corners of credit flow: full offered load with single-flit
VC buffers (every queue constantly backpressured), no-drain
measurement windows, and a degraded fabric with a concentration-0
router mixed in.  Both engines must agree bit-for-bit, and a fully
drained network must return every credit it borrowed.
"""

import numpy as np
import pytest

from repro.core import PolarFly
from repro.flitsim import (
    FlatSimulator,
    NetworkSimulator,
    SimConfig,
    UniformTraffic,
)
from repro.routing import (
    MinimalRouting,
    RoutingTables,
    UGALPFRouting,
    degraded_topology,
)
from repro.topologies.base import Topology


def drain_to_quiescence(sim, max_cycles=6000):
    """Step at zero load until nothing is left in flight."""
    saved, sim.load = sim.load, 0.0
    for _ in range(max_cycles):
        if isinstance(sim, FlatSimulator):
            if sim.live_flits() == 0:
                break
        else:
            if not any(sim.voq[r] for r in range(sim.topo.num_routers)) and not any(
                q for r in range(sim.topo.num_routers) for q in sim.src_q[r]
            ):
                break
        sim.step()
    sim.load = saved


def assert_identical(a, b):
    assert a.injected_flits == b.injected_flits
    assert a.ejected_flits == b.ejected_flits
    assert np.array_equal(a.latencies, b.latencies)
    assert np.array_equal(a.hop_counts, b.hop_counts)


@pytest.fixture(scope="module")
def pf():
    return PolarFly(5, concentration=2)


@pytest.fixture(scope="module")
def tables(pf):
    return RoutingTables(pf)


class TestSaturationBackpressure:
    def test_full_load_single_flit_vcs_engines_agree(self, pf, tables):
        # load=1.0 with vc_depth=1: every buffer is one flit deep, so
        # almost every grant is credit-blocked — the stress case for
        # the synchronous credit protocol.  drain=0 on top.
        cfg = SimConfig(vc_depth=1)
        policy = MinimalRouting(tables)
        runs = []
        for cls in (NetworkSimulator, FlatSimulator):
            sim = cls(pf, policy, UniformTraffic(pf), 1.0, config=cfg, seed=9)
            runs.append(sim.run(warmup=50, measure=200, drain=0))
        assert_identical(*runs)
        # Saturated: offered 1.0 can't be accepted with 1-deep VCs.
        assert runs[0].accepted_load < 1.0

    def test_no_credit_leaks_after_drain(self, pf, tables):
        cfg = SimConfig(vc_depth=1)
        policy = MinimalRouting(tables)
        ref = NetworkSimulator(pf, policy, UniformTraffic(pf), 1.0, config=cfg, seed=9)
        flat = FlatSimulator(pf, policy, UniformTraffic(pf), 1.0, config=cfg, seed=9)
        for sim in (ref, flat):
            for _ in range(250):
                sim.step()
            drain_to_quiescence(sim)

        # Reference: every (port, vc) credit and injection credit back
        # to capacity.
        for r in range(pf.num_routers):
            for port_credits in ref.credits[r]:
                assert all(c == cfg.vc_depth for c in port_credits)
            assert all(c == cfg.vc_depth for c in ref.inj_credit[r])

        # Flat: identical invariant on the dense arrays; the packet
        # slot pool must also be fully recycled (memory stays
        # O(in-flight), not O(packets ever injected)).
        assert flat.live_flits() == 0
        fab = flat.fab
        valid = np.arange(max(fab.D, 1))[None, :] < fab.deg[:, None]
        assert (flat.credits[valid] == cfg.vc_depth).all()
        assert (flat.ep_credit == cfg.vc_depth).all()
        assert (flat.backlog == 0).all()
        assert (flat.voq_count == 0).all()
        assert int(flat._pslot_top[0]) == flat.pkt_cap
        assert flat.packets_injected > flat.pkt_cap // 2  # slots reused

    def test_degraded_topology_with_dark_router(self, pf):
        # Remove a link, zero one router's concentration: a transit-only
        # router inside a degraded fabric.  Both engines must agree and
        # route around/through it.
        u = 0
        v = int(pf.graph.neighbors(u)[0])
        deg = degraded_topology(pf, [(u, v)])
        conc = deg.concentration.copy()
        dark = int(v)
        conc[dark] = 0
        mixed = Topology("pf5-deg-dark", deg.graph, conc)
        tables = RoutingTables(mixed)
        policy = UGALPFRouting(tables)
        cfg = SimConfig(num_vcs=max(4, policy.max_hops - 1), vc_depth=2)
        runs = []
        for cls in (NetworkSimulator, FlatSimulator):
            sim = cls(
                mixed, policy, UniformTraffic(mixed), 0.8, config=cfg, seed=4
            )
            runs.append(sim.run(warmup=60, measure=200, drain=150))
        assert_identical(*runs)
        # Traffic flowed despite the dark router and the missing link.
        assert runs[0].ejected_flits > 0

    def test_dark_router_receives_no_packets(self, pf):
        # The concentration-0 router is never a destination; it may only
        # ever carry transit flits.
        conc = pf.concentration.copy()
        conc[3] = 0
        mixed = Topology("pf5-dark3", pf.graph, conc)
        tables = RoutingTables(mixed)
        sim = FlatSimulator(
            mixed, MinimalRouting(tables), UniformTraffic(mixed), 0.5, seed=2
        )
        sim.run(warmup=0, measure=300, drain=400)
        # All packets' destinations avoid the dark router: every
        # packet-slot row ever written holds a real destination != 3
        # (unused slots keep the -1 sentinel).
        assert sim.packets_injected > 0
        assert not (sim.pkt_dst == 3).any()
