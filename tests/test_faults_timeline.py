"""Unit tests for fault timelines, generators, and epoch compilation."""

import numpy as np
import pytest

from repro.core import PolarFly
from repro.experiments import FAULTS, POLICIES
from repro.faults import FaultEvent, FaultState, FaultTimeline
from repro.faults.timeline import _alive_connected
from repro.routing.tables import RoutingTables


@pytest.fixture(scope="module")
def pf():
    return PolarFly(7, concentration=2)


@pytest.fixture(scope="module")
def tables(pf):
    return RoutingTables(pf)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(10, "meteor_strike", 0, 1)
        with pytest.raises(ValueError, match="cycle"):
            FaultEvent(-1, "link_down", 0, 1)
        with pytest.raises(ValueError, match="endpoints"):
            FaultEvent(5, "link_down", 3)
        with pytest.raises(ValueError, match="single router"):
            FaultEvent(5, "router_down", 3, 4)

    def test_link_canonicalizes(self):
        assert FaultEvent(0, "link_down", 5, 2).link == (2, 5)


class TestFaultTimeline:
    def test_sorted_and_stable(self):
        tl = FaultTimeline(
            [
                FaultEvent(300, "link_up", 0, 1),
                FaultEvent(100, "link_down", 0, 1),
                FaultEvent(100, "link_down", 1, 2),
            ]
        )
        assert [e.cycle for e in tl] == [100, 100, 300]
        assert tl.events[0].link == (0, 1)  # same-cycle order preserved
        assert tl.event_cycles == (100, 300)
        assert tl.first_event_cycle == 100

    def test_empty(self):
        tl = FaultTimeline([])
        assert tl.num_events == 0
        assert tl.first_event_cycle == -1


class TestGenerators:
    def test_registry_round_trip(self):
        assert set(FAULTS.names()) == {
            "linkflap", "mtbf", "routerdown", "progressive",
        }
        for name in FAULTS.names():
            example = FAULTS.example(name)
            assert FAULTS.canonical(example) == FAULTS.canonical(
                FAULTS.canonical(example)
            )

    @pytest.mark.parametrize("name", ["linkflap", "mtbf", "routerdown", "progressive"])
    def test_deterministic(self, pf, name):
        spec = FAULTS.example(name)
        a = FAULTS.create(spec, pf)
        b = FAULTS.create(spec, pf)
        assert a.events == b.events

    def test_linkflap_events_are_edges(self, pf):
        tl = FAULTS.create("linkflap:count=3,cycle=100,duration=50,seed=2", pf)
        downs = [e for e in tl if e.kind == "link_down"]
        ups = [e for e in tl if e.kind == "link_up"]
        assert len(downs) == 3 and len(ups) == 3
        for e in downs:
            assert pf.graph.has_edge(*e.link)
        assert {e.link for e in downs} == {e.link for e in ups}
        assert all(e.cycle == 150 for e in ups)

    def test_mtbf_repairs_follow_failures(self, pf):
        tl = FAULTS.create("mtbf:count=4,mtbf=200,mttr=150,seed=1,start=50", pf)
        first_down = {}
        for e in tl:
            if e.kind == "link_down" and e.link not in first_down:
                first_down[e.link] = e.cycle
        for e in tl:
            if e.kind == "link_up":
                assert e.cycle > first_down[e.link]

    def test_progressive_budget(self, pf):
        tl = FAULTS.create("progressive:frac=0.1,steps=4,period=100,seed=3", pf)
        downs = [e for e in tl if e.kind == "link_down"]
        assert 0 < len(downs) <= int(0.1 * pf.num_links)
        assert all(e.kind == "link_down" for e in tl)
        # Connectivity-safe by construction.
        assert _alive_connected(pf.graph, {e.link for e in downs}, set())

    def test_routerdown_safe(self, pf):
        tl = FAULTS.create("routerdown:count=2,cycle=80,seed=5", pf)
        victims = {e.u for e in tl if e.kind == "router_down"}
        assert len(victims) == 2
        assert _alive_connected(pf.graph, set(), victims)

    def test_retransmit_flag_parses(self, pf):
        tl = FAULTS.create("linkflap:count=1,cycle=10,retransmit=false", pf)
        assert tl.retransmit is False


class TestFaultState:
    def test_epochs_and_deltas(self, pf, tables):
        edges = pf.graph.edges()
        e0 = (int(edges[0][0]), int(edges[0][1]))
        tl = FaultTimeline(
            [
                FaultEvent(100, "link_down", *e0),
                FaultEvent(200, "router_down", 7),
                FaultEvent(300, "router_up", 7),
                FaultEvent(300, "link_up", *e0),
            ]
        )
        policy = POLICIES.create("min", tables)
        st = FaultState(tl, pf, policy)
        assert len(st.epochs) == 4  # pristine + 3 event cycles
        d1 = st.deltas[1]
        assert d1.down_links == (e0,) and d1.down_routers == ()
        d2 = st.deltas[2]
        incident = {
            (min(7, int(v)), max(7, int(v))) for v in pf.graph.neighbors(7)
        } - {e0}
        assert set(d2.down_links) == incident
        assert d2.down_routers == (7,)
        d3 = st.deltas[3]
        assert d3.up_routers == (7,)
        assert set(d3.up_links) == incident | {e0}
        # Final epoch is pristine again: its tables are the base object.
        assert st.epochs[-1].tables is tables

    def test_advance_updates_masks(self, pf, tables):
        tl = FaultTimeline([FaultEvent(10, "router_down", 3)])
        st = FaultState(tl, pf, POLICIES.create("min", tables))
        assert st.advance(9) is None
        delta = st.advance(10)
        assert delta is not None and delta.down_routers == (3,)
        assert not st.router_alive[3]
        assert not st.ep_alive[pf.endpoint_offsets[3]]
        assert st.any_dead_router
        assert st.advance(11) is None

    def test_disconnecting_timeline_raises_at_attach(self, pf, tables):
        # Kill every link of router 0: survivor set disconnects.
        doomed = [
            FaultEvent(50, "link_down", 0, int(v))
            for v in pf.graph.neighbors(0)
        ]
        policy = POLICIES.create("min", tables)
        with pytest.raises(ValueError, match="disconnect"):
            FaultState(FaultTimeline(doomed), pf, policy)

    def test_non_edge_event_rejected(self, pf, tables):
        non_edge = None
        for v in range(1, pf.num_routers):
            if not pf.graph.has_edge(0, v):
                non_edge = (0, v)
                break
        tl = FaultTimeline([FaultEvent(10, "link_down", *non_edge)])
        with pytest.raises(ValueError, match="non-edge"):
            FaultState(tl, pf, POLICIES.create("min", tables))

    def test_pins_policy_hop_ceiling(self, pf, tables):
        tl = FAULTS.create("progressive:frac=0.15,steps=2,period=100,seed=1", pf)
        policy = POLICIES.create("ugal-pf", tables)
        base_hops = policy.max_hops
        FaultState(tl, pf, policy)
        # Degraded diameter grows, so the valiant worst case may too —
        # and the policy must be parked back on the pristine tables.
        assert policy.max_hops >= base_hops
        assert policy.tables is tables

    def test_ftnca_rejected(self, tables):
        from repro.experiments import TOPOLOGIES

        ft = TOPOLOGIES.create("fattree:k=4,n=2")
        ft_tables = RoutingTables(ft)
        policy = POLICIES.create("ftnca", ft_tables)
        edges = ft.graph.edges()
        tl = FaultTimeline(
            [FaultEvent(10, "link_down", int(edges[0][0]), int(edges[0][1]))]
        )
        with pytest.raises(NotImplementedError, match="FT-NCA"):
            FaultState(tl, ft, policy)

    def test_marks_split_latency_stream(self, pf, tables):
        lat = np.arange(10)

        class Stat:
            latencies = lat

        tl = FaultTimeline([FaultEvent(5, "router_down", 3)])
        st = FaultState(tl, pf, POLICIES.create("min", tables))
        st.advance(5)
        st.note_mark(5, 4)
        res = st.build_result(Stat())
        assert np.array_equal(res.pre_fault_latencies, lat[:4])
        assert np.array_equal(res.post_fault_latencies, lat[4:])
        assert res.applied_events == 1
