"""Unit tests for bisection bandwidth analysis (Figure 12)."""

import numpy as np
import pytest

from repro.analysis import bisection_cut, bisection_fraction, kernighan_lin_refine, spectral_bisection
from repro.core import PolarFly
from repro.topologies import Dragonfly, FatTree, SlimFly
from repro.utils.graph import Graph


def two_cliques(n=8, bridges=1):
    """Two n-cliques joined by `bridges` edges — known optimal cut."""
    edges = []
    for base in (0, n):
        edges += [(base + i, base + j) for i in range(n) for j in range(i + 1, n)]
    edges += [(i, n + i) for i in range(bridges)]
    return Graph(2 * n, edges)


class TestSpectral:
    def test_balanced_split(self):
        g = two_cliques()
        side = spectral_bisection(g)
        assert side.sum() == g.n // 2

    def test_finds_obvious_cut(self):
        g = two_cliques(bridges=2)
        side, cut = bisection_cut(g, refine=False)
        assert cut == 2

    def test_odd_vertex_count(self):
        g = Graph(5, [(i, (i + 1) % 5) for i in range(5)])
        side = spectral_bisection(g)
        assert side.sum() in (2, 3)


class TestKernighanLin:
    def test_refine_never_worse(self):
        g = two_cliques(bridges=3)
        side0 = spectral_bisection(g)
        e = g.edges()
        cut0 = int(np.count_nonzero(side0[e[:, 0]] != side0[e[:, 1]]))
        side1 = kernighan_lin_refine(g, side0)
        cut1 = int(np.count_nonzero(side1[e[:, 0]] != side1[e[:, 1]]))
        assert cut1 <= cut0

    def test_preserves_balance(self):
        g = two_cliques()
        side = kernighan_lin_refine(g, spectral_bisection(g))
        assert side.sum() == g.n // 2

    def test_fixes_bad_start(self):
        # Start from a terrible interleaved split; KL must recover the
        # obvious clique cut.
        g = two_cliques(bridges=1)
        bad = np.zeros(g.n, dtype=bool)
        bad[::2] = True
        side = kernighan_lin_refine(g, bad)
        e = g.edges()
        cut = int(np.count_nonzero(side[e[:, 0]] != side[e[:, 1]]))
        assert cut <= 5


class TestFigure12Ordering:
    """The qualitative claim: PF bisection fraction > SF > DF; FT ~ 0.5."""

    def test_polarfly_high_bisection(self):
        frac = bisection_fraction(PolarFly(7))
        assert frac > 0.35  # paper: >40% for radix >= 18; small q slightly less

    def test_polarfly_beats_slimfly_and_dragonfly(self):
        # Figure 12's ordering emerges at moderate radix (the paper notes
        # PF pulls ahead for radix >= 18; tiny instances can invert).
        pf = bisection_fraction(PolarFly(13))      # 183 routers, k=14
        sf = bisection_fraction(SlimFly(9))        # 162 routers, k=13
        df = bisection_fraction(Dragonfly(a=12, h=1))  # 156 routers, k=12
        assert pf > sf > df

    def test_dragonfly_low(self):
        assert bisection_fraction(Dragonfly(a=5, h=2)) < 0.25

    def test_fraction_in_unit_interval(self):
        for topo in (PolarFly(5), SlimFly(5), FatTree(k=3, n=3)):
            frac = bisection_fraction(topo)
            assert 0.0 < frac <= 0.55
