"""Golden pins for the sparse (O(N^2)-free) scaling tier.

Every sparse structure that replaced a dense one is pinned against the
dense oracle it replaced:

* the CSR port map of :class:`~repro.flitsim.flatcore.FlatFabric`
  (sorted-neighbor searchsorted) against a scatter-built dense port
  matrix, plus the int16 ``rev_mat``;
* the frontier-derived compact candidate table (fused into the batched
  BFS) against the seed per-source CSR oracle *and* against the
  compare-pass rebuild used by fault repair;
* :class:`~repro.routing.tables.RowPatchedDist` against the equivalent
  dense matrix over its full indexing surface;
* and the headline structural guarantee: constructing the q=31 tier
  leaves no reachable array of N^2 elements wider than the int16
  distance matrix itself — no dense port matrix, no int64 candidate
  indptr, no dense congestion scratch.
"""

import gc
import types

import numpy as np
import pytest

from repro.experiments.registry import TOPOLOGIES
from repro.flitsim.flatcore import FlatFabric
from repro.routing.degraded import reroute_after_failures
from repro.routing.tables import (
    RoutingTables,
    RowPatchedDist,
    per_source_candidate_csr,
)

SPECS = [
    "polarfly:conc=2,q=7",
    "polarfly:conc=2,q=11",
    "slimfly:conc=2,q=5",
    "fattree:k=4,n=2",
]


@pytest.fixture(scope="module", params=SPECS, ids=[s.split(":")[0] + s.split("=")[-1] for s in SPECS])
def topo(request):
    return TOPOLOGIES.create(request.param)


def _dense_port_matrix(graph) -> np.ndarray:
    """The dense oracle: port_mat[u, v] = index of v among u's sorted
    neighbors, -1 for non-adjacent pairs."""
    port = np.full((graph.n, graph.n), -1, dtype=np.int64)
    for u in range(graph.n):
        nbrs = graph.neighbors(u)
        port[u, nbrs] = np.arange(nbrs.size)
    return port


class TestCsrPortMap:
    def test_ports_toward_matches_dense_oracle(self, topo):
        fab = FlatFabric(topo)
        oracle = _dense_port_matrix(topo.graph)
        src, dst = np.nonzero(oracle >= 0)
        assert np.array_equal(fab.ports_toward(src, dst), oracle[src, dst])

    def test_scalar_port_toward(self, topo):
        fab = FlatFabric(topo)
        oracle = _dense_port_matrix(topo.graph)
        src, dst = np.nonzero(oracle >= 0)
        for u, v in zip(src[::7], dst[::7]):
            assert fab.port_toward(int(u), int(v)) == oracle[u, v]

    def test_rev_mat_matches_oracle_and_is_int16(self, topo):
        fab = FlatFabric(topo)
        oracle = _dense_port_matrix(topo.graph)
        assert fab.rev_mat.dtype == np.int16
        for u in range(topo.num_routers):
            nbrs = topo.graph.neighbors(u)
            for p, v in enumerate(nbrs):
                # rev_mat[u, p]: the port of neighbor v that points back
                # at u — the upstream credit-return coordinate.
                assert fab.rev_mat[u, p] == oracle[v, u]

    def test_no_dense_port_matrix_attribute(self, topo):
        fab = FlatFabric(topo)
        assert not hasattr(fab, "port_mat")
        n = topo.num_routers
        # The CSR map is O(E), never O(N^2).
        assert fab.edge_keys.size == fab.adj_indices.size
        assert fab.edge_keys.size < n * n or n <= 2


class TestFrontierCandidates:
    def test_matches_per_source_oracle(self, topo):
        tables = RoutingTables(topo)
        indptr, data = tables._candidate_csr()
        o_indptr, o_data = per_source_candidate_csr(
            topo.graph, np.asarray(tables.dist)
        )
        assert np.array_equal(indptr, o_indptr)
        assert np.array_equal(data, o_data)

    def test_fused_equals_rebuilt_from_dist(self, topo):
        fused = RoutingTables(topo)._candidate_table()
        rebuilt = RoutingTables.from_distances(
            topo, np.asarray(RoutingTables(topo).dist)
        )._candidate_table()
        assert np.array_equal(fused.count, rebuilt.count)
        assert np.array_equal(fused.first, rebuilt.first)
        assert np.array_equal(fused.multi_pairs, rebuilt.multi_pairs)
        assert np.array_equal(fused.multi_indptr, rebuilt.multi_indptr)
        assert np.array_equal(fused.multi_data, rebuilt.multi_data)

    def test_next_hops_serve_matches_dense_csr(self, topo):
        tables = RoutingTables(topo)
        tab = tables._candidate_table()
        indptr, data = tables._candidate_csr()
        n = topo.num_routers
        pairs = np.random.default_rng(9).integers(0, n * n, size=500)
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        got = tab.next_hops(pairs, rng1)
        counts = (indptr[pairs + 1] - indptr[pairs]).astype(np.int64)
        # Replay the identical RNG stream the dense serving path used:
        # one integers() call over the tied pairs only.
        picks = np.zeros(pairs.size, dtype=np.int64)
        multi = counts > 1
        if multi.any():
            picks[multi] = rng2.integers(counts[multi])
        have = counts > 0
        assert np.array_equal(got[have], data[indptr[pairs[have]] + picks[have]])
        assert (got[~have] == -1).all()
        # Deterministic serving returns the lowest-id candidate.
        det = tab.next_hops(pairs)
        assert np.array_equal(det[have], data[indptr[pairs[have]]])


class TestRowPatchedDist:
    @pytest.fixture()
    def patched(self):
        rng = np.random.default_rng(3)
        base = rng.integers(0, 9, size=(12, 12)).astype(np.int16)
        rows = np.array([2, 5, 9])
        patch = rng.integers(0, 9, size=(3, 12)).astype(np.int16)
        dense = base.copy()
        dense[rows] = patch
        return RowPatchedDist(base, rows, patch), dense

    def test_full_indexing_surface(self, patched):
        d, dense = patched
        assert d.shape == dense.shape and d.ndim == 2
        assert d.dtype == dense.dtype
        assert np.array_equal(np.asarray(d), dense)
        assert np.array_equal(d.dense(), dense)
        assert np.array_equal(d.copy(), dense)
        assert np.array_equal(d.astype(np.int64), dense.astype(np.int64))
        assert d.max() == dense.max()
        # Rows: scalar, array, bool mask, plain [i].
        assert np.array_equal(d[2, :], dense[2, :])
        assert np.array_equal(d[3, :], dense[3, :])
        assert np.array_equal(d[np.array([0, 2, 5, 11])], dense[[0, 2, 5, 11]])
        mask = np.zeros(12, dtype=bool)
        mask[[1, 2, 9]] = True
        assert np.array_equal(d[mask], dense[mask])
        # Columns and blocks.
        assert np.array_equal(d[:, 4], dense[:, 4])
        assert np.array_equal(
            d[:, np.array([0, 5])], dense[:, np.array([0, 5])]
        )
        ix = np.ix_(np.array([1, 2, 7]), np.array([0, 9]))
        assert np.array_equal(d[ix], dense[ix])
        # Pair gathers: arrays, scalar, broadcast scalar-vs-array.
        srcs = np.array([0, 2, 5, 9, 11])
        dsts = np.array([3, 3, 1, 0, 2])
        assert np.array_equal(d[srcs, dsts], dense[srcs, dsts])
        assert d[5, 7] == dense[5, 7]
        assert d[3, 7] == dense[3, 7]
        assert np.array_equal(d[2, dsts], dense[2, dsts])
        assert np.array_equal(d[srcs, 4], dense[srcs, 4])

    def test_base_is_never_written(self, patched):
        d, _ = patched
        before = d.base.copy()
        _ = d.dense()
        _ = d[np.arange(12)]
        _ = d[np.array([2, 3]), np.array([1, 1])]
        assert np.array_equal(d.base, before)

    def test_empty_patch_degenerates_to_base(self):
        base = np.arange(16, dtype=np.int16).reshape(4, 4)
        d = RowPatchedDist(base, np.empty(0, dtype=np.int64), base[:0])
        assert np.array_equal(np.asarray(d), base)
        assert d.max() == base.max()


class TestDegradedRowSparse:
    def test_incremental_repair_uses_row_patch(self):
        topo = TOPOLOGIES.create("polarfly:conc=2,q=7")
        base = RoutingTables(topo)
        failed = [tuple(topo.graph.edges()[0])]
        inc = reroute_after_failures(topo, failed, base=base)
        fresh = reroute_after_failures(topo, failed)
        assert isinstance(inc.dist, RowPatchedDist)
        # Patch rows are a strict subset: row-sparse, not a dense copy.
        assert 0 < inc.dist.rows.size < topo.num_routers
        assert np.array_equal(np.asarray(inc.dist), np.asarray(fresh.dist))

    def test_untouched_failure_shares_base_dist(self):
        # Removing no edges keeps the identical dist object.
        topo = TOPOLOGIES.create("polarfly:conc=2,q=7")
        base = RoutingTables(topo)
        inc = reroute_after_failures(topo, np.empty((0, 2), dtype=np.int64),
                                     base=base)
        assert inc.dist is base.dist


def _reachable_arrays(*roots):
    """Every numpy array reachable from ``roots`` via gc edges.

    Classes, modules, and functions are pruned so the walk stays inside
    the object graph under test instead of the whole interpreter.
    """
    seen, out, stack = set(), [], list(roots)
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            out.append(obj)
            continue
        if isinstance(
            obj,
            (str, bytes, int, float, bool, type(None), type,
             types.ModuleType, types.FunctionType, types.MethodType),
        ):
            continue
        stack.extend(gc.get_referents(obj))
    return out


def test_no_wide_dense_structures_at_q31():
    """The sparse-tier guarantee, asserted on the q=31 default path.

    After building topology, routing tables (including the unique-path
    cache and candidate table), and the flat fabric, the only structures
    allowed to scale as N^2 are the int16 distance matrix and equally
    narrow companions (<= 2 bytes/pair: path-cache rows, uint8/int16
    candidate count/first, bool unique flags).  A dense port matrix,
    int64 candidate indptr, or dense congestion view would all trip the
    itemsize check.
    """
    topo = TOPOLOGIES.create("polarfly:conc=2,q=31")
    n = topo.num_routers
    tables = RoutingTables(topo)
    tables._candidate_table()
    if tables._path_cache_enabled():
        tables._unique_path_cache()
    fab = FlatFabric(topo)
    assert not hasattr(fab, "port_mat")
    offenders = [
        (a.shape, a.dtype)
        for a in _reachable_arrays(topo, tables, fab)
        if a.size >= n * n and a.itemsize > 2
    ]
    assert offenders == [], offenders
