"""Unit tests for the CSR graph kernel."""

import numpy as np
import pytest

from repro.utils.graph import Graph, bfs_distances_reference


def path_graph(n):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n):
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n):
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


class TestConstruction:
    def test_empty(self):
        g = Graph(3, [])
        assert g.num_edges == 0
        assert g.degree().tolist() == [0, 0, 0]

    def test_dedup_and_symmetry(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])

    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_from_adjacency_matrix_roundtrip(self):
        g = cycle_graph(6)
        g2 = Graph.from_adjacency_matrix(g.adjacency_matrix())
        assert np.array_equal(g.edges(), g2.edges())

    def test_adjacency_matrix_symmetric(self):
        g = cycle_graph(5)
        adj = g.adjacency_matrix()
        assert np.array_equal(adj, adj.T)
        assert not adj.diagonal().any()


class TestDistances:
    def test_bfs_path_graph(self):
        g = path_graph(5)
        assert g.bfs_distances(0).tolist() == [0, 1, 2, 3, 4]

    def test_bfs_disconnected(self):
        g = Graph(4, [(0, 1)])
        d = g.bfs_distances(0)
        assert d[1] == 1 and d[2] == -1 and d[3] == -1

    def test_diameter(self):
        assert path_graph(6).diameter() == 5
        assert cycle_graph(6).diameter() == 3
        assert complete_graph(5).diameter() == 1

    def test_diameter_disconnected(self):
        assert Graph(3, [(0, 1)]).diameter() == -1

    def test_aspl_complete(self):
        assert complete_graph(4).average_shortest_path_length() == 1.0

    def test_aspl_path(self):
        # P3: distances 1,2,1,1,2,1 over 6 ordered pairs -> 4/3
        assert path_graph(3).average_shortest_path_length() == pytest.approx(4 / 3)

    def test_aspl_disconnected_inf(self):
        assert Graph(3, [(0, 1)]).average_shortest_path_length() == float("inf")

    def test_eccentricity(self):
        g = path_graph(5)
        assert g.eccentricity(0) == 4
        assert g.eccentricity(2) == 2

    def test_connectivity(self):
        assert cycle_graph(4).is_connected()
        assert not Graph(4, [(0, 1), (2, 3)]).is_connected()

    def test_sampled_diameter_lower_bound(self):
        g = cycle_graph(20)
        full = g.diameter()
        sampled = g.diameter(sample=5, rng=0)
        assert sampled <= full


class TestBatchedBFS:
    """all_pairs_distances is pinned bit-identical to the seed BFS."""

    def _assert_golden(self, g):
        expected = np.stack(
            [bfs_distances_reference(g, s) for s in range(g.n)]
        ) if g.n else np.empty((0, 0), dtype=np.int64)
        got = g.all_pairs_distances()
        assert got.dtype == np.int64
        assert np.array_equal(got, expected)

    def test_golden_on_basic_graphs(self):
        for g in (path_graph(7), cycle_graph(9), complete_graph(5), Graph(4, [])):
            self._assert_golden(g)

    def test_golden_on_disconnected_graph(self):
        self._assert_golden(Graph(7, [(0, 1), (1, 2), (4, 5)]))

    def test_golden_on_registry_topologies(self):
        from repro.experiments.registry import TOPOLOGIES

        for name in TOPOLOGIES.names():
            topo = TOPOLOGIES.create(TOPOLOGIES.example(name))
            self._assert_golden(topo.graph)

    def test_golden_on_random_graphs(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            n = int(rng.integers(2, 50))
            pairs = rng.integers(0, n, size=(2 * n, 2))
            g = Graph(n, pairs[pairs[:, 0] != pairs[:, 1]])
            self._assert_golden(g)

    def test_source_subset_matches_rows(self):
        g = cycle_graph(12)
        sources = [3, 0, 7]
        sub = g.all_pairs_distances(sources)
        assert np.array_equal(sub, g.all_pairs_distances()[sources])
        assert np.array_equal(sub, g.distances_from(sources))

    def test_dtype_and_empty_sources(self):
        g = path_graph(5)
        d16 = g.all_pairs_distances(dtype=np.int16)
        assert d16.dtype == np.int16
        assert np.array_equal(d16, g.all_pairs_distances())
        assert g.all_pairs_distances(np.empty(0, np.int64)).shape == (0, 5)

    def test_bfs_distances_delegates(self):
        g = Graph(7, [(0, 1), (1, 2), (4, 5)])
        for s in range(7):
            assert np.array_equal(
                g.bfs_distances(s), bfs_distances_reference(g, s)
            )


class TestMutation:
    def test_remove_edges(self):
        g = cycle_graph(5)
        g2 = g.remove_edges([(0, 1)])
        assert g2.num_edges == 4
        assert not g2.has_edge(0, 1)
        # original untouched
        assert g.has_edge(0, 1)

    def test_remove_edges_either_orientation(self):
        g = cycle_graph(5)
        assert not g.remove_edges([(1, 0)]).has_edge(0, 1)

    def test_remove_edges_array_matches_iterable(self):
        g = complete_graph(6)
        doomed = np.array([[0, 1], [4, 2], [3, 5]])
        ga = g.remove_edges(doomed)
        gb = g.remove_edges([(0, 1), (2, 4), (5, 3)])
        assert np.array_equal(ga.edges(), gb.edges())
        assert ga.num_edges == g.num_edges - 3

    def test_remove_no_edges(self):
        g = cycle_graph(5)
        assert np.array_equal(g.remove_edges([]).edges(), g.edges())

    def test_remove_nonexistent_or_out_of_range_is_noop(self):
        g = Graph(5, [(2, 3), (0, 1)])
        # (1, 8) is out of range and must not alias edge (2, 3)'s key
        assert np.array_equal(g.remove_edges([(1, 8)]).edges(), g.edges())
        assert np.array_equal(g.remove_edges([(0, 4)]).edges(), g.edges())

    def test_subgraph_mask(self):
        g = complete_graph(5)
        sub = g.subgraph_mask(np.array([True, True, True, False, False]))
        assert sub.n == 3
        assert sub.num_edges == 3

    def test_subgraph_mask_relabels(self):
        g = path_graph(6)
        sub = g.subgraph_mask(np.array([False, True, True, False, True, True]))
        # vertices 1-2 and 4-5 survive as 0-1 and 2-3
        assert sub.n == 4
        assert sub.has_edge(0, 1) and sub.has_edge(2, 3)
        assert not sub.has_edge(1, 2)

    def test_ndarray_constructor_matches_iterable(self):
        edges = [(4, 0), (1, 3), (2, 1), (1, 3)]
        g1 = Graph(5, edges)
        g2 = Graph(5, np.array(edges))
        assert np.array_equal(g1.edges(), g2.edges())
        with pytest.raises(ValueError):
            Graph(5, np.array([[0, 0]]))
        with pytest.raises(ValueError):
            Graph(5, np.array([[0, 9]]))
        with pytest.raises(ValueError):
            Graph(5, np.array([[0, 1, 2]]))


class TestStructure:
    def test_triangles_complete(self):
        assert len(complete_graph(4).triangles()) == 4

    def test_triangles_none_in_cycle(self):
        assert cycle_graph(6).triangles() == []

    def test_triangles_sorted_triples(self):
        for tri in complete_graph(5).triangles():
            assert tri[0] < tri[1] < tri[2]

    def test_4cycles_in_c4(self):
        assert cycle_graph(4).count_4cycles() == 1

    def test_4cycles_in_k4(self):
        assert complete_graph(4).count_4cycles() == 3

    def test_no_4cycles_in_triangle(self):
        assert complete_graph(3).count_4cycles() == 0
