"""Unit tests for the CSR graph kernel."""

import numpy as np
import pytest

from repro.utils.graph import Graph


def path_graph(n):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n):
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n):
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


class TestConstruction:
    def test_empty(self):
        g = Graph(3, [])
        assert g.num_edges == 0
        assert g.degree().tolist() == [0, 0, 0]

    def test_dedup_and_symmetry(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])

    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_from_adjacency_matrix_roundtrip(self):
        g = cycle_graph(6)
        g2 = Graph.from_adjacency_matrix(g.adjacency_matrix())
        assert np.array_equal(g.edges(), g2.edges())

    def test_adjacency_matrix_symmetric(self):
        g = cycle_graph(5)
        adj = g.adjacency_matrix()
        assert np.array_equal(adj, adj.T)
        assert not adj.diagonal().any()


class TestDistances:
    def test_bfs_path_graph(self):
        g = path_graph(5)
        assert g.bfs_distances(0).tolist() == [0, 1, 2, 3, 4]

    def test_bfs_disconnected(self):
        g = Graph(4, [(0, 1)])
        d = g.bfs_distances(0)
        assert d[1] == 1 and d[2] == -1 and d[3] == -1

    def test_diameter(self):
        assert path_graph(6).diameter() == 5
        assert cycle_graph(6).diameter() == 3
        assert complete_graph(5).diameter() == 1

    def test_diameter_disconnected(self):
        assert Graph(3, [(0, 1)]).diameter() == -1

    def test_aspl_complete(self):
        assert complete_graph(4).average_shortest_path_length() == 1.0

    def test_aspl_path(self):
        # P3: distances 1,2,1,1,2,1 over 6 ordered pairs -> 4/3
        assert path_graph(3).average_shortest_path_length() == pytest.approx(4 / 3)

    def test_aspl_disconnected_inf(self):
        assert Graph(3, [(0, 1)]).average_shortest_path_length() == float("inf")

    def test_eccentricity(self):
        g = path_graph(5)
        assert g.eccentricity(0) == 4
        assert g.eccentricity(2) == 2

    def test_connectivity(self):
        assert cycle_graph(4).is_connected()
        assert not Graph(4, [(0, 1), (2, 3)]).is_connected()

    def test_sampled_diameter_lower_bound(self):
        g = cycle_graph(20)
        full = g.diameter()
        sampled = g.diameter(sample=5, rng=0)
        assert sampled <= full


class TestMutation:
    def test_remove_edges(self):
        g = cycle_graph(5)
        g2 = g.remove_edges([(0, 1)])
        assert g2.num_edges == 4
        assert not g2.has_edge(0, 1)
        # original untouched
        assert g.has_edge(0, 1)

    def test_remove_edges_either_orientation(self):
        g = cycle_graph(5)
        assert not g.remove_edges([(1, 0)]).has_edge(0, 1)

    def test_subgraph_mask(self):
        g = complete_graph(5)
        sub = g.subgraph_mask(np.array([True, True, True, False, False]))
        assert sub.n == 3
        assert sub.num_edges == 3


class TestStructure:
    def test_triangles_complete(self):
        assert len(complete_graph(4).triangles()) == 4

    def test_triangles_none_in_cycle(self):
        assert cycle_graph(6).triangles() == []

    def test_triangles_sorted_triples(self):
        for tri in complete_graph(5).triangles():
            assert tri[0] < tri[1] < tri[2]

    def test_4cycles_in_c4(self):
        assert cycle_graph(4).count_4cycles() == 1

    def test_4cycles_in_k4(self):
        assert complete_graph(4).count_4cycles() == 3

    def test_no_4cycles_in_triangle(self):
        assert complete_graph(3).count_4cycles() == 0
