"""Unit tests for the load-sweep harness."""

import numpy as np
import pytest

from repro.core import PolarFly
from repro.flitsim import LoadSweep, UniformTraffic, run_load_sweep
from repro.flitsim.sweep import SweepPoint
from repro.routing import MinimalRouting, RoutingTables


@pytest.fixture(scope="module")
def sweep():
    pf = PolarFly(5, concentration=2)
    tables = RoutingTables(pf)
    return run_load_sweep(
        pf,
        MinimalRouting(tables),
        UniformTraffic(pf),
        loads=(0.1, 0.4, 0.8),
        label="PF5-MIN",
        warmup=200,
        measure=400,
        drain=150,
        seed=0,
    )


class TestSweep:
    def test_point_count_and_label(self, sweep):
        assert len(sweep.points) == 3
        assert sweep.label == "PF5-MIN"

    def test_arrays(self, sweep):
        assert np.allclose(sweep.loads, [0.1, 0.4, 0.8])
        assert sweep.latencies.shape == (3,)
        assert sweep.throughputs.shape == (3,)

    def test_latency_increases(self, sweep):
        assert sweep.latencies[0] < sweep.latencies[-1]

    def test_throughput_tracks_low_load(self, sweep):
        assert sweep.throughputs[0] == pytest.approx(0.1, abs=0.03)

    def test_saturation_load_positive(self, sweep):
        sat = sweep.saturation_load()
        assert 0.1 <= sat <= 1.0

    def test_efficiency_parameter_deprecated(self, sweep):
        from repro.flitsim.sweep import saturation_load

        with pytest.warns(DeprecationWarning):
            deprecated = saturation_load(sweep.points, efficiency=0.95)
        with pytest.warns(DeprecationWarning):
            assert sweep.saturation_load(efficiency=0.95) == deprecated
        # never affected the result, and not passing it never warns
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert saturation_load(sweep.points) == deprecated

    def test_rows(self, sweep):
        rows = sweep.rows()
        assert len(rows) == 3
        assert set(rows[0]) == {"label", "offered", "latency", "accepted"}


class TestSweepPoint:
    def test_from_result_roundtrip(self):
        from repro.flitsim.simulator import SimResult

        res = SimResult(0.5, 100, 10)
        res.ejected_flits = 250
        res.latencies = [10, 20]
        res.hop_counts = [1, 2]
        pt = SweepPoint.from_result(res)
        assert pt.offered_load == 0.5
        assert pt.accepted_load == 0.25
        assert pt.avg_latency == 15.0
        assert pt.avg_hops == 1.5
