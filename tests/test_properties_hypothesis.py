"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PolarFly
from repro.fields import GF, is_prime_power, prime_powers_up_to
from repro.fields.polynomials import (
    is_irreducible,
    poly_add,
    poly_divmod,
    poly_mul,
    poly_sub,
    poly_trim,
)
from repro.utils.graph import Graph

SMALL_PRIME_POWERS = [q for q in prime_powers_up_to(32) if q >= 3]

field_orders = st.sampled_from(SMALL_PRIME_POWERS)
small_primes = st.sampled_from([2, 3, 5, 7])


def polys(p, max_deg=5):
    return st.lists(
        st.integers(min_value=0, max_value=p - 1), min_size=0, max_size=max_deg + 1
    ).map(poly_trim)


# ----------------------------------------------------------------------
# Field axioms as universal properties
# ----------------------------------------------------------------------
class TestFieldProperties:
    @given(q=field_orders, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_add_group(self, q, data):
        F = GF(q)
        a = data.draw(st.integers(0, q - 1))
        b = data.draw(st.integers(0, q - 1))
        c = data.draw(st.integers(0, q - 1))
        assert int(F.add(a, b)) == int(F.add(b, a))
        assert int(F.add(F.add(a, b), c)) == int(F.add(a, F.add(b, c)))
        assert int(F.add(a, 0)) == a
        assert int(F.add(a, F.neg(a))) == 0

    @given(q=field_orders, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mul_group_and_distributivity(self, q, data):
        F = GF(q)
        a = data.draw(st.integers(0, q - 1))
        b = data.draw(st.integers(0, q - 1))
        c = data.draw(st.integers(0, q - 1))
        assert int(F.mul(a, b)) == int(F.mul(b, a))
        assert int(F.mul(F.mul(a, b), c)) == int(F.mul(a, F.mul(b, c)))
        assert int(F.mul(a, 1)) == a
        assert int(F.mul(a, F.add(b, c))) == int(F.add(F.mul(a, b), F.mul(a, c)))
        if a != 0:
            assert int(F.mul(a, F.inv(a))) == 1

    @given(q=field_orders, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_no_zero_divisors(self, q, data):
        F = GF(q)
        a = data.draw(st.integers(1, q - 1))
        b = data.draw(st.integers(1, q - 1))
        assert int(F.mul(a, b)) != 0

    @given(q=field_orders, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_frobenius_is_additive(self, q, data):
        # (a+b)^p == a^p + b^p in characteristic p.
        F = GF(q)
        a = data.draw(st.integers(0, q - 1))
        b = data.draw(st.integers(0, q - 1))
        lhs = F.pow(np.array(int(F.add(a, b))), F.p)
        rhs = F.add(int(F.pow(np.array(a), F.p)), int(F.pow(np.array(b), F.p)))
        assert int(lhs) == int(rhs)

    @given(q=field_orders, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_cross_product_orthogonal(self, q, data):
        F = GF(q)
        u = np.array([data.draw(st.integers(0, q - 1)) for _ in range(3)])
        v = np.array([data.draw(st.integers(0, q - 1)) for _ in range(3)])
        c = F.cross(u, v)
        assert int(F.dot(u, c)) == 0
        assert int(F.dot(v, c)) == 0

    @given(q=field_orders, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_left_normalize_projective_invariant(self, q, data):
        F = GF(q)
        v = np.array([data.draw(st.integers(0, q - 1)) for _ in range(3)])
        if not v.any():
            return
        s = data.draw(st.integers(1, q - 1))
        scaled = F.mul(np.full(3, s), v)
        assert np.array_equal(
            F.left_normalize(v), F.left_normalize(scaled)
        )


# ----------------------------------------------------------------------
# Polynomial ring properties
# ----------------------------------------------------------------------
class TestPolynomialProperties:
    @given(p=small_primes, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_ring_axioms(self, p, data):
        f = data.draw(polys(p))
        g = data.draw(polys(p))
        h = data.draw(polys(p))
        assert poly_add(f, g, p) == poly_add(g, f, p)
        assert poly_mul(f, g, p) == poly_mul(g, f, p)
        assert poly_mul(f, poly_add(g, h, p), p) == poly_add(
            poly_mul(f, g, p), poly_mul(f, h, p), p
        )
        assert poly_sub(f, f, p) == ()

    @given(p=small_primes, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_division_identity(self, p, data):
        f = data.draw(polys(p))
        g = data.draw(polys(p).filter(lambda x: x != ()))
        quo, rem = poly_divmod(f, g, p)
        assert poly_add(poly_mul(quo, g, p), rem, p) == f
        assert len(rem) < len(g)

    @given(p=small_primes, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_irreducible_products_are_reducible(self, p, data):
        f = data.draw(polys(p, 3).filter(lambda x: len(x) >= 2))
        g = data.draw(polys(p, 3).filter(lambda x: len(x) >= 2))
        prod = poly_mul(f, g, p)
        # Normalize to monic for the test.
        lead_inv = pow(int(prod[-1]), p - 2, p)
        monic = poly_trim([(c * lead_inv) % p for c in prod])
        assert not is_irreducible(monic, p)


# ----------------------------------------------------------------------
# Graph kernel properties
# ----------------------------------------------------------------------
@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 16))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible), max_size=40, unique=True))
    return Graph(n, chosen)


class TestGraphProperties:
    @given(g=random_graphs())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_handshake(self, g):
        assert int(g.degree().sum()) == 2 * g.num_edges

    @given(g=random_graphs())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_bfs_triangle_inequality(self, g):
        # dist(0, v) <= dist(0, u) + 1 for every edge (u, v).
        dist = g.bfs_distances(0)
        for u, v in g.edges():
            du, dv = int(dist[u]), int(dist[v])
            if du >= 0 and dv >= 0:
                assert abs(du - dv) <= 1

    @given(g=random_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_remove_all_edges_isolates(self, g):
        empty = g.remove_edges([tuple(e) for e in g.edges()])
        assert empty.num_edges == 0

    @given(g=random_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_adjacency_roundtrip(self, g):
        g2 = Graph.from_adjacency_matrix(g.adjacency_matrix())
        assert np.array_equal(g.edges(), g2.edges())


# ----------------------------------------------------------------------
# PolarFly invariants under arbitrary prime powers
# ----------------------------------------------------------------------
class TestPolarFlyProperties:
    @given(q=st.sampled_from([q for q in SMALL_PRIME_POWERS if q <= 13]))
    @settings(max_examples=10, deadline=None)
    def test_moore_bound_never_exceeded(self, q):
        pf = PolarFly(q)
        k = pf.network_radix
        assert pf.num_routers <= k * k + 1

    @given(
        q=st.sampled_from([5, 7, 9]),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_unique_minimal_path_property(self, q, data):
        pf = PolarFly(q)
        n = pf.num_routers
        s = data.draw(st.integers(0, n - 1))
        d = data.draw(st.integers(0, n - 1))
        if s == d:
            return
        path = pf.minimal_path(s, d)
        assert len(path) - 1 <= 2
        for a, b in zip(path, path[1:]):
            assert pf.are_adjacent(a, b)

    @given(q=st.sampled_from([5, 7, 9]), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_intermediate_is_orthogonal_to_both(self, q, data):
        pf = PolarFly(q)
        n = pf.num_routers
        s = data.draw(st.integers(0, n - 1))
        d = data.draw(st.integers(0, n - 1))
        if s == d:
            return
        mid = pf.intermediate(s, d)
        F = pf.field
        assert int(F.dot(pf.vectors[s], pf.vectors[mid])) == 0
        assert int(F.dot(pf.vectors[d], pf.vectors[mid])) == 0

    def test_prime_power_detection_consistent(self):
        for q in range(2, 200):
            pp = is_prime_power(q)
            if pp:
                p, m = pp
                assert p**m == q
