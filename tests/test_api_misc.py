"""Coverage for API surface corners: summaries, large fields, edge cases."""

import numpy as np
import pytest

from repro import PolarFly, SimConfig, Topology
from repro.fields import GF
from repro.flitsim.simulator import SimResult
from repro.flitsim.sweep import SweepPoint, saturation_load
from repro.utils.graph import Graph


class TestLargerFields:
    """Extension fields beyond the everyday sizes."""

    @pytest.mark.parametrize("q,p,m", ((121, 11, 2), (125, 5, 3), (243, 3, 5)))
    def test_construction(self, q, p, m):
        F = GF(q)
        assert (F.p, F.m) == (p, m)
        nz = np.arange(1, q)
        assert np.all(F.mul(nz, F.inv(nz)) == 1)

    def test_polarfly_q121(self):
        # PF on a large extension field: radix 122.
        pf = PolarFly(121)
        assert pf.num_routers == 121 * 121 + 121 + 1
        assert pf.quadric_mask.sum() == 122
        # Moore efficiency stays above 96%.
        assert pf.moore_bound_efficiency > 0.96

    def test_polarfly_q121_sampled_diameter(self):
        pf = PolarFly(121)
        # Sampled eccentricities must all be exactly 2.
        rng = np.random.default_rng(0)
        for s in rng.integers(0, pf.num_routers, 5):
            assert pf.graph.eccentricity(int(s)) == 2


class TestTopologyBase:
    def test_config_summary(self):
        pf = PolarFly(5, concentration=3)
        row = pf.config_summary()
        assert row["routers"] == 31
        assert row["network_radix"] == 6
        assert row["endpoints"] == 93

    def test_concentration_vector(self):
        g = Graph(3, [(0, 1), (1, 2)])
        topo = Topology("t", g, np.array([2, 0, 1]))
        assert topo.num_endpoints == 3
        assert topo.endpoint_router(0) == 0
        assert topo.endpoint_router(2) == 2
        assert topo.router_endpoints(0).tolist() == [0, 1]
        assert topo.router_endpoints(1).size == 0

    def test_negative_concentration_rejected(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError):
            Topology("t", g, -1)

    def test_wrong_length_concentration_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            Topology("t", g, np.array([1, 2]))

    def test_total_radix(self):
        pf = PolarFly(5, concentration=4)
        assert pf.total_radix == 6 + 4

    def test_repr(self):
        assert "PF(q=5)" in repr(PolarFly(5))


class TestSimResultProperties:
    def test_empty_result_nans(self):
        res = SimResult(0.5, 100, 4)
        assert np.isnan(res.avg_latency)
        assert np.isnan(res.p99_latency)
        assert np.isnan(res.avg_hops)
        assert res.accepted_load == 0.0

    def test_saturated_flag(self):
        res = SimResult(0.8, 100, 10)
        res.ejected_flits = 500  # 0.5 accepted < 0.95*0.8
        assert res.saturated
        res.ejected_flits = 790
        assert not res.saturated

    def test_sim_config_port_capacity(self):
        cfg = SimConfig(num_vcs=4, vc_depth=8)
        assert cfg.port_capacity == 32


class TestSaturationHelper:
    def test_plateau_detection(self):
        pts = [
            SweepPoint(0.2, 10, 12, 0.2, 1.8),
            SweepPoint(0.6, 30, 40, 0.58, 1.8),
            SweepPoint(0.9, 300, 500, 0.6, 1.9),
        ]
        assert saturation_load(pts) == pytest.approx(0.6)

    def test_empty(self):
        assert saturation_load([]) == 0.0
