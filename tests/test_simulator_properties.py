"""Property-based tests on the simulator's conservation invariants.

Whatever the configuration, a drained network must account for every
flit: nothing lost, nothing duplicated, credits fully restored.  These
are the invariants that catch scheduler/credit bugs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PolarFly
from repro.flitsim import (
    NetworkSimulator,
    SimConfig,
    TornadoTraffic,
    UniformTraffic,
)
from repro.routing import (
    CompactValiantRouting,
    MinimalRouting,
    RoutingTables,
    UGALPFRouting,
)

PF = PolarFly(5, concentration=2)
TABLES = RoutingTables(PF)
POLICIES = {
    "min": MinimalRouting(TABLES),
    "cvaliant": CompactValiantRouting(TABLES),
    "ugalpf": UGALPFRouting(TABLES),
}


@given(
    policy_name=st.sampled_from(sorted(POLICIES)),
    load=st.floats(min_value=0.05, max_value=0.6),
    vc_depth=st.integers(min_value=2, max_value=16),
    packet_size=st.integers(min_value=1, max_value=6),
    pattern=st.sampled_from(["uniform", "tornado"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_flit_conservation(policy_name, load, vc_depth, packet_size, pattern, seed):
    policy = POLICIES[policy_name]
    cfg = SimConfig(
        packet_size=packet_size,
        num_vcs=max(4, policy.max_hops - 1),
        vc_depth=vc_depth,
    )
    traffic = (
        UniformTraffic(PF) if pattern == "uniform" else TornadoTraffic(PF)
    )
    sim = NetworkSimulator(PF, policy, traffic, load, config=cfg, seed=seed)
    sim.run(warmup=0, measure=150, drain=3000)

    # 1. Everything drained.
    in_flight = sum(len(q) for r in range(PF.num_routers) for q in sim.voq[r].values())
    src_left = sum(len(q) for r in range(PF.num_routers) for q in sim.src_q[r])
    assert in_flight == 0
    assert src_left == 0

    # 2. All credits restored to capacity.
    for r in range(PF.num_routers):
        for port_credits in sim.credits[r]:
            assert all(c == cfg.vc_depth for c in port_credits)
        assert all(c == cfg.vc_depth for c in sim.inj_credit[r])

    # 3. Latency samples are positive and hops within policy bounds.
    res = sim.result
    for lat in res.latencies:
        assert lat >= packet_size - 1
    for hops in res.hop_counts:
        assert 1 <= hops <= policy.max_hops


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=6, deadline=None)
def test_latency_samples_deterministic_per_seed(seed):
    def one_run():
        sim = NetworkSimulator(
            PF, POLICIES["min"], UniformTraffic(PF), 0.3, seed=seed
        )
        return sim.run(warmup=50, measure=150, drain=400)

    a, b = one_run(), one_run()
    assert np.array_equal(a.latencies, b.latencies)
    assert a.ejected_flits == b.ejected_flits
