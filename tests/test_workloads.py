"""Workload layer: DAG golden shapes, eligibility, trace replay.

The generator tests pin the *structural* contracts (message counts,
dependency chains, root sets) the collectives literature defines —
e.g. ring all-reduce on N ranks is a 2(N-1)-message chain per rank —
and the eligibility tests drive the shared
:class:`~repro.workloads.state.WorkloadState` machine directly, since
both engines delegate every closed-loop semantic decision to it.
"""

import numpy as np
import pytest

from repro.core import PolarFly
from repro.experiments import WORKLOADS
from repro.flitsim.engine import SimConfig
from repro.workloads import (
    Message,
    Workload,
    WorkloadState,
    all_to_all,
    halo_exchange,
    incast,
    load_trace,
    recursive_doubling_allreduce,
    ring_allreduce,
    terminal_routers,
)


@pytest.fixture(scope="module")
def pf(pf7):
    # PolarFly(7) with endpoints: 57 terminal routers.
    return PolarFly(7, concentration=2)


# ----------------------------------------------------------------------
# Generator golden shapes
# ----------------------------------------------------------------------
class TestGeneratorShapes:
    def test_registry_exposes_all_generators(self):
        assert {"allreduce", "alltoall", "halo", "incast", "trace"} <= set(
            WORKLOADS.names()
        )

    def test_ring_allreduce_shape(self, pf):
        n = terminal_routers(pf).size
        wl = ring_allreduce(pf, size=64)
        # 2(N-1) steps, one message per rank per step.
        assert wl.num_messages == 2 * (n - 1) * n
        # Chunked payload: size/N flits each, at least 1.
        assert np.all(wl.size == max(1, 64 // n))
        # Step 0 messages are the only roots.
        assert np.array_equal(wl.roots, np.arange(n))
        # Per-rank chain: message (s, i) depends on (s-1, (i-1) mod n).
        assert np.all(wl.dep_counts[n:] == 1)
        deps = wl.messages()
        for s in range(1, 2 * (n - 1)):
            for i in range(n):
                assert deps[s * n + i].deps == ((s - 1) * n + (i - 1) % n,)

    def test_ring_allreduce_chain_depth(self, pf):
        # The critical path of the DAG is exactly 2(N-1) messages long.
        n = terminal_routers(pf).size
        wl = ring_allreduce(pf, size=64)
        depth = np.zeros(wl.num_messages, dtype=np.int64)
        for mid in range(wl.num_messages):
            span = wl.dependents_indices[
                wl.dependents_indptr[mid] : wl.dependents_indptr[mid + 1]
            ]
            depth[span] = np.maximum(depth[span], depth[mid] + 1)
        assert depth.max() == 2 * (n - 1) - 1

    def test_recursive_doubling_shape(self, pf):
        n = terminal_routers(pf).size  # 57 -> power-of-two subset is 32
        p = 1 << (n.bit_length() - 1)
        wl = recursive_doubling_allreduce(pf, size=16)
        rounds = p.bit_length() - 1
        assert wl.num_messages == p * rounds
        assert np.all(wl.size == 16)
        msgs = wl.messages()
        t = terminal_routers(pf)
        for s in range(rounds):
            for i in range(p):
                msg = msgs[s * p + i]
                assert msg.src == int(t[i])
                assert msg.dst == int(t[i ^ (1 << s)])
                if s:
                    assert msg.deps == ((s - 1) * p + (i ^ (1 << (s - 1))),)

    def test_alltoall_shape(self, pf):
        n = terminal_routers(pf).size
        wl = all_to_all(pf, size=8)
        assert wl.num_messages == n * (n - 1)
        assert np.all(wl.dep_counts == 0)
        # Every ordered terminal pair appears exactly once.
        pairs = set(zip(wl.src.tolist(), wl.dst.tolist()))
        assert len(pairs) == wl.num_messages

    def test_halo_shape(self, pf):
        n = terminal_routers(pf).size  # 57 = 3 x 19 torus
        wl = halo_exchange(pf, size=16, iters=3)
        per_iter = wl.num_messages // 3
        assert wl.num_messages == 3 * per_iter
        # First iteration is dependency-free; later ones are gated.
        assert np.all(wl.dep_counts[:per_iter] == 0)
        assert np.all(wl.dep_counts[per_iter:] > 0)
        # A 3x19 torus rank has 4 distinct neighbors.
        assert per_iter == 4 * n

    def test_incast_shape(self, pf):
        t = terminal_routers(pf)
        wl = incast(pf, size=32, reply=True)
        workers = t.size - 1
        assert wl.num_messages == 2 * workers
        # Replies are barrier-gated on every incast message.
        assert np.all(wl.dep_counts[:workers] == 0)
        assert np.all(wl.dep_counts[workers:] == workers)
        assert np.all(wl.dst[:workers] == int(t[0]))
        assert np.all(wl.src[workers:] == int(t[0]))


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            Workload("bad", [
                Message(0, 1, 4, (1,)),
                Message(1, 0, 4, (0,)),
            ])

    def test_self_send_rejected(self):
        with pytest.raises(ValueError, match="src != dst"):
            Workload("bad", [Message(3, 3, 4)])

    def test_empty_message_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            Workload("bad", [Message(0, 1, 0)])

    def test_dep_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Workload("bad", [Message(0, 1, 4, (7,))])

    def test_non_terminal_router_rejected(self, pf):
        ft_like = Workload("w", [Message(0, 1, 4)])
        conc = np.zeros(pf.num_routers, dtype=np.int64)
        conc[0] = 1

        class FakeTopo:
            num_routers = pf.num_routers
            concentration = conc

        with pytest.raises(ValueError, match="terminal"):
            ft_like.validate_topology(FakeTopo())


# ----------------------------------------------------------------------
# Eligibility state machine
# ----------------------------------------------------------------------
class TestEligibility:
    def _state(self, pf, msgs, packet_size=4):
        wl = Workload("t", msgs)
        return WorkloadState(wl, packet_size, pf)

    def test_roots_ready_at_cycle_zero(self, pf):
        t = terminal_routers(pf)
        a, b, c = int(t[0]), int(t[1]), int(t[2])
        st = self._state(pf, [
            Message(a, b, 4),
            Message(b, c, 4, (0,)),
            Message(a, c, 4),
        ])
        assert st.pop_ready().tolist() == [0, 2]
        assert st.pop_ready().size == 0  # drained

    def test_completion_unblocks_dependents_next_commit(self, pf):
        t = terminal_routers(pf)
        a, b, c = int(t[0]), int(t[1]), int(t[2])
        st = self._state(pf, [
            Message(a, b, 8),          # 2 packets at ps=4
            Message(b, c, 4, (0,)),
            Message(c, a, 4, (0, 1)),
        ])
        st.pop_ready()
        # First packet of message 0 ejects: not complete yet.
        st.note_tails(np.array([0]), 8)
        st.commit(now=10)
        assert st.pop_ready().size == 0
        assert st.completed == 0
        # Second packet completes message 0 -> message 1 eligible.
        st.note_tails(np.array([0]), 8)
        st.commit(now=12)
        assert st.completed == 1
        assert st.complete_cycle[0] == 12
        assert st.pop_ready().tolist() == [1]
        assert st.eligible_cycle[1] == 12
        # Message 2 still waits on message 1.
        st.note_tails(np.array([1]), 4)
        st.commit(now=20)
        assert st.pop_ready().tolist() == [2]
        assert st.done is False
        st.note_tails(np.array([2]), 4)
        st.commit(now=25)
        assert st.done is True
        assert st.flit_hops == 8 + 8 + 4 + 4

    def test_same_cycle_multi_completion_commits_in_id_order(self, pf):
        t = terminal_routers(pf)
        a, b, c = int(t[0]), int(t[1]), int(t[2])
        st = self._state(pf, [
            Message(a, b, 4),
            Message(b, c, 4),
            Message(c, a, 4, (0, 1)),
        ])
        st.pop_ready()
        # Both prerequisites' tails eject in the same cycle, reported
        # out of order; the dependent becomes ready exactly once.
        st.note_tails(np.array([1, 0]), 8)
        st.commit(now=5)
        assert st.pop_ready().tolist() == [2]
        assert st.eligible_cycle[2] == 5

    def test_packet_rounding(self, pf):
        t = terminal_routers(pf)
        st = self._state(pf, [Message(int(t[0]), int(t[1]), 5)], packet_size=4)
        assert st.msg_pkts[0] == 2          # 5 flits -> 2 packets
        assert st.wire_flits == 8

    def test_round_robin_endpoints(self, pf):
        t = terminal_routers(pf)
        a, b = int(t[0]), int(t[1])
        st = self._state(pf, [
            Message(a, b, 4), Message(a, b, 4), Message(a, b, 4),
        ])
        # conc=2: scalar round robin wraps over the router's endpoints.
        assert [st.next_endpoint(a) for _ in range(3)] == [0, 1, 0]
        # Vectorized form continues the same counter.
        assert st.next_endpoints(np.array([a, a, b])).tolist() == [1, 0, 0]


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
class TestTrace:
    def test_round_trip(self, tmp_path, pf):
        t = terminal_routers(pf)
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join([
                '# comment lines are ignored',
                f'{{"id": "a", "src": {t[0]}, "dst": {t[1]}, "size": 6}}',
                f'{{"id": "b", "src": {t[1]}, "dst": {t[2]}, "size": 3, "deps": ["a"]}}',
                f'{{"id": 7, "src": {t[2]}, "dst": {t[0]}, "size": 1, "deps": ["a", "b"]}}',
            ])
        )
        wl = load_trace(str(path), pf)
        assert wl.num_messages == 3
        assert wl.size.tolist() == [6, 3, 1]
        assert wl.dep_counts.tolist() == [0, 1, 2]
        # Also constructible through the registry spec path.
        wl2 = WORKLOADS.create("trace", pf, path=str(path))
        assert wl2.num_messages == 3

    def test_unknown_dep_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1, "src": 0, "dst": 1, "size": 2, "deps": [9]}\n')
        with pytest.raises(ValueError, match="unknown id"):
            load_trace(str(path))

    def test_duplicate_id_rejected(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        path.write_text(
            '{"id": 1, "src": 0, "dst": 1, "size": 2}\n'
            '{"id": 1, "src": 1, "dst": 0, "size": 2}\n'
        )
        with pytest.raises(ValueError, match="duplicate"):
            load_trace(str(path))


# ----------------------------------------------------------------------
# Spec/registry integration
# ----------------------------------------------------------------------
class TestSpecIntegration:
    def test_workload_examples_construct(self, pf):
        for name in WORKLOADS.names():
            if name == "trace":  # needs a file; covered in TestTrace
                continue
            wl = WORKLOADS.create(WORKLOADS.example(name), pf)
            assert wl.num_messages > 0, name

    def test_combo_requires_exactly_one_axis(self):
        from repro.experiments import Combo

        with pytest.raises(ValueError, match="exactly one"):
            Combo("polarfly:conc=2,q=5", "min")
        with pytest.raises(ValueError, match="exactly one"):
            Combo("polarfly:conc=2,q=5", "min", "uniform",
                  workload="alltoall")

    def test_workload_cells_keyed_by_workload(self):
        from repro.experiments import ExperimentSpec

        s1 = ExperimentSpec.workload_grid(
            ["polarfly:conc=2,q=5"], ["min"], ["alltoall:size=8"]
        )
        s2 = ExperimentSpec.workload_grid(
            ["polarfly:conc=2,q=5"], ["min"], ["alltoall:size=4"]
        )
        c1, c2 = s1.cells()[0], s2.cells()[0]
        assert c1["key"] != c2["key"]
        assert c1["seed"] != c2["seed"]
        assert c1["workload"] == "alltoall:size=8"

    def test_workload_cells_ignore_open_loop_window(self):
        # A workload runs to completion: the warmup/measure/drain
        # window must not appear in (or perturb) its cache key.
        from repro.experiments import ExperimentSpec

        s1 = ExperimentSpec.workload_grid(
            ["polarfly:conc=2,q=5"], ["min"], ["alltoall:size=8"]
        )
        s2 = s1.with_(warmup=50, measure=100, drain=10)
        c1, c2 = s1.cells()[0], s2.cells()[0]
        for window in ("warmup", "measure", "drain"):
            assert window not in c1
        assert c1["key"] == c2["key"]

    def test_simconfig_unchanged_for_open_loop(self):
        # Workload mode must not perturb the open-loop config surface.
        cfg = SimConfig()
        assert cfg.packet_size == 4 and cfg.num_vcs == 4
