"""Windowed time-series telemetry: tri-engine bit-identity + analytics.

The golden contract: `run_with_timeseries` / `run_workload_with_timeseries`
close windows at identical measure-relative cycle boundaries with
identical accounting in the reference engine, the numpy flat path, and
the C kernel — per-window flit/link counts, latency percentiles,
occupancy samples, and fault markers all compare equal as whole window
records on PolarFly q=7, in open-loop, faulted, and workload modes.
Collecting a series must not perturb the simulation itself: the
windowed run's SimResult is bit-identical to a plain ``run()``.

On top of the collector: steady-state detection, fault-recovery
extraction, Chrome-trace export, and the ``LinkTelemetry.gini()``
idle-link universe pin.
"""

import contextlib
import json

import numpy as np
import pytest

from repro.core import PolarFly
from repro.experiments import FAULTS, POLICIES, WORKLOADS
from repro.experiments.runner import auto_sim_config
from repro.faults import prepare_fault_policy
from repro.flitsim import (
    FlatSimulator,
    NetworkSimulator,
    run_with_timeseries,
    run_workload_with_timeseries,
)
from repro.flitsim._kernel import load_kernel, numpy_fallback
from repro.flitsim.telemetry import LinkTelemetry
from repro.flitsim.traffic import UniformTraffic
from repro.obs.timeseries import (
    TimeSeriesCollector,
    WindowSeries,
    chrome_trace,
    chrome_trace_from_events,
    fault_recovery,
    steady_state_window,
    write_chrome_trace,
)
from repro.routing.tables import RoutingTables

WINDOW = dict(warmup=120, measure=240, window=64, sample_every=8, drain=80)
FAULT_SPEC = "linkflap:count=3,cycle=150,duration=120,seed=1"


def flat_variants():
    """(label, context factory, expects kernel) for both flat cycle paths."""
    variants = [("flat-numpy", numpy_fallback, False)]
    if load_kernel() is not None:
        variants.append(("flat-kernel", contextlib.nullcontext, True))
    return variants


@pytest.fixture(scope="module")
def pf():
    return PolarFly(7, concentration=2)


@pytest.fixture(scope="module")
def tables(pf):
    return RoutingTables(pf)


def build(pf, tables, cls, policy_spec="min", load=0.5, seed=7,
          fault_spec=None, workload_spec=None):
    policy = POLICIES.create(policy_spec, tables)
    faults = None
    if fault_spec is not None:
        faults = FAULTS.create(fault_spec, pf)
        prepare_fault_policy(policy, faults, pf)
    workload = (
        WORKLOADS.create(workload_spec, pf) if workload_spec else None
    )
    traffic = None if workload_spec else UniformTraffic(pf)
    return cls(
        pf, policy, traffic, 0.0 if workload_spec else load,
        config=auto_sim_config(policy), seed=seed, faults=faults,
        workload=workload,
    )


def assert_results_identical(a, b):
    assert a.injected_flits == b.injected_flits
    assert a.ejected_flits == b.ejected_flits
    assert a.cycles == b.cycles
    assert np.array_equal(np.asarray(a.latencies), np.asarray(b.latencies))
    assert np.array_equal(np.asarray(a.hop_counts), np.asarray(b.hop_counts))


class TestTriEngineGolden:
    """Per-window records bit-identical across all three cycle paths."""

    @pytest.mark.parametrize(
        "policy_spec,load", [("min", 0.5), ("ugal-pf", 0.6)],
        ids=["min", "ugal-pf"],
    )
    def test_open_loop_windows_match(self, pf, tables, policy_spec, load):
        ref = build(pf, tables, NetworkSimulator, policy_spec, load)
        ref_res, ref_series = run_with_timeseries(ref, **WINDOW)
        assert len(ref_series) == 4  # ceil(240 / 64)
        for label, ctx, expects_kernel in flat_variants():
            with ctx():
                flat = build(pf, tables, FlatSimulator, policy_spec, load)
            assert (flat._kernel is not None) == expects_kernel, label
            flat_res, flat_series = run_with_timeseries(flat, **WINDOW)
            assert_results_identical(ref_res, flat_res)
            # Whole window records, not just headline counts: link
            # maps, percentiles, occupancy stats, boundaries.
            assert flat_series.summary() == ref_series.summary(), label
        # Windows tile the measure phase exactly, deltas conserve.
        bounds = [(w["start"], w["end"]) for w in ref_series.windows]
        assert bounds == [(0, 64), (64, 128), (128, 192), (192, 240)]
        assert (
            sum(w["ejected"] for w in ref_series.windows)
            == ref_res.ejected_flits
        )
        assert all(w["link_total"] > 0 for w in ref_series.windows)

    def test_faulted_windows_match_and_carry_markers(self, pf, tables):
        ref = build(pf, tables, NetworkSimulator, "ugal-pf", load=0.4,
                    fault_spec=FAULT_SPEC)
        _, ref_series = run_with_timeseries(ref, **WINDOW)
        assert ref_series.fault_cycles(), "events must land in measure"
        for label, ctx, _ in flat_variants():
            with ctx():
                flat = build(pf, tables, FlatSimulator, "ugal-pf", load=0.4,
                             fault_spec=FAULT_SPEC)
            _, flat_series = run_with_timeseries(flat, **WINDOW)
            assert flat_series.summary() == ref_series.summary(), label
            assert flat._fault.dropped_flits > 0, label
            # The series feeds recovery analytics into the fault result.
            assert flat.fault_result.recovery is not None
            summary = flat.fault_result.summary()
            assert "fault_recovery_cycles" in summary

    def test_workload_windows_match(self, pf, tables):
        wl = "allreduce:algo=ring,size=64"
        ref = build(pf, tables, NetworkSimulator, "ugal-pf",
                    workload_spec=wl)
        ref_res, ref_series = run_workload_with_timeseries(
            ref, window=64, sample_every=8
        )
        assert len(ref_series) >= 2
        for label, ctx, _ in flat_variants():
            with ctx():
                flat = build(pf, tables, FlatSimulator, "ugal-pf",
                             workload_spec=wl)
            flat_res, flat_series = run_workload_with_timeseries(
                flat, window=64, sample_every=8
            )
            assert flat_series.summary() == ref_series.summary(), label
            assert flat_res.cycles == ref_res.cycles
        # The final (possibly partial) window ends at the completion
        # cycle and the deltas cover every ejected flit.
        assert ref_series.windows[-1]["end"] == ref_res.cycles
        assert (
            sum(w["ejected"] for w in ref_series.windows)
            == ref_res.ejected_flits
        )


class TestNonPerturbation:
    """Collecting a series never changes what is simulated."""

    @pytest.mark.parametrize("fault_spec", [None, FAULT_SPEC],
                             ids=["clean", "faulted"])
    def test_windowed_result_equals_plain_run(self, pf, tables, fault_spec):
        plain = build(pf, tables, FlatSimulator, "ugal-pf",
                      fault_spec=fault_spec)
        plain_res = plain.run(warmup=120, measure=240, drain=80)
        windowed = build(pf, tables, FlatSimulator, "ugal-pf",
                         fault_spec=fault_spec)
        win_res, series = run_with_timeseries(windowed, **WINDOW)
        assert_results_identical(plain_res, win_res)
        assert len(series) == 4
        if fault_spec:
            a, b = plain.fault_result.summary(), windowed.fault_result.summary()
            # The windowed run adds recovery keys on top of an otherwise
            # identical summary.
            assert {k: v for k, v in b.items()
                    if not k.startswith("fault_recovery_")} == a
            assert "fault_recovery_cycles" not in a

    def test_rejects_wrong_loop_kind(self, pf, tables):
        open_loop = build(pf, tables, FlatSimulator)
        with pytest.raises(RuntimeError):
            run_workload_with_timeseries(open_loop)
        with pytest.raises(TypeError):
            run_with_timeseries(object())


def make_series(rates, window=10, faults=None):
    """A synthetic WindowSeries with given per-window ejected counts."""
    s = WindowSeries(window=window, top_links=4)
    for i, r in enumerate(rates):
        s.windows.append({
            "index": i, "start": i * window, "end": (i + 1) * window,
            "injected": r, "ejected": r, "dropped": 0,
            "latency": {"count": r, "mean": 10.0, "p50": 10.0,
                        "p99": 20.0, "max": 25.0},
            "occupancy": {"count": 2, "mean": 5.0, "p50": 5.0,
                          "p99": 6.0, "max": 6.0},
            "link_total": r, "top_links": [],
            "faults": list((faults or {}).get(i, [])),
        })
    return s


class TestAnalytics:
    def test_collector_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TimeSeriesCollector(0)

    def test_steady_state_detects_warmup_knee(self):
        # One cold warmup window, then flat: the cumulative mean's
        # relative step drops below 5% from window 5 onward.
        series = make_series([100] + [1000] * 9)
        assert steady_state_window(series, tol=0.05, consecutive=3) == 5
        # A flat series is steady (almost) immediately; a short or
        # never-settling one reports None.
        assert steady_state_window(make_series([50] * 6)) == 1
        assert steady_state_window(make_series([50, 51])) is None
        ramp = make_series([2 ** i for i in range(8)])
        assert steady_state_window(ramp, tol=0.01) is None

    def test_fault_recovery_extracts_baseline_and_recovery(self):
        series = make_series(
            [100, 100, 100, 40, 60, 96, 100],
            faults={3: [31]},
        )
        rec = fault_recovery(series, tol=0.1)
        assert rec["fault_cycle"] == 31
        assert rec["fault_window"] == 3
        assert rec["baseline"] == pytest.approx(10.0)  # per-cycle rate
        assert rec["recovered_window"] == 5  # 96 >= 0.9 * 100
        assert rec["recovery_cycles"] == 60 - 31

    def test_fault_recovery_edge_cases(self):
        assert fault_recovery(make_series([10, 10])) is None  # no faults
        # Fault in window 0: no pre-fault baseline to recover to.
        rec = fault_recovery(make_series([10, 10], faults={0: [2]}))
        assert rec["baseline"] is None and rec["recovery_cycles"] is None
        # Throughput never comes back: recovery is None, not a lie.
        rec = fault_recovery(
            make_series([100, 100, 20, 20, 20], faults={2: [21]})
        )
        assert rec["recovered_window"] is None

    def test_series_round_trips_through_summary(self):
        series = make_series([10, 20, 30], faults={1: [15]})
        clone = WindowSeries.from_summary(
            json.loads(json.dumps(series.summary()))
        )
        assert clone.summary() == series.summary()
        assert clone.values("ejected") == [10, 20, 30]
        assert clone.rates("ejected") == [1.0, 2.0, 3.0]


class TestChromeTrace:
    def test_trace_structure(self, tmp_path):
        series = make_series([10, 20], faults={1: [15]})
        doc = chrome_trace(series, name="test")
        evs = doc["traceEvents"]
        assert evs[0]["ph"] == "M"
        counters = [e for e in evs if e["ph"] == "C"]
        faults = [e for e in evs if e["ph"] == "i"]
        assert {c["name"] for c in counters} == {
            "flits", "latency", "occupancy", "link_flits"
        }
        assert len(faults) == 1 and faults[0]["ts"] == 15
        assert faults[0]["s"] == "g"
        path = write_chrome_trace(series, str(tmp_path / "trace.json"))
        assert json.load(open(path))["traceEvents"]

    def test_trace_from_jsonl_events(self):
        events = [
            {"ev": "ts.window", "key": "abc", "index": 1, "start": 10,
             "end": 20, "ejected": 5, "injected": 5, "dropped": 0,
             "lat_p50": 9.0, "lat_p99": 14.0, "occ_mean": 3.0,
             "link_total": 5, "faults": [12]},
            {"ev": "ts.window", "key": "abc", "index": 0, "start": 0,
             "end": 10, "ejected": 4, "injected": 4, "dropped": 0,
             "lat_p50": 8.0, "lat_p99": 12.0, "occ_mean": 2.0,
             "link_total": 4, "faults": []},
            {"ev": "span", "name": "noise"},
        ]
        doc = chrome_trace_from_events(events)
        evs = doc["traceEvents"]
        flits = [e for e in evs if e.get("name") == "flits"]
        # Out-of-order records are re-ordered by window index.
        assert [e["ts"] for e in flits] == [0, 10]
        assert sum(e.get("ph") == "i" for e in evs) == 1
        assert chrome_trace_from_events([]) == {
            "traceEvents": [], "displayTimeUnit": "ms"
        }


class TestWindowedSweepCells:
    """Windowed cells persist their series; plain cells are untouched."""

    def _spec(self, **overrides):
        from repro.experiments import ExperimentSpec

        kwargs = dict(
            loads=(0.4,), root_seed=7, warmup=100, measure=240, drain=80,
        )
        kwargs.update(overrides)
        return ExperimentSpec.grid(
            ["polarfly:conc=2,q=5"], ["min"], ["uniform"], **kwargs
        )

    def test_windowed_cell_version_and_key(self):
        from repro.experiments.spec import CELL_VERSION, WINDOWED_CELL_VERSION

        plain = self._spec().cells()[0]
        windowed = self._spec(window=60).cells()[0]
        assert plain["version"] == CELL_VERSION
        assert "window" not in plain
        assert windowed["version"] == WINDOWED_CELL_VERSION
        assert windowed["window"] == 60
        # Different keys: enabling windows refreshes the artifact
        # without invalidating the non-windowed fleet.
        assert windowed["key"] != plain["key"]

    def test_series_persists_through_cache(self, tmp_path):
        from repro.experiments import ResultCache, SweepRunner

        spec = self._spec(window=60)
        cache = ResultCache(tmp_path / "cache")
        with SweepRunner(cache=cache, max_workers=1) as runner:
            first = runner.run(spec)
        (stats,) = first.cells.values()
        series = WindowSeries.from_summary(stats["timeseries"])
        assert len(series) == 4  # ceil(240 / 60)
        assert sum(series.values("ejected")) > 0
        assert stats["steady_state_window"] == steady_state_window(series)
        # Replay from cache: bit-identical, including the series.
        with SweepRunner(cache=cache, max_workers=1) as runner:
            second = runner.run(spec)
        assert second.cells == first.cells
        assert second.cache_hits == 1
        # Non-windowed cells never grow the new stats keys.
        with SweepRunner(cache=None, max_workers=1) as runner:
            (plain_stats,) = runner.run(self._spec()).cells.values()
        assert "timeseries" not in plain_stats
        assert "steady_state_window" not in plain_stats


class TestGiniUniverse:
    """Satellite pin: gini() covers the same universe as the histogram."""

    def test_idle_links_count_in_gini(self):
        # 2 hot links out of a 10-link universe: heavily imbalanced.
        tel = LinkTelemetry(
            cycles=100, num_directed_links=10,
            link_flits={(0, 1): 100, (1, 0): 100},
        )
        observed_only = LinkTelemetry(
            cycles=100, num_directed_links=0,
            link_flits={(0, 1): 100, (1, 0): 100},
        )
        assert observed_only.gini() == 0.0  # perfectly even over 2 links
        assert tel.gini() == pytest.approx(0.8)  # 8 idle links included
        # Same universe as the histogram: counts sum to all links.
        counts, _ = tel.utilization_histogram()
        assert counts.sum() == 10

    def test_empty_telemetry_is_balanced(self):
        tel = LinkTelemetry(cycles=100)
        assert tel.gini() == 0.0
        counts, _ = tel.utilization_histogram()
        assert counts.sum() == 1  # the floor universe
