"""Unit tests for spectral expansion analysis."""

import numpy as np
import pytest

from repro.analysis.spectrum import (
    adjacency_spectrum,
    cheeger_lower_bound,
    is_ramanujan_spectrum,
    spectral_expansion,
)
from repro.core import PolarFly
from repro.core.incidence import IncidenceGraph
from repro.topologies import Jellyfish
from repro.utils.graph import Graph


class TestIncidenceSpectrum:
    @pytest.mark.parametrize("q", (3, 5, 7))
    def test_bq_spectrum_is_pm_q1_pm_sqrt_q(self, q):
        # B(q) is the incidence graph of a projective plane: eigenvalues
        # exactly {+-(q+1), +-sqrt(q)}.
        bq = IncidenceGraph(q)
        vals = adjacency_spectrum(bq.graph)
        expected = {q + 1.0, -(q + 1.0), np.sqrt(q), -np.sqrt(q)}
        observed = {round(float(v), 6) for v in vals}
        assert observed == {round(e, 6) for e in expected}

    @pytest.mark.parametrize("q", (3, 5, 7))
    def test_bq_is_ramanujan(self, q):
        assert is_ramanujan_spectrum(IncidenceGraph(q).graph)


class TestPolarFlySpectrum:
    @pytest.mark.parametrize("q", (5, 7, 9))
    def test_second_eigenvalue_near_sqrt_q(self, q):
        pf = PolarFly(q)
        lam2 = spectral_expansion(pf)["lambda2"]
        # ER_q is near-regular; its non-principal spectrum concentrates
        # around +-sqrt(q) (small perturbation from the quadric loops).
        assert lam2 == pytest.approx(np.sqrt(q), rel=0.35)

    def test_large_gap(self):
        pf = PolarFly(9)
        s = spectral_expansion(pf)
        assert s["gap"] > s["lambda1"] * 0.5  # strong expander

    def test_cheeger_bound_consistent_with_bisection(self):
        # The Figure 12 cut must respect the spectral guarantee:
        # cut_edges >= bound * n/2.
        from repro.analysis import bisection_cut

        pf = PolarFly(7)
        bound = cheeger_lower_bound(pf)
        _, cut = bisection_cut(pf)
        assert cut >= bound * (pf.num_routers // 2) * 0.99

    def test_polarfly_expands_like_jellyfish(self):
        # Section IX: PF and random expanders have comparable gaps.
        pf = PolarFly(7)
        jf = Jellyfish(n=57, r=8, seed=0)
        gap_pf = spectral_expansion(pf)["gap"] / spectral_expansion(pf)["lambda1"]
        gap_jf = spectral_expansion(jf)["gap"] / spectral_expansion(jf)["lambda1"]
        assert gap_pf > 0.5 * gap_jf


class TestHelpers:
    def test_spectrum_descending(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        vals = adjacency_spectrum(g)
        assert np.all(np.diff(vals) <= 1e-9)

    def test_cycle_not_great_expander(self):
        g = Graph(12, [(i, (i + 1) % 12) for i in range(12)])
        assert spectral_expansion(g)["gap"] < 0.3

    def test_complete_graph_ramanujan(self):
        g = Graph(6, [(i, j) for i in range(6) for j in range(i + 1, 6)])
        assert is_ramanujan_spectrum(g)
        # K6: (d - lambda2)/2 = (5 - 1)/2 = 2 exactly.
        assert cheeger_lower_bound(g) == pytest.approx(2.0)
