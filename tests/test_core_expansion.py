"""Unit tests for incremental expansion — paper Section VI."""

import numpy as np
import pytest

from repro.core import (
    ClusterLayout,
    PolarFly,
    replicate_nonquadric_clusters,
    replicate_quadrics,
)


class TestQuadricReplication:
    @pytest.mark.parametrize("times", (1, 2, 3))
    def test_size_growth(self, pf7, times):
        ex = replicate_quadrics(pf7, times)
        assert ex.num_routers == pf7.num_routers + times * 8  # q+1 per step

    @pytest.mark.parametrize("times", (1, 2, 3))
    def test_diameter_stays_two(self, pf7, times):
        assert replicate_quadrics(pf7, times).diameter() == 2

    def test_no_rewiring(self, pf7):
        # Every original edge survives expansion.
        ex = replicate_quadrics(pf7, 2)
        original = {tuple(e) for e in pf7.graph.edges().tolist()}
        expanded = {tuple(e) for e in ex.graph.edges().tolist()}
        assert original <= expanded

    def test_degree_deltas(self, pf7):
        # Section VI-A: per replication quadrics +1, V1 +2, V2 +0.
        for times in (1, 2):
            ex = replicate_quadrics(pf7, times)
            deg0 = pf7.graph.degree()
            deg1 = ex.graph.degree()[: pf7.num_routers]
            delta = deg1 - deg0
            assert np.all(delta[pf7.quadrics] == times)
            assert np.all(delta[pf7.v1] == 2 * times)
            assert np.all(delta[pf7.v2] == 0)

    def test_replica_links_to_all_clusters(self, pf7):
        # Section VI-A claim 3: q+1 edges between C0' and every cluster.
        lay = ClusterLayout(pf7)
        ex = replicate_quadrics(pf7, 1, layout=lay)
        replica_ids = np.arange(pf7.num_routers, ex.num_routers)
        for i in range(1, 8):
            members = set(lay.cluster(i).tolist())
            count = sum(
                1
                for rnew in replica_ids
                for v in ex.graph.neighbors(int(rnew))
                if int(v) in members
            )
            assert count == 8  # q + 1

    def test_replica_of_mapping(self, pf7):
        ex = replicate_quadrics(pf7, 1)
        for new_id in range(pf7.num_routers, ex.num_routers):
            orig = int(ex.replica_of[new_id])
            assert pf7.is_quadric(orig)

    def test_growth_fraction(self, pf7):
        ex = replicate_quadrics(pf7, 3)
        assert ex.growth_fraction == pytest.approx(24 / 57)

    def test_invalid_times(self, pf7):
        with pytest.raises(ValueError):
            replicate_quadrics(pf7, 0)


class TestNonQuadricReplication:
    @pytest.mark.parametrize("times", (1, 2, 3))
    def test_size_growth(self, pf7, times):
        ex = replicate_nonquadric_clusters(pf7, times)
        assert ex.num_routers == pf7.num_routers + times * 7  # q per step

    @pytest.mark.parametrize("times", (1, 3))
    def test_diameter_three(self, pf7, times):
        # Section VI-B claim 3.
        assert replicate_nonquadric_clusters(pf7, times).diameter() == 3

    @pytest.mark.parametrize("times", (1, 3))
    def test_aspl_below_two(self, pf7, times):
        ex = replicate_nonquadric_clusters(pf7, times)
        assert ex.average_shortest_path_length() < 2.0

    @pytest.mark.parametrize("times", (1, 2, 3))
    def test_max_degree_increase(self, pf7, times):
        # Section VI-B claim 2: max degree +(n+1).
        ex = replicate_nonquadric_clusters(pf7, times)
        assert ex.graph.degree().max() == pf7.graph.degree().max() + times + 1

    def test_no_rewiring(self, pf7):
        ex = replicate_nonquadric_clusters(pf7, 2)
        original = {tuple(e) for e in pf7.graph.edges().tolist()}
        expanded = {tuple(e) for e in ex.graph.edges().tolist()}
        assert original <= expanded

    def test_replica_cluster_is_fan_copy(self, pf7):
        # The replica preserves the intra-cluster (fan) edge pattern.
        lay = ClusterLayout(pf7)
        ex = replicate_nonquadric_clusters(pf7, 1, layout=lay)
        members = [int(v) for v in lay.cluster(1)]
        replica = {v: pf7.num_routers + i for i, v in enumerate(members)}
        for a in members:
            for b in members:
                if a < b:
                    assert pf7.graph.has_edge(a, b) == ex.graph.has_edge(
                        replica[a], replica[b]
                    )

    def test_degree_distribution_near_uniform(self, pf7):
        # Table IV: "uniform" degree distribution — spread stays tight.
        ex = replicate_nonquadric_clusters(pf7, 3)
        deg = ex.graph.degree()
        assert deg.max() - deg.min() <= 5

    def test_more_scalable_than_quadric(self, pf7):
        # Table IV: scalability = nodes added per unit increase in the
        # maximum network radix — (q+1)/2 for quadric replication vs ~q
        # for non-quadric replication.
        times = 3
        exq = replicate_quadrics(pf7, times)
        exn = replicate_nonquadric_clusters(pf7, times)
        base_deg = pf7.graph.degree().max()
        scal_q = (exq.num_routers - pf7.num_routers) / (
            exq.graph.degree().max() - base_deg
        )
        scal_n = (exn.num_routers - pf7.num_routers) / (
            exn.graph.degree().max() - base_deg
        )
        assert scal_q == pytest.approx((7 + 1) / 2)
        assert scal_n > scal_q

    def test_times_bounded_by_q(self, pf7):
        with pytest.raises(ValueError):
            replicate_nonquadric_clusters(pf7, 8)

    def test_invalid_times(self, pf7):
        with pytest.raises(ValueError):
            replicate_nonquadric_clusters(pf7, 0)


class TestExpandedTopologyMetadata:
    def test_names(self, pf7):
        assert "quadric" in replicate_quadrics(pf7, 1).name
        assert "nonquadric" in replicate_nonquadric_clusters(pf7, 1).name

    def test_base_reference(self, pf7):
        assert replicate_quadrics(pf7, 1).base is pf7

    def test_larger_q(self):
        pf = PolarFly(11)
        ex = replicate_nonquadric_clusters(pf, 4)
        assert ex.num_routers == 133 + 44
        assert ex.diameter() == 3
