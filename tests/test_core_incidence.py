"""Unit tests for the B(q) incidence graph and polarity quotient."""

import numpy as np
import pytest

from repro.core import PolarFly
from repro.core.incidence import IncidenceGraph, polarity_quotient


@pytest.fixture(scope="module", params=(3, 5, 7, 9))
def bq(request):
    return IncidenceGraph(request.param)


class TestIncidenceGraph:
    def test_order(self, bq):
        n = bq.q**2 + bq.q + 1
        assert bq.graph.n == 2 * n

    def test_regular_degree(self, bq):
        # Each point lies on q+1 lines, each line holds q+1 points.
        assert np.all(bq.graph.degree() == bq.q + 1)

    def test_bipartite(self, bq):
        n = bq.n_points
        for u, v in bq.graph.edges():
            assert bq.is_point(int(u)) != bq.is_point(int(v))

    def test_diameter_three(self, bq):
        assert bq.graph.diameter() == 3

    def test_dual_involution(self, bq):
        for v in (0, 3, bq.n_points, bq.n_points + 5):
            assert bq.dual(bq.dual(v)) == v

    def test_incidence_symmetry(self, bq):
        # [x] lies on [a]^perp iff [a] lies on [x]^perp.
        for u, v in bq.graph.edges()[:100]:
            u, v = int(u), int(v)
            assert bq.graph.has_edge(bq.dual(u), bq.dual(v))

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            IncidenceGraph(6)


class TestPolarityQuotient:
    def test_quotient_equals_dot_product_construction(self, bq):
        # Section IV-E: gluing points to their dual lines in B(q) yields
        # the very same graph as the dot-product ER_q (same vertex order,
        # same edge set).
        er = polarity_quotient(bq)
        pf = PolarFly(bq.q)
        assert er.n == pf.num_routers
        assert np.array_equal(er.edges(), pf.graph.edges())

    def test_quotient_diameter_two(self, bq):
        assert polarity_quotient(bq).diameter() == 2

    def test_quadrics_lie_on_own_dual(self, bq):
        # A point is quadric iff it is incident with its own dual line —
        # exactly the vertices whose gluing creates a (dropped) loop.
        pf = PolarFly(bq.q)
        for v in range(bq.n_points):
            on_own_dual = bq.graph.has_edge(v, bq.dual(v))
            assert on_own_dual == pf.is_quadric(v)
