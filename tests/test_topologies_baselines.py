"""Unit tests for Dragonfly, fat tree, Jellyfish, HyperX and Moore graphs."""

import numpy as np
import pytest

from repro.topologies import (
    Dragonfly,
    FatTree,
    HoffmanSingletonTopology,
    HyperX,
    Jellyfish,
    PetersenTopology,
    balanced_dragonfly,
    hyperx_order,
    hyperx_radix,
    moore_bound,
    moore_bound_diameter2,
    random_regular_graph,
)


class TestDragonfly:
    def test_group_count(self):
        df = Dragonfly(a=4, h=2)
        assert df.num_groups == 9
        assert df.num_routers == 36

    def test_radix(self):
        df = Dragonfly(a=4, h=2, p=2)
        assert df.network_radix == 5  # a-1+h
        assert df.total_radix == 7

    def test_diameter_three(self):
        assert Dragonfly(a=4, h=2).diameter() == 3

    def test_one_global_link_per_group_pair(self):
        df = Dragonfly(a=3, h=2)
        g, a = df.num_groups, df.a
        counts = np.zeros((g, g), dtype=int)
        for u, v in df.graph.edges():
            gu, gv = df.router_group(int(u)), df.router_group(int(v))
            if gu != gv:
                counts[gu, gv] += 1
                counts[gv, gu] += 1
        off = counts[~np.eye(g, dtype=bool)]
        assert np.all(off == 1)

    def test_intra_group_complete(self):
        df = Dragonfly(a=4, h=2)
        for grp in range(df.num_groups):
            for i in range(4):
                for j in range(i + 1, 4):
                    assert df.graph.has_edge(df.router_id(grp, i), df.router_id(grp, j))

    def test_global_degree_balanced(self):
        # Every router owns exactly h global links.
        df = Dragonfly(a=4, h=2)
        deg = df.graph.degree()
        assert np.all(deg == 3 + 2)

    def test_table_v_configs(self):
        df1 = Dragonfly(a=12, h=6, p=6)
        assert (df1.num_routers, df1.network_radix) == (876, 17)
        df2 = Dragonfly(a=6, h=27, p=10)
        assert (df2.num_routers, df2.network_radix) == (978, 32)

    def test_balanced_helper(self):
        df = balanced_dragonfly(3)
        assert (df.a, df.h, df.p) == (6, 3, 3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Dragonfly(a=0, h=1)


class TestFatTree:
    def test_sizes(self):
        ft = FatTree(k=4, n=3)
        assert ft.num_routers == 48
        assert ft.num_endpoints == 64
        assert ft.total_radix == 8

    def test_paper_config(self):
        ft = FatTree(k=18, n=3)
        assert ft.num_routers == 972  # Table V
        assert ft.total_radix == 36

    def test_level_degrees(self):
        ft = FatTree(k=4, n=3)
        deg = ft.graph.degree()
        levels = np.array([ft.switch_level(s) for s in range(ft.num_routers)])
        assert np.all(deg[levels == 0] == 4)   # + 4 endpoints = radix 8
        assert np.all(deg[levels == 1] == 8)
        assert np.all(deg[levels == 2] == 4)   # top level: down only

    def test_connected(self):
        assert FatTree(k=3, n=3).is_connected()

    def test_switch_id_roundtrip(self):
        ft = FatTree(k=3, n=3)
        for s in range(ft.num_routers):
            level, addr = ft.switch_tuple(s)
            assert ft.switch_id(level, addr) == s

    def test_endpoints_only_at_edge(self):
        ft = FatTree(k=4, n=3)
        for s in range(ft.num_routers):
            expected = 4 if ft.switch_level(s) == 0 else 0
            assert ft.concentration[s] == expected

    def test_nca_levels(self):
        ft = FatTree(k=4, n=3)
        assert ft.nca_level(0, 0) == 0
        # Switches sharing the first digit meet below the top.
        _, a0 = ft.switch_tuple(0)
        for s in range(1, ft.switches_per_level):
            _, a = ft.switch_tuple(s)
            lvl = ft.nca_level(0, s)
            if a[0] == a0[0]:
                assert lvl <= 1
            else:
                assert lvl == 2

    def test_nca_distance_consistent(self):
        # Up-down distance = 2 * nca_level.
        ft = FatTree(k=3, n=3)
        rng = np.random.default_rng(0)
        for _ in range(30):
            s, d = map(int, rng.integers(0, ft.switches_per_level, 2))
            dist = ft.graph.bfs_distances(s)[d]
            assert dist == 2 * ft.nca_level(s, d)

    def test_invalid(self):
        with pytest.raises(ValueError):
            FatTree(k=1, n=3)


class TestJellyfish:
    def test_regular_and_connected(self):
        jf = Jellyfish(n=40, r=5, p=2, seed=3)
        assert np.all(jf.graph.degree() == 5)
        assert jf.is_connected()
        assert jf.num_endpoints == 80

    def test_deterministic_under_seed(self):
        a = Jellyfish(n=30, r=4, seed=11)
        b = Jellyfish(n=30, r=4, seed=11)
        assert np.array_equal(a.graph.edges(), b.graph.edges())

    def test_different_seeds_differ(self):
        a = Jellyfish(n=30, r=4, seed=1)
        b = Jellyfish(n=30, r=4, seed=2)
        assert not np.array_equal(a.graph.edges(), b.graph.edges())

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_random_regular_rejects_degree_too_big(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4)

    @pytest.mark.parametrize("n,r", ((20, 3), (25, 4), (50, 7)))
    def test_various_sizes(self, n, r):
        g = random_regular_graph(n, r, rng=0)
        assert np.all(np.diff(g.indptr) == r)


class TestHyperX:
    def test_hamming_structure(self):
        hx = HyperX(L=2, S=4)
        assert hx.num_routers == 16
        assert np.all(hx.graph.degree() == 6)
        assert hx.diameter() == 2

    def test_3d(self):
        hx = HyperX(L=3, S=3)
        assert hx.num_routers == 27
        assert np.all(hx.graph.degree() == 6)
        assert hx.diameter() == 3

    def test_coords_roundtrip(self):
        hx = HyperX(L=2, S=5)
        for r in range(hx.num_routers):
            assert hx.router_id(hx.router_coords(r)) == r

    def test_adjacent_iff_differ_one_coord(self):
        hx = HyperX(L=2, S=3)
        for u in range(9):
            for v in range(u + 1, 9):
                cu, cv = hx.router_coords(u), hx.router_coords(v)
                differ = sum(a != b for a, b in zip(cu, cv))
                assert hx.graph.has_edge(u, v) == (differ == 1)

    def test_helpers(self):
        assert hyperx_order(2, 6) == 36
        assert hyperx_radix(2, 6) == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            HyperX(L=0, S=3)


class TestMoore:
    def test_moore_bound_diameter2(self):
        assert moore_bound_diameter2(3) == 10
        assert moore_bound_diameter2(7) == 50
        assert moore_bound(3, 2) == 10
        assert moore_bound(7, 2) == 50

    def test_moore_bound_diameter3(self):
        assert moore_bound(3, 3) == 22

    def test_moore_bound_degree_one(self):
        assert moore_bound(1, 5) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            moore_bound(0, 2)

    def test_petersen_meets_bound(self):
        pet = PetersenTopology()
        assert pet.num_routers == moore_bound_diameter2(3)
        assert np.all(pet.graph.degree() == 3)
        assert pet.diameter() == 2
        # girth 5: no triangles, no quadrangles
        assert pet.graph.triangles() == []
        assert pet.graph.count_4cycles() == 0

    def test_hoffman_singleton_meets_bound(self):
        hs = HoffmanSingletonTopology()
        assert hs.num_routers == moore_bound_diameter2(7)
        assert np.all(hs.graph.degree() == 7)
        assert hs.diameter() == 2
        assert hs.graph.triangles() == []
        assert hs.graph.count_4cycles() == 0
