"""Flat-engine link telemetry bit-matches the reference oracle.

`run_with_telemetry` instruments both engines at the same accounting
point (a link grant counts before any fault doom filtering, during the
measure window only), so per-link flit counts and sampled occupancies
must agree bit-exactly on PolarFly q=7 — on the pure-numpy cycle path
*and* the C kernel path — and attaching the counters must not perturb
the simulated results themselves.
"""

import contextlib

import numpy as np
import pytest

from repro.core import PolarFly
from repro.experiments import FAULTS, POLICIES
from repro.experiments.runner import auto_sim_config
from repro.faults import prepare_fault_policy
from repro.flitsim import (
    FlatSimulator,
    NetworkSimulator,
    run_with_telemetry,
)
from repro.flitsim._kernel import load_kernel, numpy_fallback
from repro.flitsim.traffic import TornadoTraffic, UniformTraffic
from repro.routing.tables import RoutingTables

WINDOW = dict(warmup=120, measure=240, sample_every=8)


def flat_variants():
    """(label, context factory, expects kernel) for both flat cycle paths."""
    variants = [("flat-numpy", numpy_fallback, False)]
    if load_kernel() is not None:
        variants.append(("flat-kernel", contextlib.nullcontext, True))
    return variants


@pytest.fixture(scope="module")
def pf():
    return PolarFly(7, concentration=2)


@pytest.fixture(scope="module")
def tables(pf):
    return RoutingTables(pf)


def build(pf, tables, cls, policy_spec="min", traffic_cls=UniformTraffic,
          load=0.5, seed=7, fault_spec=None):
    policy = POLICIES.create(policy_spec, tables)
    faults = None
    if fault_spec is not None:
        faults = FAULTS.create(fault_spec, pf)
        prepare_fault_policy(policy, faults, pf)
    return cls(
        pf, policy, traffic_cls(pf), load,
        config=auto_sim_config(policy), seed=seed, faults=faults,
    )


def assert_telemetry_identical(ref_tel, flat_tel):
    assert flat_tel.cycles == ref_tel.cycles
    assert flat_tel.num_directed_links == ref_tel.num_directed_links
    assert flat_tel.link_flits == ref_tel.link_flits
    ref_occ = {k: float(v) for k, v in ref_tel.mean_occupancy.items()}
    flat_occ = {k: float(v) for k, v in flat_tel.mean_occupancy.items()}
    assert flat_occ == ref_occ


def assert_results_identical(a, b):
    assert a.injected_flits == b.injected_flits
    assert a.ejected_flits == b.ejected_flits
    assert a.cycles == b.cycles
    assert np.array_equal(np.asarray(a.latencies), np.asarray(b.latencies))
    assert np.array_equal(np.asarray(a.hop_counts), np.asarray(b.hop_counts))


@pytest.mark.parametrize(
    "policy_spec,traffic_cls,load",
    [
        ("min", UniformTraffic, 0.5),
        ("min", TornadoTraffic, 0.8),
        ("ugal-pf", UniformTraffic, 0.6),
    ],
    ids=["min-uniform", "min-tornado", "ugalpf-uniform"],
)
def test_flat_telemetry_bit_matches_reference(pf, tables, policy_spec,
                                              traffic_cls, load):
    ref_sim = build(pf, tables, NetworkSimulator, policy_spec, traffic_cls, load)
    ref_res, ref_tel = run_with_telemetry(ref_sim, **WINDOW)
    for label, ctx, expects_kernel in flat_variants():
        with ctx():
            flat_sim = build(
                pf, tables, FlatSimulator, policy_spec, traffic_cls, load
            )
        assert (flat_sim._kernel is not None) == expects_kernel, label
        flat_res, flat_tel = run_with_telemetry(flat_sim, **WINDOW)
        assert_results_identical(ref_res, flat_res)
        assert_telemetry_identical(ref_tel, flat_tel)
        assert flat_tel.link_flits, label  # a loaded run carries flits


def test_faulted_telemetry_counts_before_drop(pf, tables):
    # Doomed flits (downed link ahead) still count at the grant point in
    # both engines — the counting-before-doom-filter placement contract.
    fault = "linkflap:count=3,cycle=150,duration=120,seed=1"
    ref_sim = build(pf, tables, NetworkSimulator, "ugal-pf", load=0.4,
                    fault_spec=fault)
    _, ref_tel = run_with_telemetry(ref_sim, **WINDOW)
    for label, ctx, _ in flat_variants():
        with ctx():
            flat_sim = build(pf, tables, FlatSimulator, "ugal-pf", load=0.4,
                             fault_spec=fault)
        _, flat_tel = run_with_telemetry(flat_sim, **WINDOW)
        assert_telemetry_identical(ref_tel, flat_tel)
        assert flat_sim._fault.dropped_flits > 0, label  # faults actually hit


def test_attach_does_not_perturb_results(pf, tables):
    plain = build(pf, tables, FlatSimulator)
    plain_res = plain.run(warmup=120, measure=240, drain=80)

    instrumented = build(pf, tables, FlatSimulator)
    instrumented.attach_link_telemetry()
    inst_res = instrumented.run(warmup=120, measure=240, drain=80)
    assert_results_identical(plain_res, inst_res)
    # run() opens the measure window itself, so the attached counters do
    # tick — what they must never do is change the simulation.
    assert int(instrumented._ltel.sum()) > 0


def test_run_with_telemetry_finalizes_flat_result(pf, tables):
    sim = build(pf, tables, FlatSimulator)
    res, tel = run_with_telemetry(sim, **WINDOW)
    assert sim.result is not None
    assert res.cycles == WINDOW["measure"] == tel.cycles
    counts, _ = tel.utilization_histogram()
    assert counts.sum() == tel.num_directed_links  # idle links included


def test_rejects_unknown_engine():
    with pytest.raises(TypeError):
        run_with_telemetry(object())
