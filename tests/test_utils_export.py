"""Unit tests for topology export formats."""

import json

import pytest

from repro.core import ClusterLayout, PolarFly
from repro.utils.export import cabling_manifest, to_dot, to_edge_list, to_json


@pytest.fixture(scope="module")
def pf():
    return PolarFly(5)


class TestEdgeList:
    def test_line_count(self, pf):
        lines = to_edge_list(pf).splitlines()
        assert len(lines) == pf.num_links

    def test_parseable_and_valid(self, pf):
        for line in to_edge_list(pf).splitlines():
            u, v = map(int, line.split())
            assert pf.graph.has_edge(u, v)


class TestDot:
    def test_structure(self, pf):
        dot = to_dot(pf)
        assert dot.startswith("graph ")
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == pf.num_links

    def test_custom_name(self, pf):
        assert 'graph "mynet"' in to_dot(pf, name="mynet")


class TestJson:
    def test_roundtrip(self, pf):
        doc = json.loads(to_json(pf))
        assert doc["num_routers"] == pf.num_routers
        assert doc["network_radix"] == pf.network_radix
        assert len(doc["edges"]) == pf.num_links
        assert len(doc["concentration"]) == pf.num_routers


class TestCablingManifest:
    def test_complete_cover(self, pf):
        lay = ClusterLayout(pf)
        manifest = cabling_manifest(lay)
        intra = sum(len(r["intra_links"]) for r in manifest["racks"].values())
        inter = sum(len(b) for b in manifest["bundles"].values())
        assert intra + inter == pf.num_links

    def test_bundle_sizes_match_paper(self, pf):
        # q+1 links C0<->Ci, q-2 links Ci<->Cj.
        q = pf.q
        lay = ClusterLayout(pf)
        manifest = cabling_manifest(lay)
        for key, bundle in manifest["bundles"].items():
            i, j = map(int, key.split("-"))
            expected = q + 1 if i == 0 else q - 2
            assert len(bundle) == expected, key

    def test_rack_membership(self, pf):
        lay = ClusterLayout(pf)
        manifest = cabling_manifest(lay)
        all_members = sorted(
            v for r in manifest["racks"].values() for v in r["members"]
        )
        assert all_members == list(range(pf.num_routers))


class TestJsonArtifacts:
    """Hardened artifact I/O: misses instead of crashes, checksums."""

    def test_truncated_artifact_is_none(self, tmp_path):
        from repro.utils.export import read_json_artifact, write_json_artifact

        path = write_json_artifact(tmp_path / "a.json", {"x": 1})
        data = path.read_text()
        path.write_text(data[: len(data) // 2])
        assert read_json_artifact(path) is None

    def test_missing_and_binary_are_none(self, tmp_path):
        from repro.utils.export import read_json_artifact

        assert read_json_artifact(tmp_path / "nope.json") is None
        bad = tmp_path / "junk.json"
        bad.write_bytes(b"\xff\xfe\x00garbage")
        assert read_json_artifact(bad) is None

    def test_checksum_roundtrip_strips_key(self, tmp_path):
        import json

        from repro.utils.export import (
            CHECKSUM_KEY,
            read_json_artifact,
            write_json_artifact,
        )

        doc = {"result": {"avg_latency": 9.577777777777778, "nested": [1, 2]}}
        path = write_json_artifact(tmp_path / "a.json", doc, checksum=True)
        assert CHECKSUM_KEY in json.loads(path.read_text())
        assert read_json_artifact(path) == doc  # checksum verified + stripped

    def test_checksum_mismatch_is_none(self, tmp_path):
        import json

        from repro.utils.export import read_json_artifact, write_json_artifact

        path = write_json_artifact(tmp_path / "a.json", {"x": 1}, checksum=True)
        doc = json.loads(path.read_text())
        doc["x"] = 2  # stale checksum kept
        path.write_text(json.dumps(doc))
        assert read_json_artifact(path) is None

    def test_legacy_artifact_without_checksum_reads(self, tmp_path):
        from repro.utils.export import read_json_artifact, write_json_artifact

        path = write_json_artifact(tmp_path / "a.json", {"x": 1})
        assert read_json_artifact(path) == {"x": 1}
