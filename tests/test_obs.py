"""The observability layer: registry, sink, sweeps, chaos, and report.

Covers the :mod:`repro.obs` primitives (counters, spans, per-pid JSONL
shards with merge-on-read), the `SweepRunner` event wiring (lifecycle
events across worker processes, the `REPRO_SWEEP_PROGRESS` heartbeat),
chaos runs producing the expected retry/restart events, and the
``tools/obsreport.py`` renderer.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.experiments import ExperimentSpec, ResultCache, SweepRunner
from repro.obs.metrics import Registry

FAST = dict(warmup=80, measure=160, drain=40)

TOOLS = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")


def small_spec(**overrides):
    kwargs = dict(loads=(0.2, 0.4, 0.6, 0.8), root_seed=7, **FAST)
    kwargs.update(overrides)
    return ExperimentSpec.grid(
        ["polarfly:conc=2,q=5"], ["min"], ["uniform"], **kwargs
    )


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = Registry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        for v in (1.0, 3.0, 2.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 2.5}
        assert snap["histograms"]["h"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0
        }
        assert reg.histogram("h").mean() == 2.0
        reg.reset()
        assert reg.snapshot()["counters"] == {}


class TestSink:
    def test_disabled_is_inert(self, monkeypatch, tmp_path):
        monkeypatch.delenv(obs.OBS_ENV, raising=False)
        assert not obs.enabled()
        obs.emit("anything", x=1)
        assert list(tmp_path.iterdir()) == []
        # Disabled spans are one shared no-op object.
        assert obs.span("a") is obs.span("b")

    def test_emit_and_read_round_trip(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path}")
        assert obs.enabled() and obs.obs_dir() == str(tmp_path)
        obs.emit("first", a=1)
        obs.emit("second", b="two")
        with obs.span("timed", tag="x"):
            pass
        evs = obs.read_events(tmp_path)
        assert [e["ev"] for e in evs] == ["first", "second", "span"]
        assert evs[0]["a"] == 1 and evs[0]["pid"] == os.getpid()
        assert evs[1]["b"] == "two"
        span = evs[2]
        assert span["name"] == "timed" and span["ok"] and span["secs"] >= 0
        # seq is per-process monotonic; ties in ts stay ordered.
        assert evs[0]["seq"] < evs[1]["seq"] < evs[2]["seq"]

    def test_corrupt_lines_skipped(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path}")
        obs.emit("good", n=1)
        # A killed worker's shard ends in a torn line; the good lines
        # before the tear still merge.
        (tmp_path / "events-99999.jsonl").write_text(
            '{"ev": "good", "ts": 0.0, "pid": 99999, "seq": 0, "n": 0}\n'
            '{"ev": "trunca'
        )
        obs.emit("good", n=2)
        evs = obs.read_events(tmp_path)
        assert sorted(e["n"] for e in evs) == [0, 1, 2]

    def test_torn_line_mid_file_skipped(self, tmp_path):
        # A tear does not have to be at the tail (e.g. a partial flush
        # followed by more appends): lines after the tear still parse.
        (tmp_path / "events-1.jsonl").write_text(
            '{"ev": "a", "ts": 1.0, "pid": 1, "seq": 0}\n'
            '{"ev": "torn", "ts": 2.0, "pi\n'
            "not json at all\n"
            "\n"
            '{"ev": "b", "ts": 3.0, "pid": 1, "seq": 2}\n'
        )
        assert [e["ev"] for e in obs.read_events(tmp_path)] == ["a", "b"]

    def test_out_of_order_shards_merge_on_ts_pid_seq(self, tmp_path):
        # Two workers' shards, each internally ordered but interleaved
        # in wall time, with a duplicate timestamp across processes:
        # the merge is total-ordered by (ts, pid, seq).
        (tmp_path / "events-20.jsonl").write_text(
            '{"ev": "w2-first", "ts": 1.5, "pid": 20, "seq": 0}\n'
            '{"ev": "w2-dup", "ts": 2.0, "pid": 20, "seq": 1}\n'
        )
        (tmp_path / "events-10.jsonl").write_text(
            '{"ev": "w1-first", "ts": 1.0, "pid": 10, "seq": 0}\n'
            '{"ev": "w1-dup", "ts": 2.0, "pid": 10, "seq": 1}\n'
            '{"ev": "w1-dup2", "ts": 2.0, "pid": 10, "seq": 2}\n'
            '{"ev": "w1-last", "ts": 3.0, "pid": 10, "seq": 3}\n'
        )
        assert [e["ev"] for e in obs.read_events(tmp_path)] == [
            "w1-first",   # ts 1.0
            "w2-first",   # ts 1.5
            "w1-dup",     # ts 2.0, pid 10, seq 1
            "w1-dup2",    # ts 2.0, pid 10, seq 2
            "w2-dup",     # ts 2.0, pid 20
            "w1-last",    # ts 3.0
        ]

    def test_sampling(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path},sample=3")
        for _ in range(9):
            obs.emit("sampled.ev", sampled=True)
        for _ in range(3):
            obs.emit("always.ev")
        evs = obs.read_events(tmp_path)
        assert sum(e["ev"] == "sampled.ev" for e in evs) == 3
        assert sum(e["ev"] == "always.ev" for e in evs) == 3

    def test_env_change_reconfigures(self, monkeypatch, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        monkeypatch.setenv(obs.OBS_ENV, f"dir={a}")
        obs.emit("one")
        monkeypatch.setenv(obs.OBS_ENV, f"dir={b}")
        obs.emit("two")
        assert [e["ev"] for e in obs.read_events(a)] == ["one"]
        assert [e["ev"] for e in obs.read_events(b)] == ["two"]


class TestCacheCounters:
    def test_hit_miss_counters(self, monkeypatch, tmp_path):
        monkeypatch.delenv(obs.OBS_ENV, raising=False)
        obs.REGISTRY.reset()
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("ab" + "0" * 62) is None
        cache.put("ab" + "0" * 62, {"cell": {}, "result": {}})
        assert cache.get("ab" + "0" * 62) is not None
        snap = obs.REGISTRY.snapshot()["counters"]
        assert snap["cache.misses"] == 1
        assert snap["cache.hits"] == 1

    def test_corrupt_counter_and_event(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path / 'obs'}")
        obs.REGISTRY.reset()
        cache = ResultCache(tmp_path / "cache")
        key = "cd" + "0" * 62
        path = cache.put(key, {"cell": {}, "result": {}})
        path.write_text('{"torn')
        assert cache.get(key) is None  # quarantined, reported as miss
        snap = obs.REGISTRY.snapshot()["counters"]
        assert snap["cache.corrupt"] == 1
        assert snap["cache.quarantined"] == 1
        evs = obs.read_events(tmp_path / "obs")
        assert any(
            e["ev"] == "cache.corrupt" and e["key"] == key for e in evs
        )


class TestSweepEvents:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_lifecycle_events_and_shards(self, monkeypatch, tmp_path, workers):
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path}")
        with SweepRunner(cache=None, max_workers=workers) as runner:
            result = runner.run(small_spec())
        assert len(result.cells) == 4
        evs = obs.read_events(tmp_path)
        names = [e["ev"] for e in evs]
        assert names[0] == "sweep.start"
        assert "sweep.end" in names
        assert "counters" in names
        end = next(e for e in evs if e["ev"] == "sweep.end")
        assert end["done"] == 4 and end["failed"] == 0
        cell_spans = [
            e for e in evs if e["ev"] == "span" and e["name"] == "sweep.cell"
        ]
        assert len(cell_spans) == 4
        tele = [e for e in evs if e["ev"] == "cell.telemetry"]
        assert len(tele) == 4
        assert all(t["top_links"] for t in tele)
        if workers > 1:
            # Parallel path: chunk dispatches + scheduler-side chunk
            # spans, and at least one worker pid beyond the parent's.
            assert any(e["ev"] == "chunk.dispatch" for e in evs)
            assert any(
                e["ev"] == "span" and e["name"] == "sweep.chunk" for e in evs
            )
            assert len({e["pid"] for e in evs}) > 1

    def test_events_do_not_change_results(self, monkeypatch, tmp_path):
        monkeypatch.delenv(obs.OBS_ENV, raising=False)
        clean = SweepRunner(cache=None, max_workers=1).run(small_spec())
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path}")
        observed = SweepRunner(cache=None, max_workers=1).run(small_spec())
        assert clean.cells == observed.cells

    def test_cache_hit_ratio_in_progress(self, monkeypatch, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache, max_workers=1).run(small_spec())
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path / 'obs'}")
        SweepRunner(cache=cache, max_workers=1).run(small_spec())
        evs = obs.read_events(tmp_path / "obs")
        start = next(e for e in evs if e["ev"] == "sweep.start")
        assert start["cached"] == 4 and start["missing"] == 0


class TestHeartbeat:
    def test_progress_line_without_obs(self, monkeypatch, capfd):
        monkeypatch.delenv(obs.OBS_ENV, raising=False)
        monkeypatch.setenv("REPRO_SWEEP_PROGRESS", "0.05")
        SweepRunner(cache=None, max_workers=1).run(small_spec())
        err = capfd.readouterr().err
        assert "[sweep]" in err
        assert "4/4 cells" in err  # the final summary line

    def test_progress_event_carries_window_rate(self, monkeypatch, tmp_path,
                                                 capfd):
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path}")
        monkeypatch.setenv("REPRO_SWEEP_PROGRESS", "0.05")
        SweepRunner(cache=None, max_workers=1).run(small_spec())
        beats = [
            e for e in obs.read_events(tmp_path) if e["ev"] == "sweep.progress"
        ]
        assert beats  # final() always emits a closing beat
        for b in beats:
            assert "cells_per_s" in b and "eta_s" in b
            assert b["cells_per_s"] >= 0
        # The closing beat has completed cells, so the sliding-window
        # rate is strictly positive and the printed line shows it.
        assert beats[-1]["done"] == 4
        assert beats[-1]["cells_per_s"] > 0
        assert "rate" in capfd.readouterr().err

    def test_no_heartbeat_by_default(self, monkeypatch, capfd):
        monkeypatch.delenv(obs.OBS_ENV, raising=False)
        monkeypatch.delenv("REPRO_SWEEP_PROGRESS", raising=False)
        SweepRunner(cache=None, max_workers=1).run(small_spec())
        assert "[sweep]" not in capfd.readouterr().err


class TestChaosEvents:
    def test_worker_kill_emits_retry_and_restart(self, monkeypatch, tmp_path):
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path / 'obs'}")
        monkeypatch.setenv("REPRO_CHAOS", f"kill=1,dir={tmp_path / 'chaos'}")
        with SweepRunner(cache=None, max_workers=2) as runner:
            result = runner.run(small_spec())
        assert result.pool_restarts >= 1 and result.retries >= 1
        evs = obs.read_events(tmp_path / "obs")
        names = [e["ev"] for e in evs]
        assert names.count("pool.restart") == result.pool_restarts
        assert sum(n == "chunk.retry" for n in names) >= 1
        end = next(e for e in evs if e["ev"] == "sweep.end")
        assert end["done"] == 4 and end["retries"] == result.retries

    def test_flaky_cell_retry_events_serial(self, monkeypatch, tmp_path):
        key = small_spec().cells()[0]["key"]
        monkeypatch.setenv(obs.OBS_ENV, f"dir={tmp_path / 'obs'}")
        monkeypatch.setenv(
            "REPRO_CHAOS", f"flaky_key={key[:16]},dir={tmp_path / 'chaos'}"
        )
        result = SweepRunner(cache=None, max_workers=1).run(small_spec())
        assert result.retries >= 1
        evs = obs.read_events(tmp_path / "obs")
        retries = [e for e in evs if e["ev"] == "cell.retry"]
        assert retries and retries[0]["key"] == key[:12]


class TestObsReport:
    def _run_sweep(self, obs_dir):
        env = dict(os.environ)
        env["REPRO_OBS"] = f"dir={obs_dir}"
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "from repro.experiments import ExperimentSpec, SweepRunner\n"
            "spec = ExperimentSpec.grid(['polarfly:conc=2,q=5'], ['min'],"
            " ['uniform'], loads=(0.2, 0.5), root_seed=7, warmup=80,"
            " measure=160, drain=40)\n"
            "SweepRunner(cache=None, max_workers=2).run(spec)\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env=env,
            cwd=os.path.dirname(TOOLS),
        )

    def test_report_renders_and_json(self, tmp_path):
        self._run_sweep(tmp_path)
        out = subprocess.run(
            [sys.executable, os.path.join(TOOLS, "obsreport.py"), str(tmp_path)],
            check=True, capture_output=True, text=True,
        ).stdout
        assert "span waterfall" in out
        assert "sweep.cell" in out
        assert "hottest links" in out
        doc = json.loads(
            subprocess.run(
                [
                    sys.executable, os.path.join(TOOLS, "obsreport.py"),
                    str(tmp_path), "--json", "--top", "3",
                ],
                check=True, capture_output=True, text=True,
            ).stdout
        )
        assert doc["sweep_end"]["done"] == 2
        assert len(doc["hottest_links"]) == 3
        assert doc["spans"]["sweep.cell"]["count"] == 2

    def test_empty_dir_fails(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, os.path.join(TOOLS, "obsreport.py"), str(tmp_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
