"""Unit tests for triangle structure — paper Section V-C (Tables II, III)."""

from math import comb

import pytest

from repro.core import ClusterLayout, PolarFly
from repro.core.triangles import (
    block_design_matrix,
    classify_triangles,
    expected_inter_cluster_distribution,
    expected_inter_cluster_triangles,
    expected_intermediate_type,
    expected_intra_cluster_triangles,
    expected_triangle_count,
    intermediate_type_census,
    triangle_type_distribution,
)


class TestCounts:
    @pytest.mark.parametrize("q", (5, 7, 9, 11))
    def test_total_triangles(self, q):
        pf = PolarFly(q)
        assert len(pf.graph.triangles()) == expected_triangle_count(q)

    @pytest.mark.parametrize("q", (5, 7, 9))
    def test_intra_inter_split(self, q):
        # Proposition V.6.
        pf = PolarFly(q)
        split = classify_triangles(pf)
        assert len(split["intra"]) == expected_intra_cluster_triangles(q) == comb(q, 2)
        assert len(split["inter"]) == expected_inter_cluster_triangles(q) == comb(q, 3)

    def test_counts_sum(self):
        for q in (5, 7, 9, 11, 13):
            assert (
                expected_intra_cluster_triangles(q)
                + expected_inter_cluster_triangles(q)
                == expected_triangle_count(q)
            )


class TestBlockDesign:
    @pytest.mark.parametrize("q", (5, 7, 9))
    def test_every_triplet_exactly_one_triangle(self, q):
        # Theorem V.7.
        pf = PolarFly(q)
        counts = block_design_matrix(pf)
        assert len(counts) == comb(q, 3)
        assert set(counts.values()) == {1}

    def test_independent_of_layout_starter(self, pf7):
        for w in pf7.quadrics[:3]:
            lay = ClusterLayout(pf7, starter=int(w))
            counts = block_design_matrix(pf7, lay)
            assert set(counts.values()) == {1}

    def test_no_triangle_touches_quadric_cluster(self, pf7, layout7):
        # Edges at quadrics are triangle-free (Property 1.5), so no
        # triangle involves cluster 0.
        for clusters in block_design_matrix(pf7, layout7):
            assert 0 not in clusters


class TestTableII:
    @pytest.mark.parametrize("q", (5, 9, 13))
    def test_distribution_q1mod4(self, q):
        pf = PolarFly(q)
        observed = triangle_type_distribution(pf)["inter"]
        expected = expected_inter_cluster_distribution(q)
        for sig, count in expected.items():
            assert observed.get(sig, 0) == count, (q, sig)

    @pytest.mark.parametrize("q", (7, 11))
    def test_distribution_q3mod4(self, q):
        pf = PolarFly(q)
        observed = triangle_type_distribution(pf)["inter"]
        expected = expected_inter_cluster_distribution(q)
        for sig, count in expected.items():
            assert observed.get(sig, 0) == count, (q, sig)

    def test_distribution_sums_to_inter_count(self):
        for q in (5, 7, 9, 11, 13):
            assert sum(expected_inter_cluster_distribution(q).values()) == comb(q, 3)

    def test_even_q_rejected(self):
        with pytest.raises(ValueError):
            expected_inter_cluster_distribution(4)

    def test_intra_triangle_types(self, pf7):
        # q=3 mod 4: intra fans pair V1 with V2 (plus the center).
        observed = triangle_type_distribution(pf7)["intra"]
        # center is V1; wings one V1, one V2 -> signature v1v1v2
        assert set(observed) == {"v1v1v2"}


class TestTableIII:
    @pytest.mark.parametrize("q", (5, 9))
    def test_intermediate_types_q1mod4(self, q):
        pf = PolarFly(q)
        census = intermediate_type_census(pf)
        for (a, b), counter in census.items():
            assert set(counter) == {expected_intermediate_type(q, a, b)}

    @pytest.mark.parametrize("q", (7, 11))
    def test_intermediate_types_q3mod4(self, q):
        pf = PolarFly(q)
        census = intermediate_type_census(pf)
        for (a, b), counter in census.items():
            assert set(counter) == {expected_intermediate_type(q, a, b)}

    def test_expected_type_table_values(self):
        # The printed Table III.
        assert expected_intermediate_type(5, "V1", "V1") == "V1"
        assert expected_intermediate_type(5, "V1", "V2") == "V2"
        assert expected_intermediate_type(5, "V2", "V2") == "V1"
        assert expected_intermediate_type(7, "V1", "V1") == "V2"
        assert expected_intermediate_type(7, "V1", "V2") == "V1"
        assert expected_intermediate_type(7, "V2", "V2") == "V2"

    def test_quadric_endpoints_rejected(self):
        with pytest.raises(ValueError):
            expected_intermediate_type(7, "W", "V1")

    def test_even_q_rejected(self):
        with pytest.raises(ValueError):
            expected_intermediate_type(4, "V1", "V1")
