"""Unit tests for router-failure analysis (Section IX-B node failures)."""

import pytest

from repro.analysis.node_resilience import (
    node_failure_diameter,
    node_failure_sweep,
    remove_nodes,
)
from repro.core import PolarFly
from repro.topologies import SlimFly


@pytest.fixture(scope="module")
def pf():
    return PolarFly(7)


class TestSingleNodeFailure:
    def test_polarfly_diameter_becomes_three(self, pf):
        # Section IX-B: any single node failure raises the diameter from
        # 2 to exactly 3 — neighbors of the failed midpoint still reach
        # each other within 3 hops.
        for node in (0, int(pf.quadrics[0]), int(pf.v1[0]), int(pf.v2[0])):
            assert node_failure_diameter(pf, node) == 3

    def test_stays_connected(self, pf):
        for node in range(0, pf.num_routers, 11):
            sub = remove_nodes(pf, [node])
            assert sub.is_connected()
            assert sub.n == pf.num_routers - 1

    def test_slimfly_similar(self):
        sf = SlimFly(5)
        assert node_failure_diameter(sf, 0) in (2, 3)


class TestMultiNodeFailure:
    def test_sweep_shape(self, pf):
        res = node_failure_sweep(pf, counts=(1, 3, 5), runs=3, seed=0)
        assert set(res) == {1, 3, 5}
        assert all(len(v) == 3 for v in res.values())

    def test_one_node_runs_all_give_three(self, pf):
        res = node_failure_sweep(pf, counts=(1,), runs=4, seed=1)
        assert all(d == 3 for d in res[1])

    def test_moderate_failures_bounded(self, pf):
        # A handful of router failures keeps diameter small.
        res = node_failure_sweep(pf, counts=(5,), runs=3, seed=2)
        assert all(0 <= d <= 5 for d in res[5])

    def test_deterministic(self, pf):
        a = node_failure_sweep(pf, counts=(2,), runs=3, seed=9)
        b = node_failure_sweep(pf, counts=(2,), runs=3, seed=9)
        assert a == b


class TestRemoveNodes:
    def test_removes_incident_links(self, pf):
        deg0 = int(pf.graph.degree(0))
        sub = remove_nodes(pf, [0])
        assert sub.num_edges == pf.num_links - deg0

    def test_multiple(self, pf):
        sub = remove_nodes(pf, [0, 1, 2])
        assert sub.n == pf.num_routers - 3
