"""Registry round-trips: every registered spec parses, builds, and
re-serializes to itself; unknown/malformed specs fail loudly."""

import pytest

from repro.core import PolarFly
from repro.experiments import POLICIES, TOPOLOGIES, TRAFFICS, WORKLOADS, Registry
from repro.routing import RoutingTables
from repro.topologies.base import Topology


@pytest.fixture(scope="module")
def pf_tables():
    return RoutingTables(PolarFly(5, concentration=2))


ALL_REGISTRIES = [TOPOLOGIES, POLICIES, TRAFFICS, WORKLOADS]


class TestRoundTrip:
    """The ISSUE contract: registered examples are canonical fixed points."""

    @pytest.mark.parametrize("registry", ALL_REGISTRIES, ids=lambda r: r.kind)
    def test_examples_are_canonical(self, registry):
        assert registry.names(), "registry must not be empty"
        for name in registry.names():
            example = registry.example(name)
            parsed_name, kwargs = registry.parse(example)
            assert parsed_name == name
            assert isinstance(kwargs, dict)
            # canonical form is a fixed point
            assert registry.canonical(example) == example
            assert registry.canonical(registry.canonical(example)) == example

    def test_canonical_sorts_keys(self):
        assert (
            TOPOLOGIES.canonical("polarfly:q=5,conc=2")
            == TOPOLOGIES.canonical("polarfly:conc=2,q=5")
            == "polarfly:conc=2,q=5"
        )

    def test_every_topology_example_constructs(self):
        for name in TOPOLOGIES.names():
            topo = TOPOLOGIES.create(TOPOLOGIES.example(name))
            assert isinstance(topo, Topology), name
            assert topo.num_routers > 0, name

    def test_every_policy_example_constructs(self, pf_tables):
        for name in POLICIES.names():
            if name == "ftnca":  # needs a FatTree, not a PolarFly
                continue
            policy = POLICIES.create(POLICIES.example(name), pf_tables)
            assert policy.max_hops >= 1, name

    def test_ftnca_constructs_on_fattree(self):
        ft = TOPOLOGIES.create("fattree:k=4,n=3")
        policy = POLICIES.create("ftnca", RoutingTables(ft))
        assert policy.max_hops == 4

    def test_every_traffic_example_constructs(self):
        pf = PolarFly(5, concentration=2)
        for name in TRAFFICS.names():
            traffic = TRAFFICS.create(TRAFFICS.example(name), pf)
            assert hasattr(traffic, "dest_router"), name


class TestErrors:
    def test_unknown_name_raises_keyerror_naming_choices(self):
        with pytest.raises(KeyError, match="polarfly"):
            TOPOLOGIES.parse("polarflea:q=7")
        with pytest.raises(KeyError, match="valid choices"):
            POLICIES.parse("ospf")
        with pytest.raises(KeyError, match="uniform"):
            TRAFFICS.create("uniformish", None)

    def test_malformed_spec(self):
        with pytest.raises(ValueError, match="key=value"):
            TOPOLOGIES.parse("polarfly:q")
        with pytest.raises(ValueError, match="duplicate key"):
            TOPOLOGIES.parse("polarfly:q=5,q=7")
        with pytest.raises(ValueError):
            TOPOLOGIES.parse("")

    def test_bad_arguments_name_the_spec(self):
        with pytest.raises(TypeError, match="polarfly"):
            TOPOLOGIES.create("polarfly:bogus=1,q=5")

    def test_duplicate_registration_rejected(self):
        reg = Registry("thing")
        reg.register("x")(lambda: None)
        with pytest.raises(ValueError, match="duplicate"):
            reg.register("x")(lambda: None)

    def test_reserved_chars_rejected_in_names(self):
        reg = Registry("thing")
        with pytest.raises(ValueError):
            reg.register("a:b")


class TestValueParsing:
    def test_typed_values(self):
        reg = Registry("thing")

        @reg.register("probe")
        def probe(**kw):
            return kw

        got = reg.create("probe:a=1,b=2.5,c=true,d=false,e=text")
        assert got == {"a": 1, "b": 2.5, "c": True, "d": False, "e": "text"}
        assert isinstance(got["a"], int) and not isinstance(got["a"], bool)

    def test_extra_kwargs_override_spec(self):
        assert TOPOLOGIES.create("polarfly:conc=2,q=5", q=7).num_routers == 57

    def test_spec_kwargs_reach_constructor(self):
        jf = TOPOLOGIES.create("jellyfish:n=20,p=1,r=4,seed=9")
        assert jf.num_routers == 20
        assert jf.seed == 9
        assert int(jf.concentration[0]) == 1
