"""Golden tests for failure-aware routing repair (``routing/degraded.py``).

The incremental ``reroute_after_failures(..., base=)`` path must produce
tables *identical* to a fresh build on the degraded graph — distances,
candidate CSR rows, and served paths — and both paths must raise on
disconnection.
"""

import numpy as np
import pytest

from repro.core import PolarFly
from repro.routing.degraded import (
    degraded_topology,
    fault_epoch_tables,
    reroute_after_failures,
)
from repro.routing.tables import RoutingTables
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def pf():
    return PolarFly(7, concentration=2)


@pytest.fixture(scope="module")
def base(pf):
    return RoutingTables(pf)


def random_failures(pf, k, seed):
    rng = make_rng(seed)
    edges = pf.graph.edges()
    kill = rng.choice(edges.shape[0], size=k, replace=False)
    return edges[kill]


@pytest.mark.parametrize("seed,k", [(0, 5), (1, 12), (2, 20)])
def test_incremental_matches_fresh_build(pf, base, seed, k):
    failed = random_failures(pf, k, seed)
    fresh = RoutingTables(degraded_topology(pf, failed))
    incr = reroute_after_failures(pf, failed, base=base)

    assert np.array_equal(fresh.dist, incr.dist)
    fi, fd = fresh._candidate_csr()
    ii, idata = incr._candidate_csr()
    assert np.array_equal(fi, ii)
    assert np.array_equal(fd, idata)

    # Served paths match too (deterministic tie-break mode).
    rng = make_rng(seed + 100)
    srcs = rng.integers(pf.num_routers, size=64)
    dsts = (srcs + 1 + rng.integers(pf.num_routers - 1, size=64)) % pf.num_routers
    fp, fl = fresh.shortest_paths_batch(srcs, dsts)
    ip, il = incr.shortest_paths_batch(srcs, dsts)
    assert np.array_equal(fl, il)
    for row, length in enumerate(fl):
        assert np.array_equal(fp[row, :length], ip[row, :length])


def test_base_tables_untouched_by_repair(pf, base):
    failed = random_failures(pf, 8, 3)
    before = base.dist.copy()
    reroute_after_failures(pf, failed, base=base)
    assert np.array_equal(base.dist, before)
    assert base.topo is pf


def test_disconnection_raises_both_paths(pf, base):
    # All links of one router: it ends up isolated.
    isolating = np.array(
        [(0, int(v)) for v in pf.graph.neighbors(0)], dtype=np.int64
    )
    with pytest.raises(ValueError, match="disconnect"):
        reroute_after_failures(pf, isolating)
    with pytest.raises(ValueError, match="disconnect"):
        reroute_after_failures(pf, isolating, base=base)


def test_no_failures_is_identity(pf, base):
    incr = reroute_after_failures(pf, np.empty((0, 2), dtype=np.int64), base=base)
    assert np.array_equal(incr.dist, base.dist)


class TestFaultEpochTables:
    def test_router_failure_masks_and_distances(self, pf, base):
        tables = fault_epoch_tables(pf, failed_routers=[5], base=base)
        assert tables.alive_routers is not None
        assert not tables.alive_routers[5]
        n = pf.num_routers
        # Dead router unreachable from everywhere (and vice versa).
        others = np.array([r for r in range(n) if r != 5])
        assert np.all(tables.dist[others, 5] == -1)
        assert np.all(tables.dist[5, others] == -1)
        # Alive block fully connected and matches a fresh masked build.
        alive_block = tables.dist[np.ix_(tables.alive_routers, tables.alive_routers)]
        assert np.all(alive_block >= 0)
        fresh = fault_epoch_tables(pf, failed_routers=[5])
        assert np.array_equal(fresh.dist, tables.dist)

    def test_combined_links_and_router(self, pf, base):
        extra = random_failures(pf, 4, 7)
        tables = fault_epoch_tables(
            pf, failed_links=extra, failed_routers=[9], base=base
        )
        g = tables.topo.graph
        for u, v in extra:
            assert not g.has_edge(int(min(u, v)), int(max(u, v)))
        assert g.degree(9) == 0

    def test_articulating_router_raises(self, pf, base):
        # Killing every neighbor of router 0 strands it: survivors
        # of the removal exclude them but 0 keeps no alive links.
        victims = [int(v) for v in pf.graph.neighbors(0)]
        with pytest.raises(ValueError, match="disconnect"):
            fault_epoch_tables(pf, failed_routers=victims, base=base)
