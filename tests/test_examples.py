"""Smoke tests: the example scripts must run end to end.

Only the quick ones run here (the routing study sweeps many simulation
points and is exercised by the benchmarks instead).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "5")
        assert proc.returncode == 0, proc.stderr
        assert "Moore efficiency" in proc.stdout
        assert "diameter         : 2" in proc.stdout

    def test_design_space_explorer(self):
        proc = run_example("design_space_explorer.py", "12")
        assert proc.returncode == 0, proc.stderr
        assert "Feasible designs per radix ceiling" in proc.stdout
        assert "PolarFly=1.00" in proc.stdout

    @pytest.mark.slow
    def test_fault_drill(self):
        proc = run_example("fault_drill.py")
        assert proc.returncode == 0, proc.stderr
        assert "diameter becomes 3" in proc.stdout
