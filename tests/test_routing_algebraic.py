"""Unit tests for table-free algebraic PolarFly routing."""

import numpy as np
import pytest

from repro.core import PolarFly
from repro.flitsim import NetworkSimulator, UniformTraffic
from repro.routing import MinimalRouting, RoutingTables
from repro.routing.algebraic import AlgebraicMinimalRouting
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def pf():
    return PolarFly(7, concentration=2)


@pytest.fixture(scope="module")
def algebraic(pf):
    return AlgebraicMinimalRouting(pf)


class TestEquivalenceWithTables:
    def test_same_routes_everywhere(self, pf, algebraic):
        # PolarFly minimal paths are unique, so coordinate routing and
        # BFS-table routing must agree on every pair.
        tables = MinimalRouting(RoutingTables(pf))
        rng = make_rng(0)
        for s in range(pf.num_routers):
            for d in (3, 20, 41):
                if s == d:
                    continue
                assert algebraic.select_route(s, d, rng) == tables.select_route(
                    s, d, rng
                )

    def test_route_validity_all_pairs(self, pf, algebraic):
        rng = make_rng(1)
        for _ in range(100):
            s, d = map(int, rng.integers(0, pf.num_routers, 2))
            if s == d:
                continue
            path = algebraic.select_route(s, d, rng)
            assert path[0] == s and path[-1] == d and len(path) - 1 <= 2
            for a, b in zip(path, path[1:]):
                assert pf.are_adjacent(a, b)


class TestNextHop:
    def test_adjacent_goes_direct(self, pf, algebraic):
        e = pf.graph.edges()[0]
        assert algebraic.next_hop(int(e[0]), int(e[1])) == int(e[1])

    def test_two_hop_via_midpoint(self, pf, algebraic):
        rng = make_rng(2)
        for _ in range(40):
            s, d = map(int, rng.integers(0, pf.num_routers, 2))
            if s == d or pf.are_adjacent(s, d):
                continue
            mid = algebraic.next_hop(s, d)
            assert pf.are_adjacent(s, mid) and pf.are_adjacent(mid, d)
            assert algebraic.next_hop(mid, d) == d

    def test_at_destination_raises(self, algebraic):
        with pytest.raises(ValueError):
            algebraic.next_hop(5, 5)


class TestInSimulator:
    def test_drives_simulation(self, pf, algebraic):
        sim = NetworkSimulator(pf, algebraic, UniformTraffic(pf), 0.3, seed=3)
        res = sim.run(warmup=200, measure=400, drain=200)
        assert res.accepted_load == pytest.approx(0.3, abs=0.05)
        assert res.avg_hops <= 2.0
