"""Golden equivalence for the closed-loop path.

The workload engine's acceptance contract: for the same seed, the flat
engine — on **both** cycle paths, pure numpy and the C kernel (when a
compiler is present) — and the reference (dict-of-deques) engine return
**bit-identical** :class:`~repro.workloads.WorkloadResult`\\ s on
PolarFly q=7 across *every* registered workload generator (trace replay
included), and workload sweeps are deterministic across worker counts
and cache round trips.
"""

import contextlib

import numpy as np
import pytest

from repro.core import PolarFly
from repro.experiments import (
    Combo,
    ExperimentSpec,
    POLICIES,
    ResultCache,
    SweepRunner,
    WORKLOADS,
)
from repro.experiments.runner import auto_sim_config, simulate_workload
from repro.flitsim import FlatSimulator, NetworkSimulator
from repro.flitsim._kernel import load_kernel, numpy_fallback
from repro.routing.tables import RoutingTables

PF_SPEC = "polarfly:conc=2,q=7"


def flat_variants():
    """(label, context factory, expects kernel) for both flat cycle paths."""
    variants = [("flat-numpy", numpy_fallback, False)]
    if load_kernel() is not None:
        variants.append(("flat-kernel", contextlib.nullcontext, True))
    return variants


@pytest.fixture(scope="module")
def pf():
    return PolarFly(7, concentration=2)


@pytest.fixture(scope="module")
def tables(pf):
    return RoutingTables(pf)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory, pf):
    """A small diamond-DAG trace on terminal routers."""
    t = np.flatnonzero(pf.concentration > 0)
    path = tmp_path_factory.mktemp("traces") / "diamond.jsonl"
    lines = [
        f'{{"id": 0, "src": {t[0]}, "dst": {t[5]}, "size": 12}}',
        f'{{"id": 1, "src": {t[5]}, "dst": {t[9]}, "size": 6, "deps": [0]}}',
        f'{{"id": 2, "src": {t[5]}, "dst": {t[11]}, "size": 6, "deps": [0]}}',
        f'{{"id": 3, "src": {t[9]}, "dst": {t[0]}, "size": 4, "deps": [1, 2]}}',
    ]
    path.write_text("\n".join(lines))
    return str(path)


def workload_specs(trace_path):
    """Every registered workload as a (spec, extra-kwargs) pair."""
    return [
        ("allreduce:algo=ring,size=64", {}),
        ("allreduce:algo=rd,size=16", {}),
        ("alltoall:size=8", {}),
        ("halo:iters=2,size=16", {}),
        ("incast:reply=true,size=32", {}),
        ("trace", {"path": trace_path}),
    ]


def assert_identical(a, b):
    assert a.cycles == b.cycles
    assert a.finished == b.finished
    assert a.completed_messages == b.completed_messages
    assert a.injected_flits == b.injected_flits
    assert a.ejected_flits == b.ejected_flits
    assert a.flit_hops == b.flit_hops
    assert np.array_equal(a.msg_latencies, b.msg_latencies)
    assert np.array_equal(a.msg_complete_cycles, b.msg_complete_cycles)
    assert np.array_equal(a.packet_latencies, b.packet_latencies)
    assert np.array_equal(a.hop_counts, b.hop_counts)
    assert a.summary() == b.summary()


def test_specs_cover_every_registered_workload(trace_path):
    tested = {s.split(":")[0] for s, _ in workload_specs(trace_path)}
    assert tested == set(WORKLOADS.names()), (
        "equivalence grid must cover every registered workload"
    )


@pytest.mark.parametrize("policy_spec", ["min", "ugal-pf"])
def test_flat_matches_reference_all_workloads(
    pf, tables, trace_path, policy_spec
):
    policy = POLICIES.create(policy_spec, tables)
    cfg = auto_sim_config(policy)
    for wspec, kwargs in workload_specs(trace_path):
        wl = WORKLOADS.create(wspec, pf, **kwargs)
        ref = NetworkSimulator(
            pf, policy, None, 0.0, config=cfg, seed=7, workload=wl
        ).run_workload(max_cycles=100_000)
        assert ref.finished, wspec
        for label, ctx, expect_kernel in flat_variants():
            with ctx():
                sim = FlatSimulator(
                    pf, policy, None, 0.0, config=cfg, seed=7, workload=wl
                )
            assert (sim._kernel is not None) == expect_kernel, (
                f"{label} must {'use' if expect_kernel else 'skip'} the C kernel"
            )
            assert_identical(ref, sim.run_workload(max_cycles=100_000))


def test_same_seed_is_deterministic(pf, tables):
    policy = POLICIES.create("ugal-pf", tables)
    wl = WORKLOADS.create("allreduce:algo=ring,size=64", pf)
    a = simulate_workload(pf, policy, wl, seed=3)
    b = simulate_workload(pf, policy, wl, seed=3)
    assert_identical(a, b)
    c = simulate_workload(pf, policy, wl, seed=4)
    assert c.cycles != a.cycles or not np.array_equal(
        c.packet_latencies, a.packet_latencies
    )


def test_unfinished_run_reports_partial_progress(pf, tables):
    policy = POLICIES.create("min", tables)
    wl = WORKLOADS.create("allreduce:algo=ring,size=64", pf)
    res = simulate_workload(pf, policy, wl, max_cycles=60)
    assert not res.finished
    assert res.completion_time == -1
    assert res.cycles == 60
    assert 0 < res.completed_messages < res.num_messages


def test_run_and_run_workload_are_mutually_exclusive(pf, tables):
    policy = POLICIES.create("min", tables)
    wl = WORKLOADS.create("alltoall:size=8", pf)
    sim = FlatSimulator(pf, policy, None, 0.0, workload=wl,
                        config=auto_sim_config(policy))
    with pytest.raises(RuntimeError, match="run_workload"):
        sim.run()
    from repro.experiments import TRAFFICS
    from repro.flitsim.engine import make_simulator

    open_sim = make_simulator(
        pf, policy, TRAFFICS.create("uniform", pf), 0.3,
        config=auto_sim_config(policy),
    )
    with pytest.raises(RuntimeError, match="workload"):
        open_sim.run_workload()


def test_sweep_workers_and_cache_round_trip(tmp_path):
    spec = ExperimentSpec.workload_grid(
        [PF_SPEC], ["min", "ugal-pf"],
        ["allreduce:algo=ring,size=64", "halo:iters=2,size=16"],
        root_seed=9, max_cycles=100_000,
    )
    cache = ResultCache(tmp_path / "cache")
    r1 = SweepRunner(cache=cache, max_workers=1).run(spec)
    assert (r1.cache_hits, r1.cache_misses) == (0, 4)
    with SweepRunner(cache=cache, max_workers=2) as runner:
        r2 = runner.run(spec)
    assert (r2.cache_hits, r2.cache_misses) == (4, 0)
    assert r1.cells == r2.cells
    r3 = SweepRunner(cache=None, max_workers=2).run(spec)
    assert r1.cells == r3.cells
    for stats in r1.cells.values():
        assert stats["finished"]
        assert stats["completion_cycles"] > 0
        assert stats["completed_messages"] == stats["num_messages"]


def test_open_loop_cells_unaffected_by_workload_axis():
    """Open-loop cell records carry no workload fields (hash stability)."""
    spec = ExperimentSpec.grid(
        ["polarfly:conc=2,q=5"], ["min"], ["uniform"], loads=(0.2,)
    )
    cell = spec.cells()[0]
    assert "workload" not in cell
    assert "max_cycles" not in cell
